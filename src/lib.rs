//! # rram-bnn-repro
//!
//! Workspace façade of the reproduction of *"In-Memory Resistive RAM
//! Implementation of Binarized Neural Networks for Medical Applications"*
//! (Penkovsky et al., DATE 2020). Re-exports every member crate so the
//! examples and integration tests can address the whole system through one
//! dependency.
//!
//! Start with the [`rram_bnn`] umbrella crate (deployment pipeline and
//! experiment harness), or run `cargo run --example quickstart --release`.

pub use rbnn_binary as binary;
pub use rbnn_data as data;
pub use rbnn_models as models;
pub use rbnn_nn as nn;
pub use rbnn_rram as rram;
pub use rbnn_serve as serve;
pub use rbnn_tensor as tensor;
pub use rram_bnn as core;
