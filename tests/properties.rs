//! Property-based tests of the core invariants, spanning crates.
//!
//! Offline replacement for the original `proptest` suite: each property is
//! exercised over `CASES` deterministically seeded random inputs drawn from
//! the same domains the proptest strategies used. Failures print the case
//! seed so a reproduction is one `StdRng::seed_from_u64` away.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rbnn_binary::{fold_batchnorm_sign, BinaryDense, BinaryNetwork};
use rbnn_rram::{DeviceParams, Pcsa, PcsaParams, RramArray, Synapse2T2R};
use rbnn_tensor::{im2col1d, im2col1d_backward, BitMatrix, BitVec, Conv1dGeom, Tensor};

const CASES: u64 = 64;

/// Runs `body` for `CASES` seeds derived from `base`.
fn for_cases(base: u64, mut body: impl FnMut(u64, &mut StdRng)) {
    for case in 0..CASES {
        let seed = base.wrapping_mul(0x100_0000).wrapping_add(case);
        let mut rng = StdRng::seed_from_u64(seed);
        body(seed, &mut rng);
    }
}

/// Eq. 3 equivalence: the packed XNOR/popcount ±1 dot product equals the
/// float dot product for arbitrary sign patterns and lengths.
#[test]
fn xnor_dot_equals_float_dot() {
    for_cases(1, |seed, rng| {
        let n = rng.gen_range(1usize..300);
        let bits_a: Vec<bool> = (0..n).map(|_| rng.gen::<bool>()).collect();
        let bits_b: Vec<bool> = (0..n).map(|_| rng.gen::<bool>()).collect();
        let fa: Vec<f32> = bits_a.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let fb: Vec<f32> = bits_b.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let dot: f32 = fa.iter().zip(&fb).map(|(x, y)| x * y).sum();
        let ba = BitVec::from_bools(&bits_a);
        let bb = BitVec::from_bools(&bits_b);
        assert_eq!(ba.dot_pm1(&bb), dot as i32, "seed {seed}");
    });
}

/// The folded integer threshold agrees with float BatchNorm + sign for
/// every reachable popcount value.
#[test]
fn threshold_fold_is_exact() {
    for_cases(2, |seed, rng| {
        let scale = rng.gen_range(-4.0f32..4.0);
        let shift = rng.gen_range(-50.0f32..50.0);
        let fan_in = rng.gen_range(1usize..300);
        let th = fold_batchnorm_sign(scale, shift, fan_in);
        for p in 0..=fan_in as u32 {
            let d = 2.0 * p as f32 - fan_in as f32;
            let float_fire = scale * d + shift >= 0.0;
            assert_eq!(
                th.fire(p),
                float_fire,
                "seed {seed}: p={p}, scale={scale}, shift={shift}, fan_in={fan_in}"
            );
        }
    });
}

/// im2col backward is the exact adjoint of im2col for arbitrary geometry
/// (random probe identity ⟨Ax, y⟩ = ⟨x, Aᵀy⟩).
#[test]
fn im2col_adjoint_identity() {
    for_cases(3, |seed, rng| {
        let channels = rng.gen_range(1usize..4);
        let len = rng.gen_range(4usize..24);
        let kernel = rng.gen_range(1usize..5);
        let stride = rng.gen_range(1usize..3);
        let padding = rng.gen_range(0usize..3);
        if len + 2 * padding < kernel {
            return; // prop_assume! equivalent
        }
        let geom = Conv1dGeom::new(channels, len, kernel, stride, padding);
        let x = Tensor::randn([channels, len], 1.0, rng);
        let y = Tensor::randn([geom.patch_rows(), geom.out_len()], 1.0, rng);
        let lhs = im2col1d(&x, &geom).dot(&y);
        let rhs = x.dot(&im2col1d_backward(&y, &geom));
        assert!(
            (lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
            "seed {seed}: adjoint mismatch: {lhs} vs {rhs}"
        );
    });
}

/// Fresh 2T2R synapses read back the programmed weight through a real
/// (mismatched) PCSA — the margin is large enough that fabrication offsets
/// never flip a fresh read.
#[test]
fn fresh_synapse_roundtrip() {
    for_cases(4, |seed, rng| {
        let weight = rng.gen::<bool>();
        let params = DeviceParams::hfo2_default();
        let pcsa = Pcsa::new(&PcsaParams::default_130nm(), rng);
        let syn = Synapse2T2R::new(weight, &params, rng);
        assert_eq!(syn.read(&pcsa, &params, rng), weight, "seed {seed}");
    });
}

/// A fresh array stores and retrieves arbitrary bit patterns exactly.
#[test]
fn array_roundtrip() {
    for_cases(5, |seed, rng| {
        let pattern: Vec<bool> = (0..64).map(|_| rng.gen::<bool>()).collect();
        let mut array = RramArray::new(
            8,
            8,
            DeviceParams::hfo2_default(),
            PcsaParams::default_130nm(),
            rng.gen::<u64>(),
        );
        let signs: Vec<f32> = pattern
            .iter()
            .map(|&b| if b { 1.0 } else { -1.0 })
            .collect();
        let m = BitMatrix::from_signs(&signs, 8, 8);
        array.program_matrix(&m);
        for r in 0..8 {
            let bits = array.read_row(r);
            for c in 0..8 {
                assert_eq!(bits.get(c), m.get(r, c), "seed {seed}: ({r}, {c})");
            }
        }
    });
}

/// Deployed binary dense layers: forward_sign equals the sign of
/// forward_affine for random weights and thresholds.
#[test]
fn binary_dense_sign_affine_agree() {
    for_cases(6, |seed, rng| {
        let out = rng.gen_range(1usize..8);
        let inp = rng.gen_range(1usize..80);
        let w: Vec<f32> = (0..out * inp)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let scale: Vec<f32> = (0..out).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let shift: Vec<f32> = (0..out).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let layer = BinaryDense::new(BitMatrix::from_signs(&w, out, inp), scale, shift);
        let x: BitVec = (0..inp).map(|_| rng.gen::<bool>()).collect();
        let signs = layer.forward_sign(&x);
        let affine = layer.forward_affine(&x);
        for (i, &a) in affine.iter().enumerate() {
            assert_eq!(
                signs.get(i),
                a >= 0.0,
                "seed {seed}: neuron {i}: affine {a}"
            );
        }
    });
}

/// Dataset k-fold partitions: folds are disjoint and complete for any
/// size/k combination.
#[test]
fn kfold_partitions() {
    for_cases(7, |seed, rng| {
        let n = rng.gen_range(10usize..60);
        let k = rng.gen_range(2usize..6);
        if k > n {
            return;
        }
        let ds = rbnn_data::Dataset::new(Tensor::zeros([n, 2]), (0..n).map(|i| i % 2).collect(), 2);
        let folds = ds.fold_indices(k);
        let mut seen = vec![false; n];
        for fold in &folds {
            for &i in fold {
                assert!(!seen[i], "seed {seed}: index {i} in two folds");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "seed {seed}: incomplete partition");
    });
}

/// Batch/single parity: `BinaryNetwork::logits_batch` is bit-for-bit equal
/// to per-sample `logits`, and `classify_batch` to per-sample `classify`,
/// for random networks, batch sizes and inputs (including empty batches).
#[test]
fn logits_batch_matches_single() {
    for_cases(8, |seed, rng| {
        let classes = rng.gen_range(2usize..6);
        let hidden = rng.gen_range(1usize..40);
        let inp = rng.gen_range(1usize..150);
        let mk = |out: usize, inp: usize, rng: &mut StdRng| {
            let w: Vec<f32> = (0..out * inp)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let scale: Vec<f32> = (0..out).map(|_| rng.gen_range(0.2..2.0)).collect();
            let shift: Vec<f32> = (0..out).map(|_| rng.gen_range(-3.0..3.0)).collect();
            BinaryDense::new(BitMatrix::from_signs(&w, out, inp), scale, shift)
        };
        let net = BinaryNetwork::new(vec![mk(hidden, inp, rng), mk(classes, hidden, rng)]);
        let n = rng.gen_range(0usize..17);
        let xs: Vec<f32> = (0..n * inp).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let features = Tensor::from_vec(xs.clone(), [n, inp]);
        let batched = net.logits_batch(&features);
        assert_eq!(batched.dims(), [n, classes], "seed {seed}");
        let classes_batch = net.classify_batch(&features);
        for i in 0..n {
            let single = net.logits(&xs[i * inp..(i + 1) * inp]);
            assert_eq!(
                &batched.as_slice()[i * classes..(i + 1) * classes],
                single.as_slice(),
                "seed {seed}: row {i} diverges from single-sample logits"
            );
            assert_eq!(
                classes_batch[i],
                net.classify(&xs[i * inp..(i + 1) * inp]),
                "seed {seed}: row {i} classification"
            );
        }
    });
}
