//! Property-based tests of the core invariants, spanning crates.

use proptest::prelude::*;

use rbnn_binary::{fold_batchnorm_sign, BinaryDense};
use rbnn_rram::{DeviceParams, Pcsa, PcsaParams, RramArray, Synapse2T2R};
use rbnn_tensor::{im2col1d, im2col1d_backward, BitMatrix, BitVec, Conv1dGeom, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 3 equivalence: the packed XNOR/popcount ±1 dot product equals
    /// the float dot product for arbitrary sign patterns and lengths.
    #[test]
    fn xnor_dot_equals_float_dot(bits_a in prop::collection::vec(any::<bool>(), 1..300),
                                 seed in any::<u64>()) {
        let n = bits_a.len();
        let bits_b: Vec<bool> = (0..n).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
        let fa: Vec<f32> = bits_a.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let fb: Vec<f32> = bits_b.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let dot: f32 = fa.iter().zip(&fb).map(|(x, y)| x * y).sum();
        let ba = BitVec::from_bools(&bits_a);
        let bb = BitVec::from_bools(&bits_b);
        prop_assert_eq!(ba.dot_pm1(&bb), dot as i32);
    }

    /// The folded integer threshold agrees with float BatchNorm + sign for
    /// every reachable popcount value.
    #[test]
    fn threshold_fold_is_exact(scale in -4.0f32..4.0, shift in -50.0f32..50.0,
                               fan_in in 1usize..300) {
        let th = fold_batchnorm_sign(scale, shift, fan_in);
        for p in 0..=fan_in as u32 {
            let d = 2.0 * p as f32 - fan_in as f32;
            let float_fire = scale * d + shift >= 0.0;
            prop_assert_eq!(th.fire(p), float_fire,
                "p={}, scale={}, shift={}, fan_in={}", p, scale, shift, fan_in);
        }
    }

    /// im2col backward is the exact adjoint of im2col for arbitrary
    /// geometry (random probe identity ⟨Ax, y⟩ = ⟨x, Aᵀy⟩).
    #[test]
    fn im2col_adjoint_identity(channels in 1usize..4, len in 4usize..24,
                               kernel in 1usize..5, stride in 1usize..3,
                               padding in 0usize..3, seed in any::<u64>()) {
        prop_assume!(len + 2 * padding >= kernel);
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let geom = Conv1dGeom::new(channels, len, kernel, stride, padding);
        let x = Tensor::randn([channels, len], 1.0, &mut rng);
        let y = Tensor::randn([geom.patch_rows(), geom.out_len()], 1.0, &mut rng);
        let lhs = im2col1d(&x, &geom).dot(&y);
        let rhs = x.dot(&im2col1d_backward(&y, &geom));
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
            "adjoint mismatch: {} vs {}", lhs, rhs);
    }

    /// Fresh 2T2R synapses read back the programmed weight through a real
    /// (mismatched) PCSA — the margin is large enough that fabrication
    /// offsets never flip a fresh read.
    #[test]
    fn fresh_synapse_roundtrip(weight in any::<bool>(), seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let params = DeviceParams::hfo2_default();
        let pcsa = Pcsa::new(&PcsaParams::default_130nm(), &mut rng);
        let syn = Synapse2T2R::new(weight, &params, &mut rng);
        prop_assert_eq!(syn.read(&pcsa, &params, &mut rng), weight);
    }

    /// A fresh array stores and retrieves arbitrary bit patterns exactly.
    #[test]
    fn array_roundtrip(pattern in prop::collection::vec(any::<bool>(), 64), seed in any::<u64>()) {
        let mut array = RramArray::new(
            8, 8, DeviceParams::hfo2_default(), PcsaParams::default_130nm(), seed);
        let signs: Vec<f32> = pattern.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let m = BitMatrix::from_signs(&signs, 8, 8);
        array.program_matrix(&m);
        for r in 0..8 {
            let bits = array.read_row(r);
            for c in 0..8 {
                prop_assert_eq!(bits.get(c), m.get(r, c), "({}, {})", r, c);
            }
        }
    }

    /// Deployed binary dense layers: forward_sign equals the sign of
    /// forward_affine for random weights and thresholds.
    #[test]
    fn binary_dense_sign_affine_agree(out in 1usize..8, inp in 1usize..80, seed in any::<u64>()) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let w: Vec<f32> = (0..out * inp)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let scale: Vec<f32> = (0..out).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let shift: Vec<f32> = (0..out).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let layer = BinaryDense::new(BitMatrix::from_signs(&w, out, inp), scale, shift);
        let x: BitVec = (0..inp).map(|_| rng.gen::<bool>()).collect();
        let signs = layer.forward_sign(&x);
        let affine = layer.forward_affine(&x);
        for (i, &a) in affine.iter().enumerate() {
            prop_assert_eq!(signs.get(i), a >= 0.0, "neuron {}: affine {}", i, a);
        }
    }

    /// Dataset k-fold partitions: folds are disjoint and complete for any
    /// size/k combination.
    #[test]
    fn kfold_partitions(n in 10usize..60, k in 2usize..6) {
        prop_assume!(k <= n);
        let ds = rbnn_data::Dataset::new(
            Tensor::zeros([n, 2]), (0..n).map(|i| i % 2).collect(), 2);
        let folds = ds.fold_indices(k);
        let mut seen = vec![false; n];
        for fold in &folds {
            for &i in fold {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }
}
