//! Workspace-level conformance smoke: the differential oracle and the
//! fault campaign must hold end to end through the public crate surface —
//! the same machinery CI gates at larger scale via
//! `cargo run -p rbnn-bench --bin conformance -- --quick --strict`.

use rbnn_conformance::{campaign, generate, oracle};

#[test]
fn oracle_agrees_across_all_paths_for_every_family() {
    // One model per family, full oracle: float / binary single / binary
    // batch / noise-free RRAM / serve (software + RRAM backends), plus
    // the noisy margin bound.
    let cfg = oracle::OracleConfig {
        samples: 16,
        ..Default::default()
    };
    for index in 0..4 {
        let mut model = generate::generate(index, 0x5110);
        let report = oracle::check_model(&mut model, &cfg);
        assert!(report.passed(), "{report:?}");
    }
}

#[test]
fn reduced_campaign_reproduces_the_tolerance_anchor() {
    let mut cfg = campaign::CampaignConfig::quick(3);
    cfg.reps = 8;
    cfg.verify_trials = 8_000;
    let report = campaign::run_campaign(&cfg);
    assert!(report.clean_accuracy > 0.9, "{}", report.clean_accuracy);
    assert!(
        report.anchor_ok,
        "drop {} at anchor BER {:.2e}",
        report.anchor_drop, report.anchor_ber
    );
    assert!(report.verify_ok, "{:?}", report.verify_curve);
}
