//! End-to-end integration: train → binarize → export → program simulated
//! RRAM → evaluate, across tasks and strategies.

use rbnn_binary::export_classifier;
use rbnn_models::BinarizationStrategy;
use rbnn_nn::{train, Adam, Layer, Phase};
use rbnn_rram::EngineConfig;
use rram_bnn::deploy::{classifier_features, deploy_and_evaluate};
use rram_bnn::tasks::{Scale, Task, TaskSetup};

fn train_quick(
    setup: &TaskSetup,
    strategy: BinarizationStrategy,
    epochs: usize,
) -> (rbnn_nn::SplitModel, rbnn_data::Dataset) {
    let mut model = setup.build_model(strategy, 1, 5);
    let (train_ds, val_ds) = setup.dataset().cv_fold(5, 0);
    let mut opt = Adam::new(0.01);
    let cfg = train::TrainConfig {
        epochs,
        batch_size: 32,
        eval_every: epochs,
        ..Default::default()
    };
    let _ = train::fit(
        &mut model,
        train::Labelled::new(train_ds.samples(), train_ds.labels()),
        None,
        &mut opt,
        &cfg,
    );
    (model, val_ds)
}

#[test]
fn ecg_binarized_classifier_full_chain() {
    let setup = TaskSetup::new(Task::Ecg, Scale::Quick, 101);
    let (mut model, val) = train_quick(&setup, BinarizationStrategy::BinarizedClassifier, 15);
    let report = deploy_and_evaluate(&mut model, &val, &EngineConfig::test_chip(3), 400_000_000)
        .expect("deployable");
    // The trained model must be clearly above chance in software…
    assert!(report.software_accuracy > 0.7, "{report:?}");
    // …and fresh hardware must track the exported bit-packed network.
    assert!(
        (report.hardware_accuracy - report.exported_accuracy).abs() <= 0.05,
        "{report:?}"
    );
    // Worn hardware stays above chance (graceful degradation, the ECC-less
    // operating point).
    assert!(report.worn_accuracy > 0.5, "{report:?}");
}

#[test]
fn fully_binarized_classifier_also_deploys() {
    // In the fully binarized strategy the classifier is binary too, so the
    // same deployment path must work.
    let setup = TaskSetup::new(Task::Ecg, Scale::Quick, 102);
    let (model, val) = train_quick(&setup, BinarizationStrategy::FullyBinarized, 10);
    let mut model = model;
    let report =
        deploy_and_evaluate(&mut model, &val, &EngineConfig::test_chip(4), 0).expect("deployable");
    assert!(report.arrays > 0);
    assert!((0.0..=1.0).contains(&report.hardware_accuracy));
}

#[test]
fn exported_classifier_is_bit_exact_on_sign_features() {
    // On ±1 classifier inputs, the bit-packed network must agree with the
    // float graph exactly (threshold folding is exact, not approximate).
    let setup = TaskSetup::new(Task::Ecg, Scale::Quick, 103);
    let (mut model, val) = train_quick(&setup, BinarizationStrategy::BinarizedClassifier, 6);
    let network = export_classifier(&model.classifier).expect("export");
    let (features, _) = classifier_features(&mut model, &val);
    let n = features.dim(0).min(32);
    let f = features.dim(1);
    for i in 0..n {
        let row = &features.as_slice()[i * f..(i + 1) * f];
        let signed: Vec<f32> = row
            .iter()
            .map(|&v| if v >= 0.0 { 1.0 } else { -1.0 })
            .collect();
        let x = rbnn_tensor::Tensor::from_vec(signed.clone(), [1, f]);
        let float_logits = model.classifier.forward(&x, Phase::Eval);
        let bit_logits = network.logits(&signed);
        let float_arg = float_logits.index_axis0(0).argmax();
        let bit_arg = bit_logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(k, _)| k)
            .unwrap();
        assert_eq!(float_arg, bit_arg, "sample {i}");
    }
}

#[test]
fn eeg_pipeline_trains_and_deploys() {
    let setup = TaskSetup::new(Task::Eeg, Scale::Quick, 104);
    let (mut model, val) = train_quick(&setup, BinarizationStrategy::BinarizedClassifier, 12);
    let report = deploy_and_evaluate(&mut model, &val, &EngineConfig::test_chip(5), 100_000_000)
        .expect("deployable");
    assert!(report.software_accuracy > 0.6, "{report:?}");
    assert!(report.hardware_accuracy > 0.5, "{report:?}");
}
