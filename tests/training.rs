//! Learning-behaviour integration tests: the reproduction's reduced tasks
//! must be learnable within test-sized budgets, and the precision
//! strategies must order the way the paper's Table III orders them.

use rbnn_models::BinarizationStrategy;
use rbnn_nn::{train, Adam};
use rram_bnn::tasks::{Scale, Task, TaskSetup};

fn val_acc(setup: &TaskSetup, strategy: BinarizationStrategy, aug: usize, epochs: usize) -> f32 {
    let mut model = setup.build_model(strategy, aug, 17);
    let (train_ds, val_ds) = setup.dataset().cv_fold(5, 0);
    let mut opt = Adam::new(0.01);
    let cfg = train::TrainConfig {
        epochs,
        batch_size: 32,
        eval_every: epochs,
        ..Default::default()
    };
    let hist = train::fit(
        &mut model,
        train::Labelled::new(train_ds.samples(), train_ds.labels()),
        Some(train::Labelled::new(val_ds.samples(), val_ds.labels())),
        &mut opt,
        &cfg,
    );
    hist.final_val_acc().unwrap()
}

#[test]
fn ecg_real_weights_learn_the_task() {
    let setup = TaskSetup::new(Task::Ecg, Scale::Quick, 201);
    let acc = val_acc(&setup, BinarizationStrategy::RealWeights, 1, 25);
    assert!(acc > 0.85, "real-weight ECG should exceed 85%, got {acc}");
}

#[test]
fn ecg_binarized_classifier_tracks_real() {
    let setup = TaskSetup::new(Task::Ecg, Scale::Quick, 202);
    let real = val_acc(&setup, BinarizationStrategy::RealWeights, 1, 25);
    let binclf = val_acc(&setup, BinarizationStrategy::BinarizedClassifier, 1, 25);
    // The paper's headline: classifier binarization costs (almost) nothing.
    assert!(
        binclf >= real - 0.08,
        "bin-classifier {binclf} should track real {real} closely"
    );
}

#[test]
fn eeg_real_weights_learn_the_task() {
    let setup = TaskSetup::new(Task::Eeg, Scale::Quick, 203);
    let acc = val_acc(&setup, BinarizationStrategy::RealWeights, 1, 25);
    assert!(acc > 0.85, "real-weight EEG should exceed 85%, got {acc}");
}
