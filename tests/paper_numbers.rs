//! Integration tests pinning the reproduction to the paper's published
//! numbers wherever those are exact (architecture shapes, parameter
//! arithmetic, memory savings) and to calibrated anchors where they are
//! statistical (Fig 4 bit-error rates).

use rbnn_rram::{endurance, DeviceParams, EnduranceConfig, PcsaParams};
use rram_bnn::experiments::{fig4, table4, tables12};

#[test]
fn table1_shapes_match_paper() {
    let t = tables12::table1_eeg();
    let shapes: Vec<&Vec<usize>> = t.rows.iter().map(|(_, s, _)| s).collect();
    for expect in [
        vec![40usize, 961, 64],
        vec![40, 961, 1],
        vec![40, 63, 1],
        vec![2520],
        vec![80],
        vec![2],
    ] {
        assert!(
            shapes.contains(&&expect),
            "missing Table I shape {expect:?}"
        );
    }
}

#[test]
fn table2_shapes_match_paper() {
    let t = tables12::table2_ecg();
    let shapes: Vec<&Vec<usize>> = t.rows.iter().map(|(_, s, _)| s).collect();
    for expect in [
        vec![32usize, 738],
        vec![32, 369],
        vec![32, 359],
        vec![32, 179],
        vec![32, 171],
        vec![32, 165],
        vec![32, 161],
        vec![5152],
        vec![75],
        vec![2],
    ] {
        assert!(
            shapes.contains(&&expect),
            "missing Table II shape {expect:?}"
        );
    }
}

#[test]
fn table4_savings_match_paper() {
    let t = table4::run();
    // EEG row: 64% / 57.8% (paper), exact arithmetic.
    assert!((t.rows[0].saving_32 - 64.0).abs() < 0.5);
    assert!((t.rows[0].saving_8 - 57.8).abs() < 0.5);
    // ImageNet row: 20% / 7.3%.
    assert!((t.rows[2].saving_32 - 20.0).abs() < 0.5);
    assert!((t.rows[2].saving_8 - 7.3).abs() < 0.5);
    // MobileNet total parameter count is the canonical 4 231 976.
    assert_eq!(t.rows[2].total_params, 4_231_976);
    // EEG totals: 305 522 params, 1.17 MB.
    assert_eq!(t.rows[0].total_params, 305_522);
    assert!((t.rows[0].size_32bit_mib - 1.17).abs() < 0.01);
}

#[test]
fn fig4_anchors_and_gap() {
    let device = DeviceParams::hfo2_default();
    let pcsa = PcsaParams::default_130nm();
    // 1T1R ≈ 1e-4 at 100M cycles, ≈ 1e-2 at 700M (the Fig 4 envelope).
    let lo = endurance::analytic_point(&device, &pcsa, 100_000_000, 1.15);
    let hi = endurance::analytic_point(&device, &pcsa, 700_000_000, 1.15);
    assert!(
        (3e-5..3e-4).contains(&lo.ber_1t1r_bl),
        "{:.2e}",
        lo.ber_1t1r_bl
    );
    assert!(
        (3e-3..3e-2).contains(&hi.ber_1t1r_bl),
        "{:.2e}",
        hi.ber_1t1r_bl
    );
    // Mean 1T1R/2T2R gap across the sweep ≈ two orders of magnitude.
    let mut cfg = EnduranceConfig::fig4_quick();
    cfg.trials = 20_000;
    let result = fig4::run(&cfg);
    assert!(
        result.mean_gap() > 1.4,
        "2T2R should sit orders of magnitude below 1T1R, gap 10^{:.2}",
        result.mean_gap()
    );
}

#[test]
fn binarized_classifier_fits_test_chip_arrays() {
    // The paper's EEG classifier (2520→80→2) maps onto 32×32 arrays:
    // ceil(80/32)·ceil(2520/32) + ceil(2/32)·ceil(80/32) = 3·79 + 1·3 = 240.
    use rbnn_binary::{BinaryDense, BinaryNetwork};
    use rbnn_rram::{EngineConfig, NetworkEngine};
    use rbnn_tensor::BitMatrix;
    let l1 = BinaryDense::new(BitMatrix::zeros(80, 2520), vec![1.0; 80], vec![0.0; 80]);
    let l2 = BinaryDense::new(BitMatrix::zeros(2, 80), vec![1.0; 2], vec![0.0; 2]);
    let net = BinaryNetwork::new(vec![l1, l2]);
    let engine = NetworkEngine::program(&net, &EngineConfig::test_chip(0));
    assert_eq!(engine.array_count(), 3 * 79 + 3);
    // Weight bits = RRAM synapse pairs: 2520·80 + 80·2.
    assert_eq!(net.weight_bits(), 2520 * 80 + 160);
}
