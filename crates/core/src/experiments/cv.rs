//! The paper's evaluation protocol: repeated k-fold cross-validation
//! (§III-A: "we apply five-fold cross-validation … we report an average
//! over five experiments where we train a new model from scratch").

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use rbnn_models::BinarizationStrategy;
use rbnn_nn::{metrics, train, Adam, Optimizer};

use crate::tasks::TaskSetup;

/// Configuration of one cross-validated training measurement.
#[derive(Debug, Clone, Serialize)]
pub struct CvRunConfig {
    /// Number of folds (the paper uses 5).
    pub folds: usize,
    /// How many folds to actually train (≤ `folds`; quick runs train fewer
    /// folds of the same split to save time).
    pub folds_to_run: usize,
    /// Independent repeats with fresh initialization (the paper uses 5).
    pub repeats: usize,
    /// Training epochs (the paper uses 1000; quick runs use tens — see
    /// EXPERIMENTS.md for the scaling notes).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Gaussian noise augmentation σ applied to each training fold
    /// (the paper's EEG augmentation; 0 disables).
    pub noise_augment: f32,
    /// Master seed.
    pub seed: u64,
}

impl CvRunConfig {
    /// Laptop-scale defaults: 5-fold split, 2 folds trained, 1 repeat.
    pub fn quick() -> Self {
        Self {
            folds: 5,
            folds_to_run: 2,
            repeats: 1,
            epochs: 35,
            batch_size: 32,
            lr: 0.01,
            noise_augment: 0.05,
            seed: 0xC0DE,
        }
    }

    /// The paper's protocol (5×5-fold, long training) — hours of CPU time.
    pub fn paper() -> Self {
        Self {
            folds: 5,
            folds_to_run: 5,
            repeats: 5,
            epochs: 1000,
            batch_size: 32,
            lr: 0.01,
            noise_augment: 0.05,
            seed: 0xC0DE,
        }
    }
}

/// Cross-validated accuracy of one (task, strategy, augmentation) cell.
#[derive(Debug, Clone, Serialize)]
pub struct CvOutcome {
    /// Strategy label.
    pub strategy: String,
    /// Filter augmentation factor.
    pub augmentation: usize,
    /// Per-(repeat, fold) validation accuracies.
    pub accuracies: Vec<f32>,
    /// Mean validation accuracy.
    pub mean: f32,
    /// Sample standard deviation across runs.
    pub std: f32,
}

/// Trains and evaluates one strategy/augmentation cell under repeated
/// k-fold cross-validation.
pub fn cross_validate(
    setup: &TaskSetup,
    strategy: BinarizationStrategy,
    augmentation: usize,
    cfg: &CvRunConfig,
) -> CvOutcome {
    assert!(cfg.folds_to_run >= 1 && cfg.folds_to_run <= cfg.folds);
    let mut accuracies = Vec::new();
    for repeat in 0..cfg.repeats {
        for fold in 0..cfg.folds_to_run {
            let run_seed = cfg
                .seed
                .wrapping_add(repeat as u64 * 1000)
                .wrapping_add(fold as u64);
            let mut rng = StdRng::seed_from_u64(run_seed ^ 0xA5A5);
            let (mut train_ds, val_ds) = setup.dataset().cv_fold(cfg.folds, fold);
            if cfg.noise_augment > 0.0 {
                train_ds.augment_noise(cfg.noise_augment, &mut rng);
            }
            let mut model = setup.build_model(strategy, augmentation, run_seed);
            let mut opt: Box<dyn Optimizer> = Box::new(Adam::new(cfg.lr));
            let tc = train::TrainConfig {
                epochs: cfg.epochs,
                batch_size: cfg.batch_size,
                seed: run_seed,
                eval_every: cfg.epochs, // evaluate only at the end
                verbose: false,
                lr_schedule: None,
            };
            let hist = train::fit(
                &mut model,
                train::Labelled::new(train_ds.samples(), train_ds.labels()),
                Some(train::Labelled::new(val_ds.samples(), val_ds.labels())),
                opt.as_mut(),
                &tc,
            );
            accuracies.push(
                hist.final_val_acc()
                    .expect("validation ran on the last epoch"),
            );
        }
    }
    let (mean, std) = metrics::mean_std(&accuracies);
    CvOutcome {
        strategy: strategy.label().to_string(),
        augmentation,
        accuracies,
        mean,
        std,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{Scale, Task, TaskSetup};

    #[test]
    fn cv_learns_above_chance_quickly() {
        let setup = TaskSetup::new(Task::Ecg, Scale::Quick, 21);
        let mut cfg = CvRunConfig::quick();
        cfg.folds_to_run = 1;
        cfg.epochs = 8;
        let outcome = cross_validate(&setup, BinarizationStrategy::RealWeights, 1, &cfg);
        assert_eq!(outcome.accuracies.len(), 1);
        assert!(
            outcome.mean > 0.6,
            "real-weight ECG should beat chance fast, got {}",
            outcome.mean
        );
    }

    #[test]
    fn outcome_statistics_are_consistent() {
        let setup = TaskSetup::new(Task::Ecg, Scale::Quick, 22);
        let mut cfg = CvRunConfig::quick();
        cfg.folds_to_run = 2;
        cfg.epochs = 3;
        let outcome = cross_validate(&setup, BinarizationStrategy::BinarizedClassifier, 1, &cfg);
        assert_eq!(outcome.accuracies.len(), 2);
        let mean = outcome.accuracies.iter().sum::<f32>() / 2.0;
        assert!((outcome.mean - mean).abs() < 1e-6);
        assert_eq!(outcome.strategy, "Bin Classifier");
    }
}
