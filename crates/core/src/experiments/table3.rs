//! Table III: accuracy comparison of real-weight, fully binarized (at 1×
//! and augmented width) and binarized-classifier networks on the EEG and
//! ECG tasks.
//!
//! The paper's ImageNet/MobileNet row is produced by the Fig 8 experiment
//! on the vision proxy (see `fig8`); this module covers the medical rows.

use std::fmt;

use serde::Serialize;

use rbnn_models::BinarizationStrategy;

use crate::experiments::cv::{cross_validate, CvOutcome, CvRunConfig};
use crate::tasks::{Scale, Task, TaskSetup};

/// Paper-reported Table III reference values (percent) for context.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PaperRow {
    /// Real-weight accuracy.
    pub real: f32,
    /// Fully binarized at 1× filters.
    pub bnn_1x: f32,
    /// Fully binarized at the quoted augmentation.
    pub bnn_augmented: f32,
    /// The quoted augmentation factor.
    pub augmentation: usize,
    /// Binarized classifier at 1×.
    pub bin_classifier: f32,
}

/// The paper's Table III medical rows.
pub fn paper_reference(task: Task) -> PaperRow {
    match task {
        Task::Eeg => PaperRow {
            real: 88.0,
            bnn_1x: 84.6,
            bnn_augmented: 86.0,
            augmentation: 11,
            bin_classifier: 87.0,
        },
        Task::Ecg => PaperRow {
            real: 96.3,
            bnn_1x: 92.1,
            bnn_augmented: 94.9,
            augmentation: 7,
            bin_classifier: 95.9,
        },
    }
}

/// One task row of the reproduced Table III.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// Task label ("EEG"/"ECG").
    pub task: String,
    /// Real-weight outcome.
    pub real: CvOutcome,
    /// Fully binarized at 1×.
    pub bnn_1x: CvOutcome,
    /// Fully binarized with filter augmentation.
    pub bnn_augmented: CvOutcome,
    /// Binarized classifier at 1×.
    pub bin_classifier: CvOutcome,
    /// Paper-reported values for the same row.
    pub paper: PaperRow,
}

impl Table3Row {
    /// The paper's qualitative ordering: real ≥ bin-classifier ≥ augmented
    /// BNN ≥ 1× BNN (within noise).
    pub fn ordering_holds(&self, tolerance: f32) -> bool {
        self.real.mean + tolerance >= self.bin_classifier.mean
            && self.bin_classifier.mean + tolerance >= self.bnn_1x.mean
            && self.bnn_augmented.mean + tolerance >= self.bnn_1x.mean
    }
}

/// The reproduced Table III (medical rows).
#[derive(Debug, Clone, Serialize)]
pub struct Table3Result {
    /// One row per task.
    pub rows: Vec<Table3Row>,
    /// The CV protocol used.
    pub config: CvRunConfig,
}

impl fmt::Display for Table3Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table III — cross-validated accuracy (mean ± std over {} runs/cell)",
            self.rows
                .first()
                .map(|r| r.real.accuracies.len())
                .unwrap_or(0)
        )?;
        writeln!(
            f,
            "{:<6} {:>16} {:>16} {:>20} {:>16}   (paper: real/BNN1x/BNNaug/binclf)",
            "Task", "Real", "BNN (1x)", "BNN (augmented)", "Bin Classifier"
        )?;
        writeln!(f, "{}", "-".repeat(110))?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<6} {:>7.1}% ± {:>4.1} {:>7.1}% ± {:>4.1} {:>7.1}% ± {:>4.1} ({}x) {:>7.1}% ± {:>4.1}   ({:.1}/{:.1}/{:.1}({}x)/{:.1})",
                r.task,
                r.real.mean * 100.0,
                r.real.std * 100.0,
                r.bnn_1x.mean * 100.0,
                r.bnn_1x.std * 100.0,
                r.bnn_augmented.mean * 100.0,
                r.bnn_augmented.std * 100.0,
                r.bnn_augmented.augmentation,
                r.bin_classifier.mean * 100.0,
                r.bin_classifier.std * 100.0,
                r.paper.real,
                r.paper.bnn_1x,
                r.paper.bnn_augmented,
                r.paper.augmentation,
                r.paper.bin_classifier,
            )?;
        }
        Ok(())
    }
}

/// Runs one Table III task row.
pub fn run_task(
    task: Task,
    scale: Scale,
    augmentation: usize,
    data_seed: u64,
    cfg: &CvRunConfig,
) -> Table3Row {
    let setup = TaskSetup::new(task, scale, data_seed);
    let real = cross_validate(&setup, BinarizationStrategy::RealWeights, 1, cfg);
    let bnn_1x = cross_validate(&setup, BinarizationStrategy::FullyBinarized, 1, cfg);
    let bnn_augmented = cross_validate(
        &setup,
        BinarizationStrategy::FullyBinarized,
        augmentation,
        cfg,
    );
    let bin_classifier = cross_validate(&setup, BinarizationStrategy::BinarizedClassifier, 1, cfg);
    Table3Row {
        task: task.name().into(),
        real,
        bnn_1x,
        bnn_augmented,
        bin_classifier,
        paper: paper_reference(task),
    }
}

/// Runs the full medical Table III.
pub fn run(scale: Scale, cfg: &CvRunConfig) -> Table3Result {
    let rows = vec![
        run_task(Task::Eeg, scale, 4, 31, cfg),
        run_task(Task::Ecg, scale, 4, 32, cfg),
    ];
    Table3Result {
        rows,
        config: cfg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_values() {
        let eeg = paper_reference(Task::Eeg);
        assert_eq!(eeg.real, 88.0);
        assert_eq!(eeg.augmentation, 11);
        let ecg = paper_reference(Task::Ecg);
        assert_eq!(ecg.bin_classifier, 95.9);
    }

    #[test]
    fn single_cell_run_and_rendering() {
        // A minimal end-to-end row (1 fold, few epochs) to validate the
        // plumbing; the real sweep runs in the bench binary.
        let mut cfg = CvRunConfig::quick();
        cfg.folds_to_run = 1;
        cfg.epochs = 4;
        let row = run_task(Task::Ecg, Scale::Quick, 2, 33, &cfg);
        assert_eq!(row.task, "ECG");
        assert_eq!(row.bnn_augmented.augmentation, 2);
        let result = Table3Result {
            rows: vec![row],
            config: cfg,
        };
        let text = result.to_string();
        assert!(text.contains("Table III"));
        assert!(text.contains("ECG"));
        assert!(text.contains('%'));
    }
}
