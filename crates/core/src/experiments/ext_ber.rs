//! Extension experiment (after the paper's companion refs \[15\], \[16\]):
//! classifier accuracy versus weight bit-error rate.
//!
//! This quantifies *why* the paper can operate without error-correcting
//! codes: at the BERs the 2T2R array delivers (≲10⁻⁴ over the device
//! lifetime, Fig 4), the BNN classifier loses essentially no accuracy,
//! while the 1T1R-level BERs (~10⁻²) start to bite.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use rbnn_binary::export_classifier;
use rbnn_models::BinarizationStrategy;
use rbnn_nn::{train, Adam};

use crate::deploy::{accuracy_under_ber, classifier_features};
use crate::tasks::{Scale, Task, TaskSetup};

/// One BER sweep point.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct BerPoint {
    /// Injected weight bit-error rate.
    pub ber: f64,
    /// Mean accuracy over injections.
    pub mean: f32,
    /// Standard deviation over injections.
    pub std: f32,
}

/// The accuracy-vs-BER sweep result.
#[derive(Debug, Clone, Serialize)]
pub struct BerSweepResult {
    /// Task label.
    pub task: String,
    /// Clean (BER 0) accuracy.
    pub clean_accuracy: f32,
    /// Sweep points in increasing BER order.
    pub points: Vec<BerPoint>,
    /// Injection trials per point.
    pub trials: usize,
}

impl BerSweepResult {
    /// Largest BER whose mean accuracy stays within `tolerance` of clean —
    /// the ECC-free operating margin.
    pub fn tolerated_ber(&self, tolerance: f32) -> f64 {
        self.points
            .iter()
            .filter(|p| p.mean >= self.clean_accuracy - tolerance)
            .map(|p| p.ber)
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for BerSweepResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension — {} classifier accuracy vs weight BER (clean {:.1}%, {} trials/point)",
            self.task,
            self.clean_accuracy * 100.0,
            self.trials
        )?;
        writeln!(f, "{:>10} {:>10} {:>8}", "BER", "acc %", "± std")?;
        writeln!(f, "{}", "-".repeat(32))?;
        for p in &self.points {
            writeln!(
                f,
                "{:>10.1e} {:>10.1} {:>8.1}",
                p.ber,
                p.mean * 100.0,
                p.std * 100.0
            )?;
        }
        writeln!(
            f,
            "BER tolerated within 1%: {:.1e} (2T2R lifetime BER ≈ 1e-4 ⇒ no ECC needed)",
            self.tolerated_ber(0.01)
        )
    }
}

/// Configuration of the BER sweep.
#[derive(Debug, Clone, Serialize)]
pub struct BerSweepConfig {
    /// BER grid.
    pub bers: Vec<f64>,
    /// Independent injections per point.
    pub trials: usize,
    /// Training epochs for the underlying model.
    pub epochs: usize,
    /// Master seed.
    pub seed: u64,
}

impl BerSweepConfig {
    /// Laptop-scale defaults spanning the Fig 4 BER range and beyond.
    pub fn quick() -> Self {
        Self {
            bers: vec![1e-5, 1e-4, 1e-3, 1e-2, 5e-2, 1e-1],
            trials: 5,
            epochs: 10,
            seed: 0xBE6,
        }
    }
}

/// Trains a binarized-classifier model on the task and sweeps weight BER on
/// its deployed classifier.
pub fn run(task: Task, cfg: &BerSweepConfig) -> BerSweepResult {
    let setup = TaskSetup::new(task, Scale::Quick, cfg.seed);
    let mut model = setup.build_model(
        BinarizationStrategy::BinarizedClassifier,
        1,
        cfg.seed ^ 0x11,
    );
    let (train_ds, val_ds) = setup.dataset().cv_fold(5, 0);
    let mut opt = Adam::new(0.01);
    let tc = train::TrainConfig {
        epochs: cfg.epochs,
        batch_size: 16,
        seed: cfg.seed,
        eval_every: cfg.epochs,
        verbose: false,
        lr_schedule: None,
    };
    let _ = train::fit(
        &mut model,
        train::Labelled::new(train_ds.samples(), train_ds.labels()),
        None,
        &mut opt,
        &tc,
    );

    let network = export_classifier(&model.classifier).expect("binarized classifier");
    let (features, labels) = classifier_features(&mut model, &val_ds);
    let clean_accuracy = network.accuracy(&features, &labels);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let points = cfg
        .bers
        .iter()
        .map(|&ber| {
            let seed = rng.gen_seed();
            let (mean, std) =
                accuracy_under_ber(&network, &features, &labels, ber, cfg.trials, seed);
            BerPoint { ber, mean, std }
        })
        .collect();
    BerSweepResult {
        task: task.name().into(),
        clean_accuracy,
        points,
        trials: cfg.trials,
    }
}

/// Tiny helper: draws a fresh sub-seed from an RNG.
trait GenSeed {
    fn gen_seed(&mut self) -> u64;
}

impl GenSeed for StdRng {
    fn gen_seed(&mut self) -> u64 {
        use rand::Rng;
        self.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_low_ber_is_harmless() {
        let cfg = BerSweepConfig {
            bers: vec![1e-4, 0.25],
            trials: 3,
            epochs: 5,
            seed: 0xB,
        };
        let result = run(Task::Ecg, &cfg);
        assert_eq!(result.points.len(), 2);
        let low = &result.points[0];
        let high = &result.points[1];
        // 1e-4 BER: with a few hundred classifier synapses, usually zero
        // flips — accuracy within noise of clean.
        assert!(
            (low.mean - result.clean_accuracy).abs() < 0.1,
            "low BER must be harmless: clean {}, got {}",
            result.clean_accuracy,
            low.mean
        );
        // 25% BER must hurt more than 0.01% BER on average.
        assert!(high.mean <= low.mean + 0.05);
        let text = result.to_string();
        assert!(text.contains("BER"));
    }
}
