//! Fig 8 (and Table III's vision row): MobileNet with a binarized
//! classifier versus the original real classifier — top-1/top-5 training
//! curves on the vision task.
//!
//! The paper trains MobileNet-224 on ImageNet for 255 GPU-epochs and finds
//! the binarized two-layer classifier matches the real single-layer one
//! (70.6% vs 70% top-1) while full binarization degrades badly (54.4%).
//! Here the same comparison runs on the laptop-scale MobileNet and the
//! 16-class synthetic vision set (DESIGN.md §2 documents the substitution).

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use rbnn_data::{vision, Dataset};
use rbnn_models::{mobilenet::MobileNetConfig, BinarizationStrategy};
use rbnn_nn::{train, Adam};

/// Training curve of one model variant.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Curve {
    /// Strategy label.
    pub strategy: String,
    /// `(epoch, top-1)` validation series.
    pub top1: Vec<(usize, f32)>,
    /// `(epoch, top-5)` validation series.
    pub top5: Vec<(usize, f32)>,
}

impl Fig8Curve {
    /// Final top-1 accuracy.
    pub fn final_top1(&self) -> f32 {
        self.top1.last().map(|&(_, a)| a).unwrap_or(0.0)
    }

    /// Final top-5 accuracy.
    pub fn final_top5(&self) -> f32 {
        self.top5.last().map(|&(_, a)| a).unwrap_or(0.0)
    }
}

/// The reproduced Fig 8 data.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Result {
    /// One curve per strategy.
    pub curves: Vec<Fig8Curve>,
    /// Epochs trained.
    pub epochs: usize,
    /// Training-set size.
    pub train_samples: usize,
}

impl Fig8Result {
    /// Curve of one strategy, if present.
    pub fn curve_for(&self, label: &str) -> Option<&Fig8Curve> {
        self.curves.iter().find(|c| c.strategy == label)
    }
}

impl fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 8 — MobileNet training curves on the vision proxy ({} epochs, {} train images)",
            self.epochs, self.train_samples
        )?;
        for c in &self.curves {
            writeln!(f, "  {}:", c.strategy)?;
            write!(f, "    top-1:")?;
            for (e, a) in &c.top1 {
                write!(f, " ({e}, {:.1}%)", a * 100.0)?;
            }
            writeln!(f)?;
            write!(f, "    top-5:")?;
            for (e, a) in &c.top5 {
                write!(f, " ({e}, {:.1}%)", a * 100.0)?;
            }
            writeln!(f)?;
        }
        writeln!(f, "  final top-1:")?;
        for c in &self.curves {
            writeln!(f, "    {:<16} {:.1}%", c.strategy, c.final_top1() * 100.0)?;
        }
        Ok(())
    }
}

/// Configuration of the Fig 8 run.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Config {
    /// Images per class.
    pub per_class: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Evaluation cadence in epochs.
    pub eval_every: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate (the paper uses SGD for MobileNet; Adam converges
    /// in far fewer CPU epochs, and the comparison is between strategies,
    /// not optimizers).
    pub lr: f32,
    /// Which strategies to train.
    pub strategies: Vec<BinarizationStrategy>,
    /// Master seed.
    pub seed: u64,
}

impl Fig8Config {
    /// Laptop-scale defaults: real vs binarized-classifier (the two curves
    /// of Fig 8).
    pub fn quick() -> Self {
        Self {
            per_class: 24,
            epochs: 12,
            eval_every: 2,
            batch_size: 16,
            lr: 0.01,
            strategies: vec![
                BinarizationStrategy::RealWeights,
                BinarizationStrategy::BinarizedClassifier,
            ],
            seed: 0xF168,
        }
    }

    /// Adds the fully-binarized variant (Table III's third vision column).
    pub fn with_fully_binarized(mut self) -> Self {
        self.strategies.push(BinarizationStrategy::FullyBinarized);
        self
    }
}

/// Runs the Fig 8 experiment.
pub fn run(cfg: &Fig8Config) -> Fig8Result {
    let data_cfg = vision::VisionConfig {
        per_class: cfg.per_class,
        seed: cfg.seed,
        ..vision::VisionConfig::reduced()
    };
    let ds = vision::generate(&data_cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let ds = ds.shuffled(&mut rng);
    let (train_ds, val_ds): (Dataset, Dataset) = ds.split(0.8);

    let mut curves = Vec::new();
    for &strategy in &cfg.strategies {
        let model_cfg = MobileNetConfig::mini(ds.classes()).with_strategy(strategy);
        let mut model = model_cfg.build(&mut rng);
        let mut opt = Adam::new(cfg.lr);
        let tc = train::TrainConfig {
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            seed: cfg.seed,
            eval_every: cfg.eval_every,
            verbose: false,
            lr_schedule: None,
        };
        let hist = train::fit(
            &mut model,
            train::Labelled::new(train_ds.samples(), train_ds.labels()),
            Some(train::Labelled::new(val_ds.samples(), val_ds.labels())),
            &mut opt,
            &tc,
        );
        curves.push(Fig8Curve {
            strategy: strategy.label().into(),
            top1: hist.val_acc.clone(),
            top5: hist.val_top5.clone(),
        });
    }
    Fig8Result {
        curves,
        epochs: cfg.epochs,
        train_samples: train_ds.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_run_produces_both_curves() {
        let cfg = Fig8Config {
            per_class: 4,
            epochs: 2,
            eval_every: 1,
            batch_size: 8,
            lr: 0.01,
            strategies: vec![
                BinarizationStrategy::RealWeights,
                BinarizationStrategy::BinarizedClassifier,
            ],
            seed: 1,
        };
        let result = run(&cfg);
        assert_eq!(result.curves.len(), 2);
        for c in &result.curves {
            assert!(!c.top1.is_empty());
            assert!(!c.top5.is_empty(), "16 classes → top-5 tracked");
            // Top-5 dominates top-1 pointwise.
            for ((_, a1), (_, a5)) in c.top1.iter().zip(&c.top5) {
                assert!(a5 >= a1);
            }
        }
        let text = result.to_string();
        assert!(text.contains("Fig 8"));
        assert!(text.contains("top-5"));
        assert!(result.curve_for("Real Weights").is_some());
    }
}
