//! The experiment harness: one module per table/figure of the paper.
//!
//! Every experiment produces a serializable result struct with a `Display`
//! rendering shaped like the paper's table/figure data, so the `rbnn-bench`
//! binaries can print the human-readable form and archive the JSON form.
//! See DESIGN.md §4 for the experiment index.

pub mod cv;
pub mod ext_ber;
pub mod fig4;
pub mod fig7;
pub mod fig8;
pub mod table3;
pub mod table4;
pub mod tables12;

pub use cv::{cross_validate, CvOutcome, CvRunConfig};
