//! Tables I and II: the EEG and ECG network architectures, rendered as
//! layer/output-shape/parameter tables from the actual built models.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use rbnn_models::{ecg::EcgNetConfig, eeg::EegNetConfig};

/// One architecture table.
#[derive(Debug, Clone, Serialize)]
pub struct ArchitectureTable {
    /// "Table I (EEG)" or "Table II (ECG)".
    pub title: String,
    /// Per-sample input shape.
    pub input_shape: Vec<usize>,
    /// `(layer name, output shape, params)` rows.
    pub rows: Vec<(String, Vec<usize>, usize)>,
    /// Total parameters.
    pub total_params: usize,
}

impl fmt::Display for ArchitectureTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        writeln!(f, "{:<42} {:>20} {:>10}", "Layer", "Output shape", "Params")?;
        writeln!(f, "{}", "-".repeat(74))?;
        writeln!(
            f,
            "{:<42} {:>20} {:>10}",
            "Input",
            format!("{:?}", self.input_shape),
            ""
        )?;
        for (name, shape, params) in &self.rows {
            writeln!(
                f,
                "{:<42} {:>20} {:>10}",
                name,
                format!("{shape:?}"),
                params
            )?;
        }
        writeln!(f, "{}", "-".repeat(74))?;
        writeln!(f, "Total params: {}", self.total_params)
    }
}

/// Builds the Table I (EEG, paper dimensions) architecture table.
pub fn table1_eeg() -> ArchitectureTable {
    let mut rng = StdRng::seed_from_u64(0);
    let cfg = EegNetConfig::paper();
    let model = cfg.build(&mut rng);
    let summary = model.summary(&cfg.input_shape());
    ArchitectureTable {
        title: "Table I — EEG classification network (paper dimensions)".into(),
        input_shape: cfg.input_shape(),
        rows: summary
            .rows
            .iter()
            .map(|r| (r.name.clone(), r.out_shape.clone(), r.params))
            .collect(),
        total_params: summary.total_params(),
    }
}

/// Builds the Table II (ECG, paper dimensions) architecture table.
pub fn table2_ecg() -> ArchitectureTable {
    let mut rng = StdRng::seed_from_u64(0);
    let cfg = EcgNetConfig::paper();
    let model = cfg.build(&mut rng);
    let summary = model.summary(&cfg.input_shape());
    ArchitectureTable {
        title: "Table II — ECG classification network (paper dimensions)".into(),
        input_shape: cfg.input_shape(),
        rows: summary
            .rows
            .iter()
            .map(|r| (r.name.clone(), r.out_shape.clone(), r.params))
            .collect(),
        total_params: summary.total_params(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_papers_key_shapes() {
        let t = table1_eeg();
        let shapes: Vec<&Vec<usize>> = t.rows.iter().map(|(_, s, _)| s).collect();
        // The five Table I milestones.
        assert!(shapes.contains(&&vec![40, 961, 64]));
        assert!(shapes.contains(&&vec![40, 961, 1]));
        assert!(shapes.contains(&&vec![40, 63, 1]));
        assert!(shapes.contains(&&vec![2520]));
        assert!(shapes.contains(&&vec![80]));
        assert_eq!(t.rows.last().unwrap().1, vec![2]);
    }

    #[test]
    fn table2_contains_papers_key_shapes() {
        let t = table2_ecg();
        let shapes: Vec<&Vec<usize>> = t.rows.iter().map(|(_, s, _)| s).collect();
        assert!(shapes.contains(&&vec![32, 738]));
        assert!(shapes.contains(&&vec![32, 369]));
        assert!(shapes.contains(&&vec![32, 161]));
        assert!(shapes.contains(&&vec![5152]));
        assert!(shapes.contains(&&vec![75]));
    }

    #[test]
    fn rendering_is_complete() {
        let text = table1_eeg().to_string();
        assert!(text.contains("Table I"));
        assert!(text.contains("Total params"));
        assert!(text.contains("Flatten"));
    }
}
