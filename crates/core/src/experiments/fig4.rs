//! Fig 4: mean bit-error rate of 1T1R (BL and BLb) versus 2T2R sensing as
//! a function of programming cycles.

use std::fmt;

use serde::Serialize;

use rbnn_rram::{endurance, DeviceParams, EnduranceConfig, PcsaParams};

/// One rendered row of the Fig 4 data.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Row {
    /// Cycle count (millions).
    pub mcycles: f64,
    /// Monte-Carlo 1T1R BL error rate.
    pub mc_1t1r_bl: f64,
    /// Monte-Carlo 1T1R BLb error rate.
    pub mc_1t1r_blb: f64,
    /// Monte-Carlo 2T2R error rate.
    pub mc_2t2r: f64,
    /// Closed-form 1T1R BL error rate.
    pub an_1t1r_bl: f64,
    /// Closed-form 1T1R BLb error rate.
    pub an_1t1r_blb: f64,
    /// Closed-form 2T2R error rate.
    pub an_2t2r: f64,
}

/// The full Fig 4 reproduction: Monte-Carlo measurement plus the
/// closed-form curve of the same device model.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Result {
    /// Per-checkpoint rows.
    pub rows: Vec<Fig4Row>,
    /// Monte-Carlo trials per checkpoint (resolution floor `1/trials`).
    pub trials: usize,
}

impl Fig4Result {
    /// Mean 1T1R/2T2R error-rate ratio across checkpoints (the paper quotes
    /// "two orders of magnitude"), computed on the analytic curve.
    pub fn mean_gap(&self) -> f64 {
        let gaps: Vec<f64> = self
            .rows
            .iter()
            .map(|r| r.an_1t1r_bl / r.an_2t2r.max(1e-30))
            .collect();
        gaps.iter().map(|g| g.log10()).sum::<f64>() / gaps.len() as f64
    }
}

impl fmt::Display for Fig4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 4 — bit error rate vs programming cycles (MC trials/point: {})",
            self.trials
        )?;
        writeln!(
            f,
            "{:>8} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
            "Mcycles", "1T1R BL", "1T1R BLb", "2T2R", "an BL", "an BLb", "an 2T2R"
        )?;
        writeln!(f, "{}", "-".repeat(84))?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8.0} | {:>10.2e} {:>10.2e} {:>10.2e} | {:>10.2e} {:>10.2e} {:>10.2e}",
                r.mcycles,
                r.mc_1t1r_bl,
                r.mc_1t1r_blb,
                r.mc_2t2r,
                r.an_1t1r_bl,
                r.an_1t1r_blb,
                r.an_2t2r
            )?;
        }
        writeln!(
            f,
            "mean 1T1R/2T2R gap: 10^{:.2} (paper: ~two orders of magnitude)",
            self.mean_gap()
        )
    }
}

/// Runs the Fig 4 experiment.
pub fn run(cfg: &EnduranceConfig) -> Fig4Result {
    let device = DeviceParams::hfo2_default();
    let pcsa = PcsaParams::default_130nm();
    let mc = endurance::run(&device, &pcsa, cfg);
    let an = endurance::analytic_curve(&device, &pcsa, &cfg.checkpoints, cfg.blb_wear_scale);
    let rows = mc
        .iter()
        .zip(&an)
        .map(|(m, a)| Fig4Row {
            mcycles: m.cycles as f64 / 1e6,
            mc_1t1r_bl: m.ber_1t1r_bl,
            mc_1t1r_blb: m.ber_1t1r_blb,
            mc_2t2r: m.ber_2t2r,
            an_1t1r_bl: a.ber_1t1r_bl,
            an_1t1r_blb: a.ber_1t1r_blb,
            an_2t2r: a.ber_2t2r,
        })
        .collect();
    Fig4Result {
        rows,
        trials: cfg.trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_fig4_shape() {
        let mut cfg = EnduranceConfig::fig4_quick();
        cfg.trials = 30_000; // test-speed
        let result = run(&cfg);
        assert_eq!(result.rows.len(), 7);
        // Analytic 1T1R grows monotonically and ends ≈ 1e-2.
        let first = &result.rows[0];
        let last = result.rows.last().unwrap();
        assert!(last.an_1t1r_bl > first.an_1t1r_bl);
        assert!((3e-3..3e-2).contains(&last.an_1t1r_bl));
        // 2T2R sits well below 1T1R everywhere (paper: ~2 orders).
        assert!(result.mean_gap() > 1.5, "gap 10^{:.2}", result.mean_gap());
        // Monte-Carlo sees the percent-level 1T1R errors at high wear.
        assert!(last.mc_1t1r_bl > 1e-3);
        // Rendering contains the header and a scientific-notation value.
        let text = result.to_string();
        assert!(text.contains("Fig 4"));
        assert!(text.contains("e-"));
    }
}
