//! Fig 7: cross-validated ECG accuracy versus filter augmentation for the
//! three precision strategies.
//!
//! The paper's claims encoded here: (1) the fully binarized network starts
//! clearly below the real network at 1× and climbs with augmentation;
//! (2) the real and binarized-classifier curves are flat and
//! indistinguishable within error bars; (3) even at 16× the BNN does not
//! decisively pass the real network.

use std::fmt;

use serde::Serialize;

use rbnn_models::BinarizationStrategy;

use crate::experiments::cv::{cross_validate, CvOutcome, CvRunConfig};
use crate::tasks::{Scale, Task, TaskSetup};

/// One strategy's accuracy series over the augmentation sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Series {
    /// Strategy label.
    pub strategy: String,
    /// `(augmentation, outcome)` per sweep point.
    pub points: Vec<(usize, CvOutcome)>,
}

/// The reproduced Fig 7 data.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Result {
    /// Augmentation factors swept.
    pub augmentations: Vec<usize>,
    /// One series per strategy.
    pub series: Vec<Fig7Series>,
}

impl Fig7Result {
    /// Accuracy series of one strategy, if present.
    pub fn series_for(&self, label: &str) -> Option<&Fig7Series> {
        self.series.iter().find(|s| s.strategy == label)
    }

    /// Whether the BNN series improves from its first to its best point —
    /// the headline trend of Fig 7.
    pub fn bnn_improves_with_width(&self) -> bool {
        let Some(s) = self.series_for("All-Binarized") else {
            return false;
        };
        let first = s.points.first().map(|(_, o)| o.mean).unwrap_or(0.0);
        let best = s
            .points
            .iter()
            .map(|(_, o)| o.mean)
            .fold(f32::MIN, f32::max);
        best > first
    }
}

impl fmt::Display for Fig7Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 7 — ECG accuracy vs filter augmentation (mean ± std, %)"
        )?;
        write!(f, "{:<16}", "Augmentation")?;
        for a in &self.augmentations {
            write!(f, " {:>13}", format!("{a}x"))?;
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat(16 + 14 * self.augmentations.len()))?;
        for s in &self.series {
            write!(f, "{:<16}", s.strategy)?;
            for a in &self.augmentations {
                if let Some((_, o)) = s.points.iter().find(|(x, _)| x == a) {
                    write!(f, " {:>7.1}±{:>4.1} ", o.mean * 100.0, o.std * 100.0)?;
                } else {
                    write!(f, " {:>13}", "—")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Runs the Fig 7 sweep.
///
/// `base_filters` overrides the network's base width so the 16× point stays
/// affordable at quick scale (the paper sweeps 32 base filters on GPU).
pub fn run(
    scale: Scale,
    augmentations: &[usize],
    base_filters: Option<usize>,
    cfg: &CvRunConfig,
) -> Fig7Result {
    let mut setup = TaskSetup::new(Task::Ecg, scale, 71);
    if let Some(f) = base_filters {
        setup = setup.with_base_filters(f);
    }
    let mut series = Vec::new();
    for strategy in BinarizationStrategy::ALL {
        let points = augmentations
            .iter()
            .map(|&a| (a, cross_validate(&setup, strategy, a, cfg)))
            .collect();
        series.push(Fig7Series {
            strategy: strategy.label().into(),
            points,
        });
    }
    Fig7Result {
        augmentations: augmentations.to_vec(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_sweep_runs_and_renders() {
        let mut cfg = CvRunConfig::quick();
        cfg.folds_to_run = 1;
        cfg.epochs = 3;
        let result = run(Scale::Quick, &[1, 2], Some(4), &cfg);
        assert_eq!(result.series.len(), 3);
        assert_eq!(result.series[0].points.len(), 2);
        let text = result.to_string();
        assert!(text.contains("Fig 7"));
        assert!(text.contains("All-Binarized"));
        assert!(text.contains("1x") && text.contains("2x"));
        assert!(result.series_for("Real Weights").is_some());
    }
}
