//! Table IV: model memory usage and the savings from classifier
//! binarization — exact architecture arithmetic.

use std::fmt;

use serde::Serialize;

use rbnn_models::memory::{table4_rows, MemoryBreakdown};

/// Paper-reported Table IV values for side-by-side comparison.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PaperMemoryRow {
    /// Total parameters (millions).
    pub total_m: f32,
    /// Classifier parameters (millions).
    pub classifier_m: f32,
    /// Saving vs 32-bit (%).
    pub saving_32: f32,
    /// Saving vs 8-bit (%).
    pub saving_8: f32,
}

/// One rendered Table IV row: our exact arithmetic next to the paper's
/// printed numbers.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Row {
    /// Model label.
    pub model: String,
    /// Exact parameter breakdown.
    pub total_params: usize,
    /// Classifier parameters.
    pub classifier_params: usize,
    /// 32-bit model size in MiB.
    pub size_32bit_mib: f64,
    /// 8-bit model size in KB (decimal, as the paper prints).
    pub size_8bit_kb: f64,
    /// Computed saving vs 32-bit (%).
    pub saving_32: f64,
    /// Computed saving vs 8-bit (%).
    pub saving_8: f64,
    /// The paper's printed values.
    pub paper: PaperMemoryRow,
    /// Set when our exact arithmetic disagrees with the paper's printed
    /// parameter counts (the documented ECG inconsistency).
    pub discrepancy: Option<String>,
}

/// The full reproduced Table IV.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Result {
    /// One row per model.
    pub rows: Vec<Table4Row>,
}

impl fmt::Display for Table4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table IV — memory usage and classifier-binarization savings"
        )?;
        writeln!(
            f,
            "{:<9} {:>11} {:>11} {:>10} {:>10} {:>8} {:>8}   paper(tot/clf/s32/s8)",
            "Model", "Total", "Classifier", "32b size", "8b size", "sav32%", "sav8%"
        )?;
        writeln!(f, "{}", "-".repeat(100))?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<9} {:>11} {:>11} {:>8.2}MiB {:>8.0}KB {:>7.1}% {:>7.1}%   ({:.2}M/{:.2}M/{:.0}%/{:.1}%)",
                r.model,
                r.total_params,
                r.classifier_params,
                r.size_32bit_mib,
                r.size_8bit_kb,
                r.saving_32,
                r.saving_8,
                r.paper.total_m,
                r.paper.classifier_m,
                r.paper.saving_32,
                r.paper.saving_8,
            )?;
            if let Some(d) = &r.discrepancy {
                writeln!(f, "          note: {d}")?;
            }
        }
        Ok(())
    }
}

fn paper_row(name: &str) -> PaperMemoryRow {
    match name {
        "EEG" => PaperMemoryRow {
            total_m: 0.31,
            classifier_m: 0.2,
            saving_32: 64.0,
            saving_8: 57.8,
        },
        "ECG" => PaperMemoryRow {
            total_m: 0.31,
            classifier_m: 0.27,
            saving_32: 84.0,
            saving_8: 75.8,
        },
        _ => PaperMemoryRow {
            total_m: 4.2,
            classifier_m: 1.0,
            saving_32: 20.0,
            saving_8: 7.3,
        },
    }
}

fn to_row(m: &MemoryBreakdown) -> Table4Row {
    let paper = paper_row(&m.name);
    let discrepancy = if m.name == "ECG" {
        Some(
            "Table II's printed shapes imply a 0.39M-parameter classifier; the paper's \
             Table IV prints 0.27M/0.31M. We compute from Table II as printed — the \
             savings landscape is unchanged (classifier still dominates). See DESIGN.md §4."
                .to_string(),
        )
    } else {
        None
    };
    Table4Row {
        model: m.name.clone(),
        total_params: m.total_params(),
        classifier_params: m.classifier_params,
        size_32bit_mib: m.model_bytes(32) as f64 / (1 << 20) as f64,
        size_8bit_kb: m.model_bytes(8) as f64 / 1000.0,
        saving_32: m.bin_classifier_saving(32) * 100.0,
        saving_8: m.bin_classifier_saving(8) * 100.0,
        paper,
        discrepancy,
    }
}

/// Computes the reproduced Table IV.
pub fn run() -> Table4Result {
    Table4Result {
        rows: table4_rows().iter().map(to_row).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eeg_and_mobilenet_match_paper_within_rounding() {
        let t = run();
        let eeg = &t.rows[0];
        assert!((eeg.saving_32 - 64.0).abs() < 0.5);
        assert!((eeg.saving_8 - 57.8).abs() < 0.5);
        assert!((eeg.size_32bit_mib - 1.17).abs() < 0.01);
        let imagenet = &t.rows[2];
        assert!((imagenet.saving_32 - 20.0).abs() < 0.5);
        assert!((imagenet.saving_8 - 7.3).abs() < 0.5);
    }

    #[test]
    fn ecg_row_carries_the_discrepancy_note() {
        let t = run();
        let ecg = &t.rows[1];
        assert!(ecg.discrepancy.is_some());
        assert!(
            ecg.saving_32 > 84.0,
            "exact arithmetic saves even more than the paper's print"
        );
    }

    #[test]
    fn rendering_contains_all_rows_and_note() {
        let text = run().to_string();
        assert!(text.contains("EEG"));
        assert!(text.contains("ECG"));
        assert!(text.contains("ImageNet"));
        assert!(text.contains("note:"));
    }
}
