//! The deployment pipeline: trained model → bit-packed classifier →
//! simulated RRAM arrays → accuracy under device non-idealities.
//!
//! This chains every piece of the reproduction the way the paper's system
//! would be used: the convolutional feature extractor runs in digital logic
//! (real or binarized weights), the dense classifier's ±1 weights are
//! programmed into 2T2R arrays, and inference flows through XNOR-PCSAs and
//! popcount logic ([`rbnn_rram::NetworkEngine`]). Accuracy can then be
//! evaluated on fresh devices, on cycled (worn) devices, or under explicit
//! injected bit-error rates (the ECC-less argument of §II-B).

use rand::rngs::StdRng;
use rand::SeedableRng;

use rbnn_binary::{export_classifier, BinaryNetwork, ExportError};
use rbnn_data::Dataset;
use rbnn_nn::{metrics, train, Phase, SplitModel};
use rbnn_rram::{faults, EngineConfig, NetworkEngine};
use rbnn_tensor::Tensor;

/// Accuracy of one model evaluated along the deployment chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeploymentReport {
    /// Float forward pass of the trained graph (the training-time view).
    pub software_accuracy: f32,
    /// Bit-packed [`BinaryNetwork`] on ideal hardware (input sign-binarized
    /// at the classifier boundary).
    pub exported_accuracy: f32,
    /// Full RRAM simulation on fresh devices.
    pub hardware_accuracy: f32,
    /// Full RRAM simulation after `cycles` of device wear.
    pub worn_accuracy: f32,
    /// Device wear used for `worn_accuracy`.
    pub cycles: u64,
    /// Physical arrays consumed by the mapping.
    pub arrays: usize,
}

/// Extracts the classifier-boundary features of a dataset: runs the feature
/// extractor in eval mode and returns `[N, F]` plus the labels.
pub fn classifier_features(model: &mut SplitModel, data: &Dataset) -> (Tensor, Vec<usize>) {
    let n = data.len();
    let mut feats = Vec::with_capacity(n);
    let mut idx = 0;
    let batch = 16;
    while idx < n {
        let end = (idx + batch).min(n);
        let indices: Vec<usize> = (idx..end).collect();
        let xb = train::gather(data.samples(), &indices);
        let h = model.forward_features(&xb, Phase::Eval);
        for i in 0..h.dim(0) {
            feats.push(h.index_axis0(i));
        }
        idx = end;
    }
    (Tensor::stack(&feats), data.labels().to_vec())
}

/// Deploys a trained model's binarized classifier onto simulated RRAM and
/// evaluates the whole chain on `data`.
///
/// # Errors
///
/// Returns the [`ExportError`] if the classifier is not in deployable
/// (binarized, BatchNorm-folded) form.
pub fn deploy_and_evaluate(
    model: &mut SplitModel,
    data: &Dataset,
    engine_cfg: &EngineConfig,
    worn_cycles: u64,
) -> Result<DeploymentReport, ExportError> {
    // 1. Software reference.
    let logits = train::predict_logits(model, data.samples(), 16);
    let software_accuracy = metrics::accuracy(&logits, data.labels());

    // 2. Export the classifier to the bit-packed engine.
    let network = export_classifier(&model.classifier)?;
    let (features, labels) = classifier_features(model, data);
    let exported_accuracy = network.accuracy(&features, &labels);

    // 3. Program physical arrays and evaluate, fresh and worn.
    let mut engine = NetworkEngine::program(&network, engine_cfg);
    let arrays = engine.array_count();
    let hardware_accuracy = engine.accuracy(&features, &labels);
    engine.set_cycles(worn_cycles);
    let worn_accuracy = engine.accuracy(&features, &labels);

    Ok(DeploymentReport {
        software_accuracy,
        exported_accuracy,
        hardware_accuracy,
        worn_accuracy,
        cycles: worn_cycles,
        arrays,
    })
}

/// Mean and standard deviation of classifier accuracy under i.i.d. weight
/// bit flips at the given BER, over `trials` independent injections.
pub fn accuracy_under_ber(
    network: &BinaryNetwork,
    features: &Tensor,
    labels: &[usize],
    ber: f64,
    trials: usize,
    seed: u64,
) -> (f32, f32) {
    let mut rng = StdRng::seed_from_u64(seed);
    let accs: Vec<f32> = (0..trials)
        .map(|_| {
            let mut corrupted = network.clone();
            faults::inject_network(&mut corrupted, ber, &mut rng);
            corrupted.accuracy(features, labels)
        })
        .collect();
    metrics::mean_std(&accs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{Scale, Task, TaskSetup};
    use rbnn_models::BinarizationStrategy;
    use rbnn_nn::{train::TrainConfig, Adam};

    /// Trains a small binarized-classifier ECG model for pipeline tests.
    fn trained_setup() -> (TaskSetup, SplitModel) {
        let setup = TaskSetup::new(Task::Ecg, Scale::Quick, 11);
        let mut model = setup.build_model(BinarizationStrategy::BinarizedClassifier, 1, 12);
        let ds = setup.dataset();
        let (train_ds, _) = ds.cv_fold(5, 0);
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 16,
            ..Default::default()
        };
        let _ = train::fit(
            &mut model,
            train::Labelled::new(train_ds.samples(), train_ds.labels()),
            None,
            &mut opt,
            &cfg,
        );
        (setup, model)
    }

    #[test]
    fn full_pipeline_runs_and_hardware_matches_export() {
        let (setup, mut model) = trained_setup();
        let (_, val) = setup.dataset().cv_fold(5, 0);
        let report =
            deploy_and_evaluate(&mut model, &val, &EngineConfig::test_chip(5), 500_000_000)
                .expect("deployable classifier");
        // Fresh hardware is bit-exact with the exported network up to the
        // (astronomically unlikely at fresh wear) device tail events.
        assert!(
            (report.hardware_accuracy - report.exported_accuracy).abs() < 0.05,
            "{report:?}"
        );
        assert!(report.arrays > 0);
        // Worn accuracy cannot exceed 1 and stays a probability.
        assert!((0.0..=1.0).contains(&report.worn_accuracy));
    }

    #[test]
    fn real_weight_classifier_cannot_deploy() {
        let setup = TaskSetup::new(Task::Ecg, Scale::Quick, 13);
        let mut model = setup.build_model(BinarizationStrategy::RealWeights, 1, 14);
        let err = deploy_and_evaluate(&mut model, setup.dataset(), &EngineConfig::test_chip(6), 0)
            .unwrap_err();
        assert!(matches!(err, ExportError::NotBinarized(_)));
    }

    #[test]
    fn ber_sweep_degrades_monotonically_in_expectation() {
        let (setup, mut model) = trained_setup();
        let (_, val) = setup.dataset().cv_fold(5, 0);
        let network = export_classifier(&model.classifier).expect("export");
        let (features, labels) = classifier_features(&mut model, &val);
        let (clean, _) = accuracy_under_ber(&network, &features, &labels, 0.0, 1, 0);
        let (mid, _) = accuracy_under_ber(&network, &features, &labels, 0.02, 5, 1);
        let (high, _) = accuracy_under_ber(&network, &features, &labels, 0.5, 5, 2);
        // BER 0.5 destroys all information → chance level for 2 classes.
        assert!(
            (high - 0.5).abs() < 0.2,
            "BER 0.5 should be ≈ chance, got {high}"
        );
        // Small BER costs little relative to the clean accuracy.
        assert!(mid >= clean - 0.25, "clean {clean}, mid {mid}");
    }

    #[test]
    fn classifier_features_shape() {
        let (setup, mut model) = trained_setup();
        let (features, labels) = classifier_features(&mut model, setup.dataset());
        assert_eq!(features.dim(0), setup.dataset().len());
        assert_eq!(labels.len(), setup.dataset().len());
        // Width equals the flatten output of the reduced ECG net.
        assert_eq!(features.dim(1), 408);
    }
}
