//! Task setups: dataset + matched network architecture, at laptop or paper
//! scale.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rbnn_data::{ecg, eeg, Dataset};
use rbnn_models::{ecg::EcgNetConfig, eeg::EegNetConfig, BinarizationStrategy};
use rbnn_nn::SplitModel;

/// The two medical signal tasks of §III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// EEG motor imagery (left vs right fist), Table I network.
    Eeg,
    /// ECG electrode-inversion detection, Table II network.
    Ecg,
}

impl Task {
    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Task::Eeg => "EEG",
            Task::Ecg => "ECG",
        }
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Experiment scale: reduced dimensions for laptop runs, paper dimensions
/// for full runs (same topology either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Laptop-scale: reduced signal lengths, channels and filters.
    #[default]
    Quick,
    /// Paper-scale dimensions (Tables I–II, §III datasets).
    Paper,
}

/// A dataset paired with a function building the matching network.
#[derive(Debug)]
pub struct TaskSetup {
    task: Task,
    scale: Scale,
    dataset: Dataset,
    base_filters_override: Option<usize>,
}

impl TaskSetup {
    /// Generates the synthetic dataset and records how to build matching
    /// models.
    pub fn new(task: Task, scale: Scale, seed: u64) -> Self {
        let dataset = match (task, scale) {
            (Task::Eeg, Scale::Quick) => {
                let mut cfg = eeg::EegConfig::reduced();
                cfg.seed = seed;
                eeg::generate(&cfg)
            }
            (Task::Eeg, Scale::Paper) => {
                let mut cfg = eeg::EegConfig::paper();
                cfg.seed = seed;
                eeg::generate(&cfg)
            }
            (Task::Ecg, Scale::Quick) => {
                let mut cfg = ecg::EcgConfig::reduced();
                cfg.seed = seed;
                ecg::generate(&cfg)
            }
            (Task::Ecg, Scale::Paper) => {
                let mut cfg = ecg::EcgConfig::paper();
                cfg.seed = seed;
                ecg::generate(&cfg)
            }
        };
        Self {
            task,
            scale,
            dataset,
            base_filters_override: None,
        }
    }

    /// Overrides the base filter count (used by the Fig 7 sweep to keep
    /// 16× augmentation affordable at quick scale).
    pub fn with_base_filters(mut self, filters: usize) -> Self {
        self.base_filters_override = Some(filters);
        self
    }

    /// The task.
    pub fn task(&self) -> Task {
        self.task
    }

    /// The scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The generated dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Builds a model for the given strategy and filter augmentation,
    /// matched to this setup's dataset dimensions.
    pub fn build_model(
        &self,
        strategy: BinarizationStrategy,
        augmentation: usize,
        seed: u64,
    ) -> SplitModel {
        let mut rng = StdRng::seed_from_u64(seed);
        match (self.task, self.scale) {
            (Task::Eeg, scale) => {
                let mut cfg = match scale {
                    Scale::Quick => EegNetConfig::reduced(),
                    Scale::Paper => EegNetConfig::paper(),
                };
                if let Some(f) = self.base_filters_override {
                    cfg.filters = f;
                }
                cfg.with_strategy(strategy)
                    .with_filter_augmentation(augmentation)
                    .build(&mut rng)
            }
            (Task::Ecg, scale) => {
                let mut cfg = match scale {
                    Scale::Quick => EcgNetConfig::reduced(),
                    Scale::Paper => EcgNetConfig::paper(),
                };
                if let Some(f) = self.base_filters_override {
                    cfg.filters = f;
                }
                cfg.with_strategy(strategy)
                    .with_filter_augmentation(augmentation)
                    .build(&mut rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbnn_nn::Layer;

    #[test]
    fn quick_setups_have_matched_shapes() {
        for task in [Task::Eeg, Task::Ecg] {
            let setup = TaskSetup::new(task, Scale::Quick, 1);
            let model = setup.build_model(BinarizationStrategy::RealWeights, 1, 2);
            let out = model.out_shape(&setup.dataset().sample_shape());
            assert_eq!(
                out,
                vec![2],
                "{task}: model must map dataset samples to 2 classes"
            );
        }
    }

    #[test]
    fn filter_override_applies() {
        let setup = TaskSetup::new(Task::Ecg, Scale::Quick, 1).with_base_filters(4);
        let model = setup.build_model(BinarizationStrategy::FullyBinarized, 2, 3);
        // 4 base filters × 2 augmentation = 8 output channels in conv 1.
        let summary = model.summary(&setup.dataset().sample_shape());
        assert_eq!(summary.rows[0].out_shape[0], 8);
    }

    #[test]
    fn names() {
        assert_eq!(Task::Eeg.to_string(), "EEG");
        assert_eq!(Task::Ecg.name(), "ECG");
    }
}
