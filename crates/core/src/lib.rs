//! # rram-bnn
//!
//! Umbrella crate of the reproduction of *"In-Memory Resistive RAM
//! Implementation of Binarized Neural Networks for Medical Applications"*
//! (Penkovsky et al., DATE 2020, [arXiv:2006.11595]).
//!
//! It wires the workspace's substrates into the paper's two pipelines,
//! plus the serving layer built on top of them:
//!
//! 1. **Algorithm**: synthetic medical datasets ([`rbnn_data`]) → the
//!    paper's networks under three precision strategies ([`rbnn_models`])
//!    → cross-validated training ([`rbnn_nn`]) — Tables I–III, Fig 7,
//!    Fig 8;
//! 2. **Hardware**: trained binarized classifiers → bit-packed
//!    XNOR/popcount form ([`rbnn_binary`]) → simulated 2T2R RRAM arrays
//!    with PCSA sensing ([`rbnn_rram`]) → accuracy under device wear and
//!    bit errors — Fig 4 and the ECC-less operation argument;
//! 3. **Serving**: deployed classifiers registered per task in a
//!    `rbnn_serve::ModelRegistry` → client requests (single samples or
//!    multi-sample windows) flow through a bounded backpressure queue →
//!    the adaptive batcher forms micro-batches under a deadline/size
//!    policy → a pool of worker threads, each owning its own engine
//!    replica (software XNOR/popcount or Monte-Carlo RRAM), replays a
//!    compiled `rbnn-graph` execution plan — fused packed-word kernels,
//!    zero per-request allocation; the legacy layer-by-layer path stays
//!    available as the conformance reference — → responses return
//!    through per-request channels
//!    while `ServerStats` tracks throughput, p50/p95/p99 latency, queue
//!    depth and per-replica array counters. See `examples/serving.rs` and
//!    `serve_bench` for the end-to-end flow.
//! 4. **Conformance**: the same deployed model runs on five substrates —
//!    float graph, single-sample XNOR/popcount, batched bit-matrix
//!    kernels, compiled `rbnn-graph` plan replay (software and
//!    RRAM-fabric), and the simulated RRAM engine — and `rbnn-conformance`
//!    keeps them honest: a seeded generator draws paper-family models
//!    (edge shapes included: 1-channel signals, odd lengths, 63/64/65-tap
//!    kernels, word-boundary widths, fused-chain boundary walks), a
//!    differential oracle asserts
//!    bit-for-bit agreement across all five paths and the serving
//!    pipeline on noise-free fabric (margin-model statistical bounds on
//!    noisy fabric), and a fault campaign gates the paper's
//!    bit-error-tolerance anchor. One command:
//!    `cargo run --release -p rbnn-bench --bin conformance -- --quick --strict`.
//! 5. **Streaming**: the always-on layer the paper's wearable scenario
//!    implies — unbounded per-patient ECG/EEG signals
//!    (`rbnn_data::stream::SignalSource` sources) are cut into
//!    training-featurized sliding windows by per-patient `rbnn-stream`
//!    sessions, fanned through the serve queue by a multi-tenant
//!    `StreamRouter` (zero-copy shared-window requests, bounded
//!    per-patient in-flight), and returned as timestamped verdict streams
//!    with debounced K-of-M alarms plus per-session windows/s and
//!    µJ/window accounting against the RRAM energy model. Chunked
//!    ingestion is bitwise-equal to offline batch classification of the
//!    same windows; `stream_bench --quick --strict` gates ≥ 64 concurrent
//!    real-time patients in CI. See `examples/continuous_monitoring.rs`.
//!
//! The [`deploy`] module is the end-to-end chain; [`experiments`] holds one
//! module per table/figure (see DESIGN.md §4 for the index); [`tasks`]
//! couples datasets with matched architectures at laptop (`Quick`) or
//! paper (`Paper`) scale.
//!
//! ```no_run
//! use rram_bnn::tasks::{Scale, Task, TaskSetup};
//! use rram_bnn::deploy::deploy_and_evaluate;
//! use rbnn_models::BinarizationStrategy;
//! use rbnn_rram::EngineConfig;
//!
//! // Train (elsewhere), then deploy the classifier onto simulated RRAM.
//! let setup = TaskSetup::new(Task::Ecg, Scale::Quick, 0);
//! let mut model = setup.build_model(BinarizationStrategy::BinarizedClassifier, 1, 0);
//! let report = deploy_and_evaluate(
//!     &mut model,
//!     setup.dataset(),
//!     &EngineConfig::test_chip(0),
//!     500_000_000,
//! ).unwrap();
//! println!("hardware accuracy: {:.1}%", report.hardware_accuracy * 100.0);
//! ```
//!
//! [arXiv:2006.11595]: https://arxiv.org/abs/2006.11595

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod deploy;
pub mod experiments;
pub mod tasks;

pub use deploy::{deploy_and_evaluate, DeploymentReport};
pub use tasks::{Scale, Task, TaskSetup};
