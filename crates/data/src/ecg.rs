//! Synthetic 12-lead ECG dataset with electrode-inversion labels.
//!
//! Stand-in for the Challenge-Data "electrode inversion detection" set used
//! by the paper (§III-B): 1000 three-second, 250 Hz, 12-lead recordings,
//! binary task "electrodes correctly placed vs one pair swapped".
//!
//! The generator is physically grounded so the swap is *consistent across
//! leads*, exactly as in a real recording:
//!
//! 1. a cardiac **dipole vector** traces P/Q/R/S/T Gaussian wavelets in 3-D
//!    (McSharry-style), beat after beat with RR variability;
//! 2. each of the nine measurement electrodes (RA, LA, LL, V1–V6) sees the
//!    projection of the dipole on its own lead vector;
//! 3. the standard 12 leads (I, II, III, aVR, aVL, aVF, V1–V6) are derived
//!    from electrode potentials — so swapping, say, LA↔RA flips lead I
//!    exactly, swaps II↔III, aVL↔aVR, and perturbs the precordial leads
//!    through the Wilson central terminal, the full clinical signature.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rbnn_tensor::Tensor;

use crate::signal::gaussian_wave;
use crate::Dataset;

/// Class label for a correctly wired recording.
pub const CORRECT: usize = 0;
/// Class label for a recording with one electrode pair swapped.
pub const INVERTED: usize = 1;

/// The nine measurement electrodes of a standard 12-lead setup
/// (the right leg is the ground and carries no signal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Electrode {
    /// Right arm.
    Ra,
    /// Left arm.
    La,
    /// Left leg.
    Ll,
    /// Precordial V1.
    V1,
    /// Precordial V2.
    V2,
    /// Precordial V3.
    V3,
    /// Precordial V4.
    V4,
    /// Precordial V5.
    V5,
    /// Precordial V6.
    V6,
}

impl Electrode {
    /// All nine electrodes in canonical order.
    pub const ALL: [Electrode; 9] = [
        Electrode::Ra,
        Electrode::La,
        Electrode::Ll,
        Electrode::V1,
        Electrode::V2,
        Electrode::V3,
        Electrode::V4,
        Electrode::V5,
        Electrode::V6,
    ];

    pub(crate) fn index(self) -> usize {
        match self {
            Electrode::Ra => 0,
            Electrode::La => 1,
            Electrode::Ll => 2,
            Electrode::V1 => 3,
            Electrode::V2 => 4,
            Electrode::V3 => 5,
            Electrode::V4 => 6,
            Electrode::V5 => 7,
            Electrode::V6 => 8,
        }
    }

    /// Unit-ish lead vector of the electrode in the (x: left, y: down,
    /// z: anterior) torso frame.
    fn lead_vector(self) -> [f32; 3] {
        match self {
            Electrode::Ra => [-0.9, -0.4, 0.0],
            Electrode::La => [0.9, -0.4, 0.0],
            Electrode::Ll => [0.2, 1.0, 0.0],
            // V1 sits over the right ventricle: the mean QRS axis projects
            // *negatively* on it (the clinical rS pattern), making its
            // waveform shape-distinct from V2's — so a V1↔V2 swap is
            // detectable even after per-lead normalization.
            Electrode::V1 => [-0.5, 0.0, 0.35],
            Electrode::V2 => [-0.1, 0.1, 1.0],
            Electrode::V3 => [0.2, 0.2, 0.9],
            Electrode::V4 => [0.5, 0.3, 0.8],
            Electrode::V5 => [0.7, 0.3, 0.6],
            Electrode::V6 => [0.9, 0.3, 0.3],
        }
    }
}

/// Electrode pairs that are plausibly swapped in practice, used for the
/// positive class. Limb swaps produce strong lead inversions; precordial
/// swaps are subtle.
pub const SWAP_CANDIDATES: [(Electrode, Electrode); 5] = [
    (Electrode::Ra, Electrode::La),
    (Electrode::Ra, Electrode::Ll),
    (Electrode::La, Electrode::Ll),
    (Electrode::V1, Electrode::V2),
    (Electrode::V5, Electrode::V6),
];

/// The three limb-electrode swaps only (each inverts at least one of the
/// Einthoven leads — the clearly detectable reversals).
pub const LIMB_SWAPS: [(Electrode, Electrode); 3] = [
    (Electrode::Ra, Electrode::La),
    (Electrode::Ra, Electrode::Ll),
    (Electrode::La, Electrode::Ll),
];

/// The reduced-scale swap mix: the three limb reversals plus the subtle
/// V1↔V2 precordial swap, so model capacity still matters (the hard
/// positives keep the task from saturating).
pub const REDUCED_SWAPS: [(Electrode, Electrode); 4] = [
    (Electrode::Ra, Electrode::La),
    (Electrode::Ra, Electrode::Ll),
    (Electrode::La, Electrode::Ll),
    (Electrode::V1, Electrode::V2),
];

/// One P/Q/R/S/T wavelet of the dipole trajectory.
#[derive(Debug, Clone, Copy)]
struct Wave {
    /// Beat-relative centre (fraction of the RR interval).
    center: f32,
    /// Width as a fraction of the RR interval.
    width: f32,
    /// Amplitude along the wave's axis.
    amp: f32,
    /// Direction in the torso frame.
    dir: [f32; 3],
}

const WAVES: [Wave; 5] = [
    // P wave: small, atrial axis.
    Wave {
        center: 0.15,
        width: 0.025,
        amp: 0.15,
        dir: [0.5, 0.6, 0.1],
    },
    // Q: small negative deflection.
    Wave {
        center: 0.33,
        width: 0.008,
        amp: -0.12,
        dir: [0.6, 0.7, 0.2],
    },
    // R: dominant spike along the electrical axis (~60° frontal).
    Wave {
        center: 0.36,
        width: 0.011,
        amp: 1.0,
        dir: [0.6, 0.8, 0.3],
    },
    // S: negative after-swing.
    Wave {
        center: 0.39,
        width: 0.009,
        amp: -0.25,
        dir: [0.4, 0.8, 0.5],
    },
    // T: broad repolarization, roughly concordant with R.
    Wave {
        center: 0.62,
        width: 0.06,
        amp: 0.35,
        dir: [0.5, 0.6, 0.25],
    },
];

/// Configuration of the synthetic 12-lead ECG generator.
#[derive(Debug, Clone)]
pub struct EcgConfig {
    /// Number of recordings (the paper's dataset holds 1000).
    pub trials: usize,
    /// Samples per recording (the paper: 3 s × 250 Hz = 750).
    pub samples: usize,
    /// Sampling rate in Hz.
    pub sample_rate: f32,
    /// White measurement-noise amplitude relative to the R peak.
    pub noise: f32,
    /// Baseline-wander amplitude.
    pub wander: f32,
    /// Electrode pairs eligible for the inverted class.
    pub swaps: Vec<(Electrode, Electrode)>,
    /// Master seed.
    pub seed: u64,
}

impl EcgConfig {
    /// Paper-scale configuration: 1000 trials of 750 samples at 250 Hz,
    /// all five plausible swaps.
    pub fn paper() -> Self {
        Self {
            trials: 1000,
            samples: 750,
            sample_rate: 250.0,
            noise: 0.04,
            wander: 0.08,
            swaps: SWAP_CANDIDATES.to_vec(),
            seed: 0x0EC6,
        }
    }

    /// Laptop-scale configuration: 480 trials of 250 samples (1 s), the
    /// three limb reversals plus V1↔V2, and noise raised so the task does
    /// not saturate at reduced training budgets (see EXPERIMENTS.md).
    pub fn reduced() -> Self {
        Self {
            trials: 480,
            samples: 250,
            sample_rate: 250.0,
            noise: 0.05,
            wander: 0.08,
            swaps: REDUCED_SWAPS.to_vec(),
            seed: 0x0EC6,
        }
    }
}

/// Simulates the nine electrode potentials of one recording (also the
/// per-segment synthesis step of [`crate::stream::EcgStream`]).
pub(crate) fn electrode_potentials(cfg: &EcgConfig, rng: &mut StdRng) -> Vec<Vec<f32>> {
    let n = cfg.samples;
    let fs = cfg.sample_rate;
    // Per-trial heart rate 60–95 bpm with per-beat jitter.
    let rr_base = 60.0 / rng.gen_range(60.0..95.0); // seconds per beat
                                                    // Small per-trial rotation of the electrical axis.
    let axis_jitter: [f32; 3] = [
        rng.gen_range(-0.1..0.1),
        rng.gen_range(-0.1..0.1),
        rng.gen_range(-0.1..0.1),
    ];
    let amp_scale = rng.gen_range(0.85..1.15);

    // Precompute beat boundaries covering the recording.
    let mut beats = Vec::new();
    let mut t0 = -rr_base * rng.gen_range(0.0..1.0); // random phase offset
    while t0 < n as f32 / fs {
        let rr = rr_base * (1.0 + rng.gen_range(-0.05..0.05));
        beats.push((t0, rr));
        t0 += rr;
    }

    // Dipole trajectory.
    let mut dipole = vec![[0.0f32; 3]; n];
    for (start, rr) in &beats {
        for w in &WAVES {
            let center_s = start + w.center * rr;
            let width_s = w.width * rr.max(0.4);
            // Only touch samples within ±4σ.
            let lo = ((center_s - 4.0 * width_s) * fs).floor().max(0.0) as usize;
            let hi = (((center_s + 4.0 * width_s) * fs).ceil() as usize).min(n);
            for i in lo..hi {
                let t = i as f32 / fs;
                let g = gaussian_wave(t, center_s, width_s, w.amp * amp_scale);
                for k in 0..3 {
                    dipole[i][k] += g * (w.dir[k] + axis_jitter[k]);
                }
            }
        }
    }

    // Project on electrodes and add per-electrode artifacts.
    let mut potentials = Vec::with_capacity(9);
    for e in Electrode::ALL {
        let u = e.lead_vector();
        let wander_freq = rng.gen_range(0.15..0.45);
        let wander_phase = rng.gen_range(0.0..std::f32::consts::TAU);
        let mut v = Vec::with_capacity(n);
        for (i, d) in dipole.iter().enumerate() {
            let t = i as f32 / fs;
            let projection = u[0] * d[0] + u[1] * d[1] + u[2] * d[2];
            let wander =
                cfg.wander * (std::f32::consts::TAU * wander_freq * t + wander_phase).sin();
            let noise = cfg.noise * (rng.gen::<f32>() - 0.5) * 2.0;
            v.push(projection + wander + noise);
        }
        potentials.push(v);
    }
    potentials
}

/// Derives the standard 12 leads (I, II, III, aVR, aVL, aVF, V1–V6) from the
/// nine electrode potentials, each `[T]` long.
///
/// # Panics
///
/// Panics if `potentials` does not hold exactly nine equally long traces.
pub fn derive_leads(potentials: &[Vec<f32>]) -> Vec<Vec<f32>> {
    assert_eq!(potentials.len(), 9, "expected 9 electrode traces");
    let n = potentials[0].len();
    assert!(
        potentials.iter().all(|p| p.len() == n),
        "trace lengths differ"
    );
    let ra = &potentials[Electrode::Ra.index()];
    let la = &potentials[Electrode::La.index()];
    let ll = &potentials[Electrode::Ll.index()];
    let mut leads = vec![vec![0.0f32; n]; 12];
    for t in 0..n {
        let wct = (ra[t] + la[t] + ll[t]) / 3.0;
        leads[0][t] = la[t] - ra[t]; // I
        leads[1][t] = ll[t] - ra[t]; // II
        leads[2][t] = ll[t] - la[t]; // III
        leads[3][t] = ra[t] - (la[t] + ll[t]) / 2.0; // aVR
        leads[4][t] = la[t] - (ra[t] + ll[t]) / 2.0; // aVL
        leads[5][t] = ll[t] - (ra[t] + la[t]) / 2.0; // aVF
        for (vi, lead) in (3..9).zip(6..12) {
            leads[lead][t] = potentials[vi][t] - wct;
        }
    }
    leads
}

/// Generates the electrode-inversion dataset: half the recordings correctly
/// wired (class [`CORRECT`]), half with one randomly chosen plausible
/// electrode pair swapped (class [`INVERTED`]).
///
/// Samples have shape `[12, samples]` (leads × time) and are z-scored per
/// lead over the whole dataset.
pub fn generate(cfg: &EcgConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.trials;
    let mut x = Tensor::zeros([n, 12, cfg.samples]);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let mut potentials = electrode_potentials(cfg, &mut rng);
        let label = if i % 2 == 0 { CORRECT } else { INVERTED };
        if label == INVERTED {
            let (a, b) = cfg.swaps[rng.gen_range(0..cfg.swaps.len())];
            potentials.swap(a.index(), b.index());
        }
        let leads = derive_leads(&potentials);
        let base = i * 12 * cfg.samples;
        let xs = x.as_mut_slice();
        for (l, lead) in leads.iter().enumerate() {
            xs[base + l * cfg.samples..base + (l + 1) * cfg.samples].copy_from_slice(lead);
        }
        y.push(label);
    }
    let mut ds = Dataset::new(x, y, 2);
    ds.normalize_per_channel();
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> EcgConfig {
        EcgConfig {
            trials: 12,
            samples: 500,
            sample_rate: 250.0,
            noise: 0.02,
            wander: 0.05,
            swaps: SWAP_CANDIDATES.to_vec(),
            seed: 7,
        }
    }

    #[test]
    fn shapes_balance_determinism() {
        let cfg = tiny_cfg();
        let ds = generate(&cfg);
        assert_eq!(ds.len(), 12);
        assert_eq!(ds.sample_shape(), vec![12, 500]);
        assert_eq!(ds.class_counts(), vec![6, 6]);
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn la_ra_swap_inverts_lead_i_exactly() {
        let cfg = tiny_cfg();
        let mut rng = StdRng::seed_from_u64(1);
        let potentials = electrode_potentials(&cfg, &mut rng);
        let leads = derive_leads(&potentials);
        let mut swapped = potentials.clone();
        swapped.swap(Electrode::Ra.index(), Electrode::La.index());
        let leads_sw = derive_leads(&swapped);
        for t in 0..cfg.samples {
            // Lead I flips sign exactly.
            assert!((leads[0][t] + leads_sw[0][t]).abs() < 1e-6);
            // Leads II and III exchange.
            assert!((leads[1][t] - leads_sw[2][t]).abs() < 1e-6);
            assert!((leads[2][t] - leads_sw[1][t]).abs() < 1e-6);
            // aVR and aVL exchange.
            assert!((leads[3][t] - leads_sw[4][t]).abs() < 1e-6);
            // Precordial leads are untouched by a limb swap (WCT invariant).
            assert!((leads[6][t] - leads_sw[6][t]).abs() < 1e-6);
        }
    }

    #[test]
    fn einthoven_law_holds() {
        // I + III = II at every instant, by construction of the leads.
        let cfg = tiny_cfg();
        let mut rng = StdRng::seed_from_u64(2);
        let leads = derive_leads(&electrode_potentials(&cfg, &mut rng));
        for t in 0..cfg.samples {
            assert!((leads[0][t] + leads[2][t] - leads[1][t]).abs() < 1e-5);
        }
    }

    #[test]
    fn augmented_leads_sum_to_zero() {
        // aVR + aVL + aVF = 0 (Goldberger).
        let cfg = tiny_cfg();
        let mut rng = StdRng::seed_from_u64(3);
        let leads = derive_leads(&electrode_potentials(&cfg, &mut rng));
        for t in 0..cfg.samples {
            assert!((leads[3][t] + leads[4][t] + leads[5][t]).abs() < 1e-5);
        }
    }

    #[test]
    fn r_peak_dominates_lead_ii() {
        // Lead II roughly follows the electrical axis, so the R spike should
        // dominate the trace and be positive.
        let cfg = EcgConfig {
            noise: 0.0,
            wander: 0.0,
            ..tiny_cfg()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let leads = derive_leads(&electrode_potentials(&cfg, &mut rng));
        let max = leads[1].iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let min = leads[1].iter().copied().fold(f32::INFINITY, f32::min);
        assert!(max > 0.5, "R peak missing: max {max}");
        assert!(max > -min, "R peak should dominate: max {max}, min {min}");
    }

    #[test]
    #[should_panic(expected = "expected 9 electrode traces")]
    fn derive_leads_rejects_bad_input() {
        let _ = derive_leads(&vec![vec![0.0; 10]; 5]);
    }
}
