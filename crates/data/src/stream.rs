//! Unbounded per-patient signal streams for continuous monitoring.
//!
//! The paper's target is wearable medical devices that watch a patient
//! *continuously*: ECG/EEG arrives as an unbounded signal, not as the
//! pre-cut windows the [`Dataset`](crate::Dataset) generators emit. This
//! module provides the streaming face of the same generative models —
//! [`SignalSource`] plus seeded synthetic [`EcgStream`] / [`EegStream`]
//! implementations that emit *chunks of arbitrary size* from an endless
//! per-patient recording.
//!
//! Two properties make the sources usable as oracle inputs for the
//! `rbnn-stream` segmentation layer:
//!
//! * **seeded determinism** — a source is a pure function of its config
//!   (two sources built from the same config produce the same signal
//!   forever);
//! * **chunk-size invariance** — the emitted frame sequence does not
//!   depend on how callers slice it: synthesis happens in fixed internal
//!   segments and chunks are served out of that buffer, so requesting
//!   1 000 frames at once or one frame 1 000 times yields bitwise-identical
//!   samples. Offline ("collect everything, segment once") and online
//!   ("chunk at a time") consumers therefore see the same signal, which is
//!   what lets the streaming tests pin bitwise equality end to end.
//!
//! Frames are **channel-interleaved**: `next_chunk` appends
//! `frames × channels` floats laid out `[t0c0, t0c1, …, t1c0, …]`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ecg::{self, EcgConfig, Electrode};
use crate::eeg::{self, LEFT_FIST, RIGHT_FIST};
use crate::signal;

/// An unbounded multi-channel signal producer (one monitored patient).
///
/// Implementations must be deterministic per seed and chunk-size
/// invariant (see the [module docs](self)).
pub trait SignalSource {
    /// Channels per frame.
    fn channels(&self) -> usize;

    /// Nominal sampling rate in Hz (frames per second of signal time).
    fn sample_rate(&self) -> f32;

    /// Appends up to `max_frames` frames (channel-interleaved) to `out`
    /// and returns the number of frames appended. Synthetic sources are
    /// unbounded and always deliver `max_frames`; a finite source returns
    /// `0` at end of stream.
    fn next_chunk(&mut self, max_frames: usize, out: &mut Vec<f32>) -> usize;
}

impl std::fmt::Debug for dyn SignalSource + Send {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SignalSource")
            .field("channels", &self.channels())
            .field("sample_rate", &self.sample_rate())
            .finish()
    }
}

/// Configuration of a continuous 12-lead ECG stream.
#[derive(Debug, Clone)]
pub struct EcgStreamConfig {
    /// Frames synthesized per internal segment (the generative model runs
    /// one quasi-recording at a time; chunk requests are served from its
    /// buffer, so this never affects the emitted values' chunking).
    pub samples_per_segment: usize,
    /// Sampling rate in Hz.
    pub sample_rate: f32,
    /// White measurement-noise amplitude relative to the R peak.
    pub noise: f32,
    /// Baseline-wander amplitude.
    pub wander: f32,
    /// Electrode pair that gets swapped from
    /// [`swap_from_segment`](Self::swap_from_segment) on — the streaming
    /// version of the electrode-inversion event the paper's classifier
    /// detects (a nurse re-attaches the leads wrong mid-monitoring).
    pub swap: Option<(Electrode, Electrode)>,
    /// First segment index with the swap applied (ignored without
    /// [`swap`](Self::swap)).
    pub swap_from_segment: usize,
    /// Master seed (one patient = one seed).
    pub seed: u64,
}

impl Default for EcgStreamConfig {
    fn default() -> Self {
        Self {
            samples_per_segment: 1080,
            sample_rate: 360.0,
            noise: 0.04,
            wander: 0.08,
            swap: None,
            swap_from_segment: 0,
            seed: 0x0EC6,
        }
    }
}

/// Endless synthetic 12-lead ECG: the dataset generator's dipole model
/// ([`ecg`]) run segment after segment with one continuing RNG.
///
/// Each internal segment is one quasi-recording (heart rate, electrical
/// axis and artifact phases are redrawn per segment, like a monitor
/// re-locking onto the rhythm); lead derivation and the electrode-swap
/// signature are exactly the dataset generator's.
#[derive(Debug)]
pub struct EcgStream {
    cfg: EcgStreamConfig,
    rng: StdRng,
    segment: usize,
    /// Interleaved frames of the current segment not yet handed out.
    buf: Vec<f32>,
    pos: usize,
}

impl EcgStream {
    /// A stream for one patient.
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_segment == 0`.
    pub fn new(cfg: EcgStreamConfig) -> Self {
        assert!(cfg.samples_per_segment > 0, "empty segments");
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            cfg,
            rng,
            segment: 0,
            buf: Vec::new(),
            pos: 0,
        }
    }

    fn synthesize_segment(&mut self) {
        let gen_cfg = EcgConfig {
            trials: 1,
            samples: self.cfg.samples_per_segment,
            sample_rate: self.cfg.sample_rate,
            noise: self.cfg.noise,
            wander: self.cfg.wander,
            swaps: Vec::new(),
            seed: 0, // unused: the stream drives its own continuing RNG
        };
        let mut potentials = ecg::electrode_potentials(&gen_cfg, &mut self.rng);
        if let Some((a, b)) = self.cfg.swap {
            if self.segment >= self.cfg.swap_from_segment {
                potentials.swap(a.index(), b.index());
            }
        }
        let leads = ecg::derive_leads(&potentials);
        let n = self.cfg.samples_per_segment;
        self.buf.clear();
        self.buf.reserve(n * 12);
        for t in 0..n {
            for lead in &leads {
                self.buf.push(lead[t]);
            }
        }
        self.pos = 0;
        self.segment += 1;
    }
}

impl SignalSource for EcgStream {
    fn channels(&self) -> usize {
        12
    }

    fn sample_rate(&self) -> f32 {
        self.cfg.sample_rate
    }

    fn next_chunk(&mut self, max_frames: usize, out: &mut Vec<f32>) -> usize {
        let mut produced = 0;
        while produced < max_frames {
            if self.pos >= self.buf.len() {
                self.synthesize_segment();
            }
            let avail = (self.buf.len() - self.pos) / 12;
            let take = avail.min(max_frames - produced);
            out.extend_from_slice(&self.buf[self.pos..self.pos + take * 12]);
            self.pos += take * 12;
            produced += take;
        }
        produced
    }
}

/// Configuration of a continuous motor-imagery EEG stream.
#[derive(Debug, Clone)]
pub struct EegStreamConfig {
    /// Electrode count.
    pub channels: usize,
    /// Frames synthesized per internal segment (one imagery trial).
    pub samples_per_segment: usize,
    /// Sampling rate in Hz.
    pub sample_rate: f32,
    /// Fractional mu-amplitude suppression under ERD.
    pub erd_depth: f32,
    /// Background noise amplitude relative to the mu rhythm.
    pub noise_scale: f32,
    /// Imagined movement: [`LEFT_FIST`] or [`RIGHT_FIST`]; sustained for
    /// the whole stream.
    pub label: usize,
    /// Master seed (one subject = one seed; per-subject physiology is
    /// drawn once at construction).
    pub seed: u64,
}

impl Default for EegStreamConfig {
    fn default() -> Self {
        Self {
            channels: 16,
            samples_per_segment: 192,
            sample_rate: 160.0,
            erd_depth: 0.5,
            noise_scale: 1.0,
            label: LEFT_FIST,
            seed: 0x0EE6,
        }
    }
}

/// Endless synthetic motor-imagery EEG: the dataset generator's source
/// model ([`crate::eeg`]) — per-subject mu/beta rhythms, posterior alpha,
/// pink background and contralateral ERD — run trial after trial with one
/// continuing RNG, sustaining a single imagined movement.
#[derive(Debug)]
pub struct EegStream {
    cfg: EegStreamConfig,
    rng: StdRng,
    /// Per-subject physiology, drawn once by the same code as the
    /// dataset generator's per-subject block.
    subject: eeg::SubjectPhysiology,
    buf: Vec<f32>,
    pos: usize,
}

impl EegStream {
    /// A stream for one subject.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`, `samples_per_segment == 0` or `label` is
    /// not one of the two imagery classes.
    pub fn new(cfg: EegStreamConfig) -> Self {
        assert!(cfg.channels > 0 && cfg.samples_per_segment > 0);
        assert!(
            cfg.label == LEFT_FIST || cfg.label == RIGHT_FIST,
            "label must be LEFT_FIST or RIGHT_FIST"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let subject = eeg::SubjectPhysiology::draw(cfg.noise_scale, &mut rng);
        Self {
            cfg,
            rng,
            subject,
            buf: Vec::new(),
            pos: 0,
        }
    }

    fn synthesize_segment(&mut self) {
        let (t_len, c_len) = (self.cfg.samples_per_segment, self.cfg.channels);
        let (c3, c4) = (c_len / 4, 3 * c_len / 4);
        let (erd_center, intact_center) = if self.cfg.label == LEFT_FIST {
            (c4, c3)
        } else {
            (c3, c4)
        };
        let erd_gain = 1.0 - self.cfg.erd_depth;

        let mu_phase = self.rng.gen_range(0.0..std::f32::consts::TAU);
        let beta_phase = self.rng.gen_range(0.0..std::f32::consts::TAU);
        let alpha_phase = self.rng.gen_range(0.0..std::f32::consts::TAU);
        let fs = self.cfg.sample_rate;
        let sub = self.subject;
        let mu_wave = signal::oscillation(t_len, fs, sub.mu_freq, sub.mu_amp, mu_phase, |_| 1.0);
        let beta_wave = signal::oscillation(
            t_len,
            fs,
            sub.beta_freq.min(fs / 2.2),
            0.3 * sub.mu_amp,
            beta_phase,
            |_| 1.0,
        );
        let alpha_wave = signal::oscillation(
            t_len,
            fs,
            sub.mu_freq - 0.5,
            sub.alpha_amp,
            alpha_phase,
            |_| 1.0,
        );

        self.buf.clear();
        self.buf.resize(t_len * c_len, 0.0);
        for ch in 0..c_len {
            let g_erd = eeg::spatial_gain(ch, erd_center, c_len);
            let g_int = eeg::spatial_gain(ch, intact_center, c_len);
            let g_alpha = eeg::spatial_gain(ch, c_len - 1, c_len);
            let noise = signal::pink_noise(t_len, &mut self.rng);
            for t in 0..t_len {
                let mu_component = mu_wave[t] * (g_erd * erd_gain + g_int)
                    + beta_wave[t] * (g_erd * erd_gain + g_int);
                self.buf[t * c_len + ch] =
                    mu_component + alpha_wave[t] * g_alpha + noise[t] * sub.noise;
            }
        }
        self.pos = 0;
    }
}

impl SignalSource for EegStream {
    fn channels(&self) -> usize {
        self.cfg.channels
    }

    fn sample_rate(&self) -> f32 {
        self.cfg.sample_rate
    }

    fn next_chunk(&mut self, max_frames: usize, out: &mut Vec<f32>) -> usize {
        let c = self.cfg.channels;
        let mut produced = 0;
        while produced < max_frames {
            if self.pos >= self.buf.len() {
                self.synthesize_segment();
            }
            let avail = (self.buf.len() - self.pos) / c;
            let take = avail.min(max_frames - produced);
            out.extend_from_slice(&self.buf[self.pos..self.pos + take * c]);
            self.pos += take * c;
            produced += take;
        }
        produced
    }
}

/// Collects exactly `frames` frames from `source` into one interleaved
/// buffer — the offline ("record everything, then process") counterpart of
/// chunked consumption, used by tests and benches to pin stream/offline
/// equality.
pub fn collect_frames(source: &mut dyn SignalSource, frames: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(frames * source.channels());
    let got = source.next_chunk(frames, &mut out);
    out.truncate(got * source.channels());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ecg_cfg(seed: u64) -> EcgStreamConfig {
        EcgStreamConfig {
            samples_per_segment: 100,
            seed,
            ..EcgStreamConfig::default()
        }
    }

    #[test]
    fn ecg_stream_is_deterministic_per_seed() {
        let a = collect_frames(&mut EcgStream::new(ecg_cfg(7)), 500);
        let b = collect_frames(&mut EcgStream::new(ecg_cfg(7)), 500);
        let c = collect_frames(&mut EcgStream::new(ecg_cfg(8)), 500);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 500 * 12);
    }

    #[test]
    fn ecg_stream_is_chunk_size_invariant() {
        let whole = collect_frames(&mut EcgStream::new(ecg_cfg(3)), 421);
        let mut chunked = Vec::new();
        let mut s = EcgStream::new(ecg_cfg(3));
        // Awkward prime-sized chunks straddling every segment boundary.
        for chunk in [1usize, 97, 13, 100, 210] {
            assert_eq!(s.next_chunk(chunk, &mut chunked), chunk);
        }
        assert_eq!(whole, chunked);
    }

    #[test]
    fn ecg_swap_changes_signal_only_from_swap_segment() {
        let clean = collect_frames(&mut EcgStream::new(ecg_cfg(5)), 300);
        let mut cfg = ecg_cfg(5);
        cfg.swap = Some((Electrode::Ra, Electrode::La));
        cfg.swap_from_segment = 2; // segments are 100 frames each
        let swapped = collect_frames(&mut EcgStream::new(cfg), 300);
        assert_eq!(clean[..200 * 12], swapped[..200 * 12]);
        assert_ne!(clean[200 * 12..], swapped[200 * 12..]);
    }

    #[test]
    fn eeg_stream_is_chunk_size_invariant_and_seeded() {
        let cfg = EegStreamConfig {
            samples_per_segment: 64,
            channels: 8,
            seed: 11,
            ..EegStreamConfig::default()
        };
        let whole = collect_frames(&mut EegStream::new(cfg.clone()), 200);
        assert_eq!(whole.len(), 200 * 8);
        let mut chunked = Vec::new();
        let mut s = EegStream::new(cfg.clone());
        for chunk in [3usize, 61, 64, 72] {
            s.next_chunk(chunk, &mut chunked);
        }
        assert_eq!(whole, chunked);
        let again = collect_frames(&mut EegStream::new(cfg), 200);
        assert_eq!(whole, again);
    }

    #[test]
    fn eeg_labels_lateralize_band_power() {
        // Left-fist imagery suppresses C4; right-fist suppresses C3 — the
        // streaming source must preserve the dataset generator's class
        // mechanism.
        let base = EegStreamConfig {
            channels: 16,
            samples_per_segment: 256,
            sample_rate: 64.0,
            erd_depth: 0.7,
            noise_scale: 0.3,
            seed: 21,
            ..EegStreamConfig::default()
        };
        let ratio = |label: usize| -> f32 {
            let cfg = EegStreamConfig {
                label,
                ..base.clone()
            };
            let frames = collect_frames(&mut EegStream::new(cfg), 1024);
            let extract =
                |ch: usize| -> Vec<f32> { frames.iter().skip(ch).step_by(16).copied().collect() };
            let p3 = signal::band_power(&extract(4), 64.0, 8.0, 13.0);
            let p4 = signal::band_power(&extract(12), 64.0, 8.0, 13.0);
            p4 / (p3 + 1e-9)
        };
        assert!(
            ratio(LEFT_FIST) < ratio(RIGHT_FIST),
            "left {} right {}",
            ratio(LEFT_FIST),
            ratio(RIGHT_FIST)
        );
    }
}
