//! Elementary signal-synthesis building blocks shared by the EEG and ECG
//! generators: pink noise, oscillatory bursts, Gaussian wavelets.

use rand::Rng;

/// Generates `n` samples of approximately 1/f ("pink") noise with unit-ish
/// variance, using the Voss–McCartney multi-rate sum of white-noise rows.
///
/// EEG background activity is famously 1/f; the generator feeds the
/// synthetic motor-imagery dataset.
pub fn pink_noise(n: usize, rng: &mut impl Rng) -> Vec<f32> {
    const ROWS: usize = 8;
    let mut rows = [0.0f32; ROWS];
    for r in rows.iter_mut() {
        *r = rng.gen_range(-1.0..1.0);
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        // Update row k when bit k of the counter toggles (trailing zeros).
        let k = (i + 1).trailing_zeros() as usize;
        if k < ROWS {
            rows[k] = rng.gen_range(-1.0..1.0);
        }
        let sum: f32 = rows.iter().sum();
        // White top-up decorrelates the highest octave.
        out.push((sum + rng.gen_range(-1.0..1.0)) / ((ROWS + 1) as f32).sqrt());
    }
    out
}

/// A sinusoidal oscillation `amp · sin(2π f t + phase)` sampled at `fs` Hz,
/// with an amplitude envelope supplied per sample.
pub fn oscillation(
    n: usize,
    fs: f32,
    freq: f32,
    amp: f32,
    phase: f32,
    envelope: impl Fn(usize) -> f32,
) -> Vec<f32> {
    let w = 2.0 * std::f32::consts::PI * freq / fs;
    (0..n)
        .map(|i| amp * envelope(i) * (w * i as f32 + phase).sin())
        .collect()
}

/// A Gaussian wavelet `amp · exp(−(t − center)² / (2 width²))` evaluated at
/// integer sample positions — the building block of the ECG dipole
/// trajectory (McSharry-style P/Q/R/S/T waves).
pub fn gaussian_wave(t: f32, center: f32, width: f32, amp: f32) -> f32 {
    let d = (t - center) / width;
    amp * (-0.5 * d * d).exp()
}

/// Mean power of a signal in the band `[lo, hi]` Hz, estimated with a direct
/// Goertzel-style projection on a discrete frequency grid.
///
/// Used by tests to verify that the synthetic EEG carries its class
/// information in band power (event-related desynchronization), like real
/// motor-imagery EEG.
pub fn band_power(signal: &[f32], fs: f32, lo: f32, hi: f32) -> f32 {
    let n = signal.len();
    if n == 0 {
        return 0.0;
    }
    let df = fs / n as f32;
    let k_lo = (lo / df).ceil() as usize;
    let k_hi = ((hi / df).floor() as usize).min(n / 2);
    if k_hi < k_lo {
        return 0.0;
    }
    let mut power = 0.0f32;
    for k in k_lo..=k_hi {
        let w = 2.0 * std::f32::consts::PI * k as f32 / n as f32;
        let (mut re, mut im) = (0.0f32, 0.0f32);
        for (i, &v) in signal.iter().enumerate() {
            let a = w * i as f32;
            re += v * a.cos();
            im += v * a.sin();
        }
        power += (re * re + im * im) / (n as f32 * n as f32);
    }
    power
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pink_noise_has_more_low_frequency_power() {
        let mut rng = StdRng::seed_from_u64(0);
        let sig = pink_noise(4096, &mut rng);
        let low = band_power(&sig, 256.0, 1.0, 8.0);
        let high = band_power(&sig, 256.0, 64.0, 128.0);
        assert!(
            low > 2.0 * high,
            "pink noise should be low-frequency dominated: low {low} vs high {high}"
        );
    }

    #[test]
    fn oscillation_peaks_at_its_frequency() {
        let sig = oscillation(1024, 256.0, 10.0, 1.0, 0.3, |_| 1.0);
        let at_10 = band_power(&sig, 256.0, 9.0, 11.0);
        let at_40 = band_power(&sig, 256.0, 39.0, 41.0);
        assert!(at_10 > 100.0 * at_40.max(1e-9));
    }

    #[test]
    fn envelope_modulates_amplitude() {
        let full = oscillation(512, 256.0, 10.0, 1.0, 0.0, |_| 1.0);
        let half = oscillation(512, 256.0, 10.0, 1.0, 0.0, |_| 0.5);
        let pf: f32 = full.iter().map(|v| v * v).sum();
        let ph: f32 = half.iter().map(|v| v * v).sum();
        assert!((ph / pf - 0.25).abs() < 0.01);
    }

    #[test]
    fn gaussian_wave_peak_and_decay() {
        assert!((gaussian_wave(5.0, 5.0, 1.0, 2.0) - 2.0).abs() < 1e-6);
        assert!(gaussian_wave(10.0, 5.0, 1.0, 2.0) < 1e-4);
    }

    #[test]
    fn band_power_empty_signal_is_zero() {
        assert_eq!(band_power(&[], 100.0, 1.0, 10.0), 0.0);
    }
}
