//! Synthetic EEG motor-imagery dataset.
//!
//! Stand-in for the PhysioNet EEG Motor Movement/Imagery Dataset used by the
//! paper (§III-A): 64-channel scalp EEG at 160 Hz, six-second trials, binary
//! task "imagined left-fist vs right-fist movement".
//!
//! The generator reproduces the physiological structure the classifier must
//! exploit in the real data:
//!
//! * a per-channel 1/f (pink) background plus a common posterior alpha
//!   rhythm;
//! * a **mu rhythm** (~8–12 Hz) focused over the left (C3) and right (C4)
//!   motor cortices with per-subject frequency and amplitude;
//! * **event-related desynchronization (ERD)**: imagining a movement of one
//!   hand *attenuates* the mu rhythm over the contralateral motor cortex —
//!   left-fist imagery suppresses C4, right-fist imagery suppresses C3;
//! * per-subject variability so cross-validation folds are non-trivial.
//!
//! The class signal is therefore a *relative band-power* difference buried
//! in noise, the same discrimination problem (and difficulty knob) as the
//! real task.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rbnn_tensor::Tensor;

use crate::signal;
use crate::Dataset;

/// Class label for left-fist imagery (ERD over the right hemisphere / C4).
pub const LEFT_FIST: usize = 0;
/// Class label for right-fist imagery (ERD over the left hemisphere / C3).
pub const RIGHT_FIST: usize = 1;

/// Configuration of the synthetic motor-imagery generator.
#[derive(Debug, Clone)]
pub struct EegConfig {
    /// Number of simulated subjects (the paper uses 105).
    pub subjects: usize,
    /// Trials per subject (the paper uses 42); split evenly between classes.
    pub trials_per_subject: usize,
    /// Electrode count (the paper uses 64).
    pub channels: usize,
    /// Samples per trial (the paper uses 6 s × 160 Hz = 960).
    pub samples: usize,
    /// Sampling rate in Hz.
    pub sample_rate: f32,
    /// Fractional mu-amplitude suppression under ERD (0–1); larger is
    /// easier. 0.5 gives a realistic, noisy-but-learnable task.
    pub erd_depth: f32,
    /// Background noise amplitude relative to the mu rhythm.
    pub noise_scale: f32,
    /// Master seed.
    pub seed: u64,
}

impl EegConfig {
    /// Paper-scale configuration: 105 subjects × 42 trials, 64 channels,
    /// 960 samples at 160 Hz.
    pub fn paper() -> Self {
        Self {
            subjects: 105,
            trials_per_subject: 42,
            channels: 64,
            samples: 960,
            sample_rate: 160.0,
            erd_depth: 0.5,
            noise_scale: 1.0,
            seed: 0x0EE6,
        }
    }

    /// Laptop-scale configuration preserving the task structure: fewer
    /// subjects/trials, 16 channels, 192 samples (6 s at 32 Hz). The ERD
    /// depth / noise pair is calibrated so the reduced task separates the
    /// three precision strategies the way the paper's full-scale task does
    /// (real ≈ bin-classifier ≫ 1× BNN, recovered by filter augmentation);
    /// see EXPERIMENTS.md.
    pub fn reduced() -> Self {
        Self {
            subjects: 6,
            trials_per_subject: 40,
            channels: 16,
            samples: 192,
            sample_rate: 32.0,
            erd_depth: 0.34,
            noise_scale: 1.65,
            seed: 0x0EE6,
        }
    }

    /// Total number of trials.
    pub fn total_trials(&self) -> usize {
        self.subjects * self.trials_per_subject
    }

    /// Index of the electrode closest to the left motor cortex (C3).
    pub fn c3(&self) -> usize {
        self.channels / 4
    }

    /// Index of the electrode closest to the right motor cortex (C4).
    pub fn c4(&self) -> usize {
        3 * self.channels / 4
    }
}

/// Spatial sensitivity of electrode `ch` to a source centred at `center`,
/// as a Gaussian on the (1-D abstracted) electrode axis (shared with the
/// streaming source, [`crate::stream::EegStream`]).
pub(crate) fn spatial_gain(ch: usize, center: usize, channels: usize) -> f32 {
    let sigma = channels as f32 / 10.0;
    let d = (ch as f32 - center as f32) / sigma;
    (-0.5 * d * d).exp()
}

/// One simulated subject's physiology — the per-subject block of the
/// generative model, drawn identically by the dataset generator and the
/// streaming source so the two cannot diverge.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SubjectPhysiology {
    pub(crate) mu_freq: f32,
    pub(crate) beta_freq: f32,
    pub(crate) mu_amp: f32,
    pub(crate) alpha_amp: f32,
    pub(crate) noise: f32,
}

impl SubjectPhysiology {
    pub(crate) fn draw(noise_scale: f32, rng: &mut StdRng) -> Self {
        let mu_freq = 10.5 + rng.gen_range(-1.0..1.0);
        Self {
            mu_freq,
            beta_freq: 2.0 * mu_freq + rng.gen_range(-1.0..1.0),
            mu_amp: 1.0 + rng.gen_range(-0.2..0.2),
            alpha_amp: 0.6 + rng.gen_range(-0.2..0.2),
            noise: noise_scale * (1.0 + rng.gen_range(-0.2..0.2)),
        }
    }
}

/// Generates the synthetic motor-imagery dataset.
///
/// Samples have shape `[1, samples, channels]` — the single-channel 2-D
/// "time × space image" layout the paper's EEG network consumes (Fig 6) —
/// and are already per-electrode z-score normalized (the paper's only
/// preprocessing step).
pub fn generate(cfg: &EegConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.total_trials();
    let (t_len, c_len) = (cfg.samples, cfg.channels);
    let mut x = Tensor::zeros([n, 1, t_len, c_len]);
    let mut y = Vec::with_capacity(n);

    let mut trial = 0usize;
    for _subject in 0..cfg.subjects {
        let SubjectPhysiology {
            mu_freq,
            beta_freq,
            mu_amp,
            alpha_amp,
            noise: subject_noise,
        } = SubjectPhysiology::draw(cfg.noise_scale, &mut rng);

        for k in 0..cfg.trials_per_subject {
            let label = if k % 2 == 0 { LEFT_FIST } else { RIGHT_FIST };
            // ERD side: left imagery suppresses the *contralateral* (right,
            // C4) motor cortex and vice versa.
            let (erd_center, intact_center) = if label == LEFT_FIST {
                (cfg.c4(), cfg.c3())
            } else {
                (cfg.c3(), cfg.c4())
            };
            let erd_gain = 1.0 - cfg.erd_depth;

            // Trial-level phases.
            let mu_phase = rng.gen_range(0.0..std::f32::consts::TAU);
            let beta_phase = rng.gen_range(0.0..std::f32::consts::TAU);
            let alpha_phase = rng.gen_range(0.0..std::f32::consts::TAU);

            // Source time courses (shared across channels, scaled per
            // channel by the spatial maps).
            let mu_wave =
                signal::oscillation(t_len, cfg.sample_rate, mu_freq, mu_amp, mu_phase, |_| 1.0);
            let beta_wave = signal::oscillation(
                t_len,
                cfg.sample_rate,
                beta_freq.min(cfg.sample_rate / 2.2),
                0.3 * mu_amp,
                beta_phase,
                |_| 1.0,
            );
            let alpha_wave = signal::oscillation(
                t_len,
                cfg.sample_rate,
                mu_freq - 0.5,
                alpha_amp,
                alpha_phase,
                |_| 1.0,
            );

            let base = trial * t_len * c_len;
            let xs = x.as_mut_slice();
            for ch in 0..c_len {
                let g_erd = spatial_gain(ch, erd_center, c_len);
                let g_int = spatial_gain(ch, intact_center, c_len);
                // Posterior alpha peaks at the back of the "scalp axis".
                let g_alpha = spatial_gain(ch, c_len - 1, c_len);
                let noise = signal::pink_noise(t_len, &mut rng);
                for t in 0..t_len {
                    let mu_component = mu_wave[t] * (g_erd * erd_gain + g_int)
                        + beta_wave[t] * (g_erd * erd_gain + g_int);
                    let v = mu_component + alpha_wave[t] * g_alpha + noise[t] * subject_noise;
                    // Layout [1, T, C]: time-major image rows.
                    xs[base + t * c_len + ch] = v;
                }
            }
            y.push(label);
            trial += 1;
        }
    }

    let mut ds = Dataset::new(x, y, 2);
    normalize_per_electrode(&mut ds);
    ds
}

/// Z-scores each electrode column of `[N, 1, T, C]` EEG images in place.
fn normalize_per_electrode(ds: &mut Dataset) {
    let dims = ds.samples().dims().to_vec();
    let (n, t_len, c_len) = (dims[0], dims[2], dims[3]);
    // Compute per-electrode stats across all trials and time steps.
    let mut means = vec![0.0f32; c_len];
    let mut vars = vec![0.0f32; c_len];
    let count = (n * t_len) as f32;
    {
        let xs = ds.samples().as_slice();
        for i in 0..n {
            for t in 0..t_len {
                let row = (i * t_len + t) * c_len;
                for ch in 0..c_len {
                    means[ch] += xs[row + ch];
                }
            }
        }
        for m in &mut means {
            *m /= count;
        }
        for i in 0..n {
            for t in 0..t_len {
                let row = (i * t_len + t) * c_len;
                for ch in 0..c_len {
                    let d = xs[row + ch] - means[ch];
                    vars[ch] += d * d;
                }
            }
        }
        for v in &mut vars {
            *v /= count;
        }
    }
    let x = ds.samples().clone();
    let mut xn = x.clone();
    {
        let xs = xn.as_mut_slice();
        for i in 0..n {
            for t in 0..t_len {
                let row = (i * t_len + t) * c_len;
                for ch in 0..c_len {
                    xs[row + ch] = (xs[row + ch] - means[ch]) / vars[ch].sqrt().max(1e-8);
                }
            }
        }
    }
    *ds = Dataset::new(xn, ds.labels().to_vec(), ds.classes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> EegConfig {
        EegConfig {
            subjects: 2,
            trials_per_subject: 8,
            channels: 16,
            samples: 128,
            sample_rate: 64.0,
            erd_depth: 0.6,
            noise_scale: 0.5,
            seed: 42,
        }
    }

    #[test]
    fn shapes_and_balance() {
        let cfg = tiny_cfg();
        let ds = generate(&cfg);
        assert_eq!(ds.len(), 16);
        assert_eq!(ds.sample_shape(), vec![1, 128, 16]);
        assert_eq!(ds.class_counts(), vec![8, 8]);
    }

    #[test]
    fn determinism() {
        let cfg = tiny_cfg();
        assert_eq!(generate(&cfg), generate(&cfg));
        let mut cfg2 = tiny_cfg();
        cfg2.seed += 1;
        assert_ne!(generate(&cfg), generate(&cfg2));
    }

    #[test]
    fn erd_lateralizes_mu_band_power() {
        // The defining property: left-fist trials carry *less* mu power at
        // C4 relative to C3 than right-fist trials, on average.
        let mut cfg = tiny_cfg();
        cfg.subjects = 4;
        cfg.trials_per_subject = 10;
        let ds = generate(&cfg);
        let (t_len, c_len) = (cfg.samples, cfg.channels);
        let (c3, c4) = (cfg.c3(), cfg.c4());
        let mut ratios = [Vec::new(), Vec::new()];
        for i in 0..ds.len() {
            let sample = ds.samples().index_axis0(i);
            let xs = sample.as_slice();
            let extract =
                |ch: usize| -> Vec<f32> { (0..t_len).map(|t| xs[t * c_len + ch]).collect() };
            let p3 = signal::band_power(&extract(c3), cfg.sample_rate, 8.0, 13.0);
            let p4 = signal::band_power(&extract(c4), cfg.sample_rate, 8.0, 13.0);
            ratios[ds.labels()[i]].push(p4 / (p3 + 1e-9));
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        let left = mean(&ratios[LEFT_FIST]);
        let right = mean(&ratios[RIGHT_FIST]);
        assert!(
            left < right,
            "left-fist C4/C3 mu ratio {left} should be below right-fist {right}"
        );
    }

    #[test]
    fn normalized_per_electrode() {
        let ds = generate(&tiny_cfg());
        // Overall statistics near standard normal.
        assert!(ds.samples().mean().abs() < 0.05);
        assert!((ds.samples().variance() - 1.0).abs() < 0.1);
    }

    #[test]
    fn paper_config_dimensions() {
        let cfg = EegConfig::paper();
        assert_eq!(cfg.total_trials(), 105 * 42);
        assert_eq!(cfg.channels, 64);
        assert_eq!(cfg.samples, 960);
        assert_eq!((cfg.c3(), cfg.c4()), (16, 48));
    }
}
