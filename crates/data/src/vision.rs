//! Synthetic multi-class vision dataset — the ImageNet stand-in.
//!
//! The paper's §IV result (a two-layer binarized classifier on top of real
//! MobileNet V1 features matches the real classifier, while full
//! binarization degrades) is a property of the *classifier/feature split*,
//! not of ImageNet itself. This module provides a 16-class structured image
//! task that exercises the same topology family at laptop scale: classes
//! are combinations of grating orientation, spatial frequency and color
//! tint, degraded by phase/position jitter and additive noise so the task
//! is non-trivial and top-5 accuracy is meaningful.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rbnn_tensor::Tensor;

use crate::Dataset;

/// Configuration of the synthetic vision generator.
#[derive(Debug, Clone)]
pub struct VisionConfig {
    /// Number of classes (default 16 = 4 orientations × 2 frequencies × 2
    /// tints; must be ≤ 16 and ≥ 2).
    pub classes: usize,
    /// Samples per class.
    pub per_class: usize,
    /// Square image side length.
    pub size: usize,
    /// Additive noise standard deviation.
    pub noise: f32,
    /// Master seed.
    pub seed: u64,
}

impl VisionConfig {
    /// Default 16-class, 32×32 configuration.
    pub fn reduced() -> Self {
        Self {
            classes: 16,
            per_class: 40,
            size: 32,
            noise: 0.35,
            seed: 0x1336,
        }
    }

    /// Total sample count.
    pub fn total(&self) -> usize {
        self.classes * self.per_class
    }
}

/// Class-defining parameters: orientation, spatial frequency and RGB tint.
fn class_params(class: usize) -> (f32, f32, [f32; 3]) {
    let orient = (class % 4) as f32 * std::f32::consts::PI / 4.0;
    let freq = if (class / 4) % 2 == 0 { 2.0 } else { 4.0 };
    let tint = if class / 8 == 0 {
        [1.0, 0.6, 0.3]
    } else {
        [0.3, 0.6, 1.0]
    };
    (orient, freq, tint)
}

/// Generates the dataset with samples of shape `[3, size, size]`, roughly
/// zero-mean and unit-scale.
///
/// # Panics
///
/// Panics unless `2 ≤ classes ≤ 16`.
pub fn generate(cfg: &VisionConfig) -> Dataset {
    assert!((2..=16).contains(&cfg.classes), "classes must be in 2..=16");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.total();
    let s = cfg.size;
    let mut x = Tensor::zeros([n, 3, s, s]);
    let mut y = Vec::with_capacity(n);

    let mut i = 0usize;
    for class in 0..cfg.classes {
        let (orient, freq, tint) = class_params(class);
        for _ in 0..cfg.per_class {
            // Bounded phase jitter: full-circle phase would decorrelate
            // same-class images entirely (E[cos Δφ] = 0), leaving class
            // structure indistinguishable from noise in pixel space.
            let phase = rng.gen_range(-0.7..0.7);
            let jitter = rng.gen_range(-0.3..0.3);
            let (dx, dy) = ((orient + jitter).cos(), (orient + jitter).sin());
            let contrast = rng.gen_range(0.7..1.3);
            let base = i * 3 * s * s;
            let xs = x.as_mut_slice();
            for py in 0..s {
                for px in 0..s {
                    let u = px as f32 / s as f32 - 0.5;
                    let v = py as f32 / s as f32 - 0.5;
                    let wave = (std::f32::consts::TAU * freq * (u * dx + v * dy) + phase).sin();
                    for (c, &t) in tint.iter().enumerate() {
                        let noise = cfg.noise * (rng.gen::<f32>() - 0.5) * 2.0;
                        xs[base + c * s * s + py * s + px] = contrast * wave * t + noise;
                    }
                }
            }
            y.push(class);
            i += 1;
        }
    }
    Dataset::new(x, y, cfg.classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> VisionConfig {
        VisionConfig {
            classes: 8,
            per_class: 4,
            size: 16,
            noise: 0.1,
            seed: 3,
        }
    }

    #[test]
    fn shapes_and_balance() {
        let ds = generate(&tiny_cfg());
        assert_eq!(ds.len(), 32);
        assert_eq!(ds.sample_shape(), vec![3, 16, 16]);
        assert_eq!(ds.class_counts(), vec![4; 8]);
        assert_eq!(ds.classes(), 8);
    }

    #[test]
    fn determinism() {
        assert_eq!(generate(&tiny_cfg()), generate(&tiny_cfg()));
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean inter-class distance should exceed mean intra-class distance.
        let cfg = VisionConfig {
            noise: 0.05,
            ..tiny_cfg()
        };
        let ds = generate(&cfg);
        let sample = |i: usize| ds.samples().index_axis0(i);
        let dist = |a: &Tensor, b: &Tensor| (a - b).norm_sq();
        // Class means as crude prototypes.
        let mut intra = 0.0f32;
        let mut inter = 0.0f32;
        let mut n_intra = 0;
        let mut n_inter = 0;
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len() {
                let d = dist(&sample(i), &sample(j));
                if ds.labels()[i] == ds.labels()[j] {
                    intra += d;
                    n_intra += 1;
                } else {
                    inter += d;
                    n_inter += 1;
                }
            }
        }
        // Random phase makes same-class images differ, but orientation/
        // frequency/tint structure must still dominate on average.
        assert!(
            inter / n_inter as f32 > intra / n_intra as f32,
            "inter-class distance should exceed intra-class"
        );
    }

    #[test]
    fn tints_differ_between_color_groups() {
        let cfg = VisionConfig {
            classes: 16,
            per_class: 2,
            size: 8,
            noise: 0.0,
            seed: 1,
        };
        let ds = generate(&cfg);
        // Class 0 (warm tint): red channel power > blue; class 8 (cool): opposite.
        let energy = |i: usize, c: usize| {
            let s = ds.samples().index_axis0(i);
            let plane = 64;
            s.as_slice()[c * plane..(c + 1) * plane]
                .iter()
                .map(|v| v * v)
                .sum::<f32>()
        };
        let warm = 0;
        let cool = 16; // first sample of class 8
        assert!(energy(warm, 0) > energy(warm, 2));
        assert!(energy(cool, 2) > energy(cool, 0));
    }

    #[test]
    #[should_panic(expected = "classes must be")]
    fn rejects_too_many_classes() {
        let cfg = VisionConfig {
            classes: 20,
            ..tiny_cfg()
        };
        let _ = generate(&cfg);
    }
}
