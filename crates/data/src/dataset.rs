//! Labelled dataset container with splitting, normalization and k-fold
//! cross-validation — the evaluation protocol of the paper (§III: five-fold
//! cross-validation, per-channel normalization, noise augmentation).

use rand::seq::SliceRandom;
use rand::Rng;

use rbnn_tensor::Tensor;

/// An in-memory labelled dataset: samples stacked on the leading axis and
/// one integer class label per sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    x: Tensor,
    y: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Bundles samples and labels.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` differs from the leading dimension of `x`, or a
    /// label is `>= classes`.
    pub fn new(x: Tensor, y: Vec<usize>, classes: usize) -> Self {
        assert_eq!(x.dim(0), y.len(), "sample/label count mismatch");
        assert!(y.iter().all(|&l| l < classes), "label out of range");
        Self { x, y, classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The stacked samples `[N, …]`.
    pub fn samples(&self) -> &Tensor {
        &self.x
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.y
    }

    /// Per-sample shape (without the batch axis).
    pub fn sample_shape(&self) -> Vec<usize> {
        self.x.dims()[1..].to_vec()
    }

    /// Returns a dataset containing the given indices, in order.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let items: Vec<Tensor> = indices.iter().map(|&i| self.x.index_axis0(i)).collect();
        let y = indices.iter().map(|&i| self.y[i]).collect();
        Dataset {
            x: Tensor::stack(&items),
            y,
            classes: self.classes,
        }
    }

    /// Returns a copy with samples in random order.
    pub fn shuffled(&self, rng: &mut impl Rng) -> Dataset {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        self.subset(&idx)
    }

    /// Splits into `(first, second)` with `first` holding `fraction` of the
    /// samples (rounded down, at least 1 if non-empty).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1`.
    pub fn split(&self, fraction: f32) -> (Dataset, Dataset) {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0, 1)"
        );
        let cut = ((self.len() as f32 * fraction) as usize).clamp(1, self.len() - 1);
        let first: Vec<usize> = (0..cut).collect();
        let second: Vec<usize> = (cut..self.len()).collect();
        (self.subset(&first), self.subset(&second))
    }

    /// The index sets of `k` contiguous, non-overlapping validation folds
    /// covering every sample exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k > len`.
    pub fn fold_indices(&self, k: usize) -> Vec<Vec<usize>> {
        assert!(k >= 2, "need at least 2 folds");
        assert!(k <= self.len(), "more folds than samples");
        let n = self.len();
        let mut folds = Vec::with_capacity(k);
        for f in 0..k {
            let start = f * n / k;
            let end = (f + 1) * n / k;
            folds.push((start..end).collect());
        }
        folds
    }

    /// Builds the `(train, validation)` pair for fold `fold` of `k`
    /// (the paper's five-fold cross-validation protocol with
    /// non-overlapping validation subsets).
    ///
    /// # Panics
    ///
    /// Panics if `fold >= k` or `k` is invalid for this dataset.
    pub fn cv_fold(&self, k: usize, fold: usize) -> (Dataset, Dataset) {
        assert!(fold < k, "fold index out of range");
        let folds = self.fold_indices(k);
        let val_idx = &folds[fold];
        let mut train_idx = Vec::with_capacity(self.len() - val_idx.len());
        for (f, idxs) in folds.iter().enumerate() {
            if f != fold {
                train_idx.extend_from_slice(idxs);
            }
        }
        (self.subset(&train_idx), self.subset(val_idx))
    }

    /// Per-channel z-score normalization, treating axis 1 as the channel
    /// axis: each channel is shifted/scaled by statistics computed over all
    /// samples and positions (the paper's "per-channel normalization by
    /// subtracting the mean and dividing by variance").
    ///
    /// Returns the `(mean, std)` per channel so a validation set can be
    /// normalized with training statistics via
    /// [`apply_normalization`](Self::apply_normalization).
    pub fn normalize_per_channel(&mut self) -> (Vec<f32>, Vec<f32>) {
        let dims = self.x.dims().to_vec();
        assert!(dims.len() >= 2, "need a channel axis to normalize");
        let (n, c) = (dims[0], dims[1]);
        let s: usize = dims[2..].iter().product::<usize>().max(1);
        let xs = self.x.as_mut_slice();
        let mut means = vec![0.0f32; c];
        let mut stds = vec![0.0f32; c];
        let count = (n * s) as f32;
        for ch in 0..c {
            let mut mean = 0.0f32;
            for i in 0..n {
                let base = (i * c + ch) * s;
                mean += xs[base..base + s].iter().sum::<f32>();
            }
            mean /= count;
            let mut var = 0.0f32;
            for i in 0..n {
                let base = (i * c + ch) * s;
                var += xs[base..base + s]
                    .iter()
                    .map(|&v| (v - mean) * (v - mean))
                    .sum::<f32>();
            }
            var /= count;
            let std = var.sqrt().max(1e-8);
            for i in 0..n {
                let base = (i * c + ch) * s;
                for v in &mut xs[base..base + s] {
                    *v = (*v - mean) / std;
                }
            }
            means[ch] = mean;
            stds[ch] = std;
        }
        (means, stds)
    }

    /// Applies externally computed per-channel statistics (from a training
    /// split) to this dataset.
    ///
    /// # Panics
    ///
    /// Panics if the statistics length differs from the channel count.
    pub fn apply_normalization(&mut self, means: &[f32], stds: &[f32]) {
        let dims = self.x.dims().to_vec();
        let (n, c) = (dims[0], dims[1]);
        assert_eq!(means.len(), c, "mean count mismatch");
        assert_eq!(stds.len(), c, "std count mismatch");
        let s: usize = dims[2..].iter().product::<usize>().max(1);
        let xs = self.x.as_mut_slice();
        for ch in 0..c {
            let inv = 1.0 / stds[ch].max(1e-8);
            for i in 0..n {
                let base = (i * c + ch) * s;
                for v in &mut xs[base..base + s] {
                    *v = (*v - means[ch]) * inv;
                }
            }
        }
    }

    /// Adds i.i.d. Gaussian noise of the given standard deviation to every
    /// sample in place — the paper's data augmentation for the small EEG set
    /// ("we added small amplitude noise to each training sample").
    pub fn augment_noise(&mut self, std: f32, rng: &mut impl Rng) {
        let noise = Tensor::randn(self.x.shape().clone(), std, rng);
        self.x += &noise;
    }

    /// Counts samples per class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes];
        for &l in &self.y {
            counts[l] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        let x = Tensor::from_fn([n, 2, 3], |i| i as f32);
        let y = (0..n).map(|i| i % 2).collect();
        Dataset::new(x, y, 2)
    }

    #[test]
    fn subset_and_shapes() {
        let d = toy(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.sample_shape(), vec![2, 3]);
        let s = d.subset(&[3, 7]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[1, 1]);
        assert_eq!(s.samples().index_axis0(0), d.samples().index_axis0(3));
    }

    #[test]
    fn cv_folds_partition_everything() {
        let d = toy(23);
        let folds = d.fold_indices(5);
        let total: usize = folds.iter().map(|f| f.len()).sum();
        assert_eq!(total, 23);
        // Folds are disjoint.
        let mut seen = vec![false; 23];
        for f in &folds {
            for &i in f {
                assert!(!seen[i], "index {i} appears twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
        // Train+val of any fold is the whole set.
        let (tr, va) = d.cv_fold(5, 2);
        assert_eq!(tr.len() + va.len(), 23);
    }

    #[test]
    fn split_fractions() {
        let d = toy(10);
        let (a, b) = d.split(0.7);
        assert_eq!(a.len(), 7);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn normalization_zeroes_channel_stats() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = &Tensor::randn([100, 3, 20], 4.0, &mut rng) + 7.0;
        let mut d = Dataset::new(x, vec![0; 100], 1);
        let (means, stds) = d.normalize_per_channel();
        assert!(
            means.iter().all(|m| (m - 7.0).abs() < 0.5),
            "means {means:?}"
        );
        assert!(stds.iter().all(|s| (s - 4.0).abs() < 0.5), "stds {stds:?}");
        // After normalization: mean ~0, var ~1 overall.
        assert!(d.samples().mean().abs() < 1e-4);
        assert!((d.samples().variance() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn apply_normalization_uses_given_stats() {
        let x = Tensor::full([2, 1, 2], 10.0);
        let mut d = Dataset::new(x, vec![0, 0], 1);
        d.apply_normalization(&[8.0], &[2.0]);
        assert!(d
            .samples()
            .as_slice()
            .iter()
            .all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn shuffle_preserves_pairs() {
        let d = toy(8);
        let mut rng = StdRng::seed_from_u64(1);
        let s = d.shuffled(&mut rng);
        assert_eq!(s.len(), 8);
        // Every sample keeps its label: sample values encode their original
        // index, whose parity is the label.
        for i in 0..8 {
            let first = s.samples().index_axis0(i).as_slice()[0];
            let orig = (first as usize) / 6;
            assert_eq!(orig % 2, s.labels()[i]);
        }
    }

    #[test]
    fn noise_augmentation_changes_data_slightly() {
        let mut d = toy(4);
        let before = d.samples().clone();
        let mut rng = StdRng::seed_from_u64(2);
        d.augment_noise(0.1, &mut rng);
        let diff = (d.samples() - &before).norm_sq();
        assert!(diff > 0.0 && diff < 4.0 * 6.0 * 0.1);
    }

    #[test]
    fn class_counts() {
        let d = toy(9);
        assert_eq!(d.class_counts(), vec![5, 4]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_labels_rejected() {
        let _ = Dataset::new(Tensor::zeros([2, 1]), vec![0, 5], 2);
    }
}
