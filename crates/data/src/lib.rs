//! # rbnn-data
//!
//! Synthetic dataset generators and dataset utilities for the
//! [rram-bnn](https://arxiv.org/abs/2006.11595) reproduction.
//!
//! The paper evaluates on three external datasets that cannot ship with a
//! reproduction repository (PhysioNet motor-imagery EEG, the Challenge-Data
//! ECG electrode-inversion set, and ImageNet). Each is replaced by a
//! physically structured synthetic generator that preserves the *mechanism*
//! the classifier must learn — see the module docs of [`eeg`], [`ecg`] and
//! [`vision`] and DESIGN.md §2 for the substitution rationale.
//!
//! [`Dataset`] implements the paper's evaluation protocol: per-channel
//! normalization, Gaussian noise augmentation and five-fold
//! cross-validation.
//!
//! ```
//! use rbnn_data::{ecg, Dataset};
//!
//! let cfg = ecg::EcgConfig { trials: 10, ..ecg::EcgConfig::reduced() };
//! let ds = ecg::generate(&cfg);
//! assert_eq!(ds.sample_shape(), vec![12, 250]);
//! let (train, val) = ds.cv_fold(5, 0);
//! assert_eq!(train.len() + val.len(), ds.len());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dataset;
pub mod ecg;
pub mod eeg;
pub mod signal;
pub mod stream;
pub mod vision;

pub use dataset::Dataset;
