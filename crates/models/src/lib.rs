//! # rbnn-models
//!
//! The model zoo of the [rram-bnn](https://arxiv.org/abs/2006.11595)
//! reproduction:
//!
//! * [`eeg::EegNetConfig`] — the end-to-end EEG motor-imagery network of
//!   Table I (temporal + spatial convolution, average pooling, dense
//!   classifier);
//! * [`ecg::EcgNetConfig`] — the custom five-convolution ECG
//!   electrode-inversion network of Table II;
//! * [`mobilenet::MobileNetConfig`] — MobileNet V1 with depthwise-separable
//!   blocks, in a trainable laptop-scale variant and the full 224×224
//!   specification used for memory accounting;
//! * [`BinarizationStrategy`] — the paper's three precision strategies
//!   (real weights / all-binarized / binarized classifier);
//! * [`memory`] — the exact architecture arithmetic behind Table IV.
//!
//! Every model builder takes a strategy and an optional filter-augmentation
//! factor, the two axes of the paper's evaluation (Table III, Fig 7).
//!
//! ```
//! use rbnn_models::{eeg::EegNetConfig, BinarizationStrategy};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let cfg = EegNetConfig::reduced()
//!     .with_strategy(BinarizationStrategy::BinarizedClassifier);
//! let net = cfg.build(&mut rng);
//! let summary = net.summary(&cfg.input_shape());
//! assert!(summary.total_params() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ecg;
pub mod eeg;
pub mod memory;
pub mod mobilenet;
mod strategy;

pub use strategy::BinarizationStrategy;
