//! The custom ECG electrode-inversion network of Table II.
//!
//! Five 1-D convolutions (kernels 13/11/9/7/5) with two interleaved 2×1 max
//! pools, then a dense classifier `flatten → 75 → 2`. Each weighted layer is
//! followed by batch normalization and an activation (hardtanh in the real
//! network, sign in the binarized settings); dropout regularizes the
//! convolutional stack (keep 0.95) and the classifier (keep 0.85) — all as
//! described in §III-B of the paper.
//!
//! With the paper's dimensions (750 samples × 12 leads, 32 filters) the
//! layer outputs match Table II exactly:
//! `738 → 369 → 359 → 179 → 171 → 165 → 161 → 5152 → 75 → 2`.

use rand::Rng;

use rbnn_nn::{
    Activation, ActivationKind, BatchNorm, Conv1d, Dense, Dropout, Flatten, Pool1d, Sequential,
    SplitModel,
};

use crate::BinarizationStrategy;

/// Configuration of the ECG network.
#[derive(Debug, Clone)]
pub struct EcgNetConfig {
    /// Input length in samples (paper: 750).
    pub samples: usize,
    /// Input lead count (paper: 12).
    pub leads: usize,
    /// Base filter count per conv layer (paper: 32), multiplied by
    /// `filter_augmentation`.
    pub filters: usize,
    /// Filter augmentation factor (Fig 7 sweeps 1–16×).
    pub filter_augmentation: usize,
    /// The five convolution kernel lengths (paper: 13, 11, 9, 7, 5).
    pub kernels: [usize; 5],
    /// Hidden classifier width (paper: 75).
    pub hidden: usize,
    /// Output classes (paper: 2 — correct vs inverted).
    pub classes: usize,
    /// Dropout keep probability in convolutional layers (paper: 0.95).
    pub conv_keep: f32,
    /// Dropout keep probability in the classifier (paper: 0.85).
    pub classifier_keep: f32,
    /// Precision strategy.
    pub strategy: BinarizationStrategy,
    /// Seed for the dropout masks.
    pub dropout_seed: u64,
}

impl EcgNetConfig {
    /// Paper-scale architecture (Table II).
    pub fn paper() -> Self {
        Self {
            samples: 750,
            leads: 12,
            filters: 32,
            filter_augmentation: 1,
            kernels: [13, 11, 9, 7, 5],
            hidden: 75,
            classes: 2,
            conv_keep: 0.95,
            classifier_keep: 0.85,
            strategy: BinarizationStrategy::RealWeights,
            dropout_seed: 0xD0,
        }
    }

    /// Laptop-scale architecture with the same topology (matches
    /// `rbnn_data::ecg::EcgConfig::reduced`: 250 samples).
    pub fn reduced() -> Self {
        Self {
            samples: 250,
            leads: 12,
            filters: 8,
            filter_augmentation: 1,
            kernels: [7, 5, 5, 3, 3],
            hidden: 32,
            classes: 2,
            conv_keep: 0.95,
            classifier_keep: 0.85,
            strategy: BinarizationStrategy::RealWeights,
            dropout_seed: 0xD0,
        }
    }

    /// Builder-style strategy selection.
    pub fn with_strategy(mut self, strategy: BinarizationStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style filter augmentation.
    pub fn with_filter_augmentation(mut self, factor: usize) -> Self {
        assert!(factor >= 1, "augmentation factor must be at least 1");
        self.filter_augmentation = factor;
        self
    }

    /// Effective filter count.
    pub fn effective_filters(&self) -> usize {
        self.filters * self.filter_augmentation
    }

    /// Per-sample input shape `[leads, samples]`.
    pub fn input_shape(&self) -> Vec<usize> {
        vec![self.leads, self.samples]
    }

    /// Signal length after layer `i` of the conv stack (pools after conv 1
    /// and conv 2, matching Table II).
    fn lengths(&self) -> [usize; 7] {
        let l1 = self.samples - self.kernels[0] + 1;
        let p1 = l1 / 2;
        let l2 = p1 - self.kernels[1] + 1;
        let p2 = l2 / 2;
        let l3 = p2 - self.kernels[2] + 1;
        let l4 = l3 - self.kernels[3] + 1;
        let l5 = l4 - self.kernels[4] + 1;
        [l1, p1, l2, p2, l3, l4, l5]
    }

    /// Flattened feature count entering the classifier.
    pub fn flat_features(&self) -> usize {
        self.effective_filters() * self.lengths()[6]
    }

    /// Builds the trainable network, split at the paper's binarization
    /// boundary: convolutional feature extractor vs dense classifier.
    pub fn build(&self, rng: &mut impl Rng) -> SplitModel {
        let s = self.strategy;
        let f = self.effective_filters();
        let act = ActivationKind::HardTanh;
        let mut seed = self.dropout_seed;
        let mut next_seed = || {
            seed += 1;
            seed
        };

        let mut features = Sequential::new();
        let mut in_ch = self.leads;
        for (i, &k) in self.kernels.iter().enumerate() {
            features.push(Conv1d::new(in_ch, f, k, 1, 0, s.conv_mode(), rng).without_bias());
            features.push(BatchNorm::new(f));
            features.push(s.conv_activation(act));
            if self.conv_keep < 1.0 {
                features.push(Dropout::new(self.conv_keep, next_seed()));
            }
            if i < 2 {
                features.push(Pool1d::max(2));
            }
            in_ch = f;
        }
        features.push(Flatten::new());
        if s.classifier_mode().is_binary() {
            // Binarize the feature/classifier interface (the hardware
            // classifier's inputs are single bits; see the EEG builder).
            features.push(BatchNorm::new(self.flat_features()));
            features.push(Activation::sign_ste());
        }

        let mut classifier = Sequential::new();
        if self.classifier_keep < 1.0 {
            classifier.push(Dropout::new(self.classifier_keep, next_seed()));
        }
        classifier.push(
            Dense::new(self.flat_features(), self.hidden, s.classifier_mode(), rng).without_bias(),
        );
        classifier.push(BatchNorm::new(self.hidden));
        classifier.push(s.classifier_activation(act));
        classifier
            .push(Dense::new(self.hidden, self.classes, s.classifier_mode(), rng).without_bias());
        classifier.push(BatchNorm::new(self.classes));
        SplitModel::new(features, classifier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rbnn_nn::{Layer, Phase};
    use rbnn_tensor::Tensor;

    #[test]
    fn paper_lengths_match_table2() {
        let cfg = EcgNetConfig::paper();
        assert_eq!(cfg.lengths(), [738, 369, 359, 179, 171, 165, 161]);
        assert_eq!(cfg.flat_features(), 5152);
    }

    #[test]
    fn paper_summary_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = EcgNetConfig::paper();
        let net = cfg.build(&mut rng);
        let out = net.out_shape(&cfg.input_shape());
        assert_eq!(out, vec![2]);
        let summary = net.summary(&cfg.input_shape());
        // Find the flatten row.
        let flat = summary
            .rows
            .iter()
            .find(|r| r.name == "Flatten")
            .expect("flatten row");
        assert_eq!(flat.out_shape, vec![5152]);
    }

    #[test]
    fn forward_backward_all_strategies() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = EcgNetConfig::reduced();
        for s in BinarizationStrategy::ALL {
            let mut net = cfg.clone().with_strategy(s).build(&mut rng);
            let x = Tensor::randn([2, 12, cfg.samples], 0.5, &mut rng);
            let y = net.forward(&x, Phase::Train);
            assert_eq!(y.dims(), &[2, 2], "strategy {s}");
            let gx = net.backward(&Tensor::ones([2, 2]));
            assert_eq!(gx.dims(), x.dims());
        }
    }

    #[test]
    fn classifier_dominates_parameters() {
        // The paper's memory argument (§III-C): most ECG parameters live in
        // the dense classifier.
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = EcgNetConfig::paper();
        let net = cfg.build(&mut rng);
        let summary = net.summary(&cfg.input_shape());
        let classifier: usize = summary
            .rows
            .iter()
            .filter(|r| r.name.contains("Dense"))
            .map(|r| r.params)
            .sum();
        let total = summary.total_params();
        assert!(
            classifier as f32 / total as f32 > 0.8,
            "classifier fraction {:.2} should dominate",
            classifier as f32 / total as f32
        );
    }

    #[test]
    fn augmentation_grows_conv_width_not_depth() {
        let mut rng = StdRng::seed_from_u64(3);
        let base = EcgNetConfig::reduced();
        let aug = EcgNetConfig::reduced().with_filter_augmentation(4);
        let n_base = base.build(&mut rng).summary(&base.input_shape()).rows.len();
        let n_aug = aug.build(&mut rng).summary(&aug.input_shape()).rows.len();
        assert_eq!(n_base, n_aug, "depth unchanged");
        assert_eq!(aug.effective_filters(), 32);
    }
}
