//! MobileNet V1 (§IV of the paper): depthwise-separable convolutions with a
//! replaceable classifier head.
//!
//! Two variants are provided:
//!
//! * [`MobileNetConfig::mini`] — a trainable, laptop-scale MobileNet for
//!   32×32 synthetic images, used by the Fig 8 / Table III row-3
//!   reproduction;
//! * [`MobileNetConfig::paper_224`] — the full MobileNet-224 architecture
//!   used **analytically** by the Table IV memory accounting (4.2 M
//!   parameters; training it is out of scope for a CPU reproduction and is
//!   not needed for the memory numbers).
//!
//! The paper replaces MobileNet's single dense classifier with a two-layer
//! *binarized* classifier; [`MobileNetConfig::with_strategy`] reproduces
//! that surgery.

use rand::Rng;

use rbnn_nn::{
    Activation, ActivationKind, BatchNorm, Conv2d, Dense, DepthwiseConv2d, Flatten,
    GlobalAvgPool2d, Sequential, SplitModel, WeightMode,
};

use crate::BinarizationStrategy;

/// One depthwise-separable block: channels and stride of the depthwise
/// stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSpec {
    /// Input channels of the block.
    pub in_channels: usize,
    /// Output channels (after the pointwise stage).
    pub out_channels: usize,
    /// Stride of the depthwise convolution.
    pub stride: usize,
}

/// Configuration of a MobileNet V1 style network.
#[derive(Debug, Clone)]
pub struct MobileNetConfig {
    /// Input `(channels, height, width)`.
    pub input: (usize, usize, usize),
    /// Stem convolution output channels and stride.
    pub stem: (usize, usize),
    /// Depthwise-separable block stack.
    pub blocks: Vec<BlockSpec>,
    /// Output classes.
    pub classes: usize,
    /// Hidden width of the *binarized* two-layer classifier; `None` keeps
    /// MobileNet's original single dense layer.
    pub binary_classifier_hidden: Option<usize>,
    /// Precision strategy.
    pub strategy: BinarizationStrategy,
}

impl MobileNetConfig {
    /// The full MobileNet-224 of the paper (width multiplier 1.0, 1000
    /// classes). Suitable for parameter accounting; too large to train here.
    pub fn paper_224() -> Self {
        let chain = [
            (32, 64, 1),
            (64, 128, 2),
            (128, 128, 1),
            (128, 256, 2),
            (256, 256, 1),
            (256, 512, 2),
            (512, 512, 1),
            (512, 512, 1),
            (512, 512, 1),
            (512, 512, 1),
            (512, 512, 1),
            (512, 1024, 2),
            (1024, 1024, 1),
        ];
        Self {
            input: (3, 224, 224),
            stem: (32, 2),
            blocks: chain
                .iter()
                .map(|&(i, o, s)| BlockSpec {
                    in_channels: i,
                    out_channels: o,
                    stride: s,
                })
                .collect(),
            classes: 1000,
            binary_classifier_hidden: None,
            strategy: BinarizationStrategy::RealWeights,
        }
    }

    /// The paper's binarized two-layer classifier for MobileNet-224: hidden
    /// width 2816 gives 1024·2816 + 2816·1000 ≈ 5.7 M binary parameters, the
    /// figure quoted in §IV.
    pub fn paper_224_bin_classifier() -> Self {
        let mut cfg = Self::paper_224();
        cfg.binary_classifier_hidden = Some(2816);
        cfg.strategy = BinarizationStrategy::BinarizedClassifier;
        cfg
    }

    /// Laptop-scale MobileNet for 32×32 synthetic images (Fig 8 proxy).
    pub fn mini(classes: usize) -> Self {
        let chain = [
            (16, 32, 1),
            (32, 64, 2),
            (64, 64, 1),
            (64, 128, 2),
            (128, 128, 1),
        ];
        Self {
            input: (3, 32, 32),
            stem: (16, 1),
            blocks: chain
                .iter()
                .map(|&(i, o, s)| BlockSpec {
                    in_channels: i,
                    out_channels: o,
                    stride: s,
                })
                .collect(),
            classes,
            binary_classifier_hidden: None,
            strategy: BinarizationStrategy::RealWeights,
        }
    }

    /// Builder-style strategy selection. Selecting
    /// [`BinarizationStrategy::BinarizedClassifier`] without a configured
    /// hidden width installs a two-layer binarized head of width
    /// `2 × feature_channels` (the paper's head is likewise wider than the
    /// feature dimension).
    pub fn with_strategy(mut self, strategy: BinarizationStrategy) -> Self {
        self.strategy = strategy;
        if strategy.classifier_mode() == WeightMode::Binary
            && self.binary_classifier_hidden.is_none()
        {
            self.binary_classifier_hidden = Some(2 * self.feature_channels());
        }
        self
    }

    /// Channels produced by the final block (the global-pooled feature
    /// dimension feeding the classifier).
    pub fn feature_channels(&self) -> usize {
        self.blocks
            .last()
            .map(|b| b.out_channels)
            .unwrap_or(self.stem.0)
    }

    /// Per-sample input shape.
    pub fn input_shape(&self) -> Vec<usize> {
        vec![self.input.0, self.input.1, self.input.2]
    }

    /// Builds the trainable network, split at the paper's binarization
    /// boundary: depthwise-separable feature extractor vs dense classifier.
    pub fn build(&self, rng: &mut impl Rng) -> SplitModel {
        let s = self.strategy;
        let act = ActivationKind::Relu;
        let mut features = Sequential::new();

        // Stem: standard 3×3 convolution.
        let (stem_ch, stem_stride) = self.stem;
        features.push(
            Conv2d::new(
                self.input.0,
                stem_ch,
                (3, 3),
                (stem_stride, stem_stride),
                (1, 1),
                s.conv_mode(),
                rng,
            )
            .without_bias(),
        );
        features.push(BatchNorm::new(stem_ch));
        features.push(s.conv_activation(act));

        // Depthwise-separable stack.
        for b in &self.blocks {
            features.push(
                DepthwiseConv2d::new(
                    b.in_channels,
                    (3, 3),
                    (b.stride, b.stride),
                    (1, 1),
                    s.conv_mode(),
                    rng,
                )
                .without_bias(),
            );
            features.push(BatchNorm::new(b.in_channels));
            features.push(s.conv_activation(act));
            features.push(
                Conv2d::pointwise(b.in_channels, b.out_channels, s.conv_mode(), rng).without_bias(),
            );
            features.push(BatchNorm::new(b.out_channels));
            features.push(s.conv_activation(act));
        }

        features.push(GlobalAvgPool2d::new());
        features.push(Flatten::new());

        let feat = self.feature_channels();
        if s.classifier_mode() == WeightMode::Binary {
            // Binarize the feature/classifier interface (see the EEG
            // builder): the hardware classifier's inputs are single bits.
            features.push(BatchNorm::new(feat));
            features.push(Activation::sign_ste());
        }
        let mut classifier = Sequential::new();
        match (s.classifier_mode(), self.binary_classifier_hidden) {
            (WeightMode::Binary, hidden) => {
                // The paper's two-layer binarized classifier.
                let h = hidden.unwrap_or(2 * feat);
                classifier.push(Dense::new(feat, h, WeightMode::Binary, rng).without_bias());
                classifier.push(BatchNorm::new(h));
                classifier.push(s.classifier_activation(act));
                classifier
                    .push(Dense::new(h, self.classes, WeightMode::Binary, rng).without_bias());
                classifier.push(BatchNorm::new(self.classes));
            }
            (WeightMode::Real, _) => {
                // Original MobileNet single dense classifier.
                classifier.push(Dense::new(feat, self.classes, WeightMode::Real, rng));
            }
        }
        SplitModel::new(features, classifier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rbnn_nn::{Layer, Phase};
    use rbnn_tensor::Tensor;

    #[test]
    fn paper_224_parameter_count_is_4_2m() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = MobileNetConfig::paper_224();
        let net = cfg.build(&mut rng);
        let total = net.param_count();
        // The canonical MobileNet V1 1.0-224 has ≈ 4.23 M parameters
        // (including BatchNorm); the paper rounds to 4.2 M.
        assert!(
            (4_100_000..4_350_000).contains(&total),
            "MobileNet-224 params {total} should be ≈ 4.2M"
        );
    }

    #[test]
    fn paper_binarized_classifier_is_5_7m() {
        let cfg = MobileNetConfig::paper_224_bin_classifier();
        let h = cfg.binary_classifier_hidden.unwrap();
        let params = 1024 * h + h * cfg.classes;
        assert!(
            (5_600_000..5_800_000).contains(&params),
            "binary classifier params {params} should be ≈ 5.7M"
        );
    }

    #[test]
    fn mini_forward_backward_all_strategies() {
        let mut rng = StdRng::seed_from_u64(1);
        for s in BinarizationStrategy::ALL {
            let cfg = MobileNetConfig::mini(16).with_strategy(s);
            let mut net = cfg.build(&mut rng);
            let x = Tensor::randn([2, 3, 32, 32], 1.0, &mut rng);
            let y = net.forward(&x, Phase::Train);
            assert_eq!(y.dims(), &[2, 16], "strategy {s}");
            let gx = net.backward(&Tensor::ones([2, 16]));
            assert_eq!(gx.dims(), x.dims());
        }
    }

    #[test]
    fn downsampling_reaches_small_feature_map() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = MobileNetConfig::mini(16);
        let net = cfg.build(&mut rng);
        let summary = net.summary(&cfg.input_shape());
        // Before global pooling: 128 channels at 8×8 (two stride-2 blocks).
        let gap_row = summary
            .rows
            .iter()
            .position(|r| r.name == "GlobalAvgPool")
            .unwrap();
        assert_eq!(summary.rows[gap_row - 1].out_shape, vec![128, 8, 8]);
        assert_eq!(summary.rows[gap_row].out_shape, vec![128]);
    }

    #[test]
    fn bin_classifier_head_is_two_layers() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg =
            MobileNetConfig::mini(16).with_strategy(BinarizationStrategy::BinarizedClassifier);
        let net = cfg.build(&mut rng);
        let summary = net.summary(&cfg.input_shape());
        let dense_rows: Vec<_> = summary
            .rows
            .iter()
            .filter(|r| r.name.contains("Dense"))
            .collect();
        assert_eq!(dense_rows.len(), 2);
        assert!(dense_rows.iter().all(|r| r.name.starts_with("BinDense")));
        // Convolutions stay real.
        assert!(!summary
            .rows
            .iter()
            .any(|r| r.name.starts_with("BinConv") || r.name.starts_with("BinDwConv")));
    }
}
