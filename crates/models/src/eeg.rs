//! The end-to-end EEG classification network of Table I (after Dose et al.).
//!
//! The model treats a trial as a single-channel 2-D image `[1, T, C]`
//! (time × electrodes) and applies:
//!
//! 1. **Conv in time** — `F` kernels of shape `30×1`, padding `15×0`;
//! 2. **Conv in space** — `F` kernels of shape `1×C` correlating all
//!    electrodes (and all `F` maps);
//! 3. average pooling `30×1`, stride `15×1`;
//! 4. a dense classifier `flatten → 80 → 2`.
//!
//! With the paper's dimensions (`T = 960`, `C = 64`, `F = 40`) the layer
//! outputs match Table I exactly: `961×64×40 → 961×1×40 → 63×1×40 → 2520 →
//! 80 → 2`.

use rand::Rng;

use rbnn_nn::{
    Activation, ActivationKind, BatchNorm, Conv2d, Dense, Flatten, Pool2d, PoolKind, Sequential,
    SplitModel,
};

use crate::BinarizationStrategy;

/// Configuration of the EEG network.
#[derive(Debug, Clone)]
pub struct EegNetConfig {
    /// Trial length in samples (paper: 960).
    pub time_steps: usize,
    /// Electrode count (paper: 64).
    pub channels: usize,
    /// Base number of convolution filters (paper: 40). Multiplied by
    /// `filter_augmentation`.
    pub filters: usize,
    /// Filter augmentation factor for BNN capacity recovery (Fig 7 / Table
    /// III report 1× and 11× for EEG).
    pub filter_augmentation: usize,
    /// Temporal kernel length (paper: 30).
    pub temporal_kernel: usize,
    /// Temporal padding (paper: 15).
    pub temporal_padding: usize,
    /// Average-pooling window along time (paper: 30).
    pub pool_kernel: usize,
    /// Average-pooling stride along time (paper: 15).
    pub pool_stride: usize,
    /// Hidden classifier width (paper: 80).
    pub hidden: usize,
    /// Output classes (paper: 2 — left vs right fist).
    pub classes: usize,
    /// Precision strategy.
    pub strategy: BinarizationStrategy,
}

impl EegNetConfig {
    /// Paper-scale architecture (Table I).
    pub fn paper() -> Self {
        Self {
            time_steps: 960,
            channels: 64,
            filters: 40,
            filter_augmentation: 1,
            temporal_kernel: 30,
            temporal_padding: 15,
            pool_kernel: 30,
            pool_stride: 15,
            hidden: 80,
            classes: 2,
            strategy: BinarizationStrategy::RealWeights,
        }
    }

    /// Laptop-scale architecture with the same topology (matches
    /// `rbnn_data::eeg::EegConfig::reduced`: 192 time steps, 16 channels).
    pub fn reduced() -> Self {
        Self {
            time_steps: 192,
            channels: 16,
            filters: 8,
            filter_augmentation: 1,
            temporal_kernel: 10,
            temporal_padding: 5,
            pool_kernel: 10,
            pool_stride: 5,
            hidden: 32,
            classes: 2,
            strategy: BinarizationStrategy::RealWeights,
        }
    }

    /// Builder-style strategy selection.
    pub fn with_strategy(mut self, strategy: BinarizationStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style filter augmentation.
    pub fn with_filter_augmentation(mut self, factor: usize) -> Self {
        assert!(factor >= 1, "augmentation factor must be at least 1");
        self.filter_augmentation = factor;
        self
    }

    /// Effective filter count (`filters × filter_augmentation`).
    pub fn effective_filters(&self) -> usize {
        self.filters * self.filter_augmentation
    }

    /// Per-sample input shape `[1, T, C]`.
    pub fn input_shape(&self) -> Vec<usize> {
        vec![1, self.time_steps, self.channels]
    }

    /// Builds the trainable network, split at the paper's binarization
    /// boundary: convolutional feature extractor vs dense classifier.
    ///
    /// Every weighted layer is followed by BatchNorm (which carries the
    /// learned threshold `b` of Eq. 3 in the binarized setting) and the
    /// strategy's activation; the paper's real EEG model uses ReLU.
    pub fn build(&self, rng: &mut impl Rng) -> SplitModel {
        let s = self.strategy;
        let f = self.effective_filters();
        let act = ActivationKind::Relu;
        let mut features = Sequential::new();

        // Conv in time: [1, T, C] → [F, T', C].
        features.push(
            Conv2d::new(
                1,
                f,
                (self.temporal_kernel, 1),
                (1, 1),
                (self.temporal_padding, 0),
                s.conv_mode(),
                rng,
            )
            .without_bias(),
        );
        features.push(BatchNorm::new(f));
        features.push(s.conv_activation(act));

        // Conv in space: [F, T', C] → [F, T', 1].
        features.push(
            Conv2d::new(f, f, (1, self.channels), (1, 1), (0, 0), s.conv_mode(), rng)
                .without_bias(),
        );
        features.push(BatchNorm::new(f));
        features.push(s.conv_activation(act));

        // Average pool along time.
        features.push(Pool2d::new(
            PoolKind::Avg,
            (self.pool_kernel, 1),
            (self.pool_stride, 1),
        ));
        features.push(Flatten::new());

        // Classifier: flatten → hidden → classes.
        let t_after_conv = self.time_steps + 2 * self.temporal_padding - self.temporal_kernel + 1;
        let t_after_pool = (t_after_conv - self.pool_kernel) / self.pool_stride + 1;
        let flat = f * t_after_pool;
        if s.classifier_mode().is_binary() {
            // A binarized classifier consumes *binary* activations in the
            // paper's hardware (XNOR-PCSA inputs are single bits), so the
            // feature/classifier interface is binarized during training:
            // per-feature BatchNorm + sign, trained through the STE.
            features.push(BatchNorm::new(flat));
            features.push(Activation::sign_ste());
        }
        let mut classifier = Sequential::new();
        classifier.push(Dense::new(flat, self.hidden, s.classifier_mode(), rng).without_bias());
        classifier.push(BatchNorm::new(self.hidden));
        classifier.push(s.classifier_activation(act));
        classifier
            .push(Dense::new(self.hidden, self.classes, s.classifier_mode(), rng).without_bias());
        classifier.push(BatchNorm::new(self.classes));
        SplitModel::new(features, classifier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rbnn_nn::{Layer, Phase};
    use rbnn_tensor::Tensor;

    #[test]
    fn paper_shapes_match_table1() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = EegNetConfig::paper();
        let net = cfg.build(&mut rng);
        let summary = net.summary(&cfg.input_shape());
        // Table I row by row (our summary interleaves BN/activation rows).
        assert_eq!(summary.rows[0].out_shape, vec![40, 961, 64], "conv in time");
        assert_eq!(summary.rows[3].out_shape, vec![40, 961, 1], "conv in space");
        assert_eq!(summary.rows[6].out_shape, vec![40, 63, 1], "avg pool");
        assert_eq!(summary.rows[7].out_shape, vec![2520], "flatten");
        assert_eq!(summary.rows[8].out_shape, vec![80], "hidden FC");
        let last = summary.rows.last().unwrap();
        assert_eq!(last.out_shape, vec![2], "output");
    }

    #[test]
    fn paper_parameter_count_matches_table4_order() {
        // Weight-only counts (we use bias-free conv + BN): conv1 40·30 =
        // 1200, conv2 40·40·64 = 102 400, FC1 2520·80 = 201 600,
        // FC2 80·2 = 160 → ≈ 0.31 M as Table IV reports.
        let mut rng = StdRng::seed_from_u64(0);
        let net = EegNetConfig::paper().build(&mut rng);
        let total = net.param_count();
        assert!(
            (300_000..320_000).contains(&total),
            "total params {total} should be ≈ 0.31M"
        );
    }

    #[test]
    fn reduced_network_forward_pass() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = EegNetConfig::reduced();
        for s in BinarizationStrategy::ALL {
            let mut net = cfg.clone().with_strategy(s).build(&mut rng);
            let x = Tensor::randn([2, 1, cfg.time_steps, cfg.channels], 1.0, &mut rng);
            let y = net.forward(&x, Phase::Train);
            assert_eq!(y.dims(), &[2, 2], "strategy {s}");
            let gx = net.backward(&Tensor::ones([2, 2]));
            assert_eq!(gx.dims(), x.dims());
        }
    }

    #[test]
    fn filter_augmentation_scales_width() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = EegNetConfig::reduced().with_filter_augmentation(2);
        assert_eq!(cfg.effective_filters(), 16);
        let net = cfg.build(&mut rng);
        let summary = net.summary(&cfg.input_shape());
        assert_eq!(summary.rows[0].out_shape[0], 16);
    }

    #[test]
    fn binarized_strategies_mark_dense_layers() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = EegNetConfig::reduced().with_strategy(BinarizationStrategy::BinarizedClassifier);
        let net = cfg.build(&mut rng);
        let names: Vec<String> = net
            .summary(&cfg.input_shape())
            .rows
            .iter()
            .map(|r| r.name.clone())
            .collect();
        assert!(names.iter().any(|n| n.starts_with("BinDense")), "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("Conv2d")), "{names:?}");
        assert!(
            !names.iter().any(|n| n.starts_with("BinConv2d")),
            "{names:?}"
        );
    }
}
