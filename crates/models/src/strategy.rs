//! The paper's three precision strategies.

use rbnn_nn::{Activation, ActivationKind, WeightMode};
use serde::{Deserialize, Serialize};

/// How a network's precision is allocated — the central algorithmic axis of
/// the paper (§III-C, Table III):
///
/// * [`RealWeights`](BinarizationStrategy::RealWeights) — the 32-bit float
///   baseline;
/// * [`FullyBinarized`](BinarizationStrategy::FullyBinarized) — every
///   weighted layer binarized, sign activations everywhere (a classic BNN);
/// * [`BinarizedClassifier`](BinarizationStrategy::BinarizedClassifier) —
///   convolutional feature extractor kept real, dense classifier binarized;
///   the paper's recommended operating point: accuracy within the error bar
///   of the real network while the classifier-dominated memory shrinks 32×.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BinarizationStrategy {
    /// Full-precision weights and activations everywhere.
    #[default]
    RealWeights,
    /// Binary (±1) weights and sign activations in every layer.
    FullyBinarized,
    /// Real convolutions, binarized dense classifier.
    BinarizedClassifier,
}

impl BinarizationStrategy {
    /// All three strategies, in the column order of Table III.
    pub const ALL: [BinarizationStrategy; 3] = [
        BinarizationStrategy::RealWeights,
        BinarizationStrategy::FullyBinarized,
        BinarizationStrategy::BinarizedClassifier,
    ];

    /// Weight mode of convolutional (feature-extractor) layers.
    pub fn conv_mode(self) -> WeightMode {
        match self {
            BinarizationStrategy::FullyBinarized => WeightMode::Binary,
            _ => WeightMode::Real,
        }
    }

    /// Weight mode of dense (classifier) layers.
    pub fn classifier_mode(self) -> WeightMode {
        match self {
            BinarizationStrategy::RealWeights => WeightMode::Real,
            _ => WeightMode::Binary,
        }
    }

    /// Activation after convolutional layers: the real activation the task
    /// model uses (`real_kind`), or sign when the convolutions are binary.
    pub fn conv_activation(self, real_kind: ActivationKind) -> Activation {
        match self.conv_mode() {
            WeightMode::Binary => Activation::sign_ste(),
            WeightMode::Real => Activation::new(real_kind),
        }
    }

    /// Activation inside the classifier.
    pub fn classifier_activation(self, real_kind: ActivationKind) -> Activation {
        match self.classifier_mode() {
            WeightMode::Binary => Activation::sign_ste(),
            WeightMode::Real => Activation::new(real_kind),
        }
    }

    /// Display label matching the paper's table headers.
    pub fn label(self) -> &'static str {
        match self {
            BinarizationStrategy::RealWeights => "Real Weights",
            BinarizationStrategy::FullyBinarized => "All-Binarized",
            BinarizationStrategy::BinarizedClassifier => "Bin Classifier",
        }
    }
}

impl std::fmt::Display for BinarizationStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_per_strategy() {
        use BinarizationStrategy::*;
        assert_eq!(RealWeights.conv_mode(), WeightMode::Real);
        assert_eq!(RealWeights.classifier_mode(), WeightMode::Real);
        assert_eq!(FullyBinarized.conv_mode(), WeightMode::Binary);
        assert_eq!(FullyBinarized.classifier_mode(), WeightMode::Binary);
        assert_eq!(BinarizedClassifier.conv_mode(), WeightMode::Real);
        assert_eq!(BinarizedClassifier.classifier_mode(), WeightMode::Binary);
    }

    #[test]
    fn activations_follow_modes() {
        use rbnn_nn::ActivationKind::*;
        let s = BinarizationStrategy::BinarizedClassifier;
        assert_eq!(s.conv_activation(Relu).kind(), Relu);
        assert_eq!(s.classifier_activation(Relu).kind(), SignSte);
        let b = BinarizationStrategy::FullyBinarized;
        assert_eq!(b.conv_activation(HardTanh).kind(), SignSte);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<_> = BinarizationStrategy::ALL
            .iter()
            .map(|s| s.label())
            .collect();
        assert_eq!(labels.len(), 3);
        assert!(labels.contains(&"Bin Classifier"));
    }
}
