//! Analytic memory accounting — the arithmetic behind Table IV.
//!
//! Table IV of the paper is pure architecture arithmetic: parameter counts
//! per model section, model sizes at 32-bit and 8-bit precision, and the
//! memory saved by binarizing only the classifier. This module reproduces
//! those numbers *exactly* from the layer specifications of Tables I and II
//! and the MobileNet V1 architecture.
//!
//! The saving percentages follow the paper's comparison: a model with a
//! binarized classifier stores `conv_params` words (32-bit or 8-bit) plus
//! `classifier_params` **bits**, compared against the homogeneous 32-bit
//! (resp. 8-bit) model.
//!
//! Note on the ECG row: Table II's shapes imply a classifier of
//! 5152·75 + 75 + 152 ≈ 0.39 M parameters, while Table IV prints 0.27 M
//! classifier / 0.31 M total. We compute from Table II as printed and
//! surface both numbers; see DESIGN.md §4.

use crate::mobilenet::MobileNetConfig;

/// Parameter breakdown of a model into feature extractor and classifier,
/// with an optional replacement binarized head of a different size (the
/// MobileNet case: 1 M real classifier replaced by a 5.7 M-bit binary one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryBreakdown {
    /// Model label as in Table IV.
    pub name: String,
    /// Parameters in convolutional / feature-extraction layers.
    pub conv_params: usize,
    /// Parameters in the dense classifier.
    pub classifier_params: usize,
    /// Parameter count of the *binarized replacement* classifier when it
    /// differs from `classifier_params` (MobileNet's two-layer head).
    pub bin_classifier_params: Option<usize>,
}

impl MemoryBreakdown {
    /// Total parameters of the original model.
    pub fn total_params(&self) -> usize {
        self.conv_params + self.classifier_params
    }

    /// Fraction of parameters residing in the classifier.
    pub fn classifier_fraction(&self) -> f64 {
        self.classifier_params as f64 / self.total_params() as f64
    }

    /// Original model size in bytes at `bits` per parameter.
    pub fn model_bytes(&self, bits: usize) -> usize {
        self.total_params() * bits / 8
    }

    /// Size in bytes of the binarized-classifier model with `bits`-wide
    /// convolutional weights.
    pub fn bin_classifier_bytes(&self, bits: usize) -> f64 {
        let bin = self.bin_classifier_params.unwrap_or(self.classifier_params);
        (self.conv_params * bits) as f64 / 8.0 + bin as f64 / 8.0
    }

    /// Memory saved by classifier binarization versus a homogeneous model at
    /// `bits` per weight, as a fraction in `[0, 1)` (Table IV's last
    /// column uses `bits = 32` and `bits = 8`).
    pub fn bin_classifier_saving(&self, bits: usize) -> f64 {
        let bin = self.bin_classifier_params.unwrap_or(self.classifier_params) as f64;
        let reference = (self.total_params() * bits) as f64;
        let with_bin = (self.conv_params * bits) as f64 + bin;
        1.0 - with_bin / reference
    }
}

/// EEG model of Table I (convolutions and dense layers with biases, as the
/// original Dose et al. model counts them): 0.31 M total, 0.2 M classifier.
pub fn eeg_paper() -> MemoryBreakdown {
    let conv1 = 40 * 30 + 40; // 40 temporal kernels 30×1 + bias
    let conv2 = 40 * (64 * 40) + 40; // 40 spatial kernels 1×64×40 + bias
    let fc1 = 2520 * 80 + 80;
    let fc2 = 80 * 2 + 2;
    MemoryBreakdown {
        name: "EEG".into(),
        conv_params: conv1 + conv2,
        classifier_params: fc1 + fc2,
        bin_classifier_params: None,
    }
}

/// ECG model of Table II: five convolutions (13/11/9/7/5 kernels, 32
/// filters) and the 5152→75→2 classifier.
pub fn ecg_paper() -> MemoryBreakdown {
    let f = 32;
    let convs = [
        f * 13 * 12 + f,
        f * 11 * f + f,
        f * 9 * f + f,
        f * 7 * f + f,
        f * 5 * f + f,
    ];
    let fc1 = 5152 * 75 + 75;
    let fc2 = 75 * 2 + 2;
    MemoryBreakdown {
        name: "ECG".into(),
        conv_params: convs.iter().sum(),
        classifier_params: fc1 + fc2,
        bin_classifier_params: None,
    }
}

/// MobileNet-224 of §IV: conv stack (with BatchNorm parameters, as the
/// published 4.2 M figure counts them), the original 1024→1000 classifier,
/// and the paper's 5.7 M-bit two-layer binarized replacement head.
pub fn mobilenet_paper() -> MemoryBreakdown {
    let cfg = MobileNetConfig::paper_224();
    // Stem: 3×3×3×32 conv + BN(32).
    let (stem_ch, _) = cfg.stem;
    let mut conv = 3 * 3 * cfg.input.0 * stem_ch + 2 * stem_ch;
    for b in &cfg.blocks {
        conv += 9 * b.in_channels + 2 * b.in_channels; // dw 3×3 + BN
        conv += b.in_channels * b.out_channels + 2 * b.out_channels; // pw 1×1 + BN
    }
    let classifier = 1024 * cfg.classes + cfg.classes;
    let bin_cfg = MobileNetConfig::paper_224_bin_classifier();
    let h = bin_cfg
        .binary_classifier_hidden
        .expect("paper bin classifier has a hidden width");
    MemoryBreakdown {
        name: "ImageNet".into(),
        conv_params: conv,
        classifier_params: classifier,
        bin_classifier_params: Some(1024 * h + h * cfg.classes),
    }
}

/// All three Table IV rows in paper order.
pub fn table4_rows() -> Vec<MemoryBreakdown> {
    vec![eeg_paper(), ecg_paper(), mobilenet_paper()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eeg_counts_match_paper() {
        let m = eeg_paper();
        // 0.31 M total, 0.2 M classifier, 0.11 M conv.
        assert_eq!(m.total_params(), 305_522);
        assert_eq!(m.classifier_params, 201_842);
        assert_eq!(m.conv_params, 103_680);
        // Model size: 1.17 MB at 32-bit, ~305 KB at 8-bit.
        assert!((m.model_bytes(32) as f64 / (1 << 20) as f64 - 1.17).abs() < 0.01);
        assert!((m.model_bytes(8) as f64 / 1000.0 - 305.5).abs() < 1.0);
    }

    #[test]
    fn eeg_savings_match_table4() {
        let m = eeg_paper();
        // Paper: 64% saving vs 32-bit, 57.8% vs 8-bit.
        assert!((m.bin_classifier_saving(32) * 100.0 - 64.0).abs() < 0.5);
        assert!((m.bin_classifier_saving(8) * 100.0 - 57.8).abs() < 0.5);
    }

    #[test]
    fn ecg_counts_exact_from_table2() {
        let m = ecg_paper();
        assert_eq!(m.conv_params, 37_920);
        assert_eq!(m.classifier_params, 386_627);
        // The paper's Table IV prints 0.27 M classifier / 0.31 M total,
        // inconsistent with Table II; we verify the printed-architecture
        // arithmetic and let the bench surface both (DESIGN.md §4).
        assert_eq!(m.total_params(), 424_547);
        // The qualitative claim survives: classifier dominates (>84% of
        // memory saved by binarizing it vs 32-bit model).
        assert!(m.bin_classifier_saving(32) > 0.84);
        assert!(m.classifier_fraction() > 0.85);
    }

    #[test]
    fn mobilenet_counts_match_paper() {
        let m = mobilenet_paper();
        // Canonical MobileNet V1 1.0-224: 3.2 M conv (incl. BN), 1.0 M
        // classifier, 4.2 M total.
        assert_eq!(m.conv_params, 3_206_976);
        assert_eq!(m.classifier_params, 1_025_000);
        assert_eq!(m.total_params(), 4_231_976);
        // Binary head ≈ 5.7 M bits (~696 KB).
        let bin = m.bin_classifier_params.unwrap();
        assert_eq!(bin, 5_699_584);
        assert!((bin as f64 / 8.0 / 1024.0 - 696.0).abs() < 1.0);
    }

    #[test]
    fn mobilenet_savings_match_table4() {
        let m = mobilenet_paper();
        // Paper: ~20% vs 32-bit, ~7.3% vs 8-bit.
        assert!((m.bin_classifier_saving(32) * 100.0 - 20.0).abs() < 0.5);
        assert!((m.bin_classifier_saving(8) * 100.0 - 7.3).abs() < 0.5);
    }

    #[test]
    fn table4_has_three_rows_in_order() {
        let rows = table4_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].name, "EEG");
        assert_eq!(rows[1].name, "ECG");
        assert_eq!(rows[2].name, "ImageNet");
    }

    #[test]
    fn savings_decrease_with_reference_precision() {
        // Binarization saves less versus an already-quantized reference.
        for m in table4_rows() {
            assert!(m.bin_classifier_saving(32) > m.bin_classifier_saving(8));
            assert!(m.bin_classifier_saving(8) > 0.0);
        }
    }
}
