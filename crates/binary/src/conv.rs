//! Deployed binarized 1-D convolution.
//!
//! The paper's Fig 5 architecture implements fully-connected layers; §II-B
//! notes that "this type of architecture can be adapted for convolutional
//! layers, with a key decision between minimizing data movement and data
//! reuse". This module provides the software model of such an adapted
//! engine: a 1-D convolution whose ±1 weights are bit-packed and whose
//! arithmetic is XNOR + popcount over bit-packed input windows — the
//! execution form of the convolutional layers of a *fully* binarized
//! network.

use rbnn_tensor::{BitMatrix, BitVec, Tensor};

use crate::{fold_batchnorm_sign, FoldedThreshold};

/// A deployed binarized 1-D convolution: `out_channels` filters of width
/// `kernel` over `in_channels` bit-packed input channels, followed by the
/// folded BatchNorm threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryConv1d {
    /// Filter weights, one row per output channel, columns ordered
    /// channel-major then tap-major (matching `rbnn_nn::Conv1d`).
    weights: BitMatrix,
    in_channels: usize,
    kernel: usize,
    scale: Vec<f32>,
    shift: Vec<f32>,
}

impl BinaryConv1d {
    /// Creates a layer from packed filters and per-channel affine
    /// coefficients.
    ///
    /// # Panics
    ///
    /// Panics if the weight columns don't equal `in_channels · kernel`, or
    /// coefficient lengths differ from the filter count.
    pub fn new(
        weights: BitMatrix,
        in_channels: usize,
        kernel: usize,
        scale: Vec<f32>,
        shift: Vec<f32>,
    ) -> Self {
        assert_eq!(
            weights.cols(),
            in_channels * kernel,
            "weight width mismatch"
        );
        assert_eq!(scale.len(), weights.rows(), "scale length mismatch");
        assert_eq!(shift.len(), weights.rows(), "shift length mismatch");
        Self {
            weights,
            in_channels,
            kernel,
            scale,
            shift,
        }
    }

    /// Packs the signs of a float filter tensor `[out, in·kernel]`.
    pub fn from_sign_tensor(
        weights: &Tensor,
        in_channels: usize,
        kernel: usize,
        scale: Vec<f32>,
        shift: Vec<f32>,
    ) -> Self {
        assert_eq!(
            weights.shape().ndim(),
            2,
            "weights must be [out, in·kernel]"
        );
        let (rows, cols) = (weights.dim(0), weights.dim(1));
        Self::new(
            BitMatrix::from_signs(weights.as_slice(), rows, cols),
            in_channels,
            kernel,
            scale,
            shift,
        )
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.weights.rows()
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Filter width.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Output length for an input of `len` steps (valid convolution,
    /// stride 1 — the form the paper's ECG network uses).
    pub fn out_len(&self, len: usize) -> usize {
        assert!(len >= self.kernel, "input shorter than kernel");
        len - self.kernel + 1
    }

    /// The folded integer thresholds of this layer.
    pub fn folded_thresholds(&self) -> Vec<FoldedThreshold> {
        let n = self.in_channels * self.kernel;
        self.scale
            .iter()
            .zip(&self.shift)
            .map(|(&s, &b)| fold_batchnorm_sign(s, b, n))
            .collect()
    }

    /// Raw popcounts: for each output channel and time step, the number of
    /// agreeing weight/input bit pairs in the window.
    ///
    /// `input` holds one [`BitVec`] of length `len` per input channel.
    ///
    /// The convolution is lowered `im2col`-style onto word-level kernels:
    /// [`BitMatrix::conv1d_windows`] gathers every sliding window into a
    /// bit-packed row (two shifts per channel instead of a per-bit loop),
    /// and each (filter, step) pair is then one row-versus-row
    /// `xnor_popcount` — the same kernel the dense inference engine and the
    /// RRAM sense path execute. Windows are assembled once and reused for
    /// every filter (the data-reuse flavour of the paper's design choice).
    ///
    /// # Panics
    ///
    /// Panics if channel counts or lengths are inconsistent.
    pub fn popcounts(&self, input: &[BitVec]) -> Vec<Vec<u32>> {
        assert_eq!(input.len(), self.in_channels, "channel count mismatch");
        let len = input[0].len();
        assert!(
            input.iter().all(|c| c.len() == len),
            "channel lengths differ"
        );
        let ol = self.out_len(len);
        let taps = self.in_channels * self.kernel;

        let windows = BitMatrix::conv1d_windows(input, self.kernel);
        let mut out = vec![vec![0u32; ol]; self.out_channels()];
        for (o, row) in out.iter_mut().enumerate() {
            let w = self.weights.row_words(o);
            for (t, v) in row.iter_mut().enumerate() {
                *v = rbnn_tensor::xnor_popcount(w, windows.row_words(t), taps);
            }
        }
        out
    }

    /// Binary forward: sign activations through the folded thresholds,
    /// one output [`BitVec`] per channel.
    pub fn forward_sign(&self, input: &[BitVec]) -> Vec<BitVec> {
        let thresholds = self.folded_thresholds();
        self.popcounts(input)
            .iter()
            .zip(&thresholds)
            .map(|(row, th)| row.iter().map(|&p| th.fire(p)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Float reference: valid ±1 convolution then BN+sign.
    fn float_reference(
        w: &[f32],
        x: &[Vec<f32>],
        out_ch: usize,
        in_ch: usize,
        kernel: usize,
        scale: &[f32],
        shift: &[f32],
    ) -> Vec<Vec<bool>> {
        let len = x[0].len();
        let ol = len - kernel + 1;
        let mut out = vec![vec![false; ol]; out_ch];
        for o in 0..out_ch {
            for t in 0..ol {
                let mut acc = 0.0f32;
                for c in 0..in_ch {
                    for k in 0..kernel {
                        acc += w[o * in_ch * kernel + c * kernel + k] * x[c][t + k];
                    }
                }
                out[o][t] = scale[o] * acc + shift[o] >= 0.0;
            }
        }
        out
    }

    #[test]
    fn binary_conv_matches_float_reference() {
        let mut rng = StdRng::seed_from_u64(0);
        let (out_ch, in_ch, kernel, len) = (4, 3, 5, 20);
        let w: Vec<f32> = (0..out_ch * in_ch * kernel)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let x: Vec<Vec<f32>> = (0..in_ch)
            .map(|_| {
                (0..len)
                    .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                    .collect()
            })
            .collect();
        let scale: Vec<f32> = (0..out_ch).map(|_| rng.gen_range(0.2..2.0)).collect();
        let shift: Vec<f32> = (0..out_ch).map(|_| rng.gen_range(-3.0..3.0)).collect();

        let layer = BinaryConv1d::new(
            BitMatrix::from_signs(&w, out_ch, in_ch * kernel),
            in_ch,
            kernel,
            scale.clone(),
            shift.clone(),
        );
        let xb: Vec<BitVec> = x.iter().map(|c| BitVec::from_signs(c)).collect();
        let got = layer.forward_sign(&xb);
        let expect = float_reference(&w, &x, out_ch, in_ch, kernel, &scale, &shift);
        for o in 0..out_ch {
            for t in 0..layer.out_len(len) {
                assert_eq!(got[o].get(t), expect[o][t], "({o},{t})");
            }
        }
    }

    #[test]
    fn binary_conv_matches_float_reference_at_word_boundary_taps() {
        // The deployed conv path rides `BitMatrix::conv1d_windows`, whose
        // word-gather fast path covers kernels ≤ 64 taps; 63/64/65 span
        // the regime change. 1-channel and odd-length signals keep the
        // window fields at awkward alignments.
        let mut rng = StdRng::seed_from_u64(13);
        for &kernel in &[63usize, 64, 65] {
            for &(in_ch, len) in &[(1usize, 97usize), (2, 101)] {
                let out_ch = 3;
                let w: Vec<f32> = (0..out_ch * in_ch * kernel)
                    .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                    .collect();
                let x: Vec<Vec<f32>> = (0..in_ch)
                    .map(|_| {
                        (0..len)
                            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                            .collect()
                    })
                    .collect();
                let scale: Vec<f32> = (0..out_ch).map(|_| rng.gen_range(0.2..2.0)).collect();
                let shift: Vec<f32> = (0..out_ch).map(|_| rng.gen_range(-3.0..3.0)).collect();
                let layer = BinaryConv1d::new(
                    BitMatrix::from_signs(&w, out_ch, in_ch * kernel),
                    in_ch,
                    kernel,
                    scale.clone(),
                    shift.clone(),
                );
                let xb: Vec<BitVec> = x.iter().map(|c| BitVec::from_signs(c)).collect();
                let got = layer.forward_sign(&xb);
                let expect = float_reference(&w, &x, out_ch, in_ch, kernel, &scale, &shift);
                for o in 0..out_ch {
                    for t in 0..layer.out_len(len) {
                        assert_eq!(
                            got[o].get(t),
                            expect[o][t],
                            "kernel {kernel}, in_ch {in_ch}, ({o},{t})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn geometry() {
        let layer = BinaryConv1d::new(
            BitMatrix::zeros(32, 12 * 13),
            12,
            13,
            vec![1.0; 32],
            vec![0.0; 32],
        );
        // Table II first layer: 750 samples → 738 output steps.
        assert_eq!(layer.out_len(750), 738);
        assert_eq!(layer.out_channels(), 32);
    }

    #[test]
    #[should_panic(expected = "weight width mismatch")]
    fn rejects_inconsistent_geometry() {
        let _ = BinaryConv1d::new(BitMatrix::zeros(4, 10), 3, 5, vec![1.0; 4], vec![0.0; 4]);
    }
}
