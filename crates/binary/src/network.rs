//! A deployed multi-layer binarized network.

use rbnn_tensor::{BitVec, Tensor};

use crate::BinaryDense;

/// A stack of [`BinaryDense`] layers: every layer but the last produces
/// binary activations through integer thresholds; the last layer produces
/// float logits for the argmax (the classifier of the paper's Fig 5
/// architecture).
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryNetwork {
    layers: Vec<BinaryDense>,
}

impl BinaryNetwork {
    /// Assembles a network and validates the layer chain.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive dimensions disagree.
    pub fn new(layers: Vec<BinaryDense>) -> Self {
        assert!(!layers.is_empty(), "network needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_features(),
                pair[1].in_features(),
                "layer chain dimension mismatch"
            );
        }
        Self { layers }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.layers[0].in_features()
    }

    /// Output class count.
    pub fn out_features(&self) -> usize {
        self.layers.last().expect("non-empty").out_features()
    }

    /// The layers, in forward order.
    pub fn layers(&self) -> &[BinaryDense] {
        &self.layers
    }

    /// Mutable layers — the fault-injection hook for the RRAM experiments.
    pub fn layers_mut(&mut self) -> &mut [BinaryDense] {
        &mut self.layers
    }

    /// Total stored weight bits (= RRAM synapses = 2× RRAM devices in the
    /// 2T2R encoding).
    pub fn weight_bits(&self) -> usize {
        self.layers.iter().map(|l| l.weight_bits()).sum()
    }

    /// Logits for an already-binarized input.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from `in_features()`.
    pub fn logits_bits(&self, x: &BitVec) -> Vec<f32> {
        let (hidden, last) = self.layers.split_at(self.layers.len() - 1);
        let mut h = x.clone();
        for layer in hidden {
            h = layer.forward_sign(&h);
        }
        last[0].forward_affine(&h)
    }

    /// Logits for a real-valued feature vector, binarized by sign at the
    /// input (the hardware's input interface; see DESIGN.md on the
    /// binarized-classifier deployment).
    pub fn logits(&self, x: &[f32]) -> Vec<f32> {
        self.logits_bits(&BitVec::from_signs(x))
    }

    /// Predicted class for a real-valued feature vector.
    pub fn classify(&self, x: &[f32]) -> usize {
        let logits = self.logits(x);
        let mut best = 0;
        for (i, &v) in logits.iter().enumerate() {
            if v > logits[best] {
                best = i;
            }
        }
        best
    }

    /// Top-1 accuracy over a feature matrix `[N, in_features]`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the network or label count.
    pub fn accuracy(&self, features: &Tensor, labels: &[usize]) -> f32 {
        assert_eq!(features.shape().ndim(), 2, "expected [N, features]");
        assert_eq!(features.dim(0), labels.len(), "label count mismatch");
        assert_eq!(features.dim(1), self.in_features(), "feature width mismatch");
        if labels.is_empty() {
            return 0.0;
        }
        let n = features.dim(0);
        let f = features.dim(1);
        let xs = features.as_slice();
        let mut hits = 0usize;
        for (i, &y) in labels.iter().enumerate() {
            if self.classify(&xs[i * f..(i + 1) * f]) == y {
                hits += 1;
            }
        }
        hits as f32 / n as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbnn_tensor::BitMatrix;

    /// A hand-crafted 2-input XOR-ish network to pin down semantics:
    /// layer 1 computes two AND-like neurons, layer 2 combines them.
    fn tiny_network() -> BinaryNetwork {
        // Layer 1: 2 → 2, identity-ish weights.
        let w1 = BitMatrix::from_signs(&[1.0, 1.0, -1.0, 1.0], 2, 2);
        // Thresholds: neuron fires iff dot ≥ 0 (scale 1, shift 0).
        let l1 = BinaryDense::new(w1, vec![1.0, 1.0], vec![0.0, 0.0]);
        // Layer 2: 2 → 2 affine output.
        let w2 = BitMatrix::from_signs(&[1.0, -1.0, -1.0, 1.0], 2, 2);
        let l2 = BinaryDense::new(w2, vec![1.0, 1.0], vec![0.0, 0.0]);
        BinaryNetwork::new(vec![l1, l2])
    }

    #[test]
    fn dimensions() {
        let net = tiny_network();
        assert_eq!(net.in_features(), 2);
        assert_eq!(net.out_features(), 2);
        assert_eq!(net.weight_bits(), 8);
        assert_eq!(net.layers().len(), 2);
    }

    #[test]
    fn classify_is_argmax_of_logits() {
        let net = tiny_network();
        for x in [[1.0f32, 1.0], [1.0, -1.0], [-1.0, 1.0], [-1.0, -1.0]] {
            let logits = net.logits(&x);
            let cls = net.classify(&x);
            let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            assert_eq!(logits[cls], max);
        }
    }

    #[test]
    fn accuracy_counts_correctly() {
        let net = tiny_network();
        let x = Tensor::from_vec(vec![1.0, 1.0, -1.0, -1.0], &[2, 2]);
        let preds: Vec<usize> = (0..2)
            .map(|i| net.classify(&x.as_slice()[i * 2..(i + 1) * 2]))
            .collect();
        assert_eq!(net.accuracy(&x, &preds), 1.0);
        let wrong: Vec<usize> = preds.iter().map(|&p| 1 - p).collect();
        assert_eq!(net.accuracy(&x, &wrong), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_bad_chain() {
        let l1 = BinaryDense::new(BitMatrix::zeros(3, 2), vec![1.0; 3], vec![0.0; 3]);
        let l2 = BinaryDense::new(BitMatrix::zeros(2, 4), vec![1.0; 2], vec![0.0; 2]);
        let _ = BinaryNetwork::new(vec![l1, l2]);
    }
}
