//! A deployed multi-layer binarized network.

use rbnn_tensor::{BitMatrix, BitVec, Tensor};

use crate::BinaryDense;

/// A stack of [`BinaryDense`] layers: every layer but the last produces
/// binary activations through integer thresholds; the last layer produces
/// float logits for the argmax (the classifier of the paper's Fig 5
/// architecture).
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryNetwork {
    layers: Vec<BinaryDense>,
}

impl BinaryNetwork {
    /// Assembles a network and validates the layer chain.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive dimensions disagree.
    pub fn new(layers: Vec<BinaryDense>) -> Self {
        assert!(!layers.is_empty(), "network needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_features(),
                pair[1].in_features(),
                "layer chain dimension mismatch"
            );
        }
        Self { layers }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.layers[0].in_features()
    }

    /// Output class count.
    pub fn out_features(&self) -> usize {
        self.layers.last().expect("non-empty").out_features()
    }

    /// The layers, in forward order.
    pub fn layers(&self) -> &[BinaryDense] {
        &self.layers
    }

    /// Mutable layers — the fault-injection hook for the RRAM experiments.
    pub fn layers_mut(&mut self) -> &mut [BinaryDense] {
        &mut self.layers
    }

    /// Total stored weight bits (= RRAM synapses = 2× RRAM devices in the
    /// 2T2R encoding).
    pub fn weight_bits(&self) -> usize {
        self.layers.iter().map(|l| l.weight_bits()).sum()
    }

    /// Logits for an already-binarized input.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from `in_features()`.
    pub fn logits_bits(&self, x: &BitVec) -> Vec<f32> {
        let (hidden, last) = self.layers.split_at(self.layers.len() - 1);
        let mut h = x.clone();
        for layer in hidden {
            h = layer.forward_sign(&h);
        }
        last[0].forward_affine(&h)
    }

    /// Logits for a real-valued feature vector, binarized by sign at the
    /// input (the hardware's input interface; see DESIGN.md on the
    /// binarized-classifier deployment).
    pub fn logits(&self, x: &[f32]) -> Vec<f32> {
        self.logits_bits(&BitVec::from_signs(x))
    }

    /// Predicted class for a real-valued feature vector.
    pub fn classify(&self, x: &[f32]) -> usize {
        rbnn_tensor::argmax(&self.logits(x))
    }

    /// Batched logits for an already-binarized `[N, in_features]` batch:
    /// returns a `[N, out_features]` tensor.
    ///
    /// Bit-for-bit identical to [`logits_bits`](Self::logits_bits) per row;
    /// the batched hidden layers fold thresholds once and keep each weight
    /// row hot across the batch.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from `in_features()`.
    pub fn logits_batch_bits(&self, x: &BitMatrix) -> Tensor {
        assert_eq!(x.cols(), self.in_features(), "feature width mismatch");
        let n = x.rows();
        let (hidden, last) = self.layers.split_at(self.layers.len() - 1);
        let mut h = x.clone();
        for layer in hidden {
            h = layer.forward_sign_batch(&h);
        }
        let logits = last[0].forward_affine_batch(&h);
        Tensor::from_vec(logits, [n, self.out_features()])
    }

    /// Batched logits for a real-valued `[N, in_features]` feature matrix,
    /// sign-binarized at the input interface.
    ///
    /// # Panics
    ///
    /// Panics if `features` is not 2-D with width `in_features()`.
    pub fn logits_batch(&self, features: &Tensor) -> Tensor {
        assert_eq!(features.shape().ndim(), 2, "expected [N, features]");
        assert_eq!(
            features.dim(1),
            self.in_features(),
            "feature width mismatch"
        );
        let n = features.dim(0);
        let x = BitMatrix::from_signs(features.as_slice(), n, self.in_features());
        self.logits_batch_bits(&x)
    }

    /// Batched logits over separate per-sample feature slices (the serving
    /// path: requests arrive as individual vectors and are packed straight
    /// into the bit-matrix, with no intermediate concatenation).
    ///
    /// # Panics
    ///
    /// Panics if any slice's length differs from `in_features()`.
    pub fn logits_batch_rows(&self, rows: &[&[f32]]) -> Tensor {
        self.logits_batch_bits(&BitMatrix::from_sign_rows(rows, self.in_features()))
    }

    /// Batched argmax classification of a `[N, in_features]` feature
    /// matrix.
    pub fn classify_batch(&self, features: &Tensor) -> Vec<usize> {
        let logits = self.logits_batch(features);
        let c = self.out_features();
        logits
            .as_slice()
            .chunks_exact(c.max(1))
            .map(rbnn_tensor::argmax)
            .collect()
    }

    /// Top-1 accuracy over a feature matrix `[N, in_features]`, evaluated
    /// through the batched kernels.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the network or label count.
    pub fn accuracy(&self, features: &Tensor, labels: &[usize]) -> f32 {
        assert_eq!(features.shape().ndim(), 2, "expected [N, features]");
        assert_eq!(features.dim(0), labels.len(), "label count mismatch");
        assert_eq!(
            features.dim(1),
            self.in_features(),
            "feature width mismatch"
        );
        if labels.is_empty() {
            return 0.0;
        }
        let preds = self.classify_batch(features);
        let hits = preds.iter().zip(labels).filter(|(p, y)| p == y).count();
        hits as f32 / labels.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbnn_tensor::BitMatrix;

    /// A hand-crafted 2-input XOR-ish network to pin down semantics:
    /// layer 1 computes two AND-like neurons, layer 2 combines them.
    fn tiny_network() -> BinaryNetwork {
        // Layer 1: 2 → 2, identity-ish weights.
        let w1 = BitMatrix::from_signs(&[1.0, 1.0, -1.0, 1.0], 2, 2);
        // Thresholds: neuron fires iff dot ≥ 0 (scale 1, shift 0).
        let l1 = BinaryDense::new(w1, vec![1.0, 1.0], vec![0.0, 0.0]);
        // Layer 2: 2 → 2 affine output.
        let w2 = BitMatrix::from_signs(&[1.0, -1.0, -1.0, 1.0], 2, 2);
        let l2 = BinaryDense::new(w2, vec![1.0, 1.0], vec![0.0, 0.0]);
        BinaryNetwork::new(vec![l1, l2])
    }

    #[test]
    fn dimensions() {
        let net = tiny_network();
        assert_eq!(net.in_features(), 2);
        assert_eq!(net.out_features(), 2);
        assert_eq!(net.weight_bits(), 8);
        assert_eq!(net.layers().len(), 2);
    }

    #[test]
    fn classify_is_argmax_of_logits() {
        let net = tiny_network();
        for x in [[1.0f32, 1.0], [1.0, -1.0], [-1.0, 1.0], [-1.0, -1.0]] {
            let logits = net.logits(&x);
            let cls = net.classify(&x);
            let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            assert_eq!(logits[cls], max);
        }
    }

    #[test]
    fn accuracy_counts_correctly() {
        let net = tiny_network();
        let x = Tensor::from_vec(vec![1.0, 1.0, -1.0, -1.0], &[2, 2]);
        let preds: Vec<usize> = (0..2)
            .map(|i| net.classify(&x.as_slice()[i * 2..(i + 1) * 2]))
            .collect();
        assert_eq!(net.accuracy(&x, &preds), 1.0);
        let wrong: Vec<usize> = preds.iter().map(|&p| 1 - p).collect();
        assert_eq!(net.accuracy(&x, &wrong), 0.0);
    }

    #[test]
    fn logits_batch_is_bit_for_bit_single() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(44);
        // 100 random (network, batch) draws across odd widths, including
        // word-boundary sizes and an empty batch.
        for case in 0..100 {
            let inp = rng.gen_range(1usize..200);
            let hid = rng.gen_range(1usize..70);
            let cls = rng.gen_range(2usize..6);
            let mk = |out: usize, inp: usize, rng: &mut StdRng| {
                let w: Vec<f32> = (0..out * inp)
                    .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                    .collect();
                let scale: Vec<f32> = (0..out).map(|_| rng.gen_range(-2.0..2.0)).collect();
                let shift: Vec<f32> = (0..out).map(|_| rng.gen_range(-3.0..3.0)).collect();
                BinaryDense::new(BitMatrix::from_signs(&w, out, inp), scale, shift)
            };
            let net = BinaryNetwork::new(vec![mk(hid, inp, &mut rng), mk(cls, hid, &mut rng)]);
            let n = if case == 0 {
                0
            } else {
                rng.gen_range(1usize..12)
            };
            let xs: Vec<f32> = (0..n * inp).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let batch = Tensor::from_vec(xs.clone(), [n, inp]);
            let got = net.logits_batch(&batch);
            assert_eq!(got.dims(), [n, cls]);
            let preds = net.classify_batch(&batch);
            for i in 0..n {
                let single = net.logits(&xs[i * inp..(i + 1) * inp]);
                assert_eq!(
                    &got.as_slice()[i * cls..(i + 1) * cls],
                    single.as_slice(),
                    "case {case}, row {i}"
                );
                assert_eq!(preds[i], net.classify(&xs[i * inp..(i + 1) * inp]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_bad_chain() {
        let l1 = BinaryDense::new(BitMatrix::zeros(3, 2), vec![1.0; 3], vec![0.0; 3]);
        let l2 = BinaryDense::new(BitMatrix::zeros(2, 4), vec![1.0; 2], vec![0.0; 2]);
        let _ = BinaryNetwork::new(vec![l1, l2]);
    }
}
