//! A deployed binarized fully-connected layer.

use rbnn_tensor::{BitMatrix, BitVec, Tensor};

use crate::{fold_batchnorm_sign, FoldedThreshold};

/// A fully-connected BNN layer in deployment form: bit-packed ±1 weights
/// plus the per-neuron affine `(scale, shift)` that the training-time
/// BatchNorm reduces to at inference.
///
/// Two execution modes mirror the paper's hardware:
///
/// * [`forward_sign`](Self::forward_sign) — hidden layer: XNOR + popcount +
///   integer threshold (Eq. 3), producing the next layer's binary
///   activations;
/// * [`forward_affine`](Self::forward_affine) — output layer: the affine
///   value itself is the logit used for the final argmax (the softmax of the
///   paper is only needed for training).
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryDense {
    weights: BitMatrix,
    scale: Vec<f32>,
    shift: Vec<f32>,
}

impl BinaryDense {
    /// Creates a layer from packed weights and per-output affine
    /// coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `scale`/`shift` lengths differ from the weight row count.
    pub fn new(weights: BitMatrix, scale: Vec<f32>, shift: Vec<f32>) -> Self {
        assert_eq!(scale.len(), weights.rows(), "scale length mismatch");
        assert_eq!(shift.len(), weights.rows(), "shift length mismatch");
        Self {
            weights,
            scale,
            shift,
        }
    }

    /// Packs the signs of a float weight matrix `[out, in]` (e.g. the
    /// effective weights of a trained binarized `rbnn_nn::Dense`).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or coefficient lengths mismatch.
    pub fn from_sign_tensor(weights: &Tensor, scale: Vec<f32>, shift: Vec<f32>) -> Self {
        assert_eq!(weights.shape().ndim(), 2, "weights must be [out, in]");
        let (rows, cols) = (weights.dim(0), weights.dim(1));
        Self::new(
            BitMatrix::from_signs(weights.as_slice(), rows, cols),
            scale,
            shift,
        )
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weights.cols()
    }

    /// Output neuron count.
    pub fn out_features(&self) -> usize {
        self.weights.rows()
    }

    /// The packed weight matrix (what gets programmed into RRAM).
    pub fn weights(&self) -> &BitMatrix {
        &self.weights
    }

    /// Mutable weights — the fault-injection hook used by the RRAM
    /// bit-error experiments.
    pub fn weights_mut(&mut self) -> &mut BitMatrix {
        &mut self.weights
    }

    /// Per-output affine coefficients `(scale, shift)`.
    pub fn affine(&self) -> (&[f32], &[f32]) {
        (&self.scale, &self.shift)
    }

    /// Raw XNOR-popcounts per output neuron — what the paper's array +
    /// popcount logic computes before thresholding.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_features()`.
    pub fn popcounts(&self, x: &BitVec) -> Vec<u32> {
        assert_eq!(x.len(), self.in_features(), "input length mismatch");
        (0..self.weights.rows())
            .map(|r| rbnn_tensor::xnor_popcount(self.weights.row_words(r), x.as_words(), x.len()))
            .collect()
    }

    /// The integer thresholds equivalent to this layer's BatchNorm + sign.
    pub fn folded_thresholds(&self) -> Vec<FoldedThreshold> {
        let n = self.in_features();
        self.scale
            .iter()
            .zip(&self.shift)
            .map(|(&s, &b)| fold_batchnorm_sign(s, b, n))
            .collect()
    }

    /// Hidden-layer forward: binary in, binary out, integer-only datapath.
    pub fn forward_sign(&self, x: &BitVec) -> BitVec {
        let thresholds = self.folded_thresholds();
        self.popcounts(x)
            .iter()
            .zip(&thresholds)
            .map(|(&p, th)| th.fire(p))
            .collect()
    }

    /// Output-layer forward: binary in, float logits out
    /// (`scale · (2·popcount − n) + shift`).
    pub fn forward_affine(&self, x: &BitVec) -> Vec<f32> {
        let n = self.in_features() as f32;
        self.popcounts(x)
            .iter()
            .zip(self.scale.iter().zip(&self.shift))
            .map(|(&p, (&s, &b))| s * (2.0 * p as f32 - n) + b)
            .collect()
    }

    /// Total weight bits stored (the layer's RRAM footprint in synapses).
    pub fn weight_bits(&self) -> usize {
        self.weights.rows() * self.weights.cols()
    }

    /// Batched XNOR-popcounts: row `i` of the result holds the per-neuron
    /// popcounts for sample `i` of the packed `[N, in_features]` batch.
    ///
    /// Bit-for-bit identical to calling [`popcounts`](Self::popcounts) per
    /// sample; faster because each weight row's words stay hot across the
    /// whole batch and no per-sample `BitVec` is materialized.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_features()`.
    pub fn popcounts_batch(&self, x: &BitMatrix) -> Vec<u32> {
        assert_eq!(x.cols(), self.in_features(), "input width mismatch");
        let n = x.rows();
        let out = self.out_features();
        let bits = self.in_features();
        let mut counts = vec![0u32; n * out];
        for r in 0..out {
            let w = self.weights.row_words(r);
            for i in 0..n {
                counts[i * out + r] = rbnn_tensor::xnor_popcount(w, x.row_words(i), bits);
            }
        }
        counts
    }

    /// Batched hidden-layer forward: `[N, in]` bits to `[N, out]` bits.
    ///
    /// Folds the integer thresholds once for the whole batch (the
    /// single-sample path re-folds them per call).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_features()`.
    pub fn forward_sign_batch(&self, x: &BitMatrix) -> BitMatrix {
        let n = x.rows();
        let out = self.out_features();
        let thresholds = self.folded_thresholds();
        let counts = self.popcounts_batch(x);
        let mut y = BitMatrix::zeros(n, out);
        for i in 0..n {
            let row = &counts[i * out..(i + 1) * out];
            y.set_row_bits(i, |r| thresholds[r].fire(row[r]));
        }
        y
    }

    /// Batched output-layer forward: `[N, in]` bits to `N × out` logits,
    /// row-major.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_features()`.
    pub fn forward_affine_batch(&self, x: &BitMatrix) -> Vec<f32> {
        let n_in = self.in_features() as f32;
        let out = self.out_features();
        let counts = self.popcounts_batch(x);
        let mut logits = Vec::with_capacity(counts.len());
        for chunk in counts.chunks_exact(out.max(1)) {
            for (r, &p) in chunk.iter().enumerate() {
                logits.push(self.scale[r] * (2.0 * p as f32 - n_in) + self.shift[r]);
            }
        }
        logits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_layer(out: usize, inp: usize, rng: &mut StdRng) -> BinaryDense {
        let w: Vec<f32> = (0..out * inp)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let scale = (0..out).map(|_| rng.gen_range(0.2..2.0)).collect();
        let shift = (0..out).map(|_| rng.gen_range(-3.0..3.0)).collect();
        BinaryDense::new(BitMatrix::from_signs(&w, out, inp), scale, shift)
    }

    fn random_bits(n: usize, rng: &mut StdRng) -> BitVec {
        (0..n).map(|_| rng.gen::<bool>()).collect()
    }

    #[test]
    fn forward_sign_equals_sign_of_affine() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            let layer = random_layer(7, 33, &mut rng);
            let x = random_bits(33, &mut rng);
            let signs = layer.forward_sign(&x);
            let affine = layer.forward_affine(&x);
            for (i, &a) in affine.iter().enumerate() {
                assert_eq!(signs.get(i), a >= 0.0, "neuron {i}: affine {a}");
            }
        }
    }

    #[test]
    fn forward_affine_matches_float_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        let (out, inp) = (4, 21);
        let w: Vec<f32> = (0..out * inp)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let scale: Vec<f32> = (0..out).map(|_| rng.gen_range(0.2..2.0)).collect();
        let shift: Vec<f32> = (0..out).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let layer = BinaryDense::new(
            BitMatrix::from_signs(&w, out, inp),
            scale.clone(),
            shift.clone(),
        );
        let xin: Vec<f32> = (0..inp)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let x = BitVec::from_signs(&xin);
        let got = layer.forward_affine(&x);
        for o in 0..out {
            let dot: f32 = (0..inp).map(|i| w[o * inp + i] * xin[i]).sum();
            let expect = scale[o] * dot + shift[o];
            assert!(
                (got[o] - expect).abs() < 1e-4,
                "neuron {o}: {} vs {expect}",
                got[o]
            );
        }
    }

    #[test]
    fn weight_flip_changes_one_popcount_by_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = random_layer(3, 40, &mut rng);
        let x = random_bits(40, &mut rng);
        let before = layer.popcounts(&x);
        layer.weights_mut().flip(1, 17);
        let after = layer.popcounts(&x);
        assert_eq!(before[0], after[0]);
        assert_eq!(before[2], after[2]);
        assert_eq!((before[1] as i32 - after[1] as i32).abs(), 1);
    }

    #[test]
    fn dimensions_and_bits() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = random_layer(5, 12, &mut rng);
        assert_eq!(layer.in_features(), 12);
        assert_eq!(layer.out_features(), 5);
        assert_eq!(layer.weight_bits(), 60);
    }

    #[test]
    fn batch_paths_match_single_sample() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let out = rng.gen_range(1usize..10);
            let inp = rng.gen_range(1usize..160);
            let layer = random_layer(out, inp, &mut rng);
            let n = rng.gen_range(0usize..9);
            let mut batch = rbnn_tensor::BitMatrix::zeros(n, inp);
            let singles: Vec<BitVec> = (0..n)
                .map(|i| {
                    let x = random_bits(inp, &mut rng);
                    batch.set_row(i, &x);
                    x
                })
                .collect();
            let counts = layer.popcounts_batch(&batch);
            let signs = layer.forward_sign_batch(&batch);
            let affine = layer.forward_affine_batch(&batch);
            for (i, x) in singles.iter().enumerate() {
                assert_eq!(
                    &counts[i * out..(i + 1) * out],
                    layer.popcounts(x).as_slice()
                );
                assert_eq!(signs.row(i), layer.forward_sign(x), "row {i}");
                assert_eq!(
                    &affine[i * out..(i + 1) * out],
                    layer.forward_affine(x).as_slice(),
                    "row {i}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "scale length mismatch")]
    fn rejects_mismatched_affine() {
        let _ = BinaryDense::new(BitMatrix::zeros(3, 4), vec![1.0; 2], vec![0.0; 3]);
    }
}
