//! Exporting a trained binarized classifier to the deployment engine.
//!
//! A classifier trained with `rbnn-nn` in [`WeightMode::Binary`] is a chain
//! of `Dense → BatchNorm → Sign` groups (dropout interspersed, identity at
//! inference). This module walks such a [`Sequential`], extracts the sign of
//! the latent weights and the BatchNorm inference coefficients, and packs
//! them into a [`BinaryNetwork`] whose integer-only forward pass is
//! *bit-exact* with the float evaluation-mode forward of the training graph
//! on ±1 inputs.

use std::error::Error;
use std::fmt;

use rbnn_nn::{
    Activation, ActivationKind, BatchNorm, Dense, Dropout, Layer, Sequential, WeightMode,
};

use crate::{BinaryDense, BinaryNetwork};

/// Why a classifier could not be exported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportError {
    /// A dense layer still has real-valued weight mode.
    NotBinarized(String),
    /// A dense layer is not followed by BatchNorm.
    MissingBatchNorm(String),
    /// A layer type the deployment engine does not support was found.
    Unsupported(String),
    /// The classifier contains no dense layers at all.
    Empty,
    /// An activation other than sign sits between binarized layers.
    WrongActivation(String),
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExportError::NotBinarized(l) => {
                write!(
                    f,
                    "layer {l} has real weights; train with WeightMode::Binary"
                )
            }
            ExportError::MissingBatchNorm(l) => {
                write!(
                    f,
                    "layer {l} is not followed by BatchNorm; the threshold fold needs it"
                )
            }
            ExportError::Unsupported(l) => write!(f, "unsupported layer {l} in classifier"),
            ExportError::Empty => write!(f, "classifier contains no dense layers"),
            ExportError::WrongActivation(l) => {
                write!(f, "activation {l} between binarized layers must be sign")
            }
        }
    }
}

impl Error for ExportError {}

/// Exports a trained binarized classifier (`Dense(binary) → BatchNorm →
/// Sign …` chain, dropout allowed) into a [`BinaryNetwork`].
///
/// # Errors
///
/// Returns an [`ExportError`] when the sequential does not have the expected
/// deployable structure.
pub fn export_classifier(classifier: &Sequential) -> Result<BinaryNetwork, ExportError> {
    let mut packed: Vec<BinaryDense> = Vec::new();
    let mut pending: Option<&Dense> = None;

    for layer in classifier.layers() {
        let any = layer.as_any();
        if any.downcast_ref::<Dropout>().is_some() {
            continue; // identity at inference
        }
        if let Some(dense) = any.downcast_ref::<Dense>() {
            if pending.is_some() {
                return Err(ExportError::MissingBatchNorm(dense.name()));
            }
            if dense.mode() != WeightMode::Binary {
                return Err(ExportError::NotBinarized(dense.name()));
            }
            pending = Some(dense);
            continue;
        }
        if let Some(bn) = any.downcast_ref::<BatchNorm>() {
            let dense = pending
                .take()
                .ok_or_else(|| ExportError::Unsupported(bn.name()))?;
            let (scale, shift) = bn.inference_coefficients();
            let mut weights = dense.effective_weight();
            if let Some(bias) = dense.bias_value() {
                // A bias before BN would break the pure popcount datapath;
                // builders use bias-free dense layers. Tolerate zero biases.
                if bias.norm_sq() > 0.0 {
                    return Err(ExportError::Unsupported(format!(
                        "{} has a non-zero bias; use bias-free dense layers before BatchNorm",
                        dense.name()
                    )));
                }
            }
            // Defensive: make sure the packed weights are pure signs.
            weights.map_in_place(|w| if w >= 0.0 { 1.0 } else { -1.0 });
            packed.push(BinaryDense::from_sign_tensor(&weights, scale, shift));
            continue;
        }
        if let Some(act) = any.downcast_ref::<Activation>() {
            if act.kind() != ActivationKind::SignSte {
                return Err(ExportError::WrongActivation(act.name()));
            }
            continue;
        }
        return Err(ExportError::Unsupported(layer.name()));
    }
    if let Some(dense) = pending {
        return Err(ExportError::MissingBatchNorm(dense.name()));
    }
    if packed.is_empty() {
        return Err(ExportError::Empty);
    }
    Ok(BinaryNetwork::new(packed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rbnn_nn::{Phase, WeightMode};
    use rbnn_tensor::Tensor;

    /// Builds a trained-looking binarized classifier with warmed BatchNorm
    /// running statistics.
    fn trained_classifier(rng: &mut StdRng) -> Sequential {
        let mut seq = Sequential::new();
        seq.push(Dense::new(16, 8, WeightMode::Binary, rng).without_bias());
        seq.push(BatchNorm::new(8));
        seq.push(Activation::sign_ste());
        seq.push(Dense::new(8, 3, WeightMode::Binary, rng).without_bias());
        seq.push(BatchNorm::new(3));
        // Warm running stats with a few train-phase passes.
        for _ in 0..50 {
            let x = Tensor::randn([16, 16], 1.0, rng).signum_binary();
            let _ = seq.forward(&x, Phase::Train);
        }
        seq
    }

    #[test]
    fn exported_network_matches_float_graph_bit_exactly() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut seq = trained_classifier(&mut rng);
        let net = export_classifier(&seq).expect("export");
        assert_eq!(net.in_features(), 16);
        assert_eq!(net.out_features(), 3);

        for _ in 0..50 {
            let xin: Vec<f32> = (0..16)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let x = Tensor::from_vec(xin.clone(), [1, 16]);
            let float_logits = seq.forward(&x, Phase::Eval);
            let bit_logits = net.logits(&xin);
            for c in 0..3 {
                let f = float_logits.as_slice()[c];
                let b = bit_logits[c];
                assert!(
                    (f - b).abs() < 1e-3,
                    "logit {c} differs: float {f} vs bits {b}"
                );
            }
            // Argmax must agree exactly.
            let float_arg = float_logits.index_axis0(0).argmax();
            assert_eq!(float_arg, net.classify(&xin));
        }
    }

    #[test]
    fn dropout_is_ignored() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seq = Sequential::new();
        seq.push(Dropout::new(0.85, 0));
        seq.push(Dense::new(4, 2, WeightMode::Binary, &mut rng).without_bias());
        seq.push(BatchNorm::new(2));
        let net = export_classifier(&seq).expect("export");
        assert_eq!(net.layers().len(), 1);
    }

    #[test]
    fn real_weights_are_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seq = Sequential::new();
        seq.push(Dense::new(4, 2, WeightMode::Real, &mut rng).without_bias());
        seq.push(BatchNorm::new(2));
        assert!(matches!(
            export_classifier(&seq),
            Err(ExportError::NotBinarized(_))
        ));
    }

    #[test]
    fn missing_batchnorm_is_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seq = Sequential::new();
        seq.push(Dense::new(4, 2, WeightMode::Binary, &mut rng).without_bias());
        assert!(matches!(
            export_classifier(&seq),
            Err(ExportError::MissingBatchNorm(_))
        ));
    }

    #[test]
    fn relu_activation_is_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seq = Sequential::new();
        seq.push(Dense::new(4, 4, WeightMode::Binary, &mut rng).without_bias());
        seq.push(BatchNorm::new(4));
        seq.push(Activation::relu());
        seq.push(Dense::new(4, 2, WeightMode::Binary, &mut rng).without_bias());
        seq.push(BatchNorm::new(2));
        assert!(matches!(
            export_classifier(&seq),
            Err(ExportError::WrongActivation(_))
        ));
    }

    #[test]
    fn empty_classifier_is_rejected() {
        let seq = Sequential::new();
        assert_eq!(export_classifier(&seq), Err(ExportError::Empty));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ExportError::NotBinarized("Dense(4→2)".into());
        assert!(e.to_string().contains("WeightMode::Binary"));
    }
}
