//! # rbnn-binary
//!
//! The deployment-side inference engine of the
//! [rram-bnn](https://arxiv.org/abs/2006.11595) reproduction: bit-packed ±1
//! weights, XNOR + popcount arithmetic, and integer activation thresholds.
//!
//! This is the *software model of what the paper's chip executes*: Eq. 3
//! (`y = sign(popcount(XNOR(w, x)) − b)`) with the training-time BatchNorm
//! folded into the integer threshold `b` ([`fold_batchnorm_sign`]), so the
//! whole hidden-layer datapath is XNOR gates, a popcount tree and one
//! comparison — no multipliers, no floating point (§II-A of the paper).
//!
//! * [`BinaryDense`] — one deployed fully-connected layer;
//! * [`BinaryNetwork`] — a layer stack with binary hidden activations and
//!   float logits at the output;
//! * [`export_classifier`] — converts a trained `rbnn-nn` binarized
//!   classifier into a [`BinaryNetwork`], bit-exactly.
//!
//! ```
//! use rbnn_binary::BinaryDense;
//! use rbnn_tensor::{BitMatrix, BitVec};
//!
//! // A 2-neuron layer over 3 inputs with unit thresholds.
//! let weights = BitMatrix::from_signs(&[1.0, -1.0, 1.0, 1.0, 1.0, 1.0], 2, 3);
//! let layer = BinaryDense::new(weights, vec![1.0, 1.0], vec![0.0, 0.0]);
//! let x = BitVec::from_signs(&[1.0, 1.0, -1.0]);
//! let y = layer.forward_sign(&x);
//! assert_eq!(y.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod conv;
mod dense;
mod export;
mod network;
pub mod stochastic;
mod threshold;

pub use conv::BinaryConv1d;
pub use dense::BinaryDense;
pub use export::{export_classifier, ExportError};
pub use network::BinaryNetwork;
pub use threshold::{fold_batchnorm_sign, FoldedThreshold};
