//! Stochastic input binarization (ref \[14\] of the paper: Hirtzlin et al.,
//! *"Stochastic Computing for Hardware Implementation of Binarized Neural
//! Networks"*, IEEE Access 2019).
//!
//! The paper's introduction notes that "the memory footprint can also be
//! reduced with binary representation of the inputs using stochastic
//! sampling": a real-valued input `x ∈ [−1, 1]` becomes a stream of `T`
//! random bits, each `+1` with probability `(x + 1)/2`, so the stream
//! *average* is an unbiased estimate of `x`. Feeding each bit-plane through
//! the XNOR/popcount datapath and averaging the popcounts recovers the
//! real-input dot product in expectation — letting the all-binary hardware
//! consume analog-ish inputs at the cost of `T` passes.

use rand::Rng;

use rbnn_tensor::BitVec;

use crate::BinaryDense;

/// Encodes a real vector (clamped to `[−1, 1]`) into `t` stochastic
/// bit-planes.
///
/// # Panics
///
/// Panics if `t == 0`.
pub fn encode_stochastic(x: &[f32], t: usize, rng: &mut impl Rng) -> Vec<BitVec> {
    assert!(t > 0, "need at least one bit-plane");
    (0..t)
        .map(|_| {
            x.iter()
                .map(|&v| {
                    let p = (v.clamp(-1.0, 1.0) + 1.0) * 0.5;
                    rng.gen::<f32>() < p
                })
                .collect()
        })
        .collect()
}

/// Decodes bit-planes back to a real vector (the stream average in ±1).
pub fn decode_stochastic(planes: &[BitVec]) -> Vec<f32> {
    assert!(!planes.is_empty(), "no bit-planes to decode");
    let n = planes[0].len();
    let mut sums = vec![0.0f32; n];
    for plane in planes {
        assert_eq!(plane.len(), n, "bit-plane lengths differ");
        for (i, s) in sums.iter_mut().enumerate() {
            *s += if plane.get(i) { 1.0 } else { -1.0 };
        }
    }
    let inv = 1.0 / planes.len() as f32;
    sums.iter_mut().for_each(|s| *s *= inv);
    sums
}

/// Evaluates a [`BinaryDense`] layer on a stochastically encoded input:
/// runs each bit-plane through the XNOR/popcount datapath and averages the
/// resulting ±1 pre-activations, then applies the layer affine.
///
/// As `t → ∞` this converges to the layer's response to the *real-valued*
/// input — the stochastic-computing bridge between analog inputs and the
/// binary in-memory datapath.
pub fn forward_affine_stochastic(
    layer: &BinaryDense,
    x: &[f32],
    t: usize,
    rng: &mut impl Rng,
) -> Vec<f32> {
    let planes = encode_stochastic(x, t, rng);
    let n = layer.in_features() as f32;
    let (scale, shift) = layer.affine();
    let mut acc = vec![0.0f32; layer.out_features()];
    for plane in &planes {
        for (o, &p) in layer.popcounts(plane).iter().enumerate() {
            acc[o] += 2.0 * p as f32 - n;
        }
    }
    let inv = 1.0 / t as f32;
    acc.iter()
        .enumerate()
        .map(|(o, &a)| scale[o] * (a * inv) + shift[o])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rbnn_tensor::BitMatrix;

    #[test]
    fn encode_decode_is_unbiased() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = vec![-1.0f32, -0.5, 0.0, 0.5, 1.0];
        let planes = encode_stochastic(&x, 4000, &mut rng);
        let decoded = decode_stochastic(&planes);
        for (orig, dec) in x.iter().zip(&decoded) {
            assert!(
                (orig - dec).abs() < 0.06,
                "decode of {orig} drifted to {dec}"
            );
        }
    }

    #[test]
    fn extremes_are_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        let planes = encode_stochastic(&[1.0, -1.0], 50, &mut rng);
        for p in &planes {
            assert!(p.get(0), "+1 must always encode as bit 1");
            assert!(!p.get(1), "−1 must always encode as bit 0");
        }
    }

    #[test]
    fn stochastic_forward_converges_to_real_dot() {
        let mut rng = StdRng::seed_from_u64(2);
        let (out, inp) = (3, 40);
        let w: Vec<f32> = (0..out * inp)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let scale = vec![1.0f32; out];
        let shift = vec![0.0f32; out];
        let layer = BinaryDense::new(BitMatrix::from_signs(&w, out, inp), scale, shift);
        let x: Vec<f32> = (0..inp).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let expect: Vec<f32> = (0..out)
            .map(|o| (0..inp).map(|i| w[o * inp + i] * x[i]).sum())
            .collect();
        let got = forward_affine_stochastic(&layer, &x, 3000, &mut rng);
        for (g, e) in got.iter().zip(&expect) {
            assert!(
                (g - e).abs() < 0.15 * inp as f32 / 10.0,
                "stochastic {g} vs real {e}"
            );
        }
    }

    #[test]
    fn more_planes_reduce_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = BinaryDense::new(
            BitMatrix::from_signs(&vec![1.0; 64], 1, 64),
            vec![1.0],
            vec![0.0],
        );
        let x = vec![0.3f32; 64];
        let expect = 0.3 * 64.0;
        let spread = |t: usize, rng: &mut StdRng| -> f32 {
            let runs: Vec<f32> = (0..30)
                .map(|_| forward_affine_stochastic(&layer, &x, t, rng)[0])
                .collect();
            let mean = runs.iter().sum::<f32>() / runs.len() as f32;
            assert!(
                (mean - expect).abs() < 4.0,
                "bias at t={t}: {mean} vs {expect}"
            );
            runs.iter().map(|r| (r - mean) * (r - mean)).sum::<f32>() / runs.len() as f32
        };
        let var_small = spread(8, &mut rng);
        let var_large = spread(128, &mut rng);
        assert!(
            var_large < var_small,
            "variance must shrink with planes: {var_small} → {var_large}"
        );
    }
}
