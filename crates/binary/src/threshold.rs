//! Folding BatchNorm + sign into integer popcount thresholds.
//!
//! Eq. 3 of the paper, `y = sign(popcount(XNOR(w, x)) − b)`, hides the whole
//! affine batch-normalization inside the learned threshold `b`. This module
//! performs that fold exactly: given the inference-time affine coefficients
//! `(scale, shift)` of a BatchNorm channel and the fan-in `n`, the neuron
//!
//! ```text
//! y = sign(scale · (2·popcount − n) + shift)
//! ```
//!
//! reduces to an integer comparison `popcount ≥ min_popcount`, possibly
//! negated when `scale < 0`. No floating point survives into the in-memory
//! datapath — which is exactly why the paper's architecture only needs
//! XNOR-augmented sense amplifiers plus a popcount tree.

/// An integer-only binarized-neuron activation rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FoldedThreshold {
    /// The neuron fires (+1) when `popcount ≥ min_popcount` …
    pub min_popcount: i64,
    /// … unless `negate` is set, in which case the comparison is inverted
    /// (arises from negative BatchNorm scales).
    pub negate: bool,
}

impl FoldedThreshold {
    /// Evaluates the rule on a popcount value.
    #[inline]
    pub fn fire(&self, popcount: u32) -> bool {
        (popcount as i64 >= self.min_popcount) ^ self.negate
    }
}

/// Folds the affine `y = scale · d + shift` (with `d = 2·popcount − n` the
/// ±1 dot product over fan-in `n`) followed by `sign` into a
/// [`FoldedThreshold`].
///
/// The convention `sign(0) = +1` matches
/// [`Tensor::signum_binary`](rbnn_tensor::Tensor::signum_binary).
pub fn fold_batchnorm_sign(scale: f32, shift: f32, fan_in: usize) -> FoldedThreshold {
    let n = fan_in as f64;
    if scale == 0.0 {
        // Constant output: +1 iff shift ≥ 0.
        return FoldedThreshold {
            min_popcount: 0,
            negate: shift < 0.0,
        };
    }
    // a = scale·(2p − n) + shift ≥ 0
    //   ⇔ 2p − n ≥ −shift/scale          (scale > 0)
    //   ⇔ p ≥ (n − shift/scale) / 2
    let t = -shift as f64 / scale as f64;
    let boundary = (t + n) / 2.0;
    if scale > 0.0 {
        FoldedThreshold {
            min_popcount: boundary.ceil() as i64,
            negate: false,
        }
    } else {
        // a ≥ 0 ⇔ p ≤ boundary ⇔ ¬(p ≥ floor(boundary) + 1)
        FoldedThreshold {
            min_popcount: boundary.floor() as i64 + 1,
            negate: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The float reference the fold must match for every popcount value.
    fn float_sign(scale: f32, shift: f32, n: usize, p: u32) -> bool {
        let d = 2.0 * p as f32 - n as f32;
        scale * d + shift >= 0.0
    }

    #[test]
    fn fold_matches_float_exhaustively() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..500 {
            let n = rng.gen_range(1..200usize);
            let scale = rng.gen_range(-3.0f32..3.0);
            let shift = rng.gen_range(-(n as f32)..n as f32);
            let th = fold_batchnorm_sign(scale, shift, n);
            for p in 0..=n as u32 {
                assert_eq!(
                    th.fire(p),
                    float_sign(scale, shift, n, p),
                    "mismatch at n={n}, scale={scale}, shift={shift}, p={p}"
                );
            }
        }
    }

    #[test]
    fn zero_scale_is_constant() {
        let pos = fold_batchnorm_sign(0.0, 1.0, 10);
        let neg = fold_batchnorm_sign(0.0, -1.0, 10);
        for p in 0..=10 {
            assert!(pos.fire(p));
            assert!(!neg.fire(p));
        }
    }

    #[test]
    fn integer_boundary_inclusive() {
        // scale 1, shift 0, n = 4: fire iff 2p − 4 ≥ 0 ⇔ p ≥ 2.
        let th = fold_batchnorm_sign(1.0, 0.0, 4);
        assert_eq!(th.min_popcount, 2);
        assert!(!th.fire(1));
        assert!(th.fire(2));
    }

    #[test]
    fn negative_scale_flips_comparison() {
        // scale −1, shift 0, n = 4: fire iff −(2p − 4) ≥ 0 ⇔ p ≤ 2.
        let th = fold_batchnorm_sign(-1.0, 0.0, 4);
        assert!(th.fire(0) && th.fire(2));
        assert!(!th.fire(3));
    }
}
