//! The binarized inference paths (packing + XNOR/popcount) must produce
//! bitwise-identical results with the forced-scalar oracle and with
//! runtime SIMD dispatch active — including on adversarial inputs (NaN,
//! `-0.0`) at the sign-binarized input interface.

use std::sync::Mutex;

use rbnn_binary::{BinaryDense, BinaryNetwork};
use rbnn_tensor::{clear_forced_scalar, set_forced_scalar, BitVec, Tensor};

static SCALAR_TOGGLE: Mutex<()> = Mutex::new(());

fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

fn pm1(seed: &mut u64, n: usize) -> Vec<f32> {
    (0..n)
        .map(|_| if xorshift(seed) & 1 == 1 { 1.0 } else { -1.0 })
        .collect()
}

/// A 2-layer network wide enough (408→75→2, the deployed-ECG shape) that
/// its rows span multiple popcount words.
fn network(seed: &mut u64) -> BinaryNetwork {
    let (inf, hid, out) = (408usize, 75usize, 2usize);
    let l1 = BinaryDense::from_sign_tensor(
        &Tensor::from_vec(pm1(seed, hid * inf), &[hid, inf]),
        vec![1.0; hid],
        vec![0.0; hid],
    );
    let l2 = BinaryDense::from_sign_tensor(
        &Tensor::from_vec(pm1(seed, out * hid), &[out, hid]),
        vec![1.0; out],
        vec![0.5; out],
    );
    BinaryNetwork::new(vec![l1, l2])
}

#[test]
fn inference_paths_bitwise_equal_across_dispatch_modes() {
    let _guard = SCALAR_TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
    let mut seed = 0x6c62_272e_07bb_0142u64;
    let net = network(&mut seed);
    let batch = 9usize;
    let features: Vec<f32> = (0..batch * net.in_features())
        .map(|i| match i % 13 {
            0 => f32::NAN,
            1 => -0.0,
            _ => (xorshift(&mut seed) as i64 as f32) / 1e17,
        })
        .collect();
    let t = Tensor::from_vec(features.clone(), &[batch, net.in_features()]);
    let rows: Vec<&[f32]> = features.chunks(net.in_features()).collect();

    let mut runs = Vec::new();
    for forced in [true, false] {
        set_forced_scalar(forced);
        let batched = net.logits_batch(&t);
        let by_rows = net.logits_batch_rows(&rows);
        let single: Vec<f32> = rows.iter().flat_map(|r| net.logits(r)).collect();
        runs.push((batched, by_rows, single));
    }
    clear_forced_scalar();

    let (s_batched, s_rows, s_single) = &runs[0];
    let (d_batched, d_rows, d_single) = &runs[1];
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(s_batched.as_slice()), bits(d_batched.as_slice()));
    assert_eq!(bits(s_rows.as_slice()), bits(d_rows.as_slice()));
    assert_eq!(bits(s_single), bits(d_single));
    // And the three entry points agree with each other per mode.
    assert_eq!(bits(s_batched.as_slice()), bits(s_rows.as_slice()));
    assert_eq!(bits(s_batched.as_slice()), bits(s_single));
}

#[test]
fn forward_sign_bitwise_equal_across_dispatch_modes() {
    let _guard = SCALAR_TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
    let mut seed = 0x1000_0000_01b3u64;
    let net = network(&mut seed);
    let x_values = pm1(&mut seed, net.in_features());

    set_forced_scalar(true);
    let scalar = net.layers()[0].forward_sign(&BitVec::from_signs(&x_values));
    set_forced_scalar(false);
    let dispatched = net.layers()[0].forward_sign(&BitVec::from_signs(&x_values));
    clear_forced_scalar();
    assert_eq!(scalar, dispatched);
}
