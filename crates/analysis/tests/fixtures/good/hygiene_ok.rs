//! RA0007 negative: libraries report through return values; strings that
//! merely *mention* `println!` or `dbg!` must not trip the lexical lint.

pub fn frobnicate(x: u32) -> u32 {
    x * 2
}

pub fn describe() -> &'static str {
    "this library never calls println! or dbg! outside tests"
}

#[cfg(test)]
mod tests {
    #[test]
    fn doubled() {
        // Test code may print freely.
        println!("checking {}", super::frobnicate(21));
        assert_eq!(super::frobnicate(21), 42);
    }
}
