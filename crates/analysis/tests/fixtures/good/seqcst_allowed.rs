//! RA0003 negative: this file is on `seqcst_allow` in fixtures.toml —
//! a test-facing global toggle where the fence cost does not matter.

use std::sync::atomic::{AtomicUsize, Ordering};

static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

pub fn set_override(n: usize) {
    // SeqCst: test-facing toggle, set between runs, never on a hot path.
    OVERRIDE.store(n, Ordering::SeqCst);
}
