//! RA0002 negative: every ordering names itself in a justification.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static HITS: AtomicUsize = AtomicUsize::new(0);

pub fn bump() -> usize {
    // Relaxed: standalone statistics counter; nothing is ordered after it.
    HITS.fetch_add(1, Ordering::Relaxed)
}

pub fn publish(flag: &AtomicBool) {
    flag.store(true, Ordering::Release); // Release: pairs with the Acquire load in `consume`.
}

pub fn consume(flag: &AtomicBool) -> bool {
    // Acquire: pairs with the Release store in `publish`, making the
    // producer's writes visible before the flag reads true.
    flag.load(Ordering::Acquire)
}
