//! RA0001 negative: every `unsafe` site carries its invariant.

pub fn read_first(v: &[f32]) -> f32 {
    // SAFETY: caller guarantees `v` is non-empty (checked at the API
    // boundary), so index 0 is in bounds.
    unsafe { *v.get_unchecked(0) }
}

/// # Safety
///
/// `ptr` must point to `len` initialized f32s with no live aliases.
pub unsafe fn sum_raw(ptr: *const f32, len: usize) -> f32 {
    // SAFETY: the function contract above covers the whole range.
    let s = unsafe { std::slice::from_raw_parts(ptr, len) };
    s.iter().sum()
}

#[cfg(test)]
mod tests {
    // Test code is exempt: no SAFETY comment required here.
    #[test]
    fn raw_roundtrip() {
        let v = [1.0f32, 2.0];
        let got = unsafe { super::sum_raw(v.as_ptr(), v.len()) };
        assert_eq!(got, 3.0);
    }
}
