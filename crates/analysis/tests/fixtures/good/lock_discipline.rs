//! RA0006 negative: one lock at a time; the recording path is try-lock-only.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

pub fn transfer(p: &Pair, amount: u64) {
    {
        let mut from = p.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *from -= amount;
    }
    let mut to = p.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *to += amount;
}

pub fn try_only(slot: &Mutex<u64>, v: u64) {
    // Contended slot: drop the sample rather than block the recorder.
    if let Ok(mut guard) = slot.try_lock() {
        *guard = v;
    }
}
