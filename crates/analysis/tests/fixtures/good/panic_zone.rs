//! RA0004 negative: the same queue written to degrade gracefully.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

pub struct Queue {
    inner: Mutex<VecDeque<u32>>,
}

impl Queue {
    pub fn pop(&self) -> Option<u32> {
        let mut q = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        q.pop_front()
    }

    pub fn first(&self, items: &[u32]) -> Option<u32> {
        items.first().copied()
    }
}

#[cfg(test)]
mod tests {
    // Test code is exempt even inside a zone file.
    #[test]
    fn pop_empty_is_none() {
        let q = super::Queue {
            inner: std::sync::Mutex::new(std::collections::VecDeque::new()),
        };
        assert!(q.pop().is_none());
        assert!(q.first(&[]).is_none());
    }
}
