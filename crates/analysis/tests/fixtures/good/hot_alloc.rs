//! RA0005 negative: the hot path reuses caller-provided buffers.

pub fn hot_loop(src: &[f32], dst: &mut [f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = s * 2.0;
    }
}

pub fn setup(n: usize) -> Vec<f32> {
    // Outside the zone function: setup may allocate freely.
    vec![0.0; n]
}
