//! RA0005 positive: allocation inside a declared zero-alloc function.

pub fn hot_loop(src: &[f32], dst: &mut [f32]) {
    let scaled: Vec<f32> = src.iter().map(|x| x * 2.0).collect();
    let label = format!("{} rows", scaled.len());
    let copy = scaled.to_vec();
    dst[..copy.len()].copy_from_slice(&copy);
    drop(label);
}

pub fn setup(n: usize) -> Vec<f32> {
    // Outside the zone function: setup may allocate freely.
    vec![0.0; n]
}
