//! RA0001 positive: `unsafe` without a SAFETY comment.

pub fn read_first(v: &[f32]) -> f32 {
    unsafe { *v.get_unchecked(0) }
}
