//! RA0002 positive: atomic orderings without justification comments.

use std::sync::atomic::{AtomicUsize, Ordering};

static HITS: AtomicUsize = AtomicUsize::new(0);

pub fn bump() -> usize {
    HITS.fetch_add(1, Ordering::Relaxed)
}

pub fn publish(flag: &std::sync::atomic::AtomicBool) {
    flag.store(true, Ordering::Release);
}
