//! RA0003 positive: SeqCst outside the allowlist (the justification
//! comment satisfies RA0002, so only the allowlist lint fires).

use std::sync::atomic::{AtomicUsize, Ordering};

static MODE: AtomicUsize = AtomicUsize::new(0);

pub fn set_mode(m: usize) {
    // SeqCst: defensive strongest ordering.
    MODE.store(m, Ordering::SeqCst);
}
