//! RA0006 positive: a nested `.lock()` while an earlier guard is live,
//! and a blocking `.lock()` inside a try-lock-only zone function.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

pub fn transfer(p: &Pair, amount: u64) {
    let mut from = p.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut to = p.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *from -= amount;
    *to += amount;
}

pub fn try_only(slot: &Mutex<u64>, v: u64) {
    let mut guard = slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *guard = v;
}
