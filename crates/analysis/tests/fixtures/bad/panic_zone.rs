//! RA0004 positive: panic paths inside a declared panic-freedom zone.

use std::collections::VecDeque;
use std::sync::Mutex;

pub struct Queue {
    inner: Mutex<VecDeque<u32>>,
}

impl Queue {
    pub fn pop(&self) -> u32 {
        let mut q = self.inner.lock().expect("queue poisoned");
        q.pop_front().unwrap()
    }

    pub fn first(&self, items: &[u32]) -> u32 {
        if items.is_empty() {
            panic!("empty batch");
        }
        items[0]
    }
}
