//! RA0007 positive: debug leftovers and stdout noise in library code.

pub fn frobnicate(x: u32) -> u32 {
    let doubled = dbg!(x * 2);
    println!("frobnicated {doubled}");
    doubled
}

pub fn unfinished() -> u32 {
    todo!("implement the inverse")
}
