//! End-to-end corpus test: the engine must flag every seeded violation in
//! `fixtures/bad/` (all six lint families) and stay silent on the
//! `fixtures/good/` mirror, under the same `fixtures.toml` policy.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use rbnn_analysis::{load_config, scan, Report};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn scan_prefix(prefix: &str) -> Report {
    let root = fixtures_root();
    let cfg = load_config(&root.join("fixtures.toml")).expect("fixtures.toml parses");
    scan(&root, &cfg, &[prefix.to_string()]).expect("fixture scan succeeds")
}

#[test]
fn good_corpus_is_clean() {
    let report = scan_prefix("good");
    assert!(report.files_scanned > 0, "good fixtures were not found");
    assert!(
        report.violations.is_empty(),
        "good corpus must be violation-free, got:\n{}",
        report.render_text()
    );
    assert!(report.passed());
}

#[test]
fn bad_corpus_trips_every_lint_family() {
    let report = scan_prefix("bad");
    assert!(!report.passed());
    let fired: BTreeSet<&str> = report.violations.iter().map(|v| v.lint.id()).collect();
    for id in [
        "RA0001", "RA0002", "RA0003", "RA0004", "RA0005", "RA0006", "RA0007",
    ] {
        assert!(
            fired.contains(id),
            "seeded corpus must trip {id}; fired: {fired:?}\n{}",
            report.render_text()
        );
    }
}

#[test]
fn bad_corpus_findings_are_precisely_located() {
    let report = scan_prefix("bad");
    let has = |path: &str, line: usize, id: &str| {
        report
            .violations
            .iter()
            .any(|v| v.path == path && v.line == line && v.lint.id() == id)
    };
    // One hand-checked anchor per family keeps file:line reporting honest.
    assert!(
        has("bad/unsafe_missing.rs", 4, "RA0001"),
        "{}",
        report.render_text()
    );
    assert!(
        has("bad/ordering_bare.rs", 8, "RA0002"),
        "{}",
        report.render_text()
    );
    assert!(
        has("bad/seqcst_denied.rs", 10, "RA0003"),
        "{}",
        report.render_text()
    );
    assert!(
        has("bad/panic_zone.rs", 13, "RA0004"),
        "{}",
        report.render_text()
    );
    assert!(
        has("bad/hot_alloc.rs", 4, "RA0005"),
        "{}",
        report.render_text()
    );
    assert!(
        has("bad/lock_discipline.rs", 13, "RA0006"),
        "{}",
        report.render_text()
    );
    assert!(
        has("bad/hygiene_bad.rs", 5, "RA0007"),
        "{}",
        report.render_text()
    );
}

#[test]
fn full_corpus_fails_only_because_of_bad() {
    let all = scan_prefix("");
    let bad = scan_prefix("bad");
    assert_eq!(
        all.violations.len(),
        bad.violations.len(),
        "every corpus violation must come from bad/:\n{}",
        all.render_text()
    );
}
