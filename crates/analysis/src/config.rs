//! `analysis.toml` — the checked-in zone map and policy knobs.
//!
//! The config file is TOML, parsed by a small built-in reader (the crate is
//! dependency-free, and the vendored `third_party/` shims are deliberately
//! not reached for: the linter must build before anything else). The reader
//! supports the subset the zone map needs — `[section]` tables, `[[array]]`
//! of tables, string / integer / boolean values, and (possibly multi-line)
//! string arrays — and rejects anything it doesn't understand rather than
//! guessing.
//!
//! Sections:
//!
//! - `[ordering] seqcst_allow = […]` — files where `Ordering::SeqCst` is
//!   tolerated (still requires a justification comment);
//! - `[hygiene] print_allow = […]` — path prefixes (library crates that are
//!   really CLI harnesses) where `println!` is accepted;
//! - `skip = […]` — directories never scanned (fixtures, vendored code);
//! - `[[zone]]` — a panic-freedom / zero-alloc / lock-discipline zone:
//!   `path` (one file), optional `functions` (restrict to named fns),
//!   `deny` (any of `unwrap`, `expect`, `panic`, `indexing`, `alloc`,
//!   `blocking-lock`), and a human `reason` echoed in diagnostics;
//! - `[[waiver]]` — a suppressed violation (`lint`, `path`, `line`,
//!   `reason`). The workspace ships with this list **empty**; the gate
//!   fails on waivers that no longer match anything, so stale entries
//!   cannot accumulate.

use std::fmt;

/// One deniable behavior inside a zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deny {
    /// `.unwrap()` calls.
    Unwrap,
    /// `.expect(…)` calls.
    Expect,
    /// `panic!` / `unreachable!` invocations.
    Panic,
    /// Index expressions `x[i]` (slicing included — both can panic).
    Indexing,
    /// Heap allocation in a zero-alloc hot path (`Vec::new`, `vec![…]`,
    /// `.to_vec()`, `.clone()`, `.collect()`, `format!`, `Box::new`, …).
    Alloc,
    /// Blocking `.lock()` — the zone must stay `try_lock`-only.
    BlockingLock,
}

impl Deny {
    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "unwrap" => Deny::Unwrap,
            "expect" => Deny::Expect,
            "panic" => Deny::Panic,
            "indexing" => Deny::Indexing,
            "alloc" => Deny::Alloc,
            "blocking-lock" => Deny::BlockingLock,
            _ => return None,
        })
    }
}

impl fmt::Display for Deny {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Deny::Unwrap => "unwrap",
            Deny::Expect => "expect",
            Deny::Panic => "panic",
            Deny::Indexing => "indexing",
            Deny::Alloc => "alloc",
            Deny::BlockingLock => "blocking-lock",
        })
    }
}

/// A file (or set of named functions within a file) with denied behaviors.
#[derive(Debug, Clone, Default)]
pub struct Zone {
    /// Workspace-relative path of the file the zone covers.
    pub path: String,
    /// If non-empty, only the bodies of these functions are in-zone.
    pub functions: Vec<String>,
    /// Behaviors denied inside the zone.
    pub deny: Vec<Deny>,
    /// Why the zone exists — echoed in every diagnostic it produces.
    pub reason: String,
}

/// A suppressed violation. The shipped list is empty; the mechanism exists
/// so an emergency landing can be unblocked without deleting the gate.
#[derive(Debug, Clone, Default)]
pub struct Waiver {
    /// Lint id, e.g. `RA0004`.
    pub lint: String,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line of the waived violation.
    pub line: usize,
    /// Why the waiver is acceptable.
    pub reason: String,
}

/// The parsed `analysis.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Files where `Ordering::SeqCst` is allowed (with justification).
    pub seqcst_allow: Vec<String>,
    /// Path prefixes where `println!` in a lib target is accepted.
    pub print_allow: Vec<String>,
    /// Directory prefixes excluded from the scan.
    pub skip: Vec<String>,
    /// All zones.
    pub zones: Vec<Zone>,
    /// All waivers (expected empty).
    pub waivers: Vec<Waiver>,
}

/// A config-file syntax error with its line number.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line in the config file.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analysis.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

enum Section {
    Top,
    Ordering,
    Hygiene,
    Zone,
    Waiver,
}

/// Parses the config text.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut cfg = Config::default();
    let mut section = Section::Top;

    let err = |line: usize, message: String| ConfigError { line, message };

    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            section = match name.trim() {
                "zone" => {
                    cfg.zones.push(Zone::default());
                    Section::Zone
                }
                "waiver" => {
                    cfg.waivers.push(Waiver::default());
                    Section::Waiver
                }
                other => return Err(err(lineno, format!("unknown table `[[{other}]]`"))),
            };
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = match name.trim() {
                "ordering" => Section::Ordering,
                "hygiene" => Section::Hygiene,
                other => return Err(err(lineno, format!("unknown section `[{other}]`"))),
            };
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
        };
        let key = key.trim();
        let mut value = value.trim().to_string();
        // Multi-line arrays: keep consuming until the bracket closes.
        while value.starts_with('[') && !bracket_closed(&value) {
            let Some((_, cont)) = lines.next() else {
                return Err(err(lineno, "unterminated array".to_string()));
            };
            value.push(' ');
            value.push_str(strip_comment(cont).trim());
        }
        match (&section, key) {
            (Section::Top, "version") => {}
            (Section::Top, "skip") => cfg.skip = parse_string_array(&value, lineno)?,
            (Section::Ordering, "seqcst_allow") => {
                cfg.seqcst_allow = parse_string_array(&value, lineno)?
            }
            (Section::Hygiene, "print_allow") => {
                cfg.print_allow = parse_string_array(&value, lineno)?
            }
            (Section::Zone, _) => {
                let zone = cfg.zones.last_mut().expect("section implies an entry");
                match key {
                    "path" => zone.path = parse_string(&value, lineno)?,
                    "functions" => zone.functions = parse_string_array(&value, lineno)?,
                    "reason" => zone.reason = parse_string(&value, lineno)?,
                    "deny" => {
                        for d in parse_string_array(&value, lineno)? {
                            let deny = Deny::parse(&d)
                                .ok_or_else(|| err(lineno, format!("unknown deny kind `{d}`")))?;
                            zone.deny.push(deny);
                        }
                    }
                    other => return Err(err(lineno, format!("unknown zone key `{other}`"))),
                }
            }
            (Section::Waiver, _) => {
                let waiver = cfg.waivers.last_mut().expect("section implies an entry");
                match key {
                    "lint" => waiver.lint = parse_string(&value, lineno)?,
                    "path" => waiver.path = parse_string(&value, lineno)?,
                    "reason" => waiver.reason = parse_string(&value, lineno)?,
                    "line" => {
                        waiver.line = value.parse().map_err(|_| {
                            err(lineno, format!("`line` must be an integer, got `{value}`"))
                        })?
                    }
                    other => return Err(err(lineno, format!("unknown waiver key `{other}`"))),
                }
            }
            (_, other) => return Err(err(lineno, format!("unknown key `{other}`"))),
        }
    }
    Ok(cfg)
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn bracket_closed(value: &str) -> bool {
    let mut in_str = false;
    let mut depth = 0isize;
    for c in value.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

fn parse_string(value: &str, lineno: usize) -> Result<String, ConfigError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(ConfigError {
            line: lineno,
            message: format!("expected a quoted string, got `{v}`"),
        })
    }
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, ConfigError> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("expected an array, got `{v}`"),
        })?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part, lineno)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_shape() {
        let cfg = parse(
            r#"
version = 1
skip = ["third_party", "crates/analysis/tests/fixtures"]

[ordering]
seqcst_allow = ["crates/tensor/src/par.rs"]

[hygiene]
print_allow = ["crates/bench"]

[[zone]]
path = "crates/serve/src/queue.rs"     # the bounded queue
deny = ["unwrap", "expect", "panic", "indexing"]
reason = "worker pool must survive poisoned locks"

[[zone]]
path = "crates/serve/src/server.rs"
functions = [
    "worker_loop",
    "serve_batch",
]
deny = ["unwrap", "expect", "panic"]
reason = "worker loop"

[[waiver]]
lint = "RA0004"
path = "crates/x.rs"
line = 12
reason = "temporary"
"#,
        )
        .expect("parses");
        assert_eq!(cfg.skip.len(), 2);
        assert_eq!(cfg.seqcst_allow, vec!["crates/tensor/src/par.rs"]);
        assert_eq!(cfg.print_allow, vec!["crates/bench"]);
        assert_eq!(cfg.zones.len(), 2);
        assert_eq!(cfg.zones[0].deny.len(), 4);
        assert_eq!(cfg.zones[1].functions, vec!["worker_loop", "serve_batch"]);
        assert_eq!(cfg.waivers.len(), 1);
        assert_eq!(cfg.waivers[0].line, 12);
    }

    #[test]
    fn rejects_unknown_keys_and_denies() {
        assert!(parse("mystery = 3\n").is_err());
        assert!(parse("[[zone]]\npath = \"x\"\ndeny = [\"sleep\"]\n").is_err());
        assert!(parse("[typo]\n").is_err());
    }
}
