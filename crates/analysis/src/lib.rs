//! # rbnn-analysis
//!
//! A dependency-free static-analysis gate for this workspace: repo-specific
//! lints that make the invariants the runtime crates rely on — atomic
//! orderings justified, `unsafe` documented, serving loops panic-free,
//! hot paths allocation-free, lock discipline intact — machine-checked on
//! every CI run instead of socially enforced.
//!
//! The pipeline:
//!
//! 1. [`lexer`] — a handwritten, comment/string/raw-string/lifetime-aware
//!    Rust lexer (no `syn`; the workspace builds offline);
//! 2. [`model`] — a lightweight item/block visitor extracting function
//!    spans, `#[cfg(test)]` regions and comment adjacency;
//! 3. [`lints`] — the six lint families RA0001–RA0007 (see the module docs
//!    for the full table);
//! 4. [`config`] — the checked-in `analysis.toml` zone map: panic-freedom
//!    zones, zero-alloc zones, the `SeqCst` allowlist and the (empty)
//!    waiver list;
//! 5. [`report`] — `file:line [id name] message + suggestion` diagnostics
//!    and the `bench_results/analysis.json` machine report.
//!
//! Run the gate from the workspace root:
//!
//! ```text
//! cargo run -p rbnn-analysis -- --strict
//! ```
//!
//! Exit status is non-zero in `--strict` mode if any unwaived violation —
//! or any stale waiver — survives. The fixture corpus under
//! `tests/fixtures/` keeps the gate itself honest: every lint family has a
//! seeded-violation (positive) and a clean (negative) fixture, and CI runs
//! the tool against the seeded set expecting failure.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod lexer;
pub mod lints;
pub mod model;
pub mod report;

pub use config::{Config, Deny, Waiver, Zone};
pub use lints::{FileClass, Lint, Violation};
pub use report::Report;

use std::fs;
use std::path::{Path, PathBuf};

use lints::{check_source, classify};

/// Directory names never descended into, independent of configuration.
const ALWAYS_SKIP_DIRS: [&str; 4] = ["target", ".git", "bench_results", "node_modules"];

/// Recursively collects `.rs` files under `root`, returning paths relative
/// to `root` (forward slashes), sorted for deterministic reports.
pub fn collect_sources(root: &Path, cfg: &Config) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if ALWAYS_SKIP_DIRS.contains(&name.as_ref()) {
                    continue;
                }
                let rel = rel_str(root, &path);
                if cfg
                    .skip
                    .iter()
                    .any(|s| rel == *s || rel.starts_with(&format!("{s}/")))
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = rel_str(root, &path);
                if cfg.skip.iter().any(|s| rel.starts_with(s.as_str())) {
                    continue;
                }
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Scans every source file under `root` (honoring `cfg.skip`), applies the
/// waiver list, and returns the report. `filter` optionally restricts the
/// scan to paths starting with any of the given prefixes.
pub fn scan(root: &Path, cfg: &Config, filter: &[String]) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut raw: Vec<lints::Violation> = Vec::new();
    for rel in collect_sources(root, cfg)? {
        if !filter.is_empty() && !filter.iter().any(|f| rel.starts_with(f.as_str())) {
            continue;
        }
        let src = fs::read_to_string(root.join(&rel))?;
        report.files_scanned += 1;
        raw.extend(check_source(&rel, classify(&rel), &src, cfg));
    }

    let mut waiver_used = vec![false; cfg.waivers.len()];
    for v in raw {
        let matched = cfg
            .waivers
            .iter()
            .enumerate()
            .find(|(_, w)| w.lint == v.lint.id() && w.path == v.path && w.line == v.line);
        match matched {
            Some((idx, w)) => {
                waiver_used[idx] = true;
                report.waived.push((v, w.reason.clone()));
            }
            None => report.violations.push(v),
        }
    }
    for (idx, used) in waiver_used.iter().enumerate() {
        if !used {
            report.unused_waivers.push(cfg.waivers[idx].clone());
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    Ok(report)
}

/// Convenience: load `analysis.toml` from `path`.
pub fn load_config(path: &Path) -> Result<Config, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    config::parse(&text).map_err(|e| e.to_string())
}

/// Returns `path` if it is a workspace root (contains `analysis.toml`).
pub fn default_config_path(root: &Path) -> PathBuf {
    root.join("analysis.toml")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waivers_suppress_and_stale_waivers_fail() {
        let dir = std::env::temp_dir().join(format!("rbnn-analysis-test-{}", std::process::id()));
        let src_dir = dir.join("crates/x/src");
        fs::create_dir_all(&src_dir).expect("mkdir");
        fs::write(src_dir.join("lib.rs"), "fn f() { todo!() }\n").expect("write");

        let mut cfg = Config::default();
        let report = scan(&dir, &cfg, &[]).expect("scan");
        assert_eq!(report.violations.len(), 1);
        let line = report.violations[0].line;

        cfg.waivers.push(config::Waiver {
            lint: "RA0007".to_string(),
            path: "crates/x/src/lib.rs".to_string(),
            line,
            reason: "test".to_string(),
        });
        let report = scan(&dir, &cfg, &[]).expect("scan");
        assert!(report.violations.is_empty());
        assert_eq!(report.waived.len(), 1);
        assert!(report.passed());

        cfg.waivers.push(config::Waiver {
            lint: "RA0001".to_string(),
            path: "nope.rs".to_string(),
            line: 1,
            reason: "stale".to_string(),
        });
        let report = scan(&dir, &cfg, &[]).expect("scan");
        assert!(!report.passed());
        assert_eq!(report.unused_waivers.len(), 1);

        fs::remove_dir_all(&dir).ok();
    }
}
