//! The `rbnn-analysis` CLI — the workspace lint gate.
//!
//! ```text
//! cargo run -p rbnn-analysis -- --strict
//! ```
//!
//! Flags:
//!
//! - `--strict`            exit non-zero on any unwaived violation or stale waiver
//! - `--root DIR`          scan root (default `.`, the workspace root under `cargo run`)
//! - `--config FILE`       zone map (default `<root>/analysis.toml`)
//! - `--json FILE`         machine-readable report path
//!                         (default `<root>/bench_results/analysis.json`; `--json none` disables)
//! - `PATH…`               optional path prefixes (relative to root) restricting the scan
//!
//! The CI seeded-violation self-check runs the same binary against the
//! fixture corpus with its own config and expects a non-zero exit:
//!
//! ```text
//! cargo run -p rbnn-analysis -- --strict \
//!     --root crates/analysis/tests/fixtures \
//!     --config crates/analysis/tests/fixtures/fixtures.toml \
//!     --json none bad
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut strict = false;
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut json_path: Option<String> = None;
    let mut filters: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--strict" => strict = true,
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage("--config needs a file"),
            },
            "--json" => match args.next() {
                Some(v) => json_path = Some(v),
                None => return usage("--json needs a file (or `none`)"),
            },
            "--help" | "-h" => return usage(""),
            flag if flag.starts_with('-') => {
                return usage(&format!("unknown flag `{flag}`"));
            }
            path => filters.push(path.replace('\\', "/")),
        }
    }

    let config_path = config_path.unwrap_or_else(|| rbnn_analysis::default_config_path(&root));
    let cfg = match rbnn_analysis::load_config(&config_path) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("rbnn-analysis: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match rbnn_analysis::scan(&root, &cfg, &filters) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rbnn-analysis: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", report.render_text());

    let json_target = match json_path.as_deref() {
        Some("none") => None,
        Some(p) => Some(PathBuf::from(p)),
        None => Some(root.join("bench_results/analysis.json")),
    };
    if let Some(path) = json_target {
        if let Some(parent) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("rbnn-analysis: cannot create {}: {e}", parent.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&path, report.render_json(strict)) {
            eprintln!("rbnn-analysis: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("report: {}", path.display());
    }

    if strict && !report.passed() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("rbnn-analysis: {error}");
    }
    eprintln!(
        "usage: rbnn-analysis [--strict] [--root DIR] [--config FILE] [--json FILE|none] [PATH…]"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
