//! A handwritten Rust lexer — the foundation every lint stands on.
//!
//! The lints in this crate are lexical: they look for token shapes like
//! `unsafe`, `Ordering :: SeqCst` or `. unwrap (`. Doing that with plain
//! substring search would misfire constantly — `"unsafe"` inside a string
//! literal, `unwrap` inside a doc comment, `Ordering::Relaxed` quoted in a
//! rustdoc example. So this module tokenizes real Rust source just deeply
//! enough to be trustworthy:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`) are captured as [`Comment`]s, not tokens;
//! - string literals, byte strings, raw strings (`r#"…"#` with any number
//!   of hashes) and char literals are consumed as single [`TokenKind::Str`]
//!   tokens, so their contents can never look like code;
//! - lifetimes (`'a`, `'static`) are distinguished from char literals
//!   (`'a'`, `'\n'`) by one-token lookahead;
//! - raw identifiers (`r#type`) are identifiers, not raw strings.
//!
//! No `syn`, no proc-macro machinery: consistent with the workspace's
//! offline `third_party/` policy, the lexer is ~200 lines of `match`.

/// What a token is, to the depth the lints care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `Ordering`, `unwrap`, …).
    /// Raw identifiers are stored without the `r#` prefix.
    Ident(String),
    /// A single punctuation character (`.`, `:`, `!`, `[`, `{`, …).
    /// Multi-character operators are emitted as individual characters.
    Punct(char),
    /// Any string, byte-string, raw-string or char literal, fully consumed.
    Str,
    /// A numeric literal (`1_000`, `0x5EED`, `1.05e-3`, `4f64`).
    Number,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: usize,
    /// The token's classification.
    pub kind: TokenKind,
}

/// One comment (line or block) with the lines it covers.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// 1-based line the comment ends on (equal to `line` for line comments).
    pub end_line: usize,
    /// Full comment text including the `//`/`/*` markers.
    pub text: String,
}

/// A tokenized source file: code tokens plus the comment sidecar.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_char(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Tokenizes `src`, splitting code tokens from comments.
///
/// The lexer is forgiving: malformed input (an unterminated string, a stray
/// byte) never panics, it just degrades into punctuation tokens. Lints must
/// stay usable on work-in-progress source.
pub fn lex(src: &str) -> LexedFile {
    let b = src.as_bytes();
    let mut out = LexedFile::default();
    let mut i = 0usize;
    let mut line = 1usize;

    macro_rules! count_lines {
        ($range_start:expr, $range_end:expr) => {
            line += b[$range_start..$range_end]
                .iter()
                .filter(|&&c| c == b'\n')
                .count()
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                });
            }
            b'"' => {
                let start_line = line;
                let start = i;
                i = skip_string(b, i);
                count_lines!(start, i.min(b.len()));
                out.tokens.push(Token {
                    line: start_line,
                    kind: TokenKind::Str,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`): a tick
                // followed by an identifier run that is NOT closed by
                // another tick is a lifetime.
                let mut j = i + 1;
                if j < b.len() && is_ident_start(b[j]) {
                    while j < b.len() && is_ident_char(b[j]) {
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'\'' && j == i + 2 {
                        // 'a' — a one-character char literal.
                        out.tokens.push(Token {
                            line,
                            kind: TokenKind::Str,
                        });
                        i = j + 1;
                    } else {
                        out.tokens.push(Token {
                            line,
                            kind: TokenKind::Lifetime,
                        });
                        i = j;
                    }
                } else {
                    // Escaped or punctuation char literal: '\n', '\'', '{'.
                    let start = i;
                    i += 1;
                    while i < b.len() {
                        if b[i] == b'\\' {
                            i += 2;
                        } else if b[i] == b'\'' {
                            i += 1;
                            break;
                        } else {
                            i += 1;
                        }
                    }
                    count_lines!(start, i.min(b.len()));
                    out.tokens.push(Token {
                        line,
                        kind: TokenKind::Str,
                    });
                }
            }
            b'r' | b'b' if starts_raw_or_byte_literal(b, i) => {
                let start_line = line;
                let start = i;
                i = skip_raw_or_byte_literal(b, i);
                count_lines!(start, i.min(b.len()));
                out.tokens.push(Token {
                    line: start_line,
                    kind: TokenKind::Str,
                });
            }
            b'r' if i + 1 < b.len()
                && b[i + 1] == b'#'
                && i + 2 < b.len()
                && is_ident_start(b[i + 2]) =>
            {
                // Raw identifier r#type.
                let mut j = i + 2;
                while j < b.len() && is_ident_char(b[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Ident(String::from_utf8_lossy(&b[i + 2..j]).into_owned()),
                });
                i = j;
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                while j < b.len() && is_ident_char(b[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Ident(String::from_utf8_lossy(&b[i..j]).into_owned()),
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                let hex =
                    i < b.len() && (b[i] == b'x' || b[i] == b'b' || b[i] == b'o') && c == b'0';
                while i < b.len() {
                    let d = b[i];
                    if is_ident_char(d) {
                        i += 1;
                    } else if d == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                        i += 1;
                    } else if (d == b'+' || d == b'-')
                        && !hex
                        && matches!(b[i - 1], b'e' | b'E')
                        && i + 1 < b.len()
                        && b[i + 1].is_ascii_digit()
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let _ = start;
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Number,
                });
            }
            other => {
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Punct(other as char),
                });
                i += 1;
            }
        }
    }
    out
}

/// Consumes a `"…"` string starting at `i` (the opening quote); returns the
/// index just past the closing quote.
fn skip_string(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Does the source at `i` start a raw string (`r"`, `r#"`), byte string
/// (`b"`), byte char (`b'`) or raw byte string (`br"`, `br#"`)?
fn starts_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    let rest = &b[i..];
    if rest.starts_with(b"r\"") || rest.starts_with(b"b\"") || rest.starts_with(b"b'") {
        return true;
    }
    if rest.starts_with(b"br") || rest.starts_with(b"r#") {
        // r#… is a raw string only when hashes lead to a quote (else raw ident).
        let mut j = i + if rest.starts_with(b"br") { 2 } else { 1 };
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
        return j < b.len() && b[j] == b'"' && j > i + 1;
    }
    false
}

/// Consumes the raw/byte literal starting at `i`; returns the index just
/// past its end.
fn skip_raw_or_byte_literal(b: &[u8], i: usize) -> usize {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'\'' {
        // b'x' byte char: same shape as a char literal.
        j += 1;
        while j < b.len() {
            match b[j] {
                b'\\' => j += 2,
                b'\'' => return j + 1,
                _ => j += 1,
            }
        }
        return j;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < b.len() && b[j] == b'"' {
        if hashes == 0 && b[i] != b'r' && !(b[i] == b'b' && i + 1 < b.len() && b[i + 1] == b'r') {
            // Plain b"…": escapes are live.
            return skip_string(b, j);
        }
        // Raw string: ends at `"` followed by `hashes` hash marks, no escapes.
        j += 1;
        while j < b.len() {
            if b[j] == b'"'
                && b.len() - j > hashes
                && b[j + 1..j + 1 + hashes].iter().all(|&h| h == b'#')
            {
                return j + 1 + hashes;
            }
            j += 1;
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r##"
            // unsafe in a comment
            /* unwrap() in /* a nested */ block comment */
            let a = "unsafe { Ordering::SeqCst }";
            let b = r#"panic!("no")"#;
            let c = 'x';
            let d: &'static str = "ok";
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "unsafe"));
        assert!(!ids.iter().any(|s| s == "unwrap"));
        assert!(!ids.iter().any(|s| s == "panic"));
        assert!(ids.iter().any(|s| s == "let"));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Lifetime));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_identifiers_are_idents() {
        assert!(idents("let r#type = 1;").iter().any(|s| s == "type"));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let lexed = lex("for i in 0..n { let x = 1.05f64.ln(); let h = 0x5EED; }");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "ln")));
        let dots = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct('.'))
            .count();
        assert_eq!(dots, 3); // `..` range plus the method dot
    }

    #[test]
    fn token_lines_are_accurate() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<usize> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn multiline_raw_string_advances_lines() {
        let lexed = lex("let x = r#\"line\nline\nline\"#;\nlet y = 2;");
        let y_line = lexed
            .tokens
            .iter()
            .find(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "y"))
            .map(|t| t.line);
        assert_eq!(y_line, Some(4));
    }
}
