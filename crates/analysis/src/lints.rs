//! The six lint families and the per-file checking pass.
//!
//! | id     | name                  | invariant enforced                                      |
//! |--------|-----------------------|---------------------------------------------------------|
//! | RA0001 | unsafe-safety-comment | every `unsafe` site carries a `// SAFETY:` justification |
//! | RA0002 | ordering-justification| every `Ordering::*` use explains its memory ordering     |
//! | RA0003 | seqcst-allowlist      | `Ordering::SeqCst` only in allowlisted files             |
//! | RA0004 | panic-path            | no `unwrap`/`expect`/`panic!`/indexing in no-panic zones |
//! | RA0005 | hot-alloc             | no heap allocation in zero-alloc zones                   |
//! | RA0006 | lock-discipline       | no nested `lock()` guards; try-lock-only zones hold      |
//! | RA0007 | hygiene               | no `dbg!`/`todo!`; no `println!` in library crates       |
//!
//! All checks are lexical (token-shape) checks over the [`crate::lexer`]
//! stream, scoped by the [`crate::model`] visitor (test regions exempt,
//! zones optionally function-scoped). See `ARCHITECTURE.md` § "Static
//! analysis & enforced invariants" for the rationale behind each family.

use std::fmt;

use crate::config::{Config, Deny, Zone};
use crate::lexer::{lex, LexedFile, TokenKind};
use crate::model::{build, FileModel};

/// A lint family identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// RA0001: `unsafe` without a `// SAFETY:` comment.
    UnsafeSafety,
    /// RA0002: `Ordering::*` without a justification comment.
    OrderingJustify,
    /// RA0003: `Ordering::SeqCst` outside the allowlist.
    SeqCstAllowlist,
    /// RA0004: panic path inside a no-panic zone.
    PanicPath,
    /// RA0005: allocation inside a zero-alloc zone.
    HotAlloc,
    /// RA0006: lock-discipline breach.
    LockDiscipline,
    /// RA0007: hygiene deny (`dbg!`, `println!` in a lib, `todo!`).
    Hygiene,
}

impl Lint {
    /// Stable machine-readable id.
    pub fn id(self) -> &'static str {
        match self {
            Lint::UnsafeSafety => "RA0001",
            Lint::OrderingJustify => "RA0002",
            Lint::SeqCstAllowlist => "RA0003",
            Lint::PanicPath => "RA0004",
            Lint::HotAlloc => "RA0005",
            Lint::LockDiscipline => "RA0006",
            Lint::Hygiene => "RA0007",
        }
    }

    /// Short human name.
    pub fn name(self) -> &'static str {
        match self {
            Lint::UnsafeSafety => "unsafe-safety-comment",
            Lint::OrderingJustify => "ordering-justification",
            Lint::SeqCstAllowlist => "seqcst-allowlist",
            Lint::PanicPath => "panic-path",
            Lint::HotAlloc => "hot-alloc",
            Lint::LockDiscipline => "lock-discipline",
            Lint::Hygiene => "hygiene",
        }
    }

    /// All lint families, in id order.
    pub fn all() -> [Lint; 7] {
        [
            Lint::UnsafeSafety,
            Lint::OrderingJustify,
            Lint::SeqCstAllowlist,
            Lint::PanicPath,
            Lint::HotAlloc,
            Lint::LockDiscipline,
            Lint::Hygiene,
        ]
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.id(), self.name())
    }
}

/// One diagnostic: where, which lint, what, and how to fix it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// The lint family.
    pub lint: Lint,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
}

/// How a file participates in linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// A library target: every lint applies.
    Lib,
    /// A binary / example target: all lints except the `println!` deny.
    Bin,
    /// A test target: exempt (tests unwrap and panic on purpose).
    Test,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileClass {
    if rel.contains("/tests/") || rel.starts_with("tests/") {
        return FileClass::Test;
    }
    if rel.contains("/examples/")
        || rel.starts_with("examples/")
        || rel.contains("/benches/")
        || rel.contains("/bin/")
        || rel.ends_with("/main.rs")
        || rel == "main.rs"
        || rel.ends_with("build.rs")
    {
        return FileClass::Bin;
    }
    FileClass::Lib
}

/// Runs every applicable lint over one file's source.
pub fn check_source(rel: &str, class: FileClass, src: &str, cfg: &Config) -> Vec<Violation> {
    if class == FileClass::Test {
        return Vec::new();
    }
    let lexed = lex(src);
    let model = build(&lexed);
    let mut out = Vec::new();

    check_unsafe(rel, &lexed, &model, &mut out);
    check_ordering(rel, &lexed, &model, cfg, &mut out);
    check_zones(rel, &lexed, &model, cfg, &mut out);
    check_nested_locks(rel, &lexed, &model, &mut out);
    check_hygiene(rel, class, &lexed, &model, cfg, &mut out);

    out.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    out
}

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn ident<'a>(lexed: &'a LexedFile, i: usize) -> Option<&'a str> {
    match lexed.tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct(lexed: &LexedFile, i: usize, c: char) -> bool {
    matches!(lexed.tokens.get(i).map(|t| &t.kind), Some(TokenKind::Punct(p)) if *p == c)
}

/// RA0001: every `unsafe` keyword (fn, block, impl) needs a `// SAFETY:`
/// comment immediately above (or a `# Safety` rustdoc section for
/// `unsafe fn` declarations).
fn check_unsafe(rel: &str, lexed: &LexedFile, model: &FileModel, out: &mut Vec<Violation>) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        if ident(lexed, i) != Some("unsafe") || model.in_test(t.line) {
            continue;
        }
        let justification = model.justifying_comments(t.line);
        if justification.contains("SAFETY:") || justification.contains("# Safety") {
            continue;
        }
        out.push(Violation {
            path: rel.to_string(),
            line: t.line,
            lint: Lint::UnsafeSafety,
            message: "`unsafe` site without a `// SAFETY:` comment".to_string(),
            suggestion: "state the invariant that makes this sound (bounds, aliasing, \
                         initialization) in a `// SAFETY:` comment directly above"
                .to_string(),
        });
    }
}

/// RA0002 + RA0003: `Ordering::X` must be justified by a comment naming
/// `X` on the same or preceding line(s); `SeqCst` additionally requires the
/// file to be on the allowlist.
fn check_ordering(
    rel: &str,
    lexed: &LexedFile,
    model: &FileModel,
    cfg: &Config,
    out: &mut Vec<Violation>,
) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        if ident(lexed, i) != Some("Ordering") || model.in_test(t.line) {
            continue;
        }
        if !(punct(lexed, i + 1, ':') && punct(lexed, i + 2, ':')) {
            continue;
        }
        let Some(variant) = ident(lexed, i + 3) else {
            continue;
        };
        if !ATOMIC_ORDERINGS.contains(&variant) {
            continue;
        }
        let line = lexed.tokens[i + 3].line;
        if !model.justifying_comments(line).contains(variant) {
            out.push(Violation {
                path: rel.to_string(),
                line,
                lint: Lint::OrderingJustify,
                message: format!("`Ordering::{variant}` without a justification comment"),
                suggestion: format!(
                    "add a comment naming `{variant}` on this or the preceding line \
                     explaining why this ordering is sufficient"
                ),
            });
        }
        if variant == "SeqCst" && !cfg.seqcst_allow.iter().any(|p| p == rel) {
            out.push(Violation {
                path: rel.to_string(),
                line,
                lint: Lint::SeqCstAllowlist,
                message: "`Ordering::SeqCst` outside the allowlist".to_string(),
                suggestion: "prefer Acquire/Release or Relaxed with a rationale; if SeqCst \
                             is genuinely required, add the file to `[ordering] seqcst_allow` \
                             in analysis.toml"
                    .to_string(),
            });
        }
    }
}

/// Statement-leading keywords that bind a value for the enclosing block
/// (used to decide whether a `lock()` guard outlives its statement).
const BINDING_STARTS: [&str; 5] = ["let", "if", "while", "for", "match"];

/// Keywords that may directly precede `[` without forming an index
/// expression (`let [a, b] = …`, `for [x, y] in …`).
const NON_INDEX_KEYWORDS: [&str; 14] = [
    "let", "in", "if", "while", "match", "return", "mut", "ref", "as", "const", "static", "else",
    "move", "break",
];

/// RA0004 + RA0005 + the zone half of RA0006: walks each configured zone.
fn check_zones(
    rel: &str,
    lexed: &LexedFile,
    model: &FileModel,
    cfg: &Config,
    out: &mut Vec<Violation>,
) {
    for zone in cfg.zones.iter().filter(|z| z.path == rel) {
        let in_zone = |line: usize| -> bool {
            !model.in_test(line)
                && (zone.functions.is_empty()
                    || zone.functions.iter().any(|f| model.in_fn(f, line)))
        };
        for (i, t) in lexed.tokens.iter().enumerate() {
            if !in_zone(t.line) {
                continue;
            }
            for &deny in &zone.deny {
                if let Some(message) = deny_hit(lexed, i, deny) {
                    out.push(zone_violation(rel, t.line, zone, deny, message));
                }
            }
        }
    }
}

/// Does token `i` trigger `deny`? Returns the message if so.
fn deny_hit(lexed: &LexedFile, i: usize, deny: Deny) -> Option<String> {
    let id = ident(lexed, i);
    match deny {
        Deny::Unwrap if id == Some("unwrap") && punct(lexed, i + 1, '(') => {
            Some("`.unwrap()` call".to_string())
        }
        Deny::Expect if id == Some("expect") && punct(lexed, i + 1, '(') => {
            Some("`.expect(…)` call".to_string())
        }
        Deny::Panic
            if matches!(id, Some("panic") | Some("unreachable")) && punct(lexed, i + 1, '!') =>
        {
            Some(format!("`{}!` invocation", id.unwrap_or_default()))
        }
        Deny::Indexing if punct(lexed, i, '[') && i > 0 => {
            let indexes = match &lexed.tokens[i - 1].kind {
                TokenKind::Ident(s) => !NON_INDEX_KEYWORDS.contains(&s.as_str()),
                TokenKind::Punct(')') | TokenKind::Punct(']') => true,
                _ => false,
            };
            indexes.then(|| "index/slice expression (can panic on out-of-bounds)".to_string())
        }
        Deny::Alloc => alloc_hit(lexed, i),
        Deny::BlockingLock
            if punct(lexed, i, '.')
                && ident(lexed, i + 1) == Some("lock")
                && punct(lexed, i + 2, '(') =>
        {
            Some("blocking `.lock()` in a try-lock-only zone".to_string())
        }
        _ => None,
    }
}

/// Allocation-shaped token patterns for RA0005.
fn alloc_hit(lexed: &LexedFile, i: usize) -> Option<String> {
    let id = ident(lexed, i)?;
    match id {
        "vec" | "format" if punct(lexed, i + 1, '!') => Some(format!("`{id}!` allocates")),
        "Vec" | "String" | "Box" if punct(lexed, i + 1, ':') && punct(lexed, i + 2, ':') => {
            let ctor = ident(lexed, i + 3)?;
            matches!(ctor, "new" | "from" | "with_capacity")
                .then(|| format!("`{id}::{ctor}` allocates"))
        }
        "to_vec" | "to_string" | "to_owned" | "clone" | "collect" if i > 0 => {
            punct(lexed, i - 1, '.').then(|| format!("`.{id}()` allocates"))
        }
        _ => None,
    }
}

fn zone_violation(rel: &str, line: usize, zone: &Zone, deny: Deny, message: String) -> Violation {
    let (lint, suggestion) = match deny {
        Deny::Alloc => (
            Lint::HotAlloc,
            "hot path is zero-alloc by contract (PR 3 Scratch arenas): reuse a caller-provided \
             buffer or hoist the allocation out of the loop"
                .to_string(),
        ),
        Deny::BlockingLock => (
            Lint::LockDiscipline,
            "telemetry recording paths must never block: use `try_lock()` and drop the sample \
             on contention"
                .to_string(),
        ),
        _ => (
            Lint::PanicPath,
            "degrade gracefully: recover poisoned locks with \
             `unwrap_or_else(PoisonError::into_inner)`, turn disconnects into drain/shutdown \
             paths, and bounds-check instead of indexing"
                .to_string(),
        ),
    };
    Violation {
        path: rel.to_string(),
        line,
        lint,
        message: format!("{message} in zone `{}`", zone.reason),
        suggestion,
    }
}

/// RA0006 (global half): within one function body, taking a second
/// `.lock()` while a bound guard from an earlier `.lock()` is still live is
/// denied — lock-ordering deadlocks are impossible if no thread ever holds
/// two locks.
///
/// A guard counts as live when its statement begins with a binding keyword
/// (`let`, `if let`, `while let`, …) and its enclosing block is still open;
/// bare `x.lock().…` temporaries die at the end of their statement.
fn check_nested_locks(rel: &str, lexed: &LexedFile, model: &FileModel, out: &mut Vec<Violation>) {
    for f in &model.fn_spans {
        if f.body_start == usize::MAX || model.in_test(f.start_line) {
            continue;
        }
        // Skip lexically nested fn items: an inner `fn` cannot capture the
        // outer guard, so its locks are a different runtime context.
        let nested: Vec<(usize, usize)> = model
            .fn_spans
            .iter()
            .filter(|g| {
                g.body_start != usize::MAX
                    && g.body_start > f.body_start
                    && g.body_end <= f.body_end
            })
            .map(|g| (g.body_start, g.body_end))
            .collect();

        let mut depth = 0usize;
        let mut live_guards: Vec<usize> = Vec::new();
        let mut i = f.body_start;
        while i < f.body_end.min(lexed.tokens.len()) {
            if let Some(&(_, end)) = nested.iter().find(|&&(s, e)| s <= i && i < e) {
                i = end;
                continue;
            }
            match &lexed.tokens[i].kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    live_guards.retain(|&g| g <= depth);
                }
                TokenKind::Punct('.')
                    if ident(lexed, i + 1) == Some("lock") && punct(lexed, i + 2, '(') =>
                {
                    let line = lexed.tokens[i].line;
                    if !live_guards.is_empty() {
                        out.push(Violation {
                            path: rel.to_string(),
                            line,
                            lint: Lint::LockDiscipline,
                            message: format!(
                                "nested `.lock()` while an earlier guard is live in fn `{}`",
                                f.name
                            ),
                            suggestion: "hold at most one lock at a time: drop or scope the \
                                         first guard before taking the second"
                                .to_string(),
                        });
                    }
                    if statement_binds(lexed, f.body_start, i) {
                        live_guards.push(depth);
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
}

/// Does the statement containing token `i` begin with a binding keyword?
fn statement_binds(lexed: &LexedFile, body_start: usize, i: usize) -> bool {
    let mut j = i;
    while j > body_start {
        match &lexed.tokens[j - 1].kind {
            TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}') => break,
            _ => j -= 1,
        }
    }
    matches!(lexed.tokens.get(j).map(|t| &t.kind),
        Some(TokenKind::Ident(s)) if BINDING_STARTS.contains(&s.as_str()))
}

/// RA0007: `dbg!`/`todo!`/`unimplemented!` anywhere; print-family macros in
/// library targets (unless the crate is on the `print_allow` list).
fn check_hygiene(
    rel: &str,
    class: FileClass,
    lexed: &LexedFile,
    model: &FileModel,
    cfg: &Config,
    out: &mut Vec<Violation>,
) {
    let print_allowed =
        class == FileClass::Bin || cfg.print_allow.iter().any(|p| rel.starts_with(p.as_str()));
    for (i, t) in lexed.tokens.iter().enumerate() {
        if model.in_test(t.line) || !punct(lexed, i + 1, '!') {
            continue;
        }
        let Some(name) = ident(lexed, i) else {
            continue;
        };
        let (message, suggestion) = match name {
            "dbg" | "todo" | "unimplemented" => (
                format!("stray `{name}!`"),
                "remove the placeholder before landing".to_string(),
            ),
            "println" | "print" | "eprintln" | "eprint" if !print_allowed => (
                format!("`{name}!` in a library crate"),
                "libraries report through return values or rbnn-telemetry, not stdout; \
                 move printing into the binary target"
                    .to_string(),
            ),
            _ => continue,
        };
        out.push(Violation {
            path: rel.to_string(),
            line: t.line,
            lint: Lint::Hygiene,
            message,
            suggestion,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Violation> {
        check_source(
            "crates/x/src/lib.rs",
            FileClass::Lib,
            src,
            &Config::default(),
        )
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "pub fn f(p: *mut u8) { unsafe { *p = 0 }; }";
        assert!(check(bad).iter().any(|v| v.lint == Lint::UnsafeSafety));
        let good = "pub fn f(p: *mut u8) {\n    // SAFETY: p is valid for writes by contract.\n    unsafe { *p = 0 };\n}";
        assert!(check(good).is_empty());
    }

    #[test]
    fn ordering_requires_named_justification() {
        let bad = "fn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); }";
        assert!(check(bad).iter().any(|v| v.lint == Lint::OrderingJustify));
        let good = "fn f(a: &AtomicUsize) {\n    // Relaxed: independent counter, no ordering needed.\n    a.load(Ordering::Relaxed);\n}";
        assert!(check(good).is_empty());
        let trailing =
            "fn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); // Relaxed: plain count.\n}";
        assert!(check(trailing).is_empty());
    }

    #[test]
    fn seqcst_denied_off_allowlist() {
        let src =
            "fn f(a: &AtomicUsize) {\n    // SeqCst: because.\n    a.load(Ordering::SeqCst);\n}";
        assert!(check(src).iter().any(|v| v.lint == Lint::SeqCstAllowlist));
        let mut cfg = Config::default();
        cfg.seqcst_allow.push("crates/x/src/lib.rs".to_string());
        let vs = check_source("crates/x/src/lib.rs", FileClass::Lib, src, &cfg);
        assert!(vs.is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(a: &AtomicUsize) { a.load(Ordering::SeqCst); let x = v[0]; x.unwrap(); }\n}";
        assert!(check(src).is_empty());
    }

    #[test]
    fn nested_lock_flagged_only_when_guard_is_bound() {
        let bad = "fn f(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let g1 = a.lock().ok();\n    let g2 = b.lock().ok();\n}";
        assert!(check(bad).iter().any(|v| v.lint == Lint::LockDiscipline));
        let temp = "fn f(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let n = *a.lock().ok().take().here();\n}\nfn g(a: &Mutex<u8>) { let x = a.lock(); }";
        assert!(check(temp).is_empty());
    }

    #[test]
    fn zone_denies_fire_inside_named_functions_only() {
        let mut cfg = Config::default();
        cfg.zones.push(crate::config::Zone {
            path: "crates/x/src/lib.rs".to_string(),
            functions: vec!["hot".to_string()],
            deny: vec![Deny::Unwrap, Deny::Alloc, Deny::Indexing],
            reason: "hot loop".to_string(),
        });
        let src = "fn hot(v: &[u8]) { let a = v.to_vec(); let b = v[0]; a.first().unwrap(); }\nfn cold(v: &[u8]) { let _ = v.to_vec(); }";
        let vs = check_source("crates/x/src/lib.rs", FileClass::Lib, src, &cfg);
        assert_eq!(vs.iter().filter(|v| v.lint == Lint::HotAlloc).count(), 1);
        assert_eq!(vs.iter().filter(|v| v.lint == Lint::PanicPath).count(), 2);
        assert!(vs.iter().all(|v| v.line == 1));
    }

    #[test]
    fn hygiene_scopes_print_to_libraries() {
        let src = "fn f() { println!(\"x\"); }";
        assert!(check(src).iter().any(|v| v.lint == Lint::Hygiene));
        assert!(check_source(
            "crates/x/src/bin/t.rs",
            FileClass::Bin,
            src,
            &Config::default()
        )
        .is_empty());
        let mut cfg = Config::default();
        cfg.print_allow.push("crates/x".to_string());
        assert!(check_source("crates/x/src/lib.rs", FileClass::Lib, src, &cfg).is_empty());
        assert!(!check_source(
            "crates/x/src/lib.rs",
            FileClass::Lib,
            "fn f() { dbg!(1); }",
            &cfg
        )
        .is_empty());
    }

    #[test]
    fn try_lock_only_zone() {
        let mut cfg = Config::default();
        cfg.zones.push(crate::config::Zone {
            path: "crates/x/src/lib.rs".to_string(),
            functions: Vec::new(),
            deny: vec![Deny::BlockingLock],
            reason: "try-lock only".to_string(),
        });
        let bad = "fn f(m: &Mutex<u8>) { let g = m.lock(); }";
        assert!(!check_source("crates/x/src/lib.rs", FileClass::Lib, bad, &cfg).is_empty());
        let good = "fn f(m: &Mutex<u8>) { if let Ok(g) = m.try_lock() {} }";
        assert!(check_source("crates/x/src/lib.rs", FileClass::Lib, good, &cfg).is_empty());
    }
}
