//! Human-readable diagnostics and the machine-readable JSON report.
//!
//! The JSON mirrors the `bench_results/*.json` convention the benchmark
//! binaries follow (a top-level `"bench"` discriminator plus flat fields),
//! so fleet tooling can ingest `analysis.json` alongside `serve.json` and
//! friends. Serialization is hand-rolled string building — same approach as
//! `rbnn-telemetry`'s exposition — keeping the crate dependency-free.

use std::collections::BTreeMap;

use crate::config::Waiver;
use crate::lints::{Lint, Violation};

/// The outcome of a whole scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Unwaived violations (the scan fails in `--strict` if non-empty).
    pub violations: Vec<Violation>,
    /// Violations matched and suppressed by a waiver, with the reason.
    pub waived: Vec<(Violation, String)>,
    /// Waivers that matched nothing — also a failure (stale suppressions
    /// must not outlive the code they excused).
    pub unused_waivers: Vec<Waiver>,
}

impl Report {
    /// Does the scan pass?
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.unused_waivers.is_empty()
    }

    /// Violation count per lint id (zero-filled for clean lints).
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> =
            Lint::all().iter().map(|l| (l.id(), 0)).collect();
        for v in &self.violations {
            *counts.entry(v.lint.id()).or_insert(0) += 1;
        }
        counts
    }

    /// Renders the human-readable diagnostic listing plus summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{} [{}] {}\n    suggestion: {}\n",
                v.path, v.line, v.lint, v.message, v.suggestion
            ));
        }
        for (v, reason) in &self.waived {
            out.push_str(&format!(
                "{}:{} [{}] waived: {} (reason: {})\n",
                v.path, v.line, v.lint, v.message, reason
            ));
        }
        for w in &self.unused_waivers {
            out.push_str(&format!(
                "analysis.toml: waiver {} {}:{} matches nothing — delete it\n",
                w.lint, w.path, w.line
            ));
        }
        out.push_str(&format!(
            "rbnn-analysis: {} files scanned, {} violation{}, {} waived, {} stale waiver{} — {}\n",
            self.files_scanned,
            self.violations.len(),
            if self.violations.len() == 1 { "" } else { "s" },
            self.waived.len(),
            self.unused_waivers.len(),
            if self.unused_waivers.len() == 1 {
                ""
            } else {
                "s"
            },
            if self.passed() { "PASS" } else { "FAIL" },
        ));
        out
    }

    /// Renders the machine-readable JSON report.
    pub fn render_json(&self, strict: bool) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"analysis\",\n");
        s.push_str("  \"schema\": 1,\n");
        s.push_str(&format!("  \"strict\": {strict},\n"));
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"passed\": {},\n", self.passed()));
        s.push_str("  \"counts\": {");
        let counts = self.counts();
        let mut first = true;
        for (id, n) in &counts {
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&format!("\"{id}\": {n}"));
        }
        s.push_str("},\n");
        push_violation_array(
            &mut s,
            "violations",
            self.violations.iter().map(|v| (v, None)),
        );
        s.push_str(",\n");
        push_violation_array(
            &mut s,
            "waived",
            self.waived.iter().map(|(v, r)| (v, Some(r.as_str()))),
        );
        s.push_str(",\n  \"stale_waivers\": [");
        for (i, w) in self.unused_waivers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"lint\": {}, \"path\": {}, \"line\": {}}}",
                json_str(&w.lint),
                json_str(&w.path),
                w.line
            ));
        }
        if !self.unused_waivers.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

fn push_violation_array<'a>(
    s: &mut String,
    key: &str,
    items: impl Iterator<Item = (&'a Violation, Option<&'a str>)>,
) {
    s.push_str(&format!("  \"{key}\": ["));
    let mut any = false;
    for (i, (v, reason)) in items.enumerate() {
        any = true;
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"lint\": {}, \"name\": {}, \"message\": {}, \"suggestion\": {}",
            json_str(&v.path),
            v.line,
            json_str(v.lint.id()),
            json_str(v.lint.name()),
            json_str(&v.message),
            json_str(&v.suggestion),
        ));
        if let Some(r) = reason {
            s.push_str(&format!(", \"waiver_reason\": {}", json_str(r)));
        }
        s.push('}');
    }
    if any {
        s.push_str("\n  ");
    }
    s.push(']');
}

/// Escapes a string for JSON.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            files_scanned: 3,
            violations: vec![Violation {
                path: "crates/x/src/lib.rs".to_string(),
                line: 7,
                lint: Lint::PanicPath,
                message: "`.unwrap()` call in zone `q`".to_string(),
                suggestion: "recover".to_string(),
            }],
            waived: Vec::new(),
            unused_waivers: Vec::new(),
        }
    }

    #[test]
    fn text_has_location_id_and_suggestion() {
        let text = sample().render_text();
        assert!(text.contains("crates/x/src/lib.rs:7"));
        assert!(text.contains("RA0004 panic-path"));
        assert!(text.contains("suggestion: recover"));
        assert!(text.contains("FAIL"));
    }

    #[test]
    fn json_is_well_formed_and_counts_are_zero_filled() {
        let json = sample().render_json(true);
        assert!(json.contains("\"bench\": \"analysis\""));
        assert!(json.contains("\"RA0001\": 0"));
        assert!(json.contains("\"RA0004\": 1"));
        assert!(json.contains("\"passed\": false"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_report_passes() {
        let r = Report {
            files_scanned: 1,
            ..Default::default()
        };
        assert!(r.passed());
        assert!(r.render_text().contains("PASS"));
        assert!(r.render_json(false).contains("\"passed\": true"));
    }
}
