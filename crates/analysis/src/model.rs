//! A lightweight item/block visitor over the token stream.
//!
//! The lints need three structural facts the flat token list doesn't give
//! directly:
//!
//! 1. **Test regions** — items annotated `#[cfg(test)]` or `#[test]` are
//!    exempt from every lint (tests unwrap and panic on purpose), so their
//!    line spans must be known;
//! 2. **Function spans** — panic-freedom and zero-alloc zones can be scoped
//!    to named functions (`functions = ["worker_loop"]` in `analysis.toml`),
//!    and the nested-lock lint reasons per function body;
//! 3. **Comment adjacency** — `// SAFETY:` and ordering-justification
//!    checks ask "is there a comment run immediately above this line?".
//!
//! The visitor is brace-matching, not parsing: it tracks `{}`/`[]` depth,
//! recognizes `fn name … {` item heads and attribute spans, and records
//! line ranges. That is enough structure for lexical lints and keeps the
//! crate dependency-free.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{LexedFile, TokenKind};

/// A function item (or method) with its body's extent.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
    /// 1-based line of the body's closing brace (start line if bodyless).
    pub end_line: usize,
    /// Token index of the body's opening `{` (exclusive of signature),
    /// or `usize::MAX` for bodyless declarations.
    pub body_start: usize,
    /// Token index one past the body's closing `}`.
    pub body_end: usize,
}

/// Structural facts about one lexed file.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Line ranges (inclusive) covered by `#[cfg(test)]`/`#[test]` items.
    pub test_spans: Vec<(usize, usize)>,
    /// Every function item found, outermost first.
    pub fn_spans: Vec<FnSpan>,
    /// line → concatenated text of the comment(s) covering that line.
    pub comment_lines: BTreeMap<usize, String>,
    /// Lines whose first token is `#` (attribute lines) — treated as
    /// transparent when walking upward looking for a justifying comment.
    pub attr_lines: BTreeSet<usize>,
    /// Lines containing at least one code token.
    pub code_lines: BTreeSet<usize>,
}

impl FileModel {
    /// Is `line` inside a `#[cfg(test)]`/`#[test]` item?
    pub fn in_test(&self, line: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| s <= line && line <= e)
    }

    /// The comment text justifying `line`: the trailing comment on the line
    /// itself plus the contiguous comment run immediately above it
    /// (attribute lines are transparent, blank lines break the run).
    pub fn justifying_comments(&self, line: usize) -> String {
        let mut text = String::new();
        if let Some(t) = self.comment_lines.get(&line) {
            text.push_str(t);
            text.push('\n');
        }
        let mut l = line.saturating_sub(1);
        while l > 0 {
            if let Some(t) = self.comment_lines.get(&l) {
                text.push_str(t);
                text.push('\n');
            } else if self.attr_lines.contains(&l) {
                // `#[inline]` between the comment and the item: keep walking.
            } else {
                break;
            }
            l -= 1;
        }
        text
    }

    /// Is `line` inside the body of any function named `name`?
    pub fn in_fn(&self, name: &str, line: usize) -> bool {
        self.fn_spans
            .iter()
            .any(|f| f.name == name && f.start_line <= line && line <= f.end_line)
    }
}

/// Builds the [`FileModel`] for a lexed file.
pub fn build(lexed: &LexedFile) -> FileModel {
    let mut model = FileModel::default();

    for c in &lexed.comments {
        for l in c.line..=c.end_line {
            model
                .comment_lines
                .entry(l)
                .and_modify(|t| {
                    t.push('\n');
                    t.push_str(&c.text);
                })
                .or_insert_with(|| c.text.clone());
        }
    }

    let toks = &lexed.tokens;
    let mut seen_line_first: BTreeMap<usize, usize> = BTreeMap::new();
    for (idx, t) in toks.iter().enumerate() {
        model.code_lines.insert(t.line);
        seen_line_first.entry(t.line).or_insert(idx);
    }
    for (&line, &idx) in &seen_line_first {
        if toks[idx].kind == TokenKind::Punct('#') {
            model.attr_lines.insert(line);
        }
    }

    // Pass 1: attributes and test items.
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Punct('#') {
            let (attr_end, is_test) = scan_attribute(lexed, i);
            if is_test {
                // Collect any further attributes, then span the item.
                let mut j = attr_end;
                while j < toks.len() && toks[j].kind == TokenKind::Punct('#') {
                    let (next_end, _) = scan_attribute(lexed, j);
                    j = next_end;
                }
                let (start_line, end_line, item_end) = item_extent(lexed, j);
                model
                    .test_spans
                    .push((toks[i].line.min(start_line), end_line));
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }

    // Pass 2: function spans (including fns inside test items — harmless,
    // since lints skip test lines first).
    let mut i = 0usize;
    while i < toks.len() {
        if let TokenKind::Ident(kw) = &toks[i].kind {
            if kw == "fn" {
                if let Some(TokenKind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                    let (start_line, end_line, body_start, body_end) = fn_extent(lexed, i);
                    model.fn_spans.push(FnSpan {
                        name: name.clone(),
                        start_line,
                        end_line,
                        body_start,
                        body_end,
                    });
                }
            }
        }
        i += 1;
    }

    model
}

/// Scans the attribute starting at token `i` (a `#`); returns the index
/// just past its closing `]` and whether it mentions `test` (`#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, …))]`).
fn scan_attribute(lexed: &LexedFile, i: usize) -> (usize, bool) {
    let toks = &lexed.tokens;
    let mut j = i + 1;
    // Inner attribute `#![…]` — skip the bang.
    if matches!(toks.get(j).map(|t| &t.kind), Some(TokenKind::Punct('!'))) {
        j += 1;
    }
    if !matches!(toks.get(j).map(|t| &t.kind), Some(TokenKind::Punct('['))) {
        return (i + 1, false);
    }
    let mut depth = 0usize;
    let mut is_test = false;
    while j < toks.len() {
        match &toks[j].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, is_test);
                }
            }
            // `#[cfg(not(test))]` gates *production* code: skip the
            // negated predicate so it doesn't read as a test item.
            TokenKind::Ident(s) if s == "not" => {
                if matches!(
                    toks.get(j + 1).map(|t| &t.kind),
                    Some(TokenKind::Punct('('))
                ) {
                    let mut parens = 0usize;
                    j += 1;
                    while j < toks.len() {
                        match &toks[j].kind {
                            TokenKind::Punct('(') => parens += 1,
                            TokenKind::Punct(')') => {
                                parens -= 1;
                                if parens == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
            }
            TokenKind::Ident(s) if s == "test" => is_test = true,
            _ => {}
        }
        j += 1;
    }
    (j, is_test)
}

/// The extent of the item starting at token `j`: (start_line, end_line,
/// index one past the item). The item ends at the `}` matching its first
/// `{`, or at the first top-level `;` for braceless items.
fn item_extent(lexed: &LexedFile, j: usize) -> (usize, usize, usize) {
    let toks = &lexed.tokens;
    let start_line = toks.get(j).map_or(1, |t| t.line);
    let mut k = j;
    while k < toks.len() {
        match &toks[k].kind {
            TokenKind::Punct('{') => {
                let end = matching_brace(lexed, k);
                let end_line = toks
                    .get(end.saturating_sub(1))
                    .map_or(start_line, |t| t.line);
                return (start_line, end_line, end);
            }
            TokenKind::Punct(';') => {
                return (start_line, toks[k].line, k + 1);
            }
            _ => k += 1,
        }
    }
    (start_line, toks.last().map_or(start_line, |t| t.line), k)
}

/// The extent of the `fn` item whose `fn` keyword is token `i`.
fn fn_extent(lexed: &LexedFile, i: usize) -> (usize, usize, usize, usize) {
    let toks = &lexed.tokens;
    let start_line = toks[i].line;
    let mut k = i;
    while k < toks.len() {
        match &toks[k].kind {
            TokenKind::Punct('{') => {
                let end = matching_brace(lexed, k);
                let end_line = toks
                    .get(end.saturating_sub(1))
                    .map_or(start_line, |t| t.line);
                return (start_line, end_line, k, end);
            }
            TokenKind::Punct(';') => return (start_line, toks[k].line, usize::MAX, k + 1),
            _ => k += 1,
        }
    }
    (start_line, start_line, usize::MAX, k)
}

/// Index one past the `}` matching the `{` at token `open`.
fn matching_brace(lexed: &LexedFile, open: usize) -> usize {
    let toks = &lexed.tokens;
    let mut depth = 0usize;
    let mut k = open;
    while k < toks.len() {
        match &toks[k].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_mod_is_a_test_span() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\nfn also_live() {}\n";
        let lexed = lex(src);
        let m = build(&lexed);
        assert!(!m.in_test(1));
        assert!(m.in_test(3));
        assert!(m.in_test(5));
        assert!(!m.in_test(7));
    }

    #[test]
    fn fn_spans_cover_bodies_and_names() {
        let src = "pub fn outer(a: usize) -> usize {\n    let f = |x: usize| x + 1;\n    f(a)\n}\nfn bodyless();\n";
        let lexed = lex(src);
        let m = build(&lexed);
        assert!(m.in_fn("outer", 2));
        assert!(m.in_fn("outer", 4));
        assert!(!m.in_fn("outer", 5));
        assert!(m.fn_spans.iter().any(|f| f.name == "bodyless"));
    }

    #[test]
    fn justifying_comments_walk_runs_and_attributes() {
        let src = "// SAFETY: the invariant.\n#[inline]\nunsafe fn f() {}\n\nlet x = 1; // Relaxed: trailing.\n";
        let lexed = lex(src);
        let m = build(&lexed);
        assert!(m.justifying_comments(3).contains("SAFETY:"));
        assert!(m.justifying_comments(5).contains("Relaxed"));
        // The blank line 4 breaks the run: line 5 must not see line 1.
        assert!(!m.justifying_comments(5).contains("SAFETY:"));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let src = "#[cfg(feature = \"x\")]\nfn gated() { x.unwrap(); }\n";
        let lexed = lex(src);
        let m = build(&lexed);
        assert!(!m.in_test(2));
    }
}
