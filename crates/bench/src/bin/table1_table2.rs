//! Regenerates Tables I and II: the EEG and ECG network architectures with
//! per-layer output shapes and parameter counts, at paper dimensions.

use rbnn_bench::{archive_json, banner, parse_scale};
use rram_bnn::experiments::tables12;

fn main() {
    let scale = parse_scale();
    banner(
        "Tables I & II — network architectures (paper dimensions)",
        scale,
    );
    let t1 = tables12::table1_eeg();
    let t2 = tables12::table2_ecg();
    println!("{t1}");
    println!("{t2}");
    println!("Paper Table I milestones: 961×64×40 → 961×1×40 → 63×1×40 → 2520 → 80 → 2");
    println!("Paper Table II milestones: 738 → 369 → 359 → 179 → 171 → 165 → 161 → 5152 → 75 → 2");
    archive_json("table1_eeg", &t1);
    archive_json("table2_ecg", &t2);
}
