//! Regenerates the medical rows of Table III: cross-validated accuracy of
//! real-weight, fully binarized (1× and augmented) and binarized-classifier
//! networks on the EEG and ECG tasks.

use rbnn_bench::{archive_json, banner, parse_scale, RunScale};
use rram_bnn::experiments::{table3, CvRunConfig};
use rram_bnn::Scale;

fn main() {
    let scale = parse_scale();
    banner(
        "Table III — accuracy vs binarization strategy (EEG & ECG)",
        scale,
    );
    let (run_scale, cfg) = match scale {
        RunScale::Quick => (Scale::Quick, CvRunConfig::quick()),
        RunScale::Full => (Scale::Paper, CvRunConfig::paper()),
    };
    let result = table3::run(run_scale, &cfg);
    println!("{result}");
    println!();
    for row in &result.rows {
        println!(
            "{}: ordering real ≥ bin-classifier ≥ BNN(1x) holds within 2%: {}",
            row.task,
            row.ordering_holds(0.02)
        );
    }
    println!("(ImageNet row of Table III is produced by fig8_mobilenet on the vision proxy.)");
    archive_json("table3_accuracy", &result);
}
