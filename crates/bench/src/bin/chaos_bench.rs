//! Chaos gate for the self-healing serve runtime: a monitoring fleet
//! driven through seeded fault injection
//! ([`rbnn_serve::fault::arm_chaos`]) must stay clinically usable.
//!
//! Three phases, each an acceptance experiment (`--strict` exits
//! non-zero on failure; CI runs `--quick --strict`):
//!
//! 1. **Injection disabled** — the chaos hook must be invisible when
//!    disarmed: streamed logits bitwise-equal to offline batch
//!    classification, zero failed windows, zero retries.
//! 2. **Software chaos** — ≥ 64 concurrent patients while an armed
//!    [`ChaosPlan`] panics, stalls and transiently fails a seeded
//!    fraction of engine dispatches. Every patient must hold ≥ 1×
//!    realtime, every submitted window must reach a terminal verdict
//!    (zero lost requests; typed failures are terminal, silence is not),
//!    the failure fraction must stay ≤ 5%, and the supervisor must have
//!    respawned every panicked replica within the backoff budget.
//! 3. **Fabric drift** — a one-shot endurance-drift episode on an RRAM
//!    fleet pushes one replica past the marginal-cell threshold; the
//!    fleet report must show it degraded to the software fallback while
//!    service continues uninterrupted.
//!
//! Usage: `cargo run --release --bin chaos_bench [--quick|--full]
//! [--strict]`. Results are archived to `bench_results/chaos.json`.

use std::time::Duration;

use serde::Serialize;

use rbnn_bench::{banner, emit_bench_with_dispatch, host_cores, parse_scale_with, RunScale};
use rbnn_data::ecg::{Electrode, INVERTED};
use rbnn_data::stream::{collect_frames, EcgStream, EcgStreamConfig};
use rbnn_rram::EngineConfig;
use rbnn_serve::{
    demo_network, Backend, ChaosPlan, FleetHealth, ModelRegistry, RetryPolicy, ServeConfig,
    ServeTask, Server,
};
use rbnn_stream::{
    AlarmConfig, Normalization, PatientReport, RouterConfig, SegmenterConfig, Session,
    SessionConfig, StreamRouter, TailPolicy, WindowLayout,
};

/// Same signal shape as `stream_bench`: 12-lead 360 Hz ECG, 1-second
/// windows with 50% overlap.
const SAMPLE_RATE: f32 = 360.0;
const CHANNELS: usize = 12;
const WINDOW: usize = 360;
const STRIDE: usize = 180;

/// Worst tolerated terminal-failure fraction under chaos: retries are
/// expected to absorb almost every injected fault.
const MAX_FAILED_FRACTION: f64 = 0.05;
/// Worst tolerated fault → respawn delay (supervisor backoff budget plus
/// scheduling slack).
const RESPAWN_BUDGET: Duration = Duration::from_secs(2);

fn patient_source(id: usize) -> EcgStream {
    let mut cfg = EcgStreamConfig {
        samples_per_segment: 1080,
        sample_rate: SAMPLE_RATE,
        seed: 0xC4A0_0000 + id as u64,
        ..EcgStreamConfig::default()
    };
    // Half the fleet alarms mid-run, so alarm-adjacent windows exercise
    // the urgent queue lane while chaos is firing.
    if id % 2 == 1 {
        cfg.swap = Some((Electrode::Ra, Electrode::La));
        cfg.swap_from_segment = 3;
    }
    EcgStream::new(cfg)
}

fn patient_session() -> Session {
    Session::new(SessionConfig {
        segmenter: SegmenterConfig {
            channels: CHANNELS,
            window: WINDOW,
            stride: STRIDE,
            tail: TailPolicy::Drop,
        },
        layout: WindowLayout::ChannelMajor,
        normalization: Normalization::PerWindow,
    })
}

/// Runs one fleet and returns the per-patient reports plus the fleet
/// health read *before* shutdown (the supervisor dies with the server).
fn run_fleet(
    registry: &ModelRegistry,
    backend: Backend,
    patients: usize,
    windows_per_patient: u64,
) -> (Vec<PatientReport>, FleetHealth) {
    let server = Server::start(
        registry,
        &ServeConfig {
            workers: 4,
            backend,
            ..Default::default()
        },
    );
    let client = server.handle().client(ServeTask::Ecg).expect("registered");
    let mut router = StreamRouter::new(
        client,
        RouterConfig {
            chunk_frames: 120,
            max_in_flight: 4,
            windows_per_patient,
            alarm: AlarmConfig {
                k: 3,
                m: 5,
                positive_class: INVERTED,
            },
            // Generous freshness bound: exercises the deadline path on
            // every request without expiring anything at this load.
            deadline: Some(Duration::from_secs(2)),
            // The retry schedule must span a replica's fault → respawn
            // outage (supervisor base backoff 10 ms plus worker-tick
            // slack), or windows queued behind a panic exhaust their
            // budget against a still-down replica.
            retry: RetryPolicy {
                max_attempts: 5,
                base_backoff: Duration::from_millis(4),
                max_backoff: Duration::from_millis(60),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    for id in 0..patients {
        router.add_patient(id, Box::new(patient_source(id)), patient_session());
    }
    let reports = router.run().expect("streaming run");
    let fleet = server.handle().fleet_health();
    server.shutdown();
    (reports, fleet)
}

#[derive(Debug, Clone, Serialize)]
struct FleetRow {
    patients: usize,
    total_windows: u64,
    classified_windows: u64,
    failed_windows: u64,
    retries: u64,
    min_realtime_factor: f64,
    alarms_raised: u64,
    faults: u64,
    respawns: u64,
    max_respawn_delay_ms: f64,
    degraded_replicas: u64,
}

fn summarize(reports: &[PatientReport], fleet: &FleetHealth, patients: usize) -> FleetRow {
    let total_windows: u64 = reports.iter().map(|r| r.windows).sum();
    let failed: u64 = reports.iter().map(|r| r.failed_windows).sum();
    FleetRow {
        patients,
        total_windows,
        classified_windows: total_windows - failed,
        failed_windows: failed,
        retries: reports.iter().map(|r| r.retries).sum(),
        min_realtime_factor: reports
            .iter()
            .map(|r| r.realtime_factor)
            .fold(f64::INFINITY, f64::min),
        alarms_raised: reports.iter().map(|r| r.alarms_raised).sum(),
        faults: fleet.faults,
        respawns: fleet.respawns,
        max_respawn_delay_ms: fleet
            .max_respawn_delay
            .map(|d| d.as_secs_f64() * 1e3)
            .unwrap_or(0.0),
        degraded_replicas: fleet.degraded as u64,
    }
}

/// Zero lost requests: every submitted window reached a terminal verdict
/// and every patient hit its window target.
fn no_lost_requests(reports: &[PatientReport], windows_per_patient: u64) -> bool {
    reports
        .iter()
        .all(|r| r.windows == r.verdicts.len() as u64 && r.windows >= windows_per_patient)
}

/// Offline oracle for the fault-free phase: re-derive every patient's
/// windows in one buffered pass, classify as one batch, compare logits
/// bit for bit against the streamed verdicts.
fn check_parity(net: &rbnn_binary::BinaryNetwork, reports: &[PatientReport]) -> bool {
    for report in reports {
        let mut source = patient_source(report.id);
        let frames = collect_frames(&mut source, report.frames as usize);
        let mut session = patient_session();
        let offline = session.push_chunk(&frames);
        if offline.len() < report.verdicts.len() {
            eprintln!(
                "parity: patient {} produced {} offline windows vs {} streamed",
                report.id,
                offline.len(),
                report.verdicts.len()
            );
            return false;
        }
        let rows: Vec<&[f32]> = offline
            .iter()
            .take(report.verdicts.len())
            .map(|w| w.features.as_slice())
            .collect();
        let logits = net.logits_batch_rows(&rows);
        let classes = logits.dim(1);
        for (i, verdict) in report.verdicts.iter().enumerate() {
            let offline_row = &logits.as_slice()[i * classes..(i + 1) * classes];
            let Some(streamed) = verdict.logits() else {
                eprintln!(
                    "parity: patient {} window {} failed with chaos disarmed",
                    report.id, verdict.window
                );
                return false;
            };
            if streamed
                .iter()
                .map(|l| l.to_bits())
                .ne(offline_row.iter().map(|l| l.to_bits()))
            {
                eprintln!(
                    "parity: patient {} window {} logits diverge: {:?} vs {:?}",
                    report.id, verdict.window, streamed, offline_row
                );
                return false;
            }
        }
    }
    true
}

#[derive(Debug, Clone, Serialize)]
struct ChaosBenchResult {
    task: String,
    window_frames: usize,
    stride_frames: usize,
    baseline: FleetRow,
    baseline_parity_ok: bool,
    baseline_clean_ok: bool,
    chaos: FleetRow,
    chaos_dispatches: u64,
    chaos_panic_per_mille: u16,
    chaos_stall_per_mille: u16,
    chaos_transient_per_mille: u16,
    chaos_realtime_ok: bool,
    chaos_no_lost_ok: bool,
    chaos_failed_fraction: f64,
    chaos_failed_ok: bool,
    chaos_fired_ok: bool,
    chaos_recovered_ok: bool,
    drift: FleetRow,
    drift_degraded_ok: bool,
    drift_no_lost_ok: bool,
}

fn print_row(label: &str, s: &FleetRow) {
    println!(
        "{label:<18} {:>4} patients  {:>6} windows  {:>5} failed  {:>5} retries  rt×{:>6.1}  \
         faults {:>3}  respawns {:>3}  degraded {}",
        s.patients,
        s.total_windows,
        s.failed_windows,
        s.retries,
        s.min_realtime_factor,
        s.faults,
        s.respawns,
        s.degraded_replicas,
    );
}

fn main() {
    let (scale, flags) = parse_scale_with(&["--strict"]);
    let strict = flags[0];
    banner(
        "chaos_bench — fault-injection gate for the self-healing serve runtime",
        scale,
    );
    println!("host parallelism: {} core(s)", host_cores());

    // Injected panics are the point of this bench; silence their default
    // backtrace spam but keep the hook for every genuine panic.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected engine fault"));
        if !injected {
            default_hook(info);
        }
    }));

    let (patients, windows, drift_patients, drift_windows) = match scale {
        RunScale::Quick => (64usize, 20u64, 4usize, 6u64),
        RunScale::Full => (96, 60, 8, 16),
    };

    let net = demo_network(&[CHANNELS * WINDOW, 80, 2], 0x57E4);
    let mut registry = ModelRegistry::new();
    registry.insert(ServeTask::Ecg, net.clone(), EngineConfig::test_chip(4));

    // ---- Phase 1: chaos disarmed — the hook must be invisible. --------
    println!("\nphase 1: injection disabled (bitwise parity vs offline batch):");
    rbnn_serve::fault::disarm_chaos();
    rbnn_serve::fault::arm_engine_panics(0);
    let base_patients = (patients / 4).max(8);
    let (base_reports, base_fleet) =
        run_fleet(&registry, Backend::Software, base_patients, windows);
    let baseline = summarize(&base_reports, &base_fleet, base_patients);
    print_row("baseline", &baseline);
    let baseline_parity_ok = check_parity(&net, &base_reports);
    let baseline_clean_ok = baseline.failed_windows == 0 && baseline.retries == 0;
    println!(
        "parity streamed vs offline: {}; clean run (0 failed, 0 retries): {}",
        if baseline_parity_ok {
            "bitwise EQUAL"
        } else {
            "DIVERGED"
        },
        if baseline_clean_ok { "yes" } else { "NO" },
    );

    // ---- Phase 2: seeded chaos on a ≥64-patient software fleet. -------
    let plan = ChaosPlan {
        seed: 0xC4A0_5EED,
        panic_per_mille: 20,
        stall_per_mille: 30,
        max_stall: Duration::from_millis(2),
        transient_per_mille: 30,
        ..Default::default()
    };
    println!(
        "\nphase 2: chaos fleet ({} patients; panic {}‰, stall {}‰ ≤{:?}, transient {}‰):",
        patients,
        plan.panic_per_mille,
        plan.stall_per_mille,
        plan.max_stall,
        plan.transient_per_mille,
    );
    let (panic_pm, stall_pm, transient_pm) = (
        plan.panic_per_mille,
        plan.stall_per_mille,
        plan.transient_per_mille,
    );
    rbnn_serve::fault::arm_chaos(plan);
    let (chaos_reports, chaos_fleet) = run_fleet(&registry, Backend::Software, patients, windows);
    let dispatches = rbnn_serve::fault::dispatches_since_armed();
    rbnn_serve::fault::disarm_chaos();
    let chaos = summarize(&chaos_reports, &chaos_fleet, patients);
    print_row("chaos", &chaos);
    println!("{chaos_fleet}");

    let chaos_realtime_ok = chaos.min_realtime_factor >= 1.0 && patients >= 64;
    let chaos_no_lost_ok = no_lost_requests(&chaos_reports, windows);
    let chaos_failed_fraction = chaos.failed_windows as f64 / chaos.total_windows.max(1) as f64;
    let chaos_failed_ok = chaos_failed_fraction <= MAX_FAILED_FRACTION;
    // The plan must actually have fired: with ≥ 2% panics over this many
    // dispatches, a silent chaos hook is a bug, not luck.
    let chaos_fired_ok = dispatches >= 50 && chaos.faults >= 1;
    let chaos_recovered_ok = chaos.respawns >= 1
        && chaos_fleet
            .max_respawn_delay
            .is_some_and(|d| d <= RESPAWN_BUDGET);
    println!(
        "chaos gates: {} dispatches, fired {}; realtime ≥1× {}; zero lost {}; \
         failed {:.2}% ≤ {:.0}% {}; respawned within {:?} {}",
        dispatches,
        if chaos_fired_ok { "yes" } else { "NO" },
        if chaos_realtime_ok { "yes" } else { "NO" },
        if chaos_no_lost_ok { "yes" } else { "NO" },
        chaos_failed_fraction * 100.0,
        MAX_FAILED_FRACTION * 100.0,
        if chaos_failed_ok { "yes" } else { "NO" },
        RESPAWN_BUDGET,
        if chaos_recovered_ok { "yes" } else { "NO" },
    );

    // ---- Phase 3: fabric drift on an RRAM fleet → degraded fallback. --
    println!("\nphase 3: endurance drift on an RRAM fleet (degraded fallback):");
    rbnn_serve::fault::arm_chaos(ChaosPlan {
        drift_at_dispatch: Some(2),
        ..Default::default()
    });
    let (drift_reports, drift_fleet) =
        run_fleet(&registry, Backend::Rram, drift_patients, drift_windows);
    rbnn_serve::fault::disarm_chaos();
    let drift = summarize(&drift_reports, &drift_fleet, drift_patients);
    print_row("drift", &drift);
    println!("{drift_fleet}");
    let drift_degraded_ok = drift.degraded_replicas >= 1;
    let drift_no_lost_ok = no_lost_requests(&drift_reports, drift_windows);
    println!(
        "drift gates: degraded replica reported {}; zero lost {}",
        if drift_degraded_ok { "yes" } else { "NO" },
        if drift_no_lost_ok { "yes" } else { "NO" },
    );

    let accepted = baseline_parity_ok
        && baseline_clean_ok
        && chaos_realtime_ok
        && chaos_no_lost_ok
        && chaos_failed_ok
        && chaos_fired_ok
        && chaos_recovered_ok
        && drift_degraded_ok
        && drift_no_lost_ok;
    println!("\nacceptance: {}", if accepted { "PASS" } else { "FAIL" });

    emit_bench_with_dispatch(
        "chaos",
        scale,
        Some(accepted),
        &ChaosBenchResult {
            task: "ecg".into(),
            window_frames: WINDOW,
            stride_frames: STRIDE,
            baseline,
            baseline_parity_ok,
            baseline_clean_ok,
            chaos,
            chaos_dispatches: dispatches,
            chaos_panic_per_mille: panic_pm,
            chaos_stall_per_mille: stall_pm,
            chaos_transient_per_mille: transient_pm,
            chaos_realtime_ok,
            chaos_no_lost_ok,
            chaos_failed_fraction,
            chaos_failed_ok,
            chaos_fired_ok,
            chaos_recovered_ok,
            drift,
            drift_degraded_ok,
            drift_no_lost_ok,
        },
    );

    if strict && !accepted {
        std::process::exit(1);
    }
}
