//! Regenerates Fig 4: bit-error rate of 1T1R (BL/BLb) vs 2T2R sensing over
//! 100–700 million programming cycles — Monte-Carlo plus closed form.

use rbnn_bench::{archive_json, banner, parse_scale, RunScale};
use rbnn_rram::EnduranceConfig;
use rram_bnn::experiments::fig4;

fn main() {
    let scale = parse_scale();
    banner(
        "Fig 4 — 1T1R vs 2T2R bit error rate vs programming cycles",
        scale,
    );
    let mut cfg = EnduranceConfig::fig4_quick();
    if scale == RunScale::Full {
        cfg.trials = 5_000_000;
    }
    let result = fig4::run(&cfg);
    println!("{result}");
    println!("Paper: 2T2R error rate is two orders of magnitude below 1T1R (Fig 4).");
    println!(
        "Monte-Carlo resolution floor: {:.1e} per point.",
        1.0 / cfg.trials as f64
    );
    archive_json("fig4_ber", &result);
}
