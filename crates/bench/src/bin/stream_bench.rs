//! Continuous-monitoring load generator for the `rbnn-stream` +
//! `rbnn-serve` pipeline.
//!
//! Simulates a monitoring fleet: N concurrent synthetic patients, each an
//! unbounded seeded 12-lead ECG stream at an MIT-BIH-style 360 Hz, cut
//! into 1-second sliding windows (50% overlap) by per-patient sessions
//! and fanned through one serve pool by a [`rbnn_stream::StreamRouter`].
//! Half the fleet suffers an electrode swap mid-stream, exercising the
//! debounced K-of-M alarm machine.
//!
//! Acceptance experiments (`--strict` exits non-zero on failure; CI runs
//! `--quick --strict`):
//!
//! * **sustained real time** — every patient's achieved frame rate must
//!   be ≥ its 360 Hz sampling rate (real-time factor ≥ 1) with ≥ 64
//!   concurrent streams on the software backend;
//! * **latency** — worst per-patient p99 window-to-verdict latency ≤
//!   250 ms (a monitor must alarm within a beat or two);
//! * **bitwise parity** — streamed-window logits must equal offline batch
//!   classification ([`rbnn_binary::BinaryNetwork::logits_batch_rows`])
//!   of the same windows bit for bit: chunked ingestion may not change a
//!   single ulp anywhere in the pipeline.
//!
//! A smaller RRAM-backend fleet rides along (not gated) to exercise the
//! margin-gated sense path and report *measured* per-read energy
//! ([`rbnn_rram::energy::sense_energy_nj`] over the pool's sense
//! counters) next to the model estimate.
//!
//! Usage: `cargo run --release --bin stream_bench [--quick|--full]
//! [--strict]`. Results are archived to `bench_results/stream_bench.json`.

use std::time::Duration;

use serde::Serialize;

use rbnn_bench::{
    banner, emit_bench_with_dispatch, host_cores, parse_scale_with, report_overhead_gate,
    results_dir, telemetry_overhead_pair, RunScale,
};
use rbnn_data::ecg::{Electrode, INVERTED};
use rbnn_data::stream::{collect_frames, EcgStream, EcgStreamConfig};
use rbnn_rram::energy::{estimate_network, sense_energy_nj, EnergyParams};
use rbnn_rram::EngineConfig;
use rbnn_serve::{demo_network, Backend, ModelRegistry, ServeConfig, ServeTask, Server};
use rbnn_stream::{
    AlarmConfig, Normalization, PatientReport, RouterConfig, SegmenterConfig, Session,
    SessionConfig, StreamRouter, TailPolicy, WindowLayout,
};
use rbnn_telemetry::SpanRecord;

/// 12-lead ECG at the MIT-BIH-style rate the acceptance gate names.
const SAMPLE_RATE: f32 = 360.0;
const CHANNELS: usize = 12;
/// 1-second windows, 50% overlap.
const WINDOW: usize = 360;
const STRIDE: usize = 180;

/// Worst acceptable per-patient p99 window-to-verdict latency.
const P99_FLOOR: Duration = Duration::from_millis(250);

#[derive(Debug, Clone, Serialize)]
struct PatientRow {
    id: usize,
    windows: u64,
    frames: u64,
    windows_per_s: f64,
    realtime_factor: f64,
    p50_us: f64,
    p99_us: f64,
    alarms_raised: u64,
    energy_uj_per_window: f64,
}

#[derive(Debug, Clone, Serialize)]
struct FleetSummary {
    backend: String,
    patients: usize,
    total_windows: u64,
    total_frames: u64,
    elapsed_s: f64,
    fleet_windows_per_s: f64,
    min_realtime_factor: f64,
    max_p99_us: f64,
    alarms_raised: u64,
    /// Model-estimated inference energy per window (µJ).
    energy_uj_per_window_model: f64,
    /// Measured per-read energy per window from the pool's PCSA sense
    /// counters (µJ; 0 on the software backend, which senses nothing).
    energy_uj_per_window_measured: f64,
    rows: Vec<PatientRow>,
}

#[derive(Debug, Clone, Serialize)]
struct StreamBenchResult {
    task: String,
    sample_rate_hz: f32,
    window_frames: usize,
    stride_frames: usize,
    software: FleetSummary,
    rram: FleetSummary,
    parity_windows_checked: u64,
    parity_ok: bool,
    realtime_ok: bool,
    latency_ok: bool,
    /// Fleet throughput with telemetry globally disabled / enabled
    /// (overhead gate).
    telemetry_disabled_windows_per_s: f64,
    telemetry_enabled_windows_per_s: f64,
    telemetry_overhead_ok: bool,
}

fn patient_source(id: usize) -> EcgStream {
    let mut cfg = EcgStreamConfig {
        samples_per_segment: 1080, // 3 s of signal per synthesis step
        sample_rate: SAMPLE_RATE,
        seed: 0xCA8E_0000 + id as u64,
        ..EcgStreamConfig::default()
    };
    // Half the fleet gets its arm electrodes swapped mid-run — the
    // streaming version of the event the paper's classifier detects.
    if id % 2 == 1 {
        cfg.swap = Some((Electrode::Ra, Electrode::La));
        cfg.swap_from_segment = 3;
    }
    EcgStream::new(cfg)
}

fn patient_session() -> Session {
    Session::new(SessionConfig {
        segmenter: SegmenterConfig {
            channels: CHANNELS,
            window: WINDOW,
            stride: STRIDE,
            tail: TailPolicy::Drop,
        },
        layout: WindowLayout::ChannelMajor,
        normalization: Normalization::PerWindow,
    })
}

fn run_fleet(
    registry: &ModelRegistry,
    backend: Backend,
    patients: usize,
    windows_per_patient: u64,
    energy_nj_per_window: f64,
) -> (Vec<PatientReport>, FleetSummary, Vec<SpanRecord>) {
    let server = Server::start(
        registry,
        &ServeConfig {
            workers: 4,
            backend,
            ..Default::default()
        },
    );
    let client = server.handle().client(ServeTask::Ecg).expect("registered");
    let mut router = StreamRouter::new(
        client,
        RouterConfig {
            chunk_frames: 120, // a third of a second per source poll
            max_in_flight: 4,
            windows_per_patient,
            alarm: AlarmConfig {
                k: 3,
                m: 5,
                positive_class: INVERTED,
            },
            energy_nj_per_window,
            ..Default::default()
        },
    );
    for id in 0..patients {
        router.add_patient(id, Box::new(patient_source(id)), patient_session());
    }
    let reports = router.run().expect("streaming run");
    // Sampled request-lifecycle spans must be read out before the worker
    // pool (and its ring) is torn down.
    let spans = server.span_samples();
    let snap = server.shutdown();
    let senses: u64 = snap.engines.iter().map(|e| e.senses).sum();

    let elapsed_s = reports[0].elapsed.as_secs_f64();
    let total_windows: u64 = reports.iter().map(|r| r.windows).sum();
    let total_frames: u64 = reports.iter().map(|r| r.frames).sum();
    let summary = FleetSummary {
        backend: format!("{backend:?}"),
        patients,
        total_windows,
        total_frames,
        elapsed_s,
        fleet_windows_per_s: total_windows as f64 / elapsed_s.max(1e-9),
        min_realtime_factor: reports
            .iter()
            .map(|r| r.realtime_factor)
            .fold(f64::INFINITY, f64::min),
        max_p99_us: reports
            .iter()
            .map(|r| r.p99_latency.as_secs_f64() * 1e6)
            .fold(0.0, f64::max),
        alarms_raised: reports.iter().map(|r| r.alarms_raised).sum(),
        energy_uj_per_window_model: energy_nj_per_window / 1e3,
        energy_uj_per_window_measured: if total_windows > 0 {
            sense_energy_nj(senses, &EnergyParams::default_figures()) / 1e3 / total_windows as f64
        } else {
            0.0
        },
        rows: reports
            .iter()
            .map(|r| PatientRow {
                id: r.id,
                windows: r.windows,
                frames: r.frames,
                windows_per_s: r.windows_per_s,
                realtime_factor: r.realtime_factor,
                p50_us: r.p50_latency.as_secs_f64() * 1e6,
                p99_us: r.p99_latency.as_secs_f64() * 1e6,
                alarms_raised: r.alarms_raised,
                energy_uj_per_window: r.energy_uj_per_window,
            })
            .collect(),
    };
    (reports, summary, spans)
}

/// Prints the worst sampled request span — the telemetry view of the
/// fleet's p99 tail, decomposed into its lifecycle phases — and returns
/// it for the archive.
fn report_worst_span(spans: &[SpanRecord]) -> Option<SpanRecord> {
    let worst = spans.iter().max_by_key(|s| s.total())?.clone();
    println!(
        "worst sampled span ({} of {} sampled): total {:>7.0}µs = queue {:>7.0}µs + \
         batch {:>7.0}µs + service {:>7.0}µs ({} dominated)",
        worst.samples,
        spans.len(),
        worst.total().as_secs_f64() * 1e6,
        worst.queue_wait.as_secs_f64() * 1e6,
        worst.batch_wait.as_secs_f64() * 1e6,
        worst.service.as_secs_f64() * 1e6,
        worst.dominant_phase(),
    );
    Some(worst)
}

/// Archives `bench_results/telemetry.json`: the global registry snapshot
/// plus the span decomposition of the software fleet's worst window. The
/// snapshot's own JSON renderer is used verbatim so the file stays pinned
/// to the `rbnn-telemetry` exposition format.
fn archive_telemetry(spans: &[SpanRecord], worst: Option<&SpanRecord>) {
    let mut out = String::from("{\"bench\":\"stream_bench\",\"worst_span_us\":");
    match worst {
        Some(w) => out.push_str(&format!(
            "{{\"queue_wait\":{:.3},\"batch_wait\":{:.3},\"service\":{:.3},\"total\":{:.3},\"samples\":{}}}",
            w.queue_wait.as_secs_f64() * 1e6,
            w.batch_wait.as_secs_f64() * 1e6,
            w.service.as_secs_f64() * 1e6,
            w.total().as_secs_f64() * 1e6,
            w.samples,
        )),
        None => out.push_str("null"),
    }
    out.push_str(&format!(",\"sampled_spans\":{}", spans.len()));
    out.push_str(",\"snapshot\":");
    out.push_str(&rbnn_telemetry::global().snapshot().to_json());
    out.push('}');
    let path = results_dir().join("telemetry.json");
    match std::fs::write(&path, out) {
        Ok(()) => eprintln!("(telemetry archived to {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Offline oracle: re-derive every patient's windows from a fresh source
/// in one buffered pass, classify them as one batch, and compare logits
/// bit for bit against the streamed verdicts.
fn check_parity(net: &rbnn_binary::BinaryNetwork, reports: &[PatientReport]) -> (u64, bool) {
    let mut checked = 0u64;
    for report in reports {
        let mut source = patient_source(report.id);
        let frames = collect_frames(&mut source, report.frames as usize);
        let mut session = patient_session();
        let offline = session.push_chunk(&frames);
        if offline.len() < report.verdicts.len() {
            eprintln!(
                "parity: patient {} produced {} offline windows vs {} streamed",
                report.id,
                offline.len(),
                report.verdicts.len()
            );
            return (checked, false);
        }
        let rows: Vec<&[f32]> = offline
            .iter()
            .take(report.verdicts.len())
            .map(|w| w.features.as_slice())
            .collect();
        let logits = net.logits_batch_rows(&rows);
        let classes = logits.dim(1);
        for (i, verdict) in report.verdicts.iter().enumerate() {
            let offline_row = &logits.as_slice()[i * classes..(i + 1) * classes];
            let Some(streamed) = verdict.logits() else {
                eprintln!(
                    "parity: patient {} window {} failed in a fault-free run: {:?}",
                    report.id, verdict.window, verdict.outcome
                );
                return (checked, false);
            };
            let a: Vec<u32> = streamed.iter().map(|l| l.to_bits()).collect();
            let b: Vec<u32> = offline_row.iter().map(|l| l.to_bits()).collect();
            if a != b {
                eprintln!(
                    "parity: patient {} window {} logits diverge: {:?} vs {:?}",
                    report.id, verdict.window, streamed, offline_row
                );
                return (checked, false);
            }
            checked += 1;
        }
    }
    (checked, true)
}

fn print_fleet(label: &str, s: &FleetSummary) {
    println!(
        "{label:<22} {:>4} patients  {:>7} windows  {:>9.0} windows/s  rt×{:>6.1}  \
         p99 {:>8.0}µs  alarms {}  {:.4} µJ/window (model){}",
        s.patients,
        s.total_windows,
        s.fleet_windows_per_s,
        s.min_realtime_factor,
        s.max_p99_us,
        s.alarms_raised,
        s.energy_uj_per_window_model,
        if s.energy_uj_per_window_measured > 0.0 {
            format!(
                ", {:.4} µJ/window (measured)",
                s.energy_uj_per_window_measured
            )
        } else {
            String::new()
        }
    );
}

fn main() {
    let (scale, flags) = parse_scale_with(&["--strict"]);
    let strict = flags[0];
    banner(
        "stream_bench — continuous-monitoring ingestion (N patients → serve pool)",
        scale,
    );
    println!("host parallelism: {} core(s)", host_cores());

    let (patients, windows_per_patient, rram_patients, rram_windows) = match scale {
        RunScale::Quick => (64usize, 30u64, 8usize, 8u64),
        RunScale::Full => (128, 120, 16, 24),
    };

    // The deployed stream classifier: 12 leads × 1 s at 360 Hz, the same
    // demo-weight footprint the serving benches use.
    let net = demo_network(&[CHANNELS * WINDOW, 80, 2], 0x57E4);
    let mut registry = ModelRegistry::new();
    registry.insert(ServeTask::Ecg, net.clone(), EngineConfig::test_chip(4));
    let energy = estimate_network(&net, &EnergyParams::default_figures());

    println!(
        "\nECG stream classifier {}→80→2, {WINDOW}-frame windows, {STRIDE}-frame stride, \
         {SAMPLE_RATE} Hz, alarm 3-of-5:",
        CHANNELS * WINDOW
    );
    let (reports, software, spans) = run_fleet(
        &registry,
        Backend::Software,
        patients,
        windows_per_patient,
        energy.rram_nj,
    );
    print_fleet("software fleet", &software);
    let worst_span = report_worst_span(&spans);

    let (parity_windows, parity_ok) = check_parity(&net, &reports);
    println!(
        "parity streamed vs offline batch: {} over {parity_windows} windows",
        if parity_ok {
            "bitwise EQUAL"
        } else {
            "DIVERGED"
        }
    );

    println!("\nrram backend fleet (margin-gated senses; measured per-read energy):");
    let (_, rram, _) = run_fleet(
        &registry,
        Backend::Rram,
        rram_patients,
        rram_windows,
        energy.rram_nj,
    );
    print_fleet("rram fleet", &rram);

    // Telemetry overhead gate: a quarter-size software fleet with the
    // global switch off, then on. Enabled must stay within 5%.
    println!();
    let overhead_patients = (patients / 4).max(8);
    let (overhead_disabled, overhead_enabled) = telemetry_overhead_pair(|| {
        let (_, summary, _) = run_fleet(
            &registry,
            Backend::Software,
            overhead_patients,
            windows_per_patient,
            energy.rram_nj,
        );
        summary.fleet_windows_per_s
    });
    let overhead_ok = report_overhead_gate(
        &format!("{overhead_patients}-patient fleet"),
        overhead_disabled,
        overhead_enabled,
        0.05,
    );

    let realtime_ok = software.min_realtime_factor >= 1.0 && software.patients >= 64;
    let latency_ok = software.max_p99_us <= P99_FLOOR.as_secs_f64() * 1e6;
    let accepted = realtime_ok && latency_ok && parity_ok && overhead_ok;
    println!(
        "\nacceptance: {} (realtime ≥1× for all {} patients: {}; p99 ≤ {:?}: {}; parity: {}; \
         telemetry overhead ≤5%: {})",
        if accepted { "PASS" } else { "FAIL" },
        software.patients,
        if realtime_ok { "yes" } else { "NO" },
        P99_FLOOR,
        if latency_ok { "yes" } else { "NO" },
        if parity_ok { "yes" } else { "NO" },
        if overhead_ok { "yes" } else { "NO" },
    );

    archive_telemetry(&spans, worst_span.as_ref());
    emit_bench_with_dispatch(
        "stream_bench",
        scale,
        Some(accepted),
        &StreamBenchResult {
            task: "ecg".into(),
            sample_rate_hz: SAMPLE_RATE,
            window_frames: WINDOW,
            stride_frames: STRIDE,
            software,
            rram,
            parity_windows_checked: parity_windows,
            parity_ok,
            realtime_ok,
            latency_ok,
            telemetry_disabled_windows_per_s: overhead_disabled,
            telemetry_enabled_windows_per_s: overhead_enabled,
            telemetry_overhead_ok: overhead_ok,
        },
    );

    if strict && !accepted {
        std::process::exit(1);
    }
}
