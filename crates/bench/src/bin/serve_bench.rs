//! Load generator for the `rbnn-serve` runtime.
//!
//! Drives a pool of engine replicas with pipelined concurrent clients and
//! reports throughput plus latency percentiles. "Batch size N" means the
//! system processes N samples per dispatch end to end: clients submit
//! N-sample window requests ([`rbnn_serve::ServeHandle::enqueue_window`]) and each
//! worker dispatch evaluates one window through the batched kernels —
//! batch size 1 is therefore exactly the single-sample serving the
//! workspace had before this subsystem. A separate row shows the
//! server-side merge path (single-sample requests coalesced by the
//! adaptive batcher) for clients that cannot batch.
//!
//! Acceptance experiments:
//!
//! * software backend — with a 4-engine pool on the ECG classifier,
//!   batch 64 must clear ≥4× the throughput of batch 1, p99 reported;
//! * executor comparison — the compiled op-graph plan replay (the serving
//!   default) must clear ≥1.3× the legacy layer path at batch 64 on the
//!   deployed ECG classifier;
//! * RRAM backend — margin-gated sensing must hold the deployed ECG
//!   classifier at ≥2100 samples/s — 50× the ~42 samples/s the ungated
//!   Monte-Carlo path managed (measured at paper scale, the only scale it
//!   could finish at; the deployed model is ~6× smaller, so the floor is
//!   conservative) — fresh devices, any core count.
//!
//! Usage: `cargo run --release --bin serve_bench [--quick|--full]
//! [--strict] [--rram-strict]`. `--strict` exits non-zero when the ≥4×
//! software acceptance fails — for gating on dedicated hardware;
//! wall-clock *ratios* on shared/1-core machines vary. `--rram-strict`
//! gates the RRAM floor, which is CPU-cheap enough to hold on shared CI
//! runners (the margin-gated path is the regression being guarded).

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use rbnn_bench::{
    banner, emit_bench_with_dispatch, host_cores, parse_scale_with, report_overhead_gate,
    telemetry_overhead_pair, RunScale,
};
use rbnn_rram::EngineConfig;
use rbnn_serve::{
    demo_network, AdmissionPolicy, Backend, BatchPolicy, ModelRegistry, ServeConfig, ServeTask,
    Server,
};

/// One measured operating point.
#[derive(Debug, Clone, Serialize)]
struct OperatingPoint {
    label: String,
    backend: String,
    batch_size: usize,
    workers: usize,
    clients: usize,
    samples: u64,
    samples_per_s: f64,
    mean_dispatch: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    senses: u64,
}

/// Full archive of one serve_bench run (the payload inside the standard
/// [`rbnn_bench::BenchEnvelope`]).
#[derive(Debug, Clone, Serialize)]
struct ServeBenchResult {
    task: String,
    points: Vec<OperatingPoint>,
    speedup_batch64_vs_1: f64,
    /// Graph-executor (compiled plan replay) throughput over the legacy
    /// layer path, deployed ECG at batch 64.
    executor_speedup_batch64: f64,
    /// Deployed-model RRAM throughput at batch 64 (margin-gated path).
    rram_deployed_samples_per_s: f64,
    /// Throughput with telemetry globally disabled / enabled (overhead gate).
    telemetry_disabled_samples_per_s: f64,
    telemetry_enabled_samples_per_s: f64,
    telemetry_overhead_ok: bool,
}

/// Floor for the deployed-model RRAM operating point under
/// `--rram-strict`: 50× the ~42 samples/s the ungated three-draw
/// Monte-Carlo sampler reached on a 1-core container. That baseline was
/// measured at paper scale (2520→80→2; the deployed RRAM point was never
/// measurable before gating) — the deployed model is ~6× smaller, which
/// only makes the floor more conservative.
const RRAM_FLOOR_SAMPLES_PER_S: f64 = 2_100.0;

/// Minimum graph-over-legacy executor speedup (deployed ECG, batch 64):
/// the fused zero-allocation plan replay must buy a real margin over the
/// layer-by-layer path for the graph default to pay its way.
const EXECUTOR_SPEEDUP_FLOOR: f64 = 1.3;

/// Runs `f` with the `RBNN_EXECUTOR` override pinned to `mode`, restoring
/// the previous value afterwards — the executor comparison must measure
/// both paths even when an outer pin (the CI executor matrix) is active.
fn with_executor_env<T>(mode: &str, f: impl FnOnce() -> T) -> T {
    let prev = std::env::var("RBNN_EXECUTOR").ok();
    std::env::set_var("RBNN_EXECUTOR", mode);
    let out = f();
    match prev {
        Some(v) => std::env::set_var("RBNN_EXECUTOR", v),
        None => std::env::remove_var("RBNN_EXECUTOR"),
    }
    out
}

/// Drives the server with `clients` pipelined clients submitting
/// `samples_per_request`-sample windows until each has pushed
/// `samples_per_client` samples; `max_batch` is the server-side merge
/// ceiling in requests.
#[allow(clippy::too_many_arguments)]
fn drive(
    label: &str,
    registry: &ModelRegistry,
    backend: Backend,
    samples_per_request: usize,
    max_batch: usize,
    workers: usize,
    clients: usize,
    samples_per_client: usize,
) -> OperatingPoint {
    let config = ServeConfig {
        workers,
        backend,
        batch: BatchPolicy {
            max_batch,
            max_delay: Duration::from_micros(250),
        },
        // Smaller than the total outstanding window: the bench measures the
        // server *at capacity*, with producers held back by backpressure —
        // the regime where batch formation is the throughput lever.
        queue_capacity: 1024,
        seed: 0xBEEF,
        engine_threads: 1,
        // The bench deliberately saturates the queue and leans on
        // backpressure; load shedding would turn that into rejections.
        admission: AdmissionPolicy::Block,
        ..Default::default()
    };
    let server = Server::start(registry, &config);
    let width = registry
        .in_features(ServeTask::Ecg)
        .expect("ECG registered");
    // Keep ~256 samples outstanding per client regardless of request size.
    let window_requests = (256 / samples_per_request).max(1);
    let requests_per_client = (samples_per_client / samples_per_request).max(1);

    let t0 = Instant::now();
    let client_threads: Vec<_> = (0..clients)
        .map(|c| {
            let handle = server.handle();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC11E47 + c as u64);
                // Pre-generated shared request pool: feature synthesis and
                // request copying must not be the bottleneck being
                // measured, so windows are submitted zero-copy.
                let pool: Vec<std::sync::Arc<Vec<Vec<f32>>>> = (0..8)
                    .map(|_| {
                        std::sync::Arc::new(
                            (0..samples_per_request)
                                .map(|_| (0..width).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                                .collect(),
                        )
                    })
                    .collect();
                let mut in_flight = std::collections::VecDeque::new();
                for i in 0..requests_per_client {
                    if in_flight.len() >= window_requests {
                        let oldest: rbnn_serve::PendingWindow =
                            in_flight.pop_front().expect("non-empty window");
                        let _ = oldest.wait().expect("served");
                    }
                    let rows = std::sync::Arc::clone(&pool[i % pool.len()]);
                    in_flight
                        .push_back(handle.enqueue_shared(ServeTask::Ecg, rows).expect("queued"));
                }
                for pending in in_flight {
                    let _ = pending.wait().expect("served");
                }
            })
        })
        .collect();
    for t in client_threads {
        t.join().expect("client thread");
    }
    let elapsed = t0.elapsed();
    let snap = server.shutdown();
    let samples = snap.engines.iter().map(|e| e.samples).sum::<u64>();
    OperatingPoint {
        label: label.to_string(),
        backend: format!("{backend:?}"),
        batch_size: samples_per_request * max_batch,
        workers,
        clients,
        samples,
        samples_per_s: samples as f64 / elapsed.as_secs_f64(),
        mean_dispatch: snap.mean_batch,
        p50_us: snap.p50.as_secs_f64() * 1e6,
        p95_us: snap.p95.as_secs_f64() * 1e6,
        p99_us: snap.p99.as_secs_f64() * 1e6,
        senses: snap.engines.iter().map(|e| e.senses).sum(),
    }
}

fn print_point(p: &OperatingPoint) {
    println!(
        "{:<26} {:>10.0} samples/s  mean dispatch {:>6.1}  p50 {:>8.0}µs  p95 {:>8.0}µs  p99 {:>8.0}µs{}",
        p.label,
        p.samples_per_s,
        p.mean_dispatch,
        p.p50_us,
        p.p95_us,
        p.p99_us,
        if p.senses > 0 { format!("  senses {}", p.senses) } else { String::new() }
    );
}

fn main() {
    let (scale, flags) = parse_scale_with(&["--strict", "--rram-strict"]);
    let strict = flags[0];
    let rram_strict = flags[1];
    banner(
        "serve_bench — batched multi-engine serving throughput (ECG classifier)",
        scale,
    );
    let cores = host_cores();
    println!("host parallelism: {cores} core(s)");

    // Two ECG classifier scales: the shape this repo's own pipeline deploys
    // at laptop (`Quick`) scale — flatten 408 → 75 → 2, exactly what
    // `examples/serving.rs` exports — and the paper's Table I shape
    // (2520 → 80 → 2).
    let mut deployed = ModelRegistry::new();
    deployed.insert(
        ServeTask::Ecg,
        demo_network(&[408, 75, 2], 0xD47E),
        EngineConfig::test_chip(1),
    );
    let mut paper = ModelRegistry::new();
    paper.insert(
        ServeTask::Ecg,
        demo_network(&[2520, 80, 2], 0xD47E),
        EngineConfig::test_chip(2),
    );

    let workers = 4;
    let clients = 16;
    // Margin-gated sensing lets the RRAM rows run real sample counts
    // (the ungated sampler managed ~42 samples/s and was capped at 64
    // samples per client to finish at all).
    let (samples_per_client, rram_samples) = match scale {
        RunScale::Quick => (60_000usize, 2_000usize),
        RunScale::Full => (300_000, 10_000),
    };

    let mut points = Vec::new();
    println!(
        "\ndeployed ECG classifier 408→75→2 (software backend, {workers}-engine pool, \
         {clients} pipelined clients):"
    );
    for batch in [1usize, 8, 64, 256] {
        let p = drive(
            &format!("batch {batch}"),
            &deployed,
            Backend::Software,
            batch,
            1,
            workers,
            clients,
            samples_per_client,
        );
        print_point(&p);
        points.push(p);
    }
    // Server-side merge: clients that cannot batch still get engine
    // batches through the adaptive batcher.
    let merge = drive(
        "server merge ≤64",
        &deployed,
        Backend::Software,
        1,
        64,
        workers,
        clients,
        samples_per_client,
    );
    print_point(&merge);

    let t1 = points[0].samples_per_s;
    let t64 = points[2].samples_per_s;
    let speedup = t64 / t1;
    println!("\nspeedup batch 64 vs batch 1: {speedup:.1}×");
    let accepted = speedup >= 4.0;
    if accepted {
        println!("acceptance: PASS (≥4× with a {workers}-engine pool)");
    } else {
        println!("acceptance: FAIL (<4×)");
    }
    points.push(merge);

    // Executor comparison: the same batch-64 operating point with the
    // executor pinned to compiled graph plans, then to the legacy layer
    // path — through `RBNN_EXECUTOR`, exactly the knob the CI executor
    // matrix uses, so the comparison measures both paths even under an
    // outer pin.
    println!("\nexecutor comparison (deployed ECG, batch 64, software backend):");
    let graph_point = with_executor_env("graph", || {
        drive(
            "graph executor",
            &deployed,
            Backend::Software,
            64,
            1,
            workers,
            clients,
            samples_per_client,
        )
    });
    print_point(&graph_point);
    let legacy_point = with_executor_env("legacy", || {
        drive(
            "legacy executor",
            &deployed,
            Backend::Software,
            64,
            1,
            workers,
            clients,
            samples_per_client,
        )
    });
    print_point(&legacy_point);
    let executor_speedup = graph_point.samples_per_s / legacy_point.samples_per_s;
    let executor_ok = executor_speedup >= EXECUTOR_SPEEDUP_FLOOR;
    println!(
        "graph vs legacy executor: {executor_speedup:.2}× (floor {EXECUTOR_SPEEDUP_FLOOR}×): {}",
        if executor_ok { "PASS" } else { "FAIL" }
    );
    points.push(graph_point);
    points.push(legacy_point);

    println!("\npaper-scale ECG classifier 2520→80→2 (software backend):");
    for batch in [1usize, 64] {
        let p = drive(
            &format!("paper batch {batch}"),
            &paper,
            Backend::Software,
            batch,
            1,
            workers,
            clients,
            samples_per_client / 4,
        );
        print_point(&p);
        points.push(p);
    }

    println!("\nrram backend, deployed model (margin-gated PCSA senses; {workers}-engine pool):");
    let mut rram_deployed_64 = 0.0f64;
    for batch in [1usize, 64] {
        let p = drive(
            &format!("rram deployed batch {batch}"),
            &deployed,
            Backend::Rram,
            batch,
            1,
            workers,
            clients,
            rram_samples,
        );
        print_point(&p);
        if batch == 64 {
            rram_deployed_64 = p.samples_per_s;
        }
        points.push(p);
    }
    let rram_accepted = rram_deployed_64 >= RRAM_FLOOR_SAMPLES_PER_S;
    println!(
        "rram acceptance (deployed, batch 64): {} ({:.0} samples/s vs \
         {RRAM_FLOOR_SAMPLES_PER_S:.0} floor = 50× the ungated sampler)",
        if rram_accepted { "PASS" } else { "FAIL" },
        rram_deployed_64
    );

    println!("\nrram backend, paper scale (margin-gated PCSA senses; {workers}-engine pool):");
    for batch in [1usize, 64] {
        let p = drive(
            &format!("rram paper batch {batch}"),
            &paper,
            Backend::Rram,
            batch,
            1,
            workers,
            clients,
            rram_samples,
        );
        print_point(&p);
        points.push(p);
    }

    // Telemetry overhead gate: the same batch-64 operating point with the
    // global telemetry switch off, then on. Enabled must stay within 5%.
    println!();
    let (overhead_disabled, overhead_enabled) = telemetry_overhead_pair(|| {
        drive(
            "overhead probe",
            &deployed,
            Backend::Software,
            64,
            1,
            workers,
            clients,
            samples_per_client / 4,
        )
        .samples_per_s
    });
    let overhead_ok = report_overhead_gate("batch 64", overhead_disabled, overhead_enabled, 0.05);

    emit_bench_with_dispatch(
        "serve_bench",
        scale,
        Some(accepted && rram_accepted && overhead_ok && executor_ok),
        &ServeBenchResult {
            task: "ecg".into(),
            points,
            speedup_batch64_vs_1: speedup,
            executor_speedup_batch64: executor_speedup,
            rram_deployed_samples_per_s: rram_deployed_64,
            telemetry_disabled_samples_per_s: overhead_disabled,
            telemetry_enabled_samples_per_s: overhead_enabled,
            telemetry_overhead_ok: overhead_ok,
        },
    );

    if (strict && !(accepted && overhead_ok && executor_ok)) || (rram_strict && !rram_accepted) {
        std::process::exit(1);
    }
}
