//! Extension experiment (refs \[15\], \[16\] of the paper): deployed-classifier
//! accuracy versus weight bit-error rate — why ECC-less operation is safe
//! at 2T2R error levels.

use rbnn_bench::{archive_json, banner, parse_scale, RunScale};
use rram_bnn::experiments::ext_ber;
use rram_bnn::Task;

fn main() {
    let scale = parse_scale();
    banner("Extension — classifier accuracy vs weight BER", scale);
    let mut cfg = ext_ber::BerSweepConfig::quick();
    if scale == RunScale::Full {
        cfg.trials = 25;
        cfg.epochs = 40;
    }
    for task in [Task::Ecg, Task::Eeg] {
        let result = ext_ber::run(task, &cfg);
        println!("{result}");
        archive_json(&format!("ext_ber_{}", task.name().to_lowercase()), &result);
    }
    println!("Fig 4 context: 2T2R lifetime BER ≈ 1e-4 → no measurable accuracy loss;");
    println!("1T1R BER ≈ 1e-2 begins to cost accuracy — the paper's case for 2T2R without ECC.");
}
