//! Training-throughput benchmark with a CI speedup gate.
//!
//! Measures epoch time and samples/s for the two paper-scale training
//! workloads the ROADMAP sweeps hinge on (endurance retraining,
//! fault-injection curves, architecture search):
//!
//! * **ECG MLP (gated)** — the Table II dense classifier at paper scale
//!   (5152 → 75 → 2, binary weights + BatchNorm + sign), batch 32: the part
//!   of the ECG network the paper maps onto the RRAM arrays, trained on a
//!   synthetic planted-hyperplane task so accuracy parity is checkable.
//! * **EEG conv net** — the Table I convolutional network on the synthetic
//!   EEG motor-imagery dataset (reduced dimensions under `--quick`, paper
//!   dimensions under `--full`).
//!
//! Each workload is trained twice: once through the **pre-overhaul
//! baseline** — the reference GEMM loops
//! (`rbnn_tensor::set_reference_kernels`) driving the old per-sample
//! `gather`+`stack` batch assembly and per-sample logit re-stacking — and
//! once through the current pipeline (packed register-tiled GEMM
//! micro-kernels, `gather_rows_into`, scratch-arena layers). The optimized
//! run executes twice with identical seeds and the per-epoch histories must
//! match **bitwise** (the kernels are thread-count invariant, so this holds
//! for any worker count).
//!
//! `--strict` exits non-zero unless, on the ECG MLP at batch 32: the
//! epoch-time speedup is ≥ 4×, the final validation accuracy is within
//! 0.5 pt of the baseline run, and the determinism check passes. A GEMM
//! micro-benchmark also records the dense-gradient `matmul_tn` shape whose
//! `av == 0.0` skip branch the blocked kernel replaced.
//!
//! Results are archived to `bench_results/train_bench.json`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;

use rbnn_bench::{archive_json, banner, parse_scale_with, KernelDispatch, RunScale};
// The synthetic planted-template ECG-MLP task (noisy ±1 class templates)
// is shared with the conformance fault campaign — one definition.
use rbnn_conformance::planted_task;
use rbnn_models::BinarizationStrategy;
use rbnn_nn::{
    loss, metrics, train, Activation, Adam, BatchNorm, Dense, Layer, Optimizer, Param, Phase,
    Scratch, Sequential, WeightMode,
};
use rbnn_tensor::{
    clear_forced_scalar, set_forced_scalar, set_reference_kernels, xnor_popcount, BitMatrix, Tensor,
};
use rram_bnn::tasks::{Scale, Task, TaskSetup};

/// Verbatim pre-overhaul implementations, kept here so the baseline
/// measures what training actually cost before this PR: per-batch clones of
/// the input and effective weight, freshly allocated outputs and gradient
/// buffers, and a gradient clone inside the optimizer. The current library
/// layers eliminated all of these, so measuring the baseline through them
/// would understate the speedup.
mod pre_overhaul {
    use super::*;
    use rand::Rng;

    /// The pre-overhaul `Dense` layer (clone-caching, allocating).
    #[derive(Debug)]
    pub struct NaiveDense {
        weight: Param,
        bias: Option<Param>,
        in_features: usize,
        out_features: usize,
        mode: WeightMode,
        cached_input: Option<Tensor>,
        cached_eff_w: Option<Tensor>,
    }

    impl NaiveDense {
        pub fn new(
            in_features: usize,
            out_features: usize,
            mode: WeightMode,
            rng: &mut impl Rng,
        ) -> Self {
            // Mirror `Dense::new` exactly (same init draws from the same
            // RNG stream) so naive and optimized models start identical.
            let reference = Dense::new(in_features, out_features, mode, rng);
            let weight = reference.params()[0].value.clone();
            let mut weight = Param::new(weight);
            if mode.is_binary() {
                weight = weight.with_clamp(-1.0, 1.0);
            }
            Self {
                weight,
                bias: None,
                in_features,
                out_features,
                mode,
                cached_input: None,
                cached_eff_w: None,
            }
        }

        fn effective_weight(&self) -> Tensor {
            match self.mode {
                WeightMode::Real => self.weight.value.clone(),
                WeightMode::Binary => self.weight.value.signum_binary(),
            }
        }
    }

    impl Layer for NaiveDense {
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }

        fn forward_with(&mut self, x: &Tensor, phase: Phase, _scratch: &mut Scratch) -> Tensor {
            assert_eq!(x.dim(1), self.in_features, "NaiveDense: feature mismatch");
            let eff_w = self.effective_weight();
            let mut y = x.matmul_nt(&eff_w);
            if let Some(b) = &self.bias {
                let n = y.dim(0);
                let o = self.out_features;
                let ys = y.as_mut_slice();
                let bs = b.value.as_slice();
                for row in 0..n {
                    for (j, &bv) in bs.iter().enumerate() {
                        ys[row * o + j] += bv;
                    }
                }
            }
            if phase.is_train() {
                self.cached_input = Some(x.clone());
                self.cached_eff_w = Some(eff_w);
            }
            y
        }

        fn backward_with(&mut self, grad_out: &Tensor, _scratch: &mut Scratch) -> Tensor {
            let x = self.cached_input.take().expect("forward first");
            let eff_w = self.cached_eff_w.take().expect("cache missing");
            let mut grad_w = grad_out.matmul_tn(&x);
            if self.mode.is_binary() {
                grad_w = grad_w.zip(
                    &self.weight.value,
                    |g, w| if w.abs() <= 1.0 { g } else { 0.0 },
                );
            }
            self.weight.grad += &grad_w;
            if let Some(b) = &mut self.bias {
                let n = grad_out.dim(0);
                let o = self.out_features;
                let gs = grad_out.as_slice();
                let gb = b.grad.as_mut_slice();
                for row in 0..n {
                    for (j, g) in gb.iter_mut().enumerate() {
                        *g += gs[row * o + j];
                    }
                }
            }
            grad_out.matmul(&eff_w)
        }

        fn params(&self) -> Vec<&Param> {
            let mut v = vec![&self.weight];
            if let Some(b) = &self.bias {
                v.push(b);
            }
            v
        }

        fn params_mut(&mut self) -> Vec<&mut Param> {
            let mut v = vec![&mut self.weight];
            if let Some(b) = &mut self.bias {
                v.push(b);
            }
            v
        }

        fn out_shape(&self, _in_shape: &[usize]) -> Vec<usize> {
            vec![self.out_features]
        }

        fn name(&self) -> String {
            format!("NaiveDense({}→{})", self.in_features, self.out_features)
        }
    }

    /// The pre-overhaul Adam (clones the gradient every step).
    #[derive(Debug)]
    pub struct NaiveAdam {
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        t: u64,
        m: Vec<Tensor>,
        v: Vec<Tensor>,
    }

    impl NaiveAdam {
        pub fn new(lr: f32) -> Self {
            Self {
                lr,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                t: 0,
                m: Vec::new(),
                v: Vec::new(),
            }
        }
    }

    impl Optimizer for NaiveAdam {
        fn step(&mut self, params: &mut [&mut Param]) {
            if self.m.len() != params.len() {
                self.m = params
                    .iter()
                    .map(|p| Tensor::zeros(p.value.shape().clone()))
                    .collect();
                self.v = params
                    .iter()
                    .map(|p| Tensor::zeros(p.value.shape().clone()))
                    .collect();
                self.t = 0;
            }
            self.t += 1;
            let bc1 = 1.0 - self.beta1.powi(self.t as i32);
            let bc2 = 1.0 - self.beta2.powi(self.t as i32);
            for (i, p) in params.iter_mut().enumerate() {
                let g = p.grad.clone();
                let (ms, vs, gs, ps) = (
                    self.m[i].as_mut_slice(),
                    self.v[i].as_mut_slice(),
                    g.as_slice(),
                    p.value.as_mut_slice(),
                );
                for j in 0..gs.len() {
                    ms[j] = self.beta1 * ms[j] + (1.0 - self.beta1) * gs[j];
                    vs[j] = self.beta2 * vs[j] + (1.0 - self.beta2) * gs[j] * gs[j];
                    let mhat = ms[j] / bc1;
                    let vhat = vs[j] / bc2;
                    ps[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
                }
                p.apply_clamp();
            }
        }

        fn learning_rate(&self) -> f32 {
            self.lr
        }

        fn set_learning_rate(&mut self, lr: f32) {
            self.lr = lr;
        }
    }
}

/// The CI gate: optimized epoch time must beat the pre-overhaul baseline by
/// at least this factor on the paper-scale ECG MLP at batch 32.
const SPEEDUP_THRESHOLD: f32 = 4.0;
/// Final validation accuracy must stay within this of the baseline run.
const ACCURACY_TOLERANCE: f32 = 0.005;
/// The runtime-dispatch gate: on hosts where dispatch selects a SIMD
/// packing kernel, the gated `simd_microbench` packing row must beat the
/// forced-scalar oracle by at least this factor. (The popcount and GEMM
/// rows are informational: under `target-cpu=native` LLVM already
/// autovectorizes the scalar popcount, and the GEMM gate is the 4×
/// workload gate above.)
const SIMD_PACK_THRESHOLD: f64 = 2.0;
const BATCH_SIZE: usize = 32;

#[derive(Debug, Serialize)]
struct WorkloadResult {
    name: String,
    batch_size: usize,
    epochs: usize,
    train_samples: usize,
    naive_epoch_ms: f64,
    optimized_epoch_ms: f64,
    speedup: f64,
    naive_samples_per_s: f64,
    optimized_samples_per_s: f64,
    naive_final_val_acc: f32,
    optimized_final_val_acc: f32,
    deterministic: bool,
    gated: bool,
}

#[derive(Debug, Serialize)]
struct GemmRow {
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    reference_us: f64,
    blocked_us: f64,
    speedup: f64,
}

/// One forced-scalar vs runtime-dispatched kernel timing row. Both sides
/// produce bitwise-identical results (the dispatch contract, enforced by
/// the `simd_parity` test suites); only the speed may differ.
#[derive(Debug, Serialize)]
struct SimdRow {
    kernel: &'static str,
    elems: usize,
    scalar_us: f64,
    dispatched_us: f64,
    speedup: f64,
    gated: bool,
}

#[derive(Debug, Serialize)]
struct TrainBenchReport {
    scale: &'static str,
    speedup_threshold: f32,
    accuracy_tolerance: f32,
    simd_pack_threshold: f64,
    /// Active CPU-feature set and selected kernels — recorded so archived
    /// timing rows are explainable from the ISA that produced them.
    dispatch: KernelDispatch,
    workloads: Vec<WorkloadResult>,
    gemm_microbench: Vec<GemmRow>,
    simd_microbench: Vec<SimdRow>,
    accepted: bool,
}

/// The Table II dense classifier at paper scale: 5152 → 75 → 2, binary
/// weights, BatchNorm thresholds, sign activations (§III-C). `naive`
/// substitutes the verbatim pre-overhaul dense layers (identical weight
/// init — both consume the same RNG draws).
fn build_ecg_mlp(seed: u64, naive: bool) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Sequential::new();
    if naive {
        net.push(pre_overhaul::NaiveDense::new(
            5152,
            75,
            WeightMode::Binary,
            &mut rng,
        ));
    } else {
        net.push(Dense::new(5152, 75, WeightMode::Binary, &mut rng).without_bias());
    }
    net.push(BatchNorm::new(75));
    net.push(Activation::sign_ste());
    if naive {
        net.push(pre_overhaul::NaiveDense::new(
            75,
            2,
            WeightMode::Binary,
            &mut rng,
        ));
    } else {
        net.push(Dense::new(75, 2, WeightMode::Binary, &mut rng).without_bias());
    }
    net.push(BatchNorm::new(2));
    net
}

/// Pre-overhaul logit prediction: per-sample `index_axis0` + double
/// `Tensor::stack` (what `predict_logits` did before the overhaul).
fn naive_predict_logits(model: &mut dyn Layer, x: &Tensor, batch_size: usize) -> Tensor {
    let n = x.dim(0);
    let mut outputs = Vec::new();
    let mut start = 0;
    while start < n {
        let end = (start + batch_size).min(n);
        let idx: Vec<usize> = (start..end).collect();
        let batch = train::gather(x, &idx);
        let logits = model.forward(&batch, Phase::Eval);
        for i in 0..logits.dim(0) {
            outputs.push(logits.index_axis0(i));
        }
        start = end;
    }
    Tensor::stack(&outputs)
}

/// Pre-overhaul training loop: per-batch `gather`+`stack` assembly,
/// throwaway-arena layer calls, and the old per-epoch evaluation through
/// the re-stacking `predict_logits` — identical batch order and RNG streams
/// to `train::fit` with the default every-epoch eval cadence. Returns the
/// final validation accuracy.
fn naive_fit(
    model: &mut dyn Layer,
    train_data: train::Labelled<'_>,
    val: train::Labelled<'_>,
    opt: &mut dyn Optimizer,
    epochs: usize,
    seed: u64,
) -> f32 {
    let n = train_data.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut acc = 0.0;
    for _ in 0..epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(BATCH_SIZE) {
            let xb = train::gather(train_data.x, chunk);
            let yb: Vec<usize> = chunk.iter().map(|&i| train_data.y[i]).collect();
            model.zero_grad();
            let logits = model.forward(&xb, Phase::Train);
            let (_, grad) = loss::softmax_cross_entropy(&logits, &yb);
            let _ = metrics::accuracy(&logits, &yb);
            model.backward(&grad);
            let mut params = model.params_mut();
            opt.step(&mut params);
        }
        let logits = naive_predict_logits(model, val.x, BATCH_SIZE);
        acc = metrics::accuracy(&logits, val.y);
    }
    acc
}

struct RunOutcome {
    epoch_ms: f64,
    samples_per_s: f64,
    final_val_acc: f32,
    history_bits: Vec<u32>,
}

/// One optimized training run through `train::fit`, evaluating every epoch
/// (the `TrainConfig` default cadence, matching the baseline loop).
fn optimized_run(
    model: &mut dyn Layer,
    x: &Tensor,
    y: &[usize],
    vx: &Tensor,
    vy: &[usize],
    epochs: usize,
    seed: u64,
    lr: f32,
) -> RunOutcome {
    let mut opt = Adam::new(lr);
    let cfg = train::TrainConfig {
        epochs,
        batch_size: BATCH_SIZE,
        seed,
        eval_every: 1,
        verbose: false,
        lr_schedule: None,
    };
    let t0 = Instant::now();
    let hist = train::fit(
        model,
        train::Labelled::new(x, y),
        Some(train::Labelled::new(vx, vy)),
        &mut opt,
        &cfg,
    );
    let elapsed = t0.elapsed().as_secs_f64();
    let mut history_bits: Vec<u32> = Vec::new();
    history_bits.extend(hist.train_loss.iter().map(|v| v.to_bits()));
    history_bits.extend(hist.train_acc.iter().map(|v| v.to_bits()));
    history_bits.extend(hist.val_acc.iter().map(|&(_, v)| v.to_bits()));
    RunOutcome {
        epoch_ms: elapsed * 1e3 / epochs as f64,
        samples_per_s: (y.len() * epochs) as f64 / elapsed,
        final_val_acc: hist.final_val_acc().unwrap_or(0.0),
        history_bits,
    }
}

#[allow(clippy::too_many_arguments)]
fn bench_workload(
    name: &str,
    mut build: impl FnMut(bool) -> Box<dyn Layer>,
    x: &Tensor,
    y: &[usize],
    vx: &Tensor,
    vy: &[usize],
    epochs: usize,
    lr: f32,
    gated: bool,
) -> WorkloadResult {
    let seed = 42;

    // Pre-overhaul baseline: reference kernels + old batch assembly (and,
    // where the workload provides them, verbatim pre-overhaul layers).
    set_reference_kernels(true);
    let mut model = build(true);
    let mut opt = pre_overhaul::NaiveAdam::new(lr);
    let t0 = Instant::now();
    let naive_acc = naive_fit(
        model.as_mut(),
        train::Labelled::new(x, y),
        train::Labelled::new(vx, vy),
        &mut opt,
        epochs,
        seed,
    );
    let naive_elapsed = t0.elapsed().as_secs_f64();
    set_reference_kernels(false);

    // Optimized pipeline, run twice with identical seeds: the histories
    // must agree bitwise at a fixed thread count.
    let mut model_a = build(false);
    let run_a = optimized_run(model_a.as_mut(), x, y, vx, vy, epochs, seed, lr);
    let mut model_b = build(false);
    let run_b = optimized_run(model_b.as_mut(), x, y, vx, vy, epochs, seed, lr);
    let deterministic = run_a.history_bits == run_b.history_bits;

    let naive_epoch_ms = naive_elapsed * 1e3 / epochs as f64;
    WorkloadResult {
        name: name.to_string(),
        batch_size: BATCH_SIZE,
        epochs,
        train_samples: y.len(),
        naive_epoch_ms,
        optimized_epoch_ms: run_a.epoch_ms,
        speedup: naive_epoch_ms / run_a.epoch_ms,
        naive_samples_per_s: (y.len() * epochs) as f64 / naive_elapsed,
        optimized_samples_per_s: run_a.samples_per_s,
        naive_final_val_acc: naive_acc,
        optimized_final_val_acc: run_a.final_val_acc,
        deterministic,
        gated,
    }
}

/// Times the dense-layer GEMM shapes under the reference loops vs the
/// blocked kernels — documenting the `matmul_tn` zero-skip replacement.
fn gemm_microbench() -> Vec<GemmRow> {
    let mut rng = StdRng::seed_from_u64(7);
    let x = Tensor::randn([32, 5152], 1.0, &mut rng);
    let w = Tensor::randn([75, 5152], 1.0, &mut rng);
    let g = Tensor::randn([32, 75], 1.0, &mut rng);
    let mut rows = Vec::new();
    let time = |f: &dyn Fn() -> Tensor| {
        let iters = 30;
        let t0 = Instant::now();
        let mut sink = 0.0f32;
        for _ in 0..iters {
            sink += f().as_slice()[0];
        }
        std::hint::black_box(sink);
        t0.elapsed().as_secs_f64() * 1e6 / iters as f64
    };
    for (kernel, m, k, n, f) in [
        (
            "matmul_tn (dense weight gradient)",
            75,
            32,
            5152,
            &(|| g.matmul_tn(&x)) as &dyn Fn() -> Tensor,
        ),
        ("matmul_nt (dense forward)", 32, 5152, 75, &|| {
            x.matmul_nt(&w)
        }),
        ("matmul (dense input gradient)", 32, 75, 5152, &|| {
            g.matmul(&w)
        }),
    ] {
        set_reference_kernels(true);
        let reference_us = time(f);
        set_reference_kernels(false);
        let blocked_us = time(f);
        rows.push(GemmRow {
            kernel,
            m,
            k,
            n,
            reference_us,
            blocked_us,
            speedup: reference_us / blocked_us,
        });
    }
    rows
}

/// Times the three runtime-dispatched kernel families against the
/// forced-scalar oracle at deployed-ECG shapes: sign packing (the serve
/// hot path — **gated** ≥ [`SIMD_PACK_THRESHOLD`]× where dispatch picks a
/// SIMD kernel), XNOR-popcount, and the f32 GEMM micro-kernel.
fn simd_microbench() -> Vec<SimdRow> {
    let mut rng = StdRng::seed_from_u64(13);
    // Packing: one batch-32 request of deployed-ECG feature rows
    // (32 × 5152, ~660 KB — cache-resident so the timing isolates the
    // kernel rather than DRAM bandwidth), the shape
    // `BinaryNetwork::logits_batch` packs per serve request.
    let (pack_rows, pack_cols) = (32usize, 5152usize);
    let pack_values = Tensor::randn([pack_rows, pack_cols], 1.0, &mut rng);
    // Popcount: paired bit-vectors long enough to exercise the 16-vector
    // Harley-Seal blocks (4096 words = 256 Ki bits, L2-resident).
    let words = 4096usize;
    let bits = words * 64;
    let wa: Vec<u64> = (0..words)
        .map(|i| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let wb: Vec<u64> = (0..words)
        .map(|i| (i as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
        .collect();
    // GEMM: the dense-forward shape (32 × 5152 → 75).
    let gx = Tensor::randn([32, 5152], 1.0, &mut rng);
    let gw = Tensor::randn([75, 5152], 1.0, &mut rng);

    let time = |iters: usize, f: &mut dyn FnMut() -> u64| {
        let t0 = Instant::now();
        let mut sink = 0u64;
        for _ in 0..iters {
            sink = sink.wrapping_add(f());
        }
        std::hint::black_box(sink);
        t0.elapsed().as_secs_f64() * 1e6 / iters as f64
    };
    let both = |iters: usize, f: &mut dyn FnMut() -> u64| {
        set_forced_scalar(true);
        let scalar_us = time(iters, f);
        set_forced_scalar(false);
        let dispatched_us = time(iters, f);
        clear_forced_scalar();
        (scalar_us, dispatched_us)
    };

    let mut rows = Vec::new();
    let cases: [(&'static str, usize, usize, bool, &mut dyn FnMut() -> u64); 3] = [
        (
            "pack_signs (BitMatrix::from_signs, serve packing)",
            pack_rows * pack_cols,
            500,
            true,
            &mut || {
                let m = BitMatrix::from_signs(pack_values.as_slice(), pack_rows, pack_cols);
                m.row(0).as_words().first().copied().unwrap_or(0)
            },
        ),
        (
            "xnor_popcount (Harley-Seal blocks)",
            bits,
            2000,
            false,
            &mut || u64::from(xnor_popcount(&wa, &wb, bits)),
        ),
        (
            "gemm f32 (dense forward 32x5152x75)",
            32 * 5152 * 75,
            30,
            false,
            &mut || {
                u64::from(
                    gx.matmul_nt(&gw)
                        .as_slice()
                        .first()
                        .copied()
                        .unwrap_or(0.0)
                        .to_bits(),
                )
            },
        ),
    ];
    for (kernel, elems, iters, gated, f) in cases {
        let (scalar_us, dispatched_us) = both(iters, f);
        rows.push(SimdRow {
            kernel,
            elems,
            scalar_us,
            dispatched_us,
            speedup: scalar_us / dispatched_us,
            gated,
        });
    }
    rows
}

fn main() {
    let (scale, flags) = parse_scale_with(&["--strict", "--dispatch-report"]);
    let strict = flags[0];
    let dispatch_report_only = flags[1];

    // `--dispatch-report`: print the runtime dispatch decisions and exit —
    // the CI self-check greps this for the baseline feature set (sse2).
    if dispatch_report_only {
        let d = KernelDispatch::capture();
        println!("features: {}", d.features);
        println!("forced_scalar: {}", d.forced_scalar);
        println!("popcount: {}", d.popcount);
        println!("pack: {}", d.pack);
        println!("gemm: {}", d.gemm);
        return;
    }
    banner(
        "train_bench — training throughput (GEMM micro-kernels + zero-alloc pipeline)",
        scale,
    );

    let (mlp_train, mlp_val, mlp_epochs, eeg_scale, eeg_epochs) = match scale {
        RunScale::Quick => (768, 256, 3, Scale::Quick, 3),
        RunScale::Full => (4096, 1024, 10, Scale::Paper, 5),
    };

    let mut workloads = Vec::new();

    // Workload 1 (gated): paper-scale ECG MLP, batch 32.
    {
        let (x, y, vx, vy) = planted_task(5152, mlp_train, mlp_val, 0.53, 11);
        workloads.push(bench_workload(
            "ecg_mlp_paper_5152_75_2",
            |naive| Box::new(build_ecg_mlp(5, naive)) as Box<dyn Layer>,
            &x,
            &y,
            &vx,
            &vy,
            mlp_epochs,
            0.01,
            true,
        ));
    }

    // Workload 2: the EEG conv net on the synthetic motor-imagery dataset.
    {
        let setup = TaskSetup::new(Task::Eeg, eeg_scale, 21);
        let (train_ds, val_ds) = setup.dataset().cv_fold(5, 0);
        workloads.push(bench_workload(
            &format!(
                "eeg_conv_{}",
                match eeg_scale {
                    Scale::Quick => "reduced",
                    Scale::Paper => "paper",
                }
            ),
            |_naive| {
                // The conv workload has no verbatim pre-overhaul layer
                // copy; its baseline (reference kernels + old assembly) is
                // therefore conservative.
                Box::new(setup.build_model(BinarizationStrategy::BinarizedClassifier, 1, 17))
                    as Box<dyn Layer>
            },
            train_ds.samples(),
            train_ds.labels(),
            val_ds.samples(),
            val_ds.labels(),
            eeg_epochs,
            0.01,
            false,
        ));
    }

    println!(
        "\n{:<28} {:>12} {:>12} {:>8} {:>10} {:>10} {:>7}",
        "workload", "naive ms/ep", "opt ms/ep", "speedup", "naive acc", "opt acc", "determ"
    );
    for w in &workloads {
        println!(
            "{:<28} {:>12.1} {:>12.1} {:>7.2}x {:>10.3} {:>10.3} {:>7}",
            w.name,
            w.naive_epoch_ms,
            w.optimized_epoch_ms,
            w.speedup,
            w.naive_final_val_acc,
            w.optimized_final_val_acc,
            if w.deterministic { "yes" } else { "NO" }
        );
        println!(
            "{:<28} {:>12.0} {:>12.0}   (samples/s)",
            "", w.naive_samples_per_s, w.optimized_samples_per_s
        );
    }

    let gemm_rows = gemm_microbench();
    println!("\nGEMM micro-kernels vs pre-overhaul loops (dense-layer shapes):");
    for r in &gemm_rows {
        println!(
            "  {:<36} [{:>3}x{:>4}x{:>4}] {:>9.0} us -> {:>8.0} us  ({:.2}x)",
            r.kernel, r.m, r.k, r.n, r.reference_us, r.blocked_us, r.speedup
        );
    }

    let dispatch = KernelDispatch::capture();
    let simd_rows = simd_microbench();
    println!(
        "\nRuntime-dispatched kernels vs forced-scalar oracle \
         (features: {}; popcount {}, pack {}, gemm {}):",
        dispatch.features, dispatch.popcount, dispatch.pack, dispatch.gemm
    );
    for r in &simd_rows {
        println!(
            "  {:<50} {:>9.0} us -> {:>8.0} us  ({:.2}x){}",
            r.kernel,
            r.scalar_us,
            r.dispatched_us,
            r.speedup,
            if r.gated { "  [gated]" } else { "" }
        );
    }

    // Acceptance: every gated workload must clear the speedup threshold,
    // match baseline accuracy, and train deterministically.
    let workloads_ok = workloads.iter().filter(|w| w.gated).all(|w| {
        w.speedup >= SPEEDUP_THRESHOLD as f64
            && (w.optimized_final_val_acc - w.naive_final_val_acc).abs() <= ACCURACY_TOLERANCE
            && w.deterministic
    });
    // The SIMD packing gate only applies where dispatch actually selected
    // a SIMD packing kernel; under `RBNN_KERNELS=scalar` (the CI
    // forced-scalar leg) or on hosts without AVX both sides run the same
    // scalar code and a speedup ratio would be noise.
    let simd_gate_applies = !dispatch.forced_scalar && dispatch.pack != "scalar";
    let simd_ok = !simd_gate_applies
        || simd_rows
            .iter()
            .filter(|r| r.gated)
            .all(|r| r.speedup >= SIMD_PACK_THRESHOLD);
    let accepted = workloads_ok && simd_ok;
    println!(
        "\ngate (ECG MLP, batch {BATCH_SIZE}): speedup >= {SPEEDUP_THRESHOLD}x, \
         |acc delta| <= {ACCURACY_TOLERANCE}, bitwise-deterministic history: {}",
        if workloads_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "gate (SIMD packing vs scalar): speedup >= {SIMD_PACK_THRESHOLD}x: {}",
        if !simd_gate_applies {
            "SKIPPED (scalar dispatch)"
        } else if simd_ok {
            "PASS"
        } else {
            "FAIL"
        }
    );

    let report = TrainBenchReport {
        scale: match scale {
            RunScale::Quick => "quick",
            RunScale::Full => "full",
        },
        speedup_threshold: SPEEDUP_THRESHOLD,
        accuracy_tolerance: ACCURACY_TOLERANCE,
        simd_pack_threshold: SIMD_PACK_THRESHOLD,
        dispatch,
        workloads,
        gemm_microbench: gemm_rows,
        simd_microbench: simd_rows,
        accepted,
    };
    archive_json("train_bench", &report);

    if strict && !accepted {
        std::process::exit(1);
    }
}
