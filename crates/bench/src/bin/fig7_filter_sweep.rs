//! Regenerates Fig 7: cross-validated ECG accuracy versus convolution
//! filter augmentation (1–16×) for the three precision strategies.

use rbnn_bench::{archive_json, banner, parse_scale, RunScale};
use rram_bnn::experiments::{fig7, CvRunConfig};
use rram_bnn::Scale;

fn main() {
    let scale = parse_scale();
    banner("Fig 7 — ECG accuracy vs filter augmentation", scale);
    let result = match scale {
        RunScale::Quick => {
            // Base width 4 keeps the 16× point affordable on a laptop.
            let mut cfg = CvRunConfig::quick();
            cfg.folds_to_run = 1;
            fig7::run(Scale::Quick, &[1, 2, 4, 8, 16], Some(4), &cfg)
        }
        RunScale::Full => fig7::run(Scale::Paper, &[1, 2, 4, 8, 16], None, &CvRunConfig::paper()),
    };
    println!("{result}");
    println!(
        "BNN accuracy improves with filter augmentation (paper's Fig 7 trend): {}",
        result.bnn_improves_with_width()
    );
    archive_json("fig7_filter_sweep", &result);
}
