//! Regenerates Fig 8 (and the vision row of Table III): MobileNet with a
//! binarized two-layer classifier vs the original real classifier —
//! top-1/top-5 training curves on the 16-class vision proxy.

use rbnn_bench::{archive_json, banner, parse_scale, RunScale};
use rram_bnn::experiments::fig8;

fn main() {
    let scale = parse_scale();
    banner(
        "Fig 8 — MobileNet with binarized classifier (vision proxy)",
        scale,
    );
    let cfg = match scale {
        RunScale::Quick => fig8::Fig8Config::quick().with_fully_binarized(),
        RunScale::Full => fig8::Fig8Config {
            per_class: 60,
            epochs: 40,
            eval_every: 4,
            ..fig8::Fig8Config::quick().with_fully_binarized()
        },
    };
    let result = fig8::run(&cfg);
    println!("{result}");
    println!("Paper (ImageNet, MobileNet-224): top-1 70.6% real vs 70% bin-classifier,");
    println!("54.4% fully binarized [30]; the *relative* pattern is the reproduction target.");
    archive_json("fig8_mobilenet", &result);
}
