//! Regenerates Table IV: parameter counts, model sizes and the memory saved
//! by classifier binarization — exact architecture arithmetic.

use rbnn_bench::{archive_json, banner, parse_scale};
use rram_bnn::experiments::table4;

fn main() {
    let scale = parse_scale();
    banner(
        "Table IV — model memory usage and classifier-binarization savings",
        scale,
    );
    let result = table4::run();
    println!("{result}");
    archive_json("table4_memory", &result);
}
