//! Cross-backend conformance suite with a CI acceptance gate.
//!
//! Runs the `rbnn-conformance` machinery at benchmark scale:
//!
//! 1. **Differential oracle** — ≥ 25 seeded random paper-family models
//!    (MLP / ECG / EEG / vision shapes, word-boundary widths, 63/64/65-tap
//!    kernels), each executed through the float graph, the single-sample
//!    and batched XNOR/popcount paths, noise-free RRAM sensing, and the
//!    full `rbnn-serve` enqueue/batcher pipeline on both backends.
//!    Noise-free agreement must be bit-for-bit; a deliberately marginal
//!    fabric is additionally checked against the margin model's
//!    flip-probability bound.
//! 2. **Fault campaigns** — accuracy-vs-BER on a trained classifier with
//!    the Fig 4 post-2T2R anchor gate (≤ 0.5 pt drop), and the
//!    program-verify reliability/energy trade-off.
//!
//! `--strict` exits non-zero unless every oracle model passes and both
//! campaign gates hold. Results are archived to
//! `bench_results/conformance.json`.

use serde::Serialize;

use rbnn_bench::{banner, emit_bench, parse_scale_with, RunScale};
use rbnn_conformance::{campaign, generate, oracle};

#[derive(Serialize)]
struct ConformanceReport {
    model_count: usize,
    oracle_ok: bool,
    models: Vec<oracle::OracleReport>,
    campaign: campaign::CampaignReport,
}

fn flag(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "FAIL"
    }
}

fn main() {
    let (scale, flags) = parse_scale_with(&["--strict"]);
    let strict = flags[0];
    banner(
        "conformance — cross-backend differential oracle + fault campaigns",
        scale,
    );

    let (model_count, samples, model_seed) = match scale {
        RunScale::Quick => (28usize, 48usize, 0xC04F_u64),
        RunScale::Full => (64, 96, 0xC04F),
    };
    let oracle_cfg = oracle::OracleConfig {
        samples,
        ..Default::default()
    };

    println!(
        "\n{:<34} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>14}",
        "model", "fl dev", "batch", "plan", "rram", "serve", "noisy", "flips obs/bnd"
    );
    let mut models = Vec::with_capacity(model_count);
    for index in 0..model_count {
        let mut model = generate::generate(index, model_seed);
        let report = oracle::check_model(&mut model, &oracle_cfg);
        let noisy = report.noisy.as_ref();
        println!(
            "{:<34} {:>7.0e} {:>6} {:>6} {:>6} {:>6} {:>6} {:>14}",
            report.model,
            report.max_float_logit_dev,
            flag(
                report.batch_bitwise
                    && report.float_sign_mismatches == 0
                    && report.float_argmax_mismatches == 0
            ),
            flag(report.plan_bitwise && report.rram_plan_bitwise),
            flag(report.rram_batch_bitwise && report.rram_single_bitwise),
            flag(report.serve_bitwise.unwrap_or(true) && report.serve_rram_bitwise.unwrap_or(true)),
            flag(noisy.map_or(true, |n| n.within_bound)),
            noisy.map_or_else(String::new, |n| format!(
                "{}/{:.1}",
                n.observed_disagreements, n.disagreement_bound
            )),
        );
        models.push(report);
    }
    let oracle_ok = models.iter().all(oracle::OracleReport::passed);
    println!(
        "\noracle: {} models through float/binary/batched/plan/RRAM/serve paths: {}",
        model_count,
        if oracle_ok { "PASS" } else { "FAIL" }
    );

    let campaign_cfg = match scale {
        RunScale::Quick => campaign::CampaignConfig::quick(0xBE12),
        RunScale::Full => campaign::CampaignConfig::full(0xBE12),
    };
    let campaign_report = campaign::run_campaign(&campaign_cfg);

    println!(
        "\nBER campaign ({:?} classifier, clean acc {:.3}):",
        campaign_report.dims, campaign_report.clean_accuracy
    );
    println!(
        "{:>10} {:>8} {:>10} {:>21} {:>11}",
        "ber", "reps", "mean acc", "95% CI", "flips/rep"
    );
    for p in &campaign_report.ber_curve {
        println!(
            "{:>10.2e} {:>8} {:>10.4} {:>10.4}–{:<10.4} {:>11.1}",
            p.ber, p.reps, p.mean_accuracy, p.ci_low, p.ci_high, p.mean_flips
        );
    }
    println!(
        "anchor (post-2T2R BER {:.2e}): drop {:.4} (ci high {:.4}) ≤ 0.005: {}",
        campaign_report.anchor_ber,
        campaign_report.anchor_drop,
        campaign_report.anchor_drop_ci_high,
        flag(campaign_report.anchor_ok)
    );
    println!(
        "positive control (BER 0.5 full scramble): acc {:.4} ≤ 0.7: {}",
        campaign_report.scramble_accuracy,
        flag(campaign_report.scramble_ok)
    );

    println!("\nprogram-verify trade-off (7e8-cycle wear):");
    println!(
        "{:>12} {:>9} {:>8} {:>12} {:>21} {:>12}",
        "point", "attempts", "margin", "residual ber", "95% CI", "pulses/write"
    );
    for p in &campaign_report.verify_curve {
        println!(
            "{:>12} {:>9} {:>8.2} {:>12.2e} {:>10.2e}–{:<10.2e} {:>12.2}",
            p.label, p.max_attempts, p.margin, p.residual_ber, p.ci_low, p.ci_high, p.mean_pulses
        );
    }
    println!(
        "verify gate (errors suppressed at higher pulse cost): {}",
        flag(campaign_report.verify_ok)
    );

    let accepted = oracle_ok && campaign_report.passed();
    println!(
        "\nconformance gate (oracle + BER anchor + scramble control + verify trade-off): {}",
        if accepted { "PASS" } else { "FAIL" }
    );

    let report = ConformanceReport {
        model_count,
        oracle_ok,
        models,
        campaign: campaign_report,
    };
    emit_bench("conformance", scale, Some(accepted), &report);

    if strict && !accepted {
        std::process::exit(1);
    }
}
