//! Umbrella binary: regenerates every table and figure at quick scale in
//! one run (Tables I–IV, Figs 4, 7, 8, plus the BER extension).

use rbnn_bench::{banner, parse_scale, RunScale};
use rbnn_rram::EnduranceConfig;
use rram_bnn::experiments::{ext_ber, fig4, fig7, fig8, table3, table4, tables12, CvRunConfig};
use rram_bnn::{Scale, Task};

fn main() {
    let scale = parse_scale();
    banner("paperbench — all tables and figures", scale);
    let t0 = std::time::Instant::now();

    println!("{}", tables12::table1_eeg());
    println!("{}", tables12::table2_ecg());
    println!("{}", table4::run());
    println!("{}", fig4::run(&EnduranceConfig::fig4_quick()));

    let cv = match scale {
        RunScale::Quick => CvRunConfig::quick(),
        RunScale::Full => CvRunConfig::paper(),
    };
    let run_scale = match scale {
        RunScale::Quick => Scale::Quick,
        RunScale::Full => Scale::Paper,
    };
    println!("{}", table3::run(run_scale, &cv));

    let mut sweep_cfg = cv.clone();
    sweep_cfg.folds_to_run = 1;
    println!(
        "{}",
        fig7::run(run_scale, &[1, 2, 4, 8], Some(4), &sweep_cfg)
    );
    println!(
        "{}",
        fig8::run(&fig8::Fig8Config::quick().with_fully_binarized())
    );
    println!(
        "{}",
        ext_ber::run(Task::Ecg, &ext_ber::BerSweepConfig::quick())
    );

    println!("total wall time: {:.0}s", t0.elapsed().as_secs_f32());
}
