//! # rbnn-bench
//!
//! Benchmark harness of the rram-bnn reproduction. Each table and figure of
//! the paper has a dedicated binary (see DESIGN.md §4 for the index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1_table2` | Tables I & II (architectures) |
//! | `fig4_ber` | Fig 4 (1T1R vs 2T2R BER vs cycles) |
//! | `table3_accuracy` | Table III medical rows |
//! | `table4_memory` | Table IV (memory/savings) |
//! | `fig7_filter_sweep` | Fig 7 (accuracy vs filter augmentation) |
//! | `fig8_mobilenet` | Fig 8 + Table III vision row |
//! | `ext_ber_accuracy` | accuracy-vs-BER extension (refs \[15\],\[16\]) |
//! | `paperbench` | everything above, quick settings |
//! | `serve_bench` | serving throughput/latency (software + RRAM backends) |
//! | `stream_bench` | continuous-monitoring ingestion: N patient streams → serve pool (gated) |
//! | `train_bench` | training throughput vs the pre-overhaul baseline (gated) |
//! | `conformance` | cross-backend differential oracle + fault campaigns (gated) |
//!
//! Every binary accepts `--quick` (default; minutes on a laptop) or
//! `--full` (closer to paper scale) and archives a JSON result into
//! `bench_results/` next to its stdout table.
//!
//! Criterion kernel benches (`cargo bench`) live in `benches/`.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// Execution scale requested on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// Reduced dimensions/trials: minutes on a laptop (default).
    Quick,
    /// Paper-leaning dimensions: expect long CPU runs.
    Full,
}

/// Parses `--quick` / `--full` from the process arguments.
///
/// Unknown arguments abort with a usage message — benches should never
/// silently ignore a flag the user believed was in effect.
pub fn parse_scale() -> RunScale {
    let (scale, _) = parse_scale_with(&[]);
    scale
}

/// [`parse_scale`] plus a set of bench-specific boolean flags: returns the
/// scale and, for each flag in `extra` (e.g. `"--strict"`), whether it was
/// passed. Anything else still aborts with a usage message.
pub fn parse_scale_with(extra: &[&str]) -> (RunScale, Vec<bool>) {
    let usage = {
        let mut u = String::from("[--quick|--full]");
        for f in extra {
            u.push_str(&format!(" [{f}]"));
        }
        u
    };
    let mut scale = RunScale::Quick;
    let mut seen = vec![false; extra.len()];
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => scale = RunScale::Quick,
            "--full" => scale = RunScale::Full,
            "--help" | "-h" => {
                eprintln!("usage: {usage}   (default --quick)");
                std::process::exit(0);
            }
            other => match extra.iter().position(|f| *f == other) {
                Some(i) => seen[i] = true,
                None => {
                    eprintln!("unknown argument {other}; usage: {usage}");
                    std::process::exit(2);
                }
            },
        }
    }
    (scale, seen)
}

/// Directory where JSON results are archived (`bench_results/`, created on
/// demand; falls back to the current directory).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("bench_results");
    if dir.exists() || fs::create_dir_all(&dir).is_ok() {
        dir
    } else {
        PathBuf::from(".")
    }
}

/// Serializes `value` to `bench_results/<name>.json`; failures are reported
/// but never fatal (the stdout table is the primary artifact).
pub fn archive_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(json archived to {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Prints the standard bench header.
pub fn banner(title: &str, scale: RunScale) {
    println!("==============================================================");
    println!("{title}");
    println!(
        "scale: {}",
        match scale {
            RunScale::Quick => "--quick (reduced dimensions; see EXPERIMENTS.md)",
            RunScale::Full => "--full",
        }
    );
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.exists() || d == PathBuf::from("."));
    }

    #[test]
    fn archive_json_roundtrip() {
        #[derive(Serialize)]
        struct Tiny {
            x: u32,
        }
        archive_json("selftest", &Tiny { x: 7 });
        let path = results_dir().join("selftest.json");
        if path.exists() {
            let text = fs::read_to_string(&path).unwrap();
            assert!(text.contains('7'));
            let _ = fs::remove_file(path);
        }
    }
}
