//! # rbnn-bench
//!
//! Benchmark harness of the rram-bnn reproduction. Each table and figure of
//! the paper has a dedicated binary (see DESIGN.md §4 for the index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1_table2` | Tables I & II (architectures) |
//! | `fig4_ber` | Fig 4 (1T1R vs 2T2R BER vs cycles) |
//! | `table3_accuracy` | Table III medical rows |
//! | `table4_memory` | Table IV (memory/savings) |
//! | `fig7_filter_sweep` | Fig 7 (accuracy vs filter augmentation) |
//! | `fig8_mobilenet` | Fig 8 + Table III vision row |
//! | `ext_ber_accuracy` | accuracy-vs-BER extension (refs \[15\],\[16\]) |
//! | `paperbench` | everything above, quick settings |
//! | `serve_bench` | serving throughput/latency (software + RRAM backends) |
//! | `stream_bench` | continuous-monitoring ingestion: N patient streams → serve pool (gated) |
//! | `chaos_bench` | fault-injection gate: fleet stays real-time and loss-free under seeded chaos (gated) |
//! | `train_bench` | training throughput vs the pre-overhaul baseline (gated) |
//! | `conformance` | cross-backend differential oracle + fault campaigns (gated) |
//!
//! Every binary accepts `--quick` (default; minutes on a laptop) or
//! `--full` (closer to paper scale) and archives a JSON result into
//! `bench_results/` next to its stdout table.
//!
//! Criterion kernel benches (`cargo bench`) live in `benches/`.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// Execution scale requested on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// Reduced dimensions/trials: minutes on a laptop (default).
    Quick,
    /// Paper-leaning dimensions: expect long CPU runs.
    Full,
}

impl RunScale {
    /// The scale's canonical archive name (`"quick"` / `"full"`).
    pub fn as_str(self) -> &'static str {
        match self {
            RunScale::Quick => "quick",
            RunScale::Full => "full",
        }
    }
}

/// Parses `--quick` / `--full` from the process arguments.
///
/// Unknown arguments abort with a usage message — benches should never
/// silently ignore a flag the user believed was in effect.
pub fn parse_scale() -> RunScale {
    let (scale, _) = parse_scale_with(&[]);
    scale
}

/// [`parse_scale`] plus a set of bench-specific boolean flags: returns the
/// scale and, for each flag in `extra` (e.g. `"--strict"`), whether it was
/// passed. Anything else still aborts with a usage message.
pub fn parse_scale_with(extra: &[&str]) -> (RunScale, Vec<bool>) {
    let usage = {
        let mut u = String::from("[--quick|--full]");
        for f in extra {
            u.push_str(&format!(" [{f}]"));
        }
        u
    };
    let mut scale = RunScale::Quick;
    let mut seen = vec![false; extra.len()];
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => scale = RunScale::Quick,
            "--full" => scale = RunScale::Full,
            "--help" | "-h" => {
                eprintln!("usage: {usage}   (default --quick)");
                std::process::exit(0);
            }
            other => match extra.iter().position(|f| *f == other) {
                Some(i) => seen[i] = true,
                None => {
                    eprintln!("unknown argument {other}; usage: {usage}");
                    std::process::exit(2);
                }
            },
        }
    }
    (scale, seen)
}

/// Directory where JSON results are archived (`bench_results/`, created on
/// demand; falls back to the current directory).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("bench_results");
    if dir.exists() || fs::create_dir_all(&dir).is_ok() {
        dir
    } else {
        PathBuf::from(".")
    }
}

/// Serializes `value` to `bench_results/<name>.json`; failures are reported
/// but never fatal (the stdout table is the primary artifact).
pub fn archive_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(json archived to {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Number of logical cores on the host (1 when detection fails).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Snapshot of the runtime kernel-dispatch decisions
/// ([`rbnn_tensor::dispatch_report`]) in flat-JSON form, recorded in bench
/// envelopes so cross-host artifact diffs are explainable from the feature
/// set that produced them. (Numeric results are host-invariant by the
/// dispatch contract; only the timing rows may differ.)
#[derive(Debug, Serialize)]
pub struct KernelDispatch {
    /// Detected host CPU features, comma-separated.
    pub features: String,
    /// True when the scalar override (`RBNN_KERNELS=scalar` or
    /// programmatic) pinned the kernels.
    pub forced_scalar: bool,
    /// Selected XNOR-popcount kernel.
    pub popcount: String,
    /// Selected sign-packing kernel.
    pub pack: String,
    /// Selected GEMM micro-kernel.
    pub gemm: String,
    /// Active serve executor mode (`graph`/`legacy`): the config default
    /// plus the `RBNN_EXECUTOR` override — the CI executor matrix records
    /// which mode produced a timing artifact.
    pub executor: String,
}

impl KernelDispatch {
    /// Captures the current dispatch decisions.
    pub fn capture() -> Self {
        let r = rbnn_tensor::dispatch_report();
        Self {
            features: r.features_csv(),
            forced_scalar: r.forced_scalar,
            popcount: r.popcount.to_string(),
            pack: r.pack.to_string(),
            gemm: r.gemm.to_string(),
            executor: rbnn_serve::ExecutorMode::active_default()
                .name()
                .to_string(),
        }
    }
}

/// The uniform archive wrapper every bench result ships in: bench name,
/// run scale, host parallelism and the overall gate verdict (when the
/// bench has one) around the bench-specific `results` payload.
///
/// The vendored `serde_derive` only handles non-generic structs, so the
/// [`Serialize`] impl is written out by hand against the shim's
/// field-writing helpers.
pub struct BenchEnvelope<'a, T: Serialize> {
    /// Bench binary name (`serve_bench`, `stream_bench`, …).
    pub bench: &'a str,
    /// Scale the run executed at.
    pub scale: RunScale,
    /// Logical cores on the measuring host — throughput numbers are
    /// meaningless without it.
    pub host_cores: usize,
    /// Overall acceptance verdict; `None` for benches with no gate.
    pub accepted: Option<bool>,
    /// Kernel-dispatch snapshot; `None` for benches whose artifacts must
    /// stay byte-identical across dispatch modes (conformance compares its
    /// forced-scalar and dispatched JSON with `cmp`).
    pub dispatch: Option<KernelDispatch>,
    /// The bench-specific result payload.
    pub results: &'a T,
}

impl<T: Serialize> Serialize for BenchEnvelope<'_, T> {
    fn write_json(&self, out: &mut String, indent: usize) {
        out.push('{');
        let inner = indent + 1;
        serde::json_field(out, inner, "bench", true);
        serde::write_json_string(out, self.bench);
        serde::json_field(out, inner, "scale", false);
        serde::write_json_string(out, self.scale.as_str());
        serde::json_field(out, inner, "host_cores", false);
        self.host_cores.write_json(out, inner);
        serde::json_field(out, inner, "accepted", false);
        self.accepted.write_json(out, inner);
        serde::json_field(out, inner, "dispatch", false);
        self.dispatch.write_json(out, inner);
        serde::json_field(out, inner, "results", false);
        self.results.write_json(out, inner);
        serde::newline_indent(out, indent);
        out.push('}');
    }
}

/// Archives `results` inside the standard [`BenchEnvelope`] as
/// `bench_results/<name>.json` — the one emission path gated benches
/// share, so downstream tooling sees a uniform top level.
///
/// No dispatch snapshot is recorded: artifacts emitted through this path
/// stay byte-identical between the dispatched and forced-scalar kernel
/// modes (the conformance CI leg compares them with `cmp`). Benches whose
/// payload is timing-dependent anyway should prefer
/// [`emit_bench_with_dispatch`].
pub fn emit_bench<T: Serialize>(name: &str, scale: RunScale, accepted: Option<bool>, results: &T) {
    archive_json(
        name,
        &BenchEnvelope {
            bench: name,
            scale,
            host_cores: host_cores(),
            accepted,
            dispatch: None,
            results,
        },
    );
}

/// [`emit_bench`] plus the [`KernelDispatch`] snapshot — for benches with
/// timing rows, where cross-host diffs must be explainable from the active
/// feature set.
pub fn emit_bench_with_dispatch<T: Serialize>(
    name: &str,
    scale: RunScale,
    accepted: Option<bool>,
    results: &T,
) {
    archive_json(
        name,
        &BenchEnvelope {
            bench: name,
            scale,
            host_cores: host_cores(),
            accepted,
            dispatch: Some(KernelDispatch::capture()),
            results,
        },
    );
}

/// Measures the telemetry tax: runs `work` once with telemetry globally
/// disabled and once enabled, and returns `(disabled, enabled)` throughput
/// from the closure's own samples-per-second metric. Takes the best of
/// two pairs — single wall-clock ratios on shared runners are noisy —
/// and always restores the enabled state.
pub fn telemetry_overhead_pair(mut work: impl FnMut() -> f64) -> (f64, f64) {
    let was_enabled = rbnn_telemetry::enabled();
    let mut best: Option<(f64, f64)> = None;
    for _ in 0..2 {
        rbnn_telemetry::set_enabled(false);
        let disabled = work();
        rbnn_telemetry::set_enabled(true);
        let enabled = work();
        let keep = match best {
            Some((d, e)) => enabled / disabled.max(1e-12) > e / d.max(1e-12),
            None => true,
        };
        if keep {
            best = Some((disabled, enabled));
        }
    }
    rbnn_telemetry::set_enabled(was_enabled);
    best.expect("two pairs ran")
}

/// Prints and judges a telemetry overhead pair: enabled throughput must
/// stay within `tolerance` (e.g. `0.05`) of disabled.
pub fn report_overhead_gate(label: &str, disabled: f64, enabled: f64, tolerance: f64) -> bool {
    let ratio = enabled / disabled.max(1e-12);
    let ok = ratio >= 1.0 - tolerance;
    println!(
        "telemetry overhead ({label}): disabled {disabled:.0}/s, enabled {enabled:.0}/s \
         ({:+.1}%) — {}",
        (ratio - 1.0) * 100.0,
        if ok {
            "within tolerance"
        } else {
            "EXCEEDS tolerance"
        }
    );
    ok
}

/// Prints the standard bench header.
pub fn banner(title: &str, scale: RunScale) {
    println!("==============================================================");
    println!("{title}");
    println!(
        "scale: {}",
        match scale {
            RunScale::Quick => "--quick (reduced dimensions; see EXPERIMENTS.md)",
            RunScale::Full => "--full",
        }
    );
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.exists() || d == PathBuf::from("."));
    }

    #[test]
    fn envelope_renders_the_pinned_shape() {
        #[derive(Serialize)]
        struct Payload {
            throughput: f64,
        }
        let env = BenchEnvelope {
            bench: "selftest",
            scale: RunScale::Quick,
            host_cores: 4,
            accepted: Some(true),
            dispatch: None,
            results: &Payload { throughput: 12.5 },
        };
        let mut out = String::new();
        env.write_json(&mut out, 0);
        assert_eq!(
            out,
            "{\n  \"bench\": \"selftest\",\n  \"scale\": \"quick\",\n  \
             \"host_cores\": 4,\n  \"accepted\": true,\n  \"dispatch\": null,\n  \
             \"results\": {\n    \"throughput\": 12.5\n  }\n}"
        );
    }

    #[test]
    fn dispatch_snapshot_names_the_selected_kernels() {
        let d = KernelDispatch::capture();
        #[cfg(target_arch = "x86_64")]
        assert!(d.features.contains("sse2"), "x86_64 must report sse2");
        assert!(["scalar", "avx2-harley-seal", "avx512-vpopcntdq"].contains(&d.popcount.as_str()));
        assert!(["scalar", "avx-movemask"].contains(&d.pack.as_str()));
        assert!(["scalar-fma", "avx2-fma"].contains(&d.gemm.as_str()));
        let env = BenchEnvelope {
            bench: "selftest",
            scale: RunScale::Quick,
            host_cores: 1,
            accepted: None,
            dispatch: Some(d),
            results: &0u32,
        };
        let mut out = String::new();
        env.write_json(&mut out, 0);
        assert!(out.contains("\"dispatch\": {"));
        assert!(out.contains("\"popcount\""));
    }

    #[test]
    fn envelope_without_gate_emits_null_accepted() {
        let env = BenchEnvelope {
            bench: "b",
            scale: RunScale::Full,
            host_cores: 1,
            accepted: None,
            dispatch: None,
            results: &7u32,
        };
        let mut out = String::new();
        env.write_json(&mut out, 0);
        assert!(out.contains("\"accepted\": null"));
        assert!(out.contains("\"scale\": \"full\""));
    }

    #[test]
    fn overhead_pair_restores_enabled_state() {
        rbnn_telemetry::set_enabled(true);
        let mut calls = 0u32;
        let (d, e) = telemetry_overhead_pair(|| {
            calls += 1;
            calls as f64
        });
        assert_eq!(calls, 4, "two disabled/enabled pairs");
        assert!(d > 0.0 && e > 0.0);
        assert!(rbnn_telemetry::enabled(), "enabled state restored");
    }

    #[test]
    fn overhead_gate_judges_the_ratio() {
        assert!(report_overhead_gate("t", 100.0, 96.0, 0.05));
        assert!(!report_overhead_gate("t", 100.0, 90.0, 0.05));
    }

    #[test]
    fn archive_json_roundtrip() {
        #[derive(Serialize)]
        struct Tiny {
            x: u32,
        }
        archive_json("selftest", &Tiny { x: 7 });
        let path = results_dir().join("selftest.json");
        if path.exists() {
            let text = fs::read_to_string(&path).unwrap();
            assert!(text.contains('7'));
            let _ = fs::remove_file(path);
        }
    }
}
