//! Criterion benches of the RRAM substrate: device programming, PCSA
//! sensing, array-level XNOR reads and whole-classifier in-memory inference.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rbnn_binary::{BinaryDense, BinaryNetwork};
use rbnn_rram::{
    DeviceParams, EngineConfig, NetworkEngine, Pcsa, PcsaParams, RramArray, Synapse2T2R,
};
use rbnn_tensor::{BitMatrix, BitVec, Tensor};

fn bench_device_ops(c: &mut Criterion) {
    let params = DeviceParams::hfo2_default();
    let pcsa_params = PcsaParams::default_130nm();
    let mut rng = StdRng::seed_from_u64(0);
    let mut synapse = Synapse2T2R::new(true, &params, &mut rng);
    let pcsa = Pcsa::new(&pcsa_params, &mut rng);
    let mut group = c.benchmark_group("device");
    group.bench_function("program_pair", |bench| {
        let mut w = false;
        bench.iter(|| {
            w = !w;
            synapse.program(w, &params, &mut rng);
        })
    });
    group.bench_function("pcsa_read", |bench| {
        bench.iter(|| black_box(synapse.read(&pcsa, &params, &mut rng)))
    });
    group.bench_function("xnor_read", |bench| {
        bench.iter(|| black_box(synapse.read_xnor(true, &pcsa, &params, &mut rng)))
    });
    group.finish();
}

fn bench_array_row_ops(c: &mut Criterion) {
    let mut array = RramArray::test_chip(1);
    let mut rng = StdRng::seed_from_u64(2);
    let input: BitVec = (0..32).map(|_| rng.gen::<bool>()).collect();
    let mut group = c.benchmark_group("array_32x32");
    group.bench_function("read_row", |bench| {
        bench.iter(|| black_box(array.read_row(0)))
    });
    group.bench_function("xnor_popcount_row", |bench| {
        bench.iter(|| black_box(array.xnor_popcount_row(0, &input)))
    });
    group.finish();
}

/// End-to-end in-memory inference of a Table-I-sized classifier
/// (2520 → 80 → 2) on the 32×32 test-chip fabric: single-sample and
/// batch-64 margin-gated paths (fresh devices, so senses short-circuit).
fn bench_network_engine(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mk = |out: usize, inp: usize, rng: &mut StdRng| {
        let w: Vec<f32> = (0..out * inp)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        BinaryDense::new(
            BitMatrix::from_signs(&w, out, inp),
            vec![1.0; out],
            vec![0.0; out],
        )
    };
    let net = BinaryNetwork::new(vec![mk(80, 2520, &mut rng), mk(2, 80, &mut rng)]);
    let mut engine = NetworkEngine::program(&net, &EngineConfig::test_chip(4));
    let x: Vec<f32> = (0..2520)
        .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
        .collect();
    c.bench_function("network_engine_eeg_classifier", |bench| {
        bench.iter(|| black_box(engine.logits(&x)))
    });

    let batch = 64usize;
    let xs: Vec<f32> = (0..batch * 2520)
        .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
        .collect();
    let features = Tensor::from_vec(xs, [batch, 2520]);
    let mut group = c.benchmark_group("network_engine_batched");
    group.throughput(criterion::Throughput::Elements(batch as u64));
    // Default cap is sequential (1); the second point opts into fan-out.
    group.bench_function("logits_batch_64", |bench| {
        bench.iter(|| black_box(engine.logits_batch(&features)))
    });
    // Tile-parallel fan-out (auto thread cap); identical results, lower
    // wall clock on multicore hosts.
    engine.set_parallelism(0);
    group.bench_function("logits_batch_64_tile_parallel", |bench| {
        bench.iter(|| black_box(engine.logits_batch(&features)))
    });
    engine.set_parallelism(1);
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_device_ops, bench_array_row_ops, bench_network_engine
}
criterion_main!(benches);
