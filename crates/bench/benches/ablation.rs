//! Ablation benches for the design choices DESIGN.md §5 calls out:
//! differential vs single-ended sensing margins, PCSA offset sensitivity,
//! and integer-threshold folding vs float BatchNorm evaluation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rbnn_binary::{fold_batchnorm_sign, BinaryDense};
use rbnn_rram::{endurance, verify, DeviceParams, Pcsa, PcsaParams, Synapse2T2R, VerifyConfig};
use rbnn_tensor::{BitMatrix, BitVec};

/// Cost of the analytic BER evaluation across PCSA offset qualities —
/// the 2T2R margin ablation (run the bench, read the BERs in its stdout).
fn bench_ber_vs_pcsa_offset(c: &mut Criterion) {
    let device = DeviceParams::hfo2_default();
    let mut group = c.benchmark_group("analytic_ber");
    for &offset in &[0.05f64, 0.27, 0.5] {
        let pcsa = PcsaParams {
            offset_sigma: offset,
            noise_sigma: 0.02,
        };
        let point = endurance::analytic_point(&device, &pcsa, 400_000_000, 1.15);
        println!(
            "[ablation] PCSA offset σ={offset}: 2T2R BER {:.2e} (1T1R {:.2e})",
            point.ber_2t2r, point.ber_1t1r_bl
        );
        group.bench_with_input(BenchmarkId::from_parameter(offset), &offset, |bench, _| {
            bench.iter(|| black_box(endurance::analytic_point(&device, &pcsa, 400_000_000, 1.15)))
        });
    }
    group.finish();
}

/// Threshold folding ablation: integer-threshold hidden layer vs computing
/// the float affine then taking the sign.
fn bench_threshold_fold(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let (out, inp) = (80, 2520);
    let w: Vec<f32> = (0..out * inp)
        .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
        .collect();
    let scale: Vec<f32> = (0..out).map(|_| rng.gen_range(0.1..2.0)).collect();
    let shift: Vec<f32> = (0..out).map(|_| rng.gen_range(-3.0..3.0)).collect();
    let layer = BinaryDense::new(BitMatrix::from_signs(&w, out, inp), scale, shift);
    let x: BitVec = (0..inp).map(|_| rng.gen::<bool>()).collect();
    let mut group = c.benchmark_group("hidden_layer_activation");
    group.bench_function("integer_threshold", |bench| {
        bench.iter(|| black_box(layer.forward_sign(&x)))
    });
    group.bench_function("float_affine_then_sign", |bench| {
        bench.iter(|| {
            let affine = layer.forward_affine(&x);
            let bits: BitVec = affine.iter().map(|&v| v >= 0.0).collect();
            black_box(bits)
        })
    });
    group.finish();
}

/// Fold construction itself is trivially cheap — demonstrate it stays out
/// of the inference path.
fn bench_fold_construction(c: &mut Criterion) {
    c.bench_function("fold_batchnorm_sign", |bench| {
        bench.iter(|| black_box(fold_batchnorm_sign(black_box(0.73), black_box(-1.2), 2520)))
    });
}

/// Program-verify ablation: reliability and pulse cost of verified vs
/// unverified programming at high wear (DESIGN.md §5 / paper refs [15,16]
/// "various programming conditions").
fn bench_program_verify(c: &mut Criterion) {
    let params = DeviceParams::hfo2_default();
    let mut rng = StdRng::seed_from_u64(7);
    let pcsa = Pcsa::ideal();
    // Report the BER trade-off once, then time the two programming styles.
    for (label, cfg) in [
        ("no-verify", VerifyConfig::none()),
        ("verify", VerifyConfig::standard()),
    ] {
        let mut synapse = Synapse2T2R::new(true, &params, &mut rng);
        let trials = 20_000;
        let mut errors = 0u32;
        let mut pulses = 0u64;
        for t in 0..trials {
            let w = t % 2 == 0;
            synapse.set_cycles(700_000_000);
            let out = verify::program_synapse_verified(&mut synapse, w, &cfg, &params, &mut rng);
            pulses += out.attempts as u64;
            if synapse.read(&pcsa, &params, &mut rng) != w {
                errors += 1;
            }
        }
        println!(
            "[ablation] {label}: BER {:.2e} at 7e8 cycles, {:.2} pulses/weight",
            errors as f64 / trials as f64,
            pulses as f64 / trials as f64
        );
    }
    let mut group = c.benchmark_group("program_verify");
    for (label, cfg) in [
        ("none", VerifyConfig::none()),
        ("standard", VerifyConfig::standard()),
    ] {
        let mut synapse = Synapse2T2R::new(true, &params, &mut rng);
        synapse.set_cycles(700_000_000);
        let mut w = false;
        group.bench_function(label, |bench| {
            bench.iter(|| {
                w = !w;
                black_box(verify::program_synapse_verified(
                    &mut synapse,
                    w,
                    &cfg,
                    &params,
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ber_vs_pcsa_offset, bench_threshold_fold, bench_fold_construction,
        bench_program_verify
}
criterion_main!(benches);
