//! Criterion benches of batched vs single-sample inference throughput.
//!
//! Two layers of comparison on the paper's ECG classifier shape
//! (2520 → 80 → 2, Table I):
//!
//! * kernel level — `BinaryNetwork::logits` in a loop vs
//!   `logits_batch` at batch sizes 1/8/64/256 (the amortization of
//!   threshold folding, bit-packing and weight-row reuse);
//! * engine level — the Monte-Carlo `NetworkEngine` sequential vs batched
//!   path at batch 16 (tile bookkeeping amortization; device sampling
//!   dominates by design).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rbnn_binary::{BinaryDense, BinaryNetwork};
use rbnn_rram::{EngineConfig, NetworkEngine};
use rbnn_tensor::{BitMatrix, Tensor};

fn ecg_classifier(rng: &mut StdRng) -> BinaryNetwork {
    let mk = |out: usize, inp: usize, rng: &mut StdRng| {
        let w: Vec<f32> = (0..out * inp)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let scale: Vec<f32> = (0..out).map(|_| rng.gen_range(0.5..1.5)).collect();
        let shift: Vec<f32> = (0..out).map(|_| rng.gen_range(-2.0..2.0)).collect();
        BinaryDense::new(BitMatrix::from_signs(&w, out, inp), scale, shift)
    };
    BinaryNetwork::new(vec![mk(80, 2520, rng), mk(2, 80, rng)])
}

fn feature_batch(n: usize, width: usize, rng: &mut StdRng) -> Tensor {
    let xs: Vec<f32> = (0..n * width)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    Tensor::from_vec(xs, [n, width])
}

fn bench_software_batch_sizes(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let net = ecg_classifier(&mut rng);
    let mut group = c.benchmark_group("ecg_software");
    for &n in &[1usize, 8, 64, 256] {
        let batch = feature_batch(n, 2520, &mut rng);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("single_loop", n), &n, |b, &n| {
            let xs = batch.as_slice();
            b.iter(|| {
                for i in 0..n {
                    black_box(net.logits(&xs[i * 2520..(i + 1) * 2520]));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("logits_batch", n), &n, |b, _| {
            b.iter(|| black_box(net.logits_batch(&batch)))
        });
    }
    group.finish();
}

fn bench_rram_batch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let net = ecg_classifier(&mut rng);
    let mut engine = NetworkEngine::program(&net, &EngineConfig::test_chip(2));
    let n = 16;
    let batch = feature_batch(n, 2520, &mut rng);
    let mut group = c.benchmark_group("ecg_rram");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("single_loop_16", |b| {
        let xs = batch.as_slice();
        b.iter(|| {
            for i in 0..n {
                black_box(engine.logits(&xs[i * 2520..(i + 1) * 2520]));
            }
        })
    });
    group.bench_function("logits_batch_16", |b| {
        b.iter(|| black_box(engine.logits_batch(&batch)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_software_batch_sizes, bench_rram_batch
}
criterion_main!(benches);
