//! Criterion benches of the compute kernels: XNOR/popcount vs float dot
//! products, matmul, im2col convolution lowering, and deployed binary dense
//! layers — quantifying the arithmetic advantage BNNs hand to hardware.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rbnn_binary::BinaryDense;
use rbnn_tensor::{im2col1d, BitMatrix, BitVec, Conv1dGeom, Tensor};

fn pm1_vec(n: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..n)
        .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
        .collect()
}

/// Eq. 3's core operation vs its float equivalent at the paper's classifier
/// fan-in (2520, Table I).
fn bench_xnor_vs_float_dot(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("dot_2520");
    let a = pm1_vec(2520, &mut rng);
    let b = pm1_vec(2520, &mut rng);
    let ba = BitVec::from_signs(&a);
    let bb = BitVec::from_signs(&b);
    group.bench_function("f32", |bench| {
        bench.iter(|| {
            let s: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            black_box(s)
        })
    });
    group.bench_function("xnor_popcount", |bench| {
        bench.iter(|| black_box(ba.dot_pm1(&bb)))
    });
    group.finish();
}

/// One full classifier layer: 80 neurons × 2520 inputs (Table I).
fn bench_dense_layer(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let (out, inp) = (80, 2520);
    let wf = pm1_vec(out * inp, &mut rng);
    let xf = pm1_vec(inp, &mut rng);
    let wt = Tensor::from_vec(wf.clone(), [out, inp]);
    let xt = Tensor::from_vec(xf.clone(), [1, inp]);
    let bd = BinaryDense::new(
        BitMatrix::from_signs(&wf, out, inp),
        vec![1.0; out],
        vec![0.0; out],
    );
    let xb = BitVec::from_signs(&xf);
    let mut group = c.benchmark_group("dense_80x2520");
    group.bench_function("f32_matmul", |bench| {
        bench.iter(|| black_box(xt.matmul_nt(&wt)))
    });
    group.bench_function("binary_popcounts", |bench| {
        bench.iter(|| black_box(bd.popcounts(&xb)))
    });
    group.finish();
}

fn bench_matmul_sizes(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 128] {
        let a = Tensor::randn([n, n], 1.0, &mut rng);
        let b = Tensor::randn([n, n], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)))
        });
    }
    group.finish();
}

/// The ECG first layer's im2col lowering (Table II: 12 leads, kernel 13).
fn bench_im2col(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let geom = Conv1dGeom::new(12, 750, 13, 1, 0);
    let x = Tensor::randn([12, 750], 1.0, &mut rng);
    c.bench_function("im2col1d_ecg_layer1", |bench| {
        bench.iter(|| black_box(im2col1d(&x, &geom)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_xnor_vs_float_dot, bench_dense_layer, bench_matmul_sizes, bench_im2col
}
criterion_main!(benches);
