//! The layer abstraction all network blocks implement.

use std::fmt;

use rbnn_tensor::{Scratch, Tensor};

use crate::Param;

/// Whether the network is training or evaluating.
///
/// Training mode enables dropout, batch statistics in BatchNorm, and input
/// caching for the backward pass; evaluation mode uses running statistics and
/// skips stochastic regularizers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Forward pass that will be followed by `backward` (caches activations).
    Train,
    /// Pure inference.
    Eval,
}

impl Phase {
    /// True in [`Phase::Train`].
    pub fn is_train(self) -> bool {
        matches!(self, Phase::Train)
    }
}

/// Whether a layer's weights are used as stored or binarized to ±1 on the
/// forward pass.
///
/// [`WeightMode::Binary`] implements the BNN training scheme the paper uses
/// (Courbariaux et al.): latent real weights are kept for the optimizer, the
/// forward pass sees `sign(w)`, and the straight-through estimator passes
/// gradients back only where the latent weight has not saturated
/// (`|w| ≤ 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WeightMode {
    /// Full-precision weights.
    #[default]
    Real,
    /// Weights binarized to ±1 with straight-through gradient estimation.
    Binary,
}

impl WeightMode {
    /// True in [`WeightMode::Binary`].
    pub fn is_binary(self) -> bool {
        matches!(self, WeightMode::Binary)
    }
}

/// A differentiable network block.
///
/// Layers operate on batched tensors whose leading dimension is the batch.
/// `forward_with(Phase::Train, …)` must cache whatever `backward_with`
/// needs; `backward_with` consumes the cache, accumulates parameter
/// gradients, and returns the gradient with respect to the layer input.
///
/// Both hot-path methods draw temporary and output buffers from a
/// caller-provided [`Scratch`] arena; the training loop keeps one arena
/// alive across the epoch, so the steady-state pipeline performs no heap
/// allocation per batch. The [`forward`](Layer::forward) /
/// [`backward`](Layer::backward) wrappers spin up a throwaway arena for
/// callers that don't care.
pub trait Layer: fmt::Debug + Send {
    /// Self as [`std::any::Any`], enabling downcasting for model surgery
    /// (e.g. exporting trained binarized layers to the bit-packed inference
    /// engine in `rbnn-binary`).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Computes the layer output for a batched input, drawing buffers from
    /// `scratch`. The returned tensor is owned; when the caller is done
    /// with it, recycling it into the same arena closes the loop.
    fn forward_with(&mut self, x: &Tensor, phase: Phase, scratch: &mut Scratch) -> Tensor;

    /// Propagates the output gradient, accumulating parameter gradients,
    /// drawing buffers from `scratch`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called without a preceding
    /// `forward_with(Phase::Train, …)`.
    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor;

    /// [`backward_with`](Layer::backward_with) for the **root** of a
    /// backward pass: signals that the returned input gradient will not be
    /// consumed, so layers that spend real work producing it (dense and
    /// convolution input-gradient GEMMs, im2col scatters) may skip that
    /// work and return an empty tensor. Containers forward the signal to
    /// their first layer only. The default implementation is a plain
    /// [`backward_with`](Layer::backward_with).
    ///
    /// # Panics
    ///
    /// Panics as [`backward_with`](Layer::backward_with) does.
    fn backward_root_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        self.backward_with(grad_out, scratch)
    }

    /// Computes the layer output for a batched input (convenience wrapper
    /// over [`forward_with`](Layer::forward_with) with a throwaway arena).
    fn forward(&mut self, x: &Tensor, phase: Phase) -> Tensor {
        self.forward_with(x, phase, &mut Scratch::new())
    }

    /// Propagates the output gradient (convenience wrapper over
    /// [`backward_with`](Layer::backward_with) with a throwaway arena).
    ///
    /// # Panics
    ///
    /// Panics as [`backward_with`](Layer::backward_with) does.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_with(grad_out, &mut Scratch::new())
    }

    /// Immutable access to the layer's parameters (possibly empty).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Mutable access to the layer's parameters (possibly empty).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Per-sample output shape for a given per-sample input shape
    /// (batch dimension excluded). Used for model summaries (Tables I–II).
    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize>;

    /// Human-readable layer name for summaries.
    fn name(&self) -> String;

    /// Total scalar parameter count.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Clears all parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_and_mode_predicates() {
        assert!(Phase::Train.is_train());
        assert!(!Phase::Eval.is_train());
        assert!(WeightMode::Binary.is_binary());
        assert!(!WeightMode::Real.is_binary());
        assert_eq!(WeightMode::default(), WeightMode::Real);
    }
}
