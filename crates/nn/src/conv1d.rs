//! 1-D convolution layer (temporal convolution over multichannel signals).

use rand::Rng;

use rbnn_tensor::{im2col1d_batch, im2col1d_batch_backward, Conv1dGeom, Scratch, Tensor};

use crate::{init, Layer, Param, Phase, WeightMode};

/// A 1-D convolution over `[batch, channels, len]` signals (Fig 1 of the
/// paper), lowered to matrix multiplication through `im2col`.
///
/// The weight matrix has shape `[out_channels, in_channels · kernel]`; in
/// [`WeightMode::Binary`] the forward pass uses its sign and the layer trains
/// with the straight-through estimator.
#[derive(Debug)]
pub struct Conv1d {
    weight: Param,
    bias: Option<Param>,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    mode: WeightMode,
    // Persistent training buffers, refreshed in place each batch: the
    // batched patch matrix, the effective weight snapshot and (eval only)
    // the effective-weight staging buffer.
    cached_cols: Tensor,
    cached_geom: Option<Conv1dGeom>,
    cached_eff_w: Tensor,
    eff_w: Tensor,
    cache_valid: bool,
}

impl Conv1d {
    /// Creates a convolution with He-initialized weights and zero bias.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        mode: WeightMode,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = in_channels * kernel;
        let mut weight = Param::new(init::he_normal(&[out_channels, fan_in], fan_in, rng));
        if mode.is_binary() {
            weight = weight.with_clamp(-1.0, 1.0);
        }
        Self {
            weight,
            bias: Some(Param::new(Tensor::zeros([out_channels])).no_decay()),
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            mode,
            cached_cols: Tensor::default(),
            cached_geom: None,
            cached_eff_w: Tensor::default(),
            eff_w: Tensor::default(),
            cache_valid: false,
        }
    }

    /// Removes the bias term (builder style); used before BatchNorm.
    pub fn without_bias(mut self) -> Self {
        self.bias = None;
        self
    }

    /// The weight mode (real or binary).
    pub fn mode(&self) -> WeightMode {
        self.mode
    }

    /// Kernel width.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The weights as seen by the forward pass.
    pub fn effective_weight(&self) -> Tensor {
        match self.mode {
            WeightMode::Real => self.weight.value.clone(),
            WeightMode::Binary => self.weight.value.signum_binary(),
        }
    }

    fn geom(&self, len: usize) -> Conv1dGeom {
        Conv1dGeom::new(
            self.in_channels,
            len,
            self.kernel,
            self.stride,
            self.padding,
        )
    }

    /// Shared backward body; `need_dx` false skips the input-gradient
    /// GEMM and im2col scatter (root of the backward pass).
    fn backward_impl(&mut self, grad_out: &Tensor, scratch: &mut Scratch, need_dx: bool) -> Tensor {
        assert!(
            self.cache_valid,
            "Conv1d::backward called without forward(Phase::Train)"
        );
        self.cache_valid = false;
        let geom = self.cached_geom.take().expect("geometry cache missing");
        let n = grad_out.dim(0);
        let out_len = geom.out_len();

        // Regroup grad_out [n, Co, L] into [Co, n·L] matching cached_cols.
        let mut g_all = scratch.tensor_for_overwrite([self.out_channels, n * out_len]);
        {
            let gs = grad_out.as_slice();
            let gd = g_all.as_mut_slice();
            for i in 0..n {
                for c in 0..self.out_channels {
                    let src = &gs[(i * self.out_channels + c) * out_len..][..out_len];
                    gd[c * n * out_len + i * out_len..c * n * out_len + (i + 1) * out_len]
                        .copy_from_slice(src);
                }
            }
        }

        // dW = G · colsᵀ in one shot.
        let mut grad_w = scratch.tensor_for_overwrite(self.weight.value.shape().clone());
        g_all.matmul_nt_into(&self.cached_cols, &mut grad_w);
        if self.mode.is_binary() {
            self.weight.accumulate_ste_masked(&grad_w);
        } else {
            self.weight.grad += &grad_w;
        }
        scratch.recycle(grad_w);

        if let Some(b) = &mut self.bias {
            let gs = g_all.as_slice();
            let gb = b.grad.as_mut_slice();
            for (c, gbc) in gb.iter_mut().enumerate() {
                *gbc += gs[c * n * out_len..(c + 1) * n * out_len]
                    .iter()
                    .sum::<f32>();
            }
        }

        // dcols = Wᵀ · G, then scatter all samples (parallel, disjoint) —
        // both skipped entirely at the root of the backward pass.
        if !need_dx {
            scratch.recycle(g_all);
            return Tensor::default();
        }
        let rows = geom.patch_rows();
        let mut gcols_all = scratch.tensor_for_overwrite([rows, n * out_len]);
        self.cached_eff_w.matmul_tn_into(&g_all, &mut gcols_all);
        scratch.recycle(g_all);
        let mut grad_x = scratch.tensor_for_overwrite([n, self.in_channels, geom.len]);
        im2col1d_batch_backward(&gcols_all, &geom, &mut grad_x);
        scratch.recycle(gcols_all);
        grad_x
    }
}

impl Layer for Conv1d {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn forward_with(&mut self, x: &Tensor, phase: Phase, scratch: &mut Scratch) -> Tensor {
        assert_eq!(x.shape().ndim(), 3, "Conv1d expects [batch, channels, len]");
        assert_eq!(
            x.dim(1),
            self.in_channels,
            "Conv1d: expected {} channels, got {}",
            self.in_channels,
            x.dim(1)
        );
        let n = x.dim(0);
        let geom = self.geom(x.dim(2));
        let out_len = geom.out_len();
        let rows = geom.patch_rows();
        let train = phase.is_train();

        // Refresh the effective weight in place (sign(W) in binary mode);
        // training writes the buffer the backward pass reads.
        let eff_w: &Tensor = {
            let dst = if train {
                &mut self.cached_eff_w
            } else {
                &mut self.eff_w
            };
            match self.mode {
                WeightMode::Real => dst.copy_from(&self.weight.value),
                WeightMode::Binary => self.weight.value.signum_binary_into(dst),
            }
            if train {
                &self.cached_eff_w
            } else {
                &self.eff_w
            }
        };

        // Batch all patch matrices into one [rows, n·out_len] matrix so the
        // whole batch runs as a single large matmul; training keeps the
        // matrix for the backward pass, eval recycles it immediately.
        let mut eval_cols = None;
        let cols: &Tensor = if train {
            im2col1d_batch(x, &geom, &mut self.cached_cols);
            &self.cached_cols
        } else {
            let mut cols = scratch.tensor_for_overwrite([rows, n * out_len]);
            im2col1d_batch(x, &geom, &mut cols);
            eval_cols.insert(cols)
        };
        let mut y_all = scratch.tensor_for_overwrite([self.out_channels, n * out_len]);
        eff_w.matmul_into(cols, &mut y_all);

        let mut out = scratch.tensor_for_overwrite([n, self.out_channels, out_len]);
        {
            let ys = y_all.as_slice();
            let os = out.as_mut_slice();
            let bias = self.bias.as_ref().map(|b| b.value.as_slice());
            for c in 0..self.out_channels {
                let bv = bias.map_or(0.0, |b| b[c]);
                for i in 0..n {
                    let src = &ys[c * n * out_len + i * out_len..][..out_len];
                    let dst = &mut os[(i * self.out_channels + c) * out_len..][..out_len];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d = s + bv;
                    }
                }
            }
        }
        scratch.recycle(y_all);
        if let Some(cols) = eval_cols {
            scratch.recycle(cols);
        }
        if train {
            self.cached_geom = Some(geom);
            self.cache_valid = true;
        }
        out
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        self.backward_impl(grad_out, scratch, true)
    }

    fn backward_root_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        self.backward_impl(grad_out, scratch, false)
    }
    fn params(&self) -> Vec<&Param> {
        let mut v = vec![&self.weight];
        if let Some(b) = &self.bias {
            v.push(b);
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }

    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        assert_eq!(
            in_shape.len(),
            2,
            "Conv1d expects [channels, len] per sample"
        );
        assert_eq!(in_shape[0], self.in_channels);
        vec![self.out_channels, self.geom(in_shape[1]).out_len()]
    }

    fn name(&self) -> String {
        let tag = if self.mode.is_binary() {
            "BinConv1d"
        } else {
            "Conv1d"
        };
        format!(
            "{tag}({}→{}, k{}, s{}, p{})",
            self.in_channels, self.out_channels, self.kernel, self.stride, self.padding
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_identity_kernel() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv1d::new(1, 1, 1, 1, 0, WeightMode::Real, &mut rng);
        conv.weight.value = Tensor::ones([1, 1]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 1, 3]);
        let y = conv.forward(&x, Phase::Eval);
        assert_eq!(y.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn forward_known_values() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv1d::new(1, 1, 2, 1, 0, WeightMode::Real, &mut rng);
        conv.weight.value = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]);
        conv.bias.as_mut().unwrap().value = Tensor::from_vec(vec![10.0], &[1]);
        let x = Tensor::from_vec(vec![3.0, 5.0, 4.0], &[1, 1, 3]);
        let y = conv.forward(&x, Phase::Eval);
        // window [3,5]: 3−5 = −2 ; window [5,4]: 5−4 = 1 ; plus bias 10
        assert_eq!(y.as_slice(), &[8.0, 11.0]);
    }

    #[test]
    fn table2_first_layer_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv1d::new(12, 32, 13, 1, 0, WeightMode::Real, &mut rng);
        // Paper Table II: 750-sample, 12-lead ECG → 738×1×32.
        assert_eq!(conv.out_shape(&[12, 750]), vec![32, 738]);
    }

    #[test]
    fn binary_mode_signs_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv1d::new(1, 1, 2, 1, 0, WeightMode::Binary, &mut rng);
        conv.weight.value = Tensor::from_vec(vec![0.2, -0.9], &[1, 2]);
        let x = Tensor::from_vec(vec![2.0, 6.0], &[1, 1, 2]);
        let y = conv.forward(&x, Phase::Eval);
        // sign: [+1, −1] → 2 − 6 = −4
        assert_eq!(y.as_slice(), &[-4.0]);
    }

    #[test]
    fn backward_produces_input_grad_of_right_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv1d::new(3, 5, 4, 2, 1, WeightMode::Real, &mut rng);
        let x = Tensor::randn([2, 3, 12], 1.0, &mut rng);
        let y = conv.forward(&x, Phase::Train);
        let gx = conv.backward(&Tensor::ones(y.shape().clone()));
        assert_eq!(gx.dims(), x.dims());
        assert!(conv.weight.grad.norm_sq() > 0.0);
    }

    #[test]
    fn bias_grad_is_sum_over_time_and_batch() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv1d::new(1, 2, 1, 1, 0, WeightMode::Real, &mut rng);
        let x = Tensor::ones([3, 1, 4]);
        let y = conv.forward(&x, Phase::Train);
        let _ = conv.backward(&Tensor::ones(y.shape().clone()));
        // 3 samples × 4 time steps of unit gradient per channel.
        assert_eq!(conv.bias.as_ref().unwrap().grad.as_slice(), &[12.0, 12.0]);
    }
}
