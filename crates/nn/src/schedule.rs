//! Learning-rate schedules.
//!
//! The paper trains its medical models for 1000 epochs with Adam and
//! MobileNet for 255 epochs with SGD — budgets at which a decaying learning
//! rate matters. These schedules compute the rate for an epoch; the training
//! loop applies it via [`Optimizer::set_learning_rate`](crate::Optimizer::set_learning_rate).

/// A learning-rate schedule: a map from epoch index to learning rate.
#[derive(Debug, Clone, PartialEq)]
pub enum LrSchedule {
    /// A constant rate.
    Constant {
        /// The rate used for every epoch.
        lr: f32,
    },
    /// Multiply the rate by `gamma` every `step` epochs.
    StepDecay {
        /// Initial rate.
        lr: f32,
        /// Epochs between decays.
        step: usize,
        /// Multiplicative factor per decay (0 < γ ≤ 1).
        gamma: f32,
    },
    /// Cosine annealing from `lr` down to `min_lr` over `total` epochs.
    Cosine {
        /// Initial (maximum) rate.
        lr: f32,
        /// Final (minimum) rate.
        min_lr: f32,
        /// Schedule length in epochs.
        total: usize,
    },
}

impl LrSchedule {
    /// The learning rate for `epoch` (0-based).
    pub fn rate(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::StepDecay { lr, step, gamma } => {
                lr * gamma.powi((epoch / step.max(1)) as i32)
            }
            LrSchedule::Cosine { lr, min_lr, total } => {
                if total <= 1 {
                    return min_lr;
                }
                let progress = (epoch.min(total - 1)) as f32 / (total - 1) as f32;
                min_lr + 0.5 * (lr - min_lr) * (1.0 + (std::f32::consts::PI * progress).cos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.01 };
        assert_eq!(s.rate(0), 0.01);
        assert_eq!(s.rate(999), 0.01);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay {
            lr: 0.1,
            step: 10,
            gamma: 0.5,
        };
        assert_eq!(s.rate(0), 0.1);
        assert_eq!(s.rate(9), 0.1);
        assert!((s.rate(10) - 0.05).abs() < 1e-7);
        assert!((s.rate(25) - 0.025).abs() < 1e-7);
    }

    #[test]
    fn cosine_endpoints_and_monotonicity() {
        let s = LrSchedule::Cosine {
            lr: 0.1,
            min_lr: 0.001,
            total: 100,
        };
        assert!((s.rate(0) - 0.1).abs() < 1e-6);
        assert!((s.rate(99) - 0.001).abs() < 1e-6);
        // Monotone decreasing over the schedule.
        for e in 1..100 {
            assert!(s.rate(e) <= s.rate(e - 1) + 1e-7, "rose at epoch {e}");
        }
        // Clamped beyond the end.
        assert!((s.rate(500) - 0.001).abs() < 1e-6);
    }

    #[test]
    fn degenerate_cosine() {
        let s = LrSchedule::Cosine {
            lr: 0.1,
            min_lr: 0.01,
            total: 1,
        };
        assert_eq!(s.rate(0), 0.01);
    }
}
