//! Activation layers: ReLU, HardTanh and the binarizing sign activation.
//!
//! The paper uses ReLU (EEG model) or hardtanh (ECG model) in the real-weight
//! networks and replaces them with `sign` in the binarized setting (§III).
//! The sign activation trains with the straight-through estimator: gradients
//! pass where `|x| ≤ 1` and are blocked outside, exactly the hardtanh
//! derivative.

use rbnn_tensor::{Scratch, Tensor};

use crate::{Layer, Phase};

/// Which pointwise nonlinearity an [`Activation`] layer applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivationKind {
    /// `max(0, x)`.
    Relu,
    /// `clamp(x, −1, 1)`.
    HardTanh,
    /// `sign(x) ∈ {−1, +1}` with straight-through gradient (BNN activation).
    SignSte,
}

/// A stateless pointwise activation layer.
///
/// ```
/// use rbnn_nn::{Activation, ActivationKind, Layer, Phase};
/// use rbnn_tensor::Tensor;
///
/// let mut act = Activation::new(ActivationKind::SignSte);
/// let y = act.forward(&Tensor::from_vec(vec![-0.3, 0.0, 2.5], &[1, 3]), Phase::Eval);
/// assert_eq!(y.as_slice(), &[-1.0, 1.0, 1.0]);
/// ```
#[derive(Debug)]
pub struct Activation {
    kind: ActivationKind,
    cached_input: Tensor,
    cache_valid: bool,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Self {
            kind,
            cached_input: Tensor::default(),
            cache_valid: false,
        }
    }

    /// Convenience constructor for ReLU.
    pub fn relu() -> Self {
        Self::new(ActivationKind::Relu)
    }

    /// Convenience constructor for hardtanh.
    pub fn hardtanh() -> Self {
        Self::new(ActivationKind::HardTanh)
    }

    /// Convenience constructor for the BNN sign activation.
    pub fn sign_ste() -> Self {
        Self::new(ActivationKind::SignSte)
    }

    /// The activation kind.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }
}

impl Layer for Activation {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn forward_with(&mut self, x: &Tensor, phase: Phase, scratch: &mut Scratch) -> Tensor {
        if phase.is_train() {
            self.cached_input.copy_from(x);
            self.cache_valid = true;
        }
        let mut y = scratch.tensor_for_overwrite(x.shape().clone());
        let f: fn(f32) -> f32 = match self.kind {
            ActivationKind::Relu => |v| v.max(0.0),
            ActivationKind::HardTanh => |v| v.clamp(-1.0, 1.0),
            ActivationKind::SignSte => |v| if v >= 0.0 { 1.0 } else { -1.0 },
        };
        for (d, &v) in y.as_mut_slice().iter_mut().zip(x.as_slice()) {
            *d = f(v);
        }
        y
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        assert!(
            self.cache_valid,
            "Activation::backward called without forward(Phase::Train)"
        );
        self.cache_valid = false;
        let mut gx = scratch.tensor_for_overwrite(grad_out.shape().clone());
        let pass: fn(f32) -> bool = match self.kind {
            ActivationKind::Relu => |xi| xi > 0.0,
            // HardTanh and SignSte share the straight-through window |x| ≤ 1.
            ActivationKind::HardTanh | ActivationKind::SignSte => |xi| xi.abs() <= 1.0,
        };
        for ((d, &xi), &g) in gx
            .as_mut_slice()
            .iter_mut()
            .zip(self.cached_input.as_slice())
            .zip(grad_out.as_slice())
        {
            *d = if pass(xi) { g } else { 0.0 };
        }
        gx
    }

    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        in_shape.to_vec()
    }

    fn name(&self) -> String {
        match self.kind {
            ActivationKind::Relu => "ReLU".into(),
            ActivationKind::HardTanh => "HardTanh".into(),
            ActivationKind::SignSte => "Sign".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut a = Activation::relu();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[1, 3]);
        let y = a.forward(&x, Phase::Train);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
        let g = a.backward(&Tensor::ones([1, 3]));
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn hardtanh_clamps_and_gates_gradient() {
        let mut a = Activation::hardtanh();
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.5, 2.0], &[1, 4]);
        let y = a.forward(&x, Phase::Train);
        assert_eq!(y.as_slice(), &[-1.0, -0.5, 0.5, 1.0]);
        let g = a.backward(&Tensor::ones([1, 4]));
        assert_eq!(g.as_slice(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn sign_ste_outputs_pm1_and_uses_hardtanh_grad() {
        let mut a = Activation::sign_ste();
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 2.0], &[1, 4]);
        let y = a.forward(&x, Phase::Train);
        assert_eq!(y.as_slice(), &[-1.0, -1.0, 1.0, 1.0]);
        let g = a.backward(&Tensor::full([1, 4], 3.0));
        assert_eq!(g.as_slice(), &[0.0, 3.0, 3.0, 0.0]);
    }

    #[test]
    fn eval_phase_does_not_cache() {
        let mut a = Activation::relu();
        let _ = a.forward(&Tensor::ones([1, 2]), Phase::Eval);
        assert!(!a.cache_valid);
    }

    #[test]
    #[should_panic(expected = "without forward")]
    fn backward_without_forward_panics() {
        let mut a = Activation::relu();
        let _ = a.backward(&Tensor::ones([1, 2]));
    }

    #[test]
    fn shape_passthrough_and_names() {
        let a = Activation::sign_ste();
        assert_eq!(a.out_shape(&[40, 961, 1]), vec![40, 961, 1]);
        assert_eq!(a.name(), "Sign");
        assert_eq!(a.param_count(), 0);
    }
}
