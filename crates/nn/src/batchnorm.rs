//! Batch normalization over the channel axis.
//!
//! BatchNorm is load-bearing for BNNs: in the binarized setting the learned
//! affine transform before each `sign` activation *is* the neuron threshold
//! `b` of Eq. 3, and at deployment time `rbnn-binary` folds it into an
//! integer popcount threshold. The paper's ECG model batch-normalizes after
//! every convolution/linear layer (§III-B).

use rbnn_tensor::{Scratch, Tensor};

use crate::{Layer, Param, Phase};

/// Batch normalization for `[N, C]`, `[N, C, L]` or `[N, C, H, W]` tensors,
/// normalizing each channel over the batch and all spatial positions.
#[derive(Debug)]
pub struct BatchNorm {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    channels: usize,
    momentum: f32,
    eps: f32,
    // Backward cache (persistent buffers, refreshed in place each batch).
    cached_xhat: Tensor,
    cached_inv_std: Vec<f32>,
    cached_dims: Vec<usize>,
    cache_valid: bool,
}

impl BatchNorm {
    /// Creates a BatchNorm layer for `channels` channels with momentum 0.1
    /// and epsilon 1e−5 (the conventional defaults).
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::ones([channels])).no_decay(),
            beta: Param::new(Tensor::zeros([channels])).no_decay(),
            running_mean: Tensor::zeros([channels]),
            running_var: Tensor::ones([channels]),
            channels,
            momentum: 0.1,
            eps: 1e-5,
            cached_xhat: Tensor::default(),
            cached_inv_std: Vec::new(),
            cached_dims: Vec::new(),
            cache_valid: false,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The numerical-stability epsilon.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Inference-time affine coefficients `(scale, shift)` per channel such
    /// that `y = scale · x + shift`. This is what gets folded into integer
    /// thresholds when deploying a BNN (see `rbnn-binary`).
    pub fn inference_coefficients(&self) -> (Vec<f32>, Vec<f32>) {
        let g = self.gamma.value.as_slice();
        let b = self.beta.value.as_slice();
        let m = self.running_mean.as_slice();
        let v = self.running_var.as_slice();
        let mut scale = Vec::with_capacity(self.channels);
        let mut shift = Vec::with_capacity(self.channels);
        for c in 0..self.channels {
            let s = g[c] / (v[c] + self.eps).sqrt();
            scale.push(s);
            shift.push(b[c] - s * m[c]);
        }
        (scale, shift)
    }

    /// Overrides the running statistics (used by tests and model surgery).
    ///
    /// # Panics
    ///
    /// Panics if the vectors are not `channels` long.
    pub fn set_running_stats(&mut self, mean: Vec<f32>, var: Vec<f32>) {
        assert_eq!(mean.len(), self.channels);
        assert_eq!(var.len(), self.channels);
        self.running_mean = Tensor::from_vec(mean, [self.channels]);
        self.running_var = Tensor::from_vec(var, [self.channels]);
    }

    /// `(N, C, S)` view dimensions of an input tensor: batch, channels,
    /// spatial positions per channel.
    fn view_dims(&self, x: &Tensor) -> (usize, usize, usize) {
        let dims = x.dims();
        assert!(
            (2..=4).contains(&dims.len()),
            "BatchNorm expects [N,C], [N,C,L] or [N,C,H,W], got {:?}",
            dims
        );
        let n = dims[0];
        let c = dims[1];
        assert_eq!(c, self.channels, "BatchNorm: channel mismatch");
        let s: usize = dims[2..].iter().product();
        (n, c, s.max(1))
    }
}

impl Layer for BatchNorm {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn forward_with(&mut self, x: &Tensor, phase: Phase, scratch: &mut Scratch) -> Tensor {
        let (n, c, s) = self.view_dims(x);
        let xs = x.as_slice();
        let mut out = scratch.tensor_for_overwrite(x.shape().clone());
        let os = out.as_mut_slice();
        let g = self.gamma.value.as_slice();
        let b = self.beta.value.as_slice();

        if phase.is_train() {
            let count = (n * s) as f32;
            self.cached_xhat.resize_for_overwrite(x.shape().clone());
            let xh = self.cached_xhat.as_mut_slice();
            let inv_stds = &mut self.cached_inv_std;
            inv_stds.clear();
            inv_stds.reserve(c);
            for ch in 0..c {
                let mut mean = 0.0f32;
                for i in 0..n {
                    let base = (i * c + ch) * s;
                    mean += xs[base..base + s].iter().sum::<f32>();
                }
                mean /= count;
                let mut var = 0.0f32;
                for i in 0..n {
                    let base = (i * c + ch) * s;
                    var += xs[base..base + s]
                        .iter()
                        .map(|&v| (v - mean) * (v - mean))
                        .sum::<f32>();
                }
                var /= count;
                let inv_std = 1.0 / (var + self.eps).sqrt();
                inv_stds.push(inv_std);
                for i in 0..n {
                    let base = (i * c + ch) * s;
                    for t in 0..s {
                        let h = (xs[base + t] - mean) * inv_std;
                        xh[base + t] = h;
                        os[base + t] = g[ch] * h + b[ch];
                    }
                }
                // Exponential running statistics.
                let rm = &mut self.running_mean.as_mut_slice()[ch];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * mean;
                let rv = &mut self.running_var.as_mut_slice()[ch];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * var;
            }
            self.cached_dims.clear();
            self.cached_dims.extend_from_slice(x.dims());
            self.cache_valid = true;
        } else {
            let m = self.running_mean.as_slice();
            let v = self.running_var.as_slice();
            for ch in 0..c {
                let inv_std = 1.0 / (v[ch] + self.eps).sqrt();
                for i in 0..n {
                    let base = (i * c + ch) * s;
                    for t in 0..s {
                        os[base + t] = g[ch] * (xs[base + t] - m[ch]) * inv_std + b[ch];
                    }
                }
            }
        }
        out
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        assert!(
            self.cache_valid,
            "BatchNorm::backward called without forward(Phase::Train)"
        );
        self.cache_valid = false;
        let inv_stds = &self.cached_inv_std;
        let dims = &self.cached_dims;
        let n = dims[0];
        let c = dims[1];
        let s: usize = dims[2..].iter().product::<usize>().max(1);
        let count = (n * s) as f32;

        let gs = grad_out.as_slice();
        let xh = self.cached_xhat.as_slice();
        let g = self.gamma.value.as_slice();

        let mut grad_x = scratch.tensor_for_overwrite(grad_out.shape().clone());
        let gx = grad_x.as_mut_slice();
        for ch in 0..c {
            // Accumulate dγ, dβ and the two batch statistics the input
            // gradient needs.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for i in 0..n {
                let base = (i * c + ch) * s;
                for t in 0..s {
                    let dy = gs[base + t];
                    sum_dy += dy;
                    sum_dy_xhat += dy * xh[base + t];
                }
            }
            self.beta.grad.as_mut_slice()[ch] += sum_dy;
            self.gamma.grad.as_mut_slice()[ch] += sum_dy_xhat;

            let k = g[ch] * inv_stds[ch];
            let mean_dy = sum_dy / count;
            let mean_dy_xhat = sum_dy_xhat / count;
            for i in 0..n {
                let base = (i * c + ch) * s;
                for t in 0..s {
                    gx[base + t] = k * (gs[base + t] - mean_dy - xh[base + t] * mean_dy_xhat);
                }
            }
        }
        grad_x
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        in_shape.to_vec()
    }

    fn name(&self) -> String {
        format!("BatchNorm({})", self.channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalizes_batch_to_zero_mean_unit_var() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut bn = BatchNorm::new(3);
        let x = Tensor::randn([16, 3, 7], 2.0, &mut rng);
        let y = bn.forward(&x, Phase::Train);
        // Per channel: mean ≈ 0, var ≈ 1.
        let (n, c, s) = (16, 3, 7);
        let ys = y.as_slice();
        for ch in 0..c {
            let mut vals = Vec::new();
            for i in 0..n {
                let base = (i * c + ch) * s;
                vals.extend_from_slice(&ys[base..base + s]);
            }
            let t = Tensor::from_vec(vals, [n * s]);
            assert!(t.mean().abs() < 1e-4, "channel {ch} mean {}", t.mean());
            assert!(
                (t.variance() - 1.0).abs() < 1e-2,
                "channel {ch} var {}",
                t.variance()
            );
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm::new(1);
        bn.set_running_stats(vec![10.0], vec![4.0]);
        let x = Tensor::from_vec(vec![10.0, 12.0], &[2, 1]);
        let y = bn.forward(&x, Phase::Eval);
        // (10−10)/2 = 0, (12−10)/2 ≈ 1.
        assert!((y.as_slice()[0] - 0.0).abs() < 1e-3);
        assert!((y.as_slice()[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn inference_coefficients_match_eval_forward() {
        let mut bn = BatchNorm::new(2);
        bn.set_running_stats(vec![1.0, -2.0], vec![4.0, 0.25]);
        bn.gamma.value = Tensor::from_vec(vec![2.0, -1.0], &[2]);
        bn.beta.value = Tensor::from_vec(vec![0.5, 1.0], &[2]);
        let (scale, shift) = bn.inference_coefficients();
        let x = Tensor::from_vec(vec![3.0, 7.0], &[1, 2]);
        let y = bn.forward(&x, Phase::Eval);
        for ch in 0..2 {
            let expect = scale[ch] * x.as_slice()[ch] + shift[ch];
            assert!(
                (y.as_slice()[ch] - expect).abs() < 1e-4,
                "channel {ch}: {} vs {}",
                y.as_slice()[ch],
                expect
            );
        }
    }

    #[test]
    fn running_stats_converge_to_data_statistics() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut bn = BatchNorm::new(1);
        for _ in 0..200 {
            let x = &Tensor::randn([32, 1], 1.0, &mut rng) + 5.0;
            let _ = bn.forward(&x, Phase::Train);
        }
        let m = bn.running_mean.as_slice()[0];
        let v = bn.running_var.as_slice()[0];
        assert!((m - 5.0).abs() < 0.2, "running mean {m}");
        assert!((v - 1.0).abs() < 0.3, "running var {v}");
    }

    #[test]
    fn backward_gradient_sums() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut bn = BatchNorm::new(2);
        let x = Tensor::randn([8, 2, 3], 1.0, &mut rng);
        let _ = bn.forward(&x, Phase::Train);
        let gx = bn.backward(&Tensor::ones([8, 2, 3]));
        assert_eq!(gx.dims(), &[8, 2, 3]);
        // β gradient is the plain sum of output gradients: 8·3 per channel.
        assert_eq!(bn.beta.grad.as_slice(), &[24.0, 24.0]);
        // Input gradient of BN under constant dy is ~0 (dy − mean(dy) = 0).
        assert!(
            gx.norm_sq() < 1e-6,
            "constant grad should vanish, got {}",
            gx.norm_sq()
        );
    }

    #[test]
    fn works_on_2d_feature_input() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut bn = BatchNorm::new(5);
        let x = Tensor::randn([10, 5], 1.0, &mut rng);
        let y = bn.forward(&x, Phase::Train);
        assert_eq!(y.dims(), &[10, 5]);
        let gx = bn.backward(&Tensor::randn([10, 5], 1.0, &mut rng));
        assert_eq!(gx.dims(), &[10, 5]);
    }
}
