//! Finite-difference gradient checking for layers.
//!
//! Exposed as a public module so every layer implementation in this crate —
//! and any downstream custom layer — can be validated against central
//! finite differences with one call. Used extensively by this crate's own
//! test-suite.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rbnn_tensor::Tensor;

use crate::{Layer, Phase};

/// Result of one gradient check: the largest absolute deviation between the
/// analytic and numeric derivative, separately for the input and for each
/// parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Max |analytic − numeric| over input coordinates.
    pub max_input_err: f32,
    /// Max |analytic − numeric| per parameter tensor.
    pub max_param_errs: Vec<f32>,
}

impl GradCheckReport {
    /// The largest error anywhere.
    pub fn worst(&self) -> f32 {
        self.max_param_errs
            .iter()
            .copied()
            .fold(self.max_input_err, f32::max)
    }
}

/// Checks a layer's analytic gradients against central finite differences.
///
/// The scalar objective is `L = Σ r ⊙ layer(x)` for a fixed random
/// coefficient tensor `r`, so `∂L/∂y = r` is fed to `backward`. Uses `eps`
/// for the symmetric difference. Numeric probes run in [`Phase::Train`] so
/// layers whose train- and eval-time functions differ (BatchNorm) are
/// checked against the function the analytic gradient belongs to; the only
/// train-phase side effects (running-statistics updates) do not influence
/// the probed output. Stochastic layers (dropout) cannot be checked this
/// way; check deterministic layers only.
///
/// # Panics
///
/// Panics if the layer mutates shapes between identical forward calls.
pub fn check_layer(
    layer: &mut dyn Layer,
    input_dims: &[usize],
    eps: f32,
    seed: u64,
) -> GradCheckReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = Tensor::randn(input_dims, 1.0, &mut rng);

    // Reference forward to size the coefficient tensor.
    let y0 = layer.forward(&x, Phase::Train);
    let r = Tensor::randn(y0.shape().clone(), 1.0, &mut rng);

    // Analytic pass.
    layer.zero_grad();
    let _ = layer.forward(&x, Phase::Train);
    let gx = layer.backward(&r);
    let analytic_param_grads: Vec<Tensor> = layer.params().iter().map(|p| p.grad.clone()).collect();

    // Numeric input gradient.
    let mut max_input_err = 0.0f32;
    let mut xp = x.clone();
    for i in 0..x.numel() {
        let orig = xp.as_slice()[i];
        xp.as_mut_slice()[i] = orig + eps;
        let fp = layer.forward(&xp, Phase::Train).dot(&r);
        xp.as_mut_slice()[i] = orig - eps;
        let fm = layer.forward(&xp, Phase::Train).dot(&r);
        xp.as_mut_slice()[i] = orig;
        let numeric = (fp - fm) / (2.0 * eps);
        max_input_err = max_input_err.max((numeric - gx.as_slice()[i]).abs());
    }

    // Numeric parameter gradients, one parameter tensor at a time.
    let n_params = analytic_param_grads.len();
    let mut max_param_errs = Vec::with_capacity(n_params);
    for pi in 0..n_params {
        let numel = layer.params()[pi].numel();
        let mut worst = 0.0f32;
        for j in 0..numel {
            let orig = layer.params()[pi].value.as_slice()[j];
            layer.params_mut()[pi].value.as_mut_slice()[j] = orig + eps;
            let fp = layer.forward(&x, Phase::Train).dot(&r);
            layer.params_mut()[pi].value.as_mut_slice()[j] = orig - eps;
            let fm = layer.forward(&x, Phase::Train).dot(&r);
            layer.params_mut()[pi].value.as_mut_slice()[j] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            worst = worst.max((numeric - analytic_param_grads[pi].as_slice()[j]).abs());
        }
        max_param_errs.push(worst);
    }

    GradCheckReport {
        max_input_err,
        max_param_errs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        Activation, BatchNorm, Conv1d, Conv2d, Dense, DepthwiseConv2d, Flatten, GlobalAvgPool2d,
        Pool1d, Pool2d, PoolKind, WeightMode,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EPS: f32 = 5e-3;
    const TOL: f32 = 2e-2;

    #[test]
    fn dense_real_gradients() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(6, 4, WeightMode::Real, &mut rng);
        let report = check_layer(&mut layer, &[3, 6], EPS, 1);
        assert!(report.worst() < TOL, "worst err {}", report.worst());
    }

    #[test]
    fn conv1d_real_gradients() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Conv1d::new(2, 3, 4, 2, 1, WeightMode::Real, &mut rng);
        let report = check_layer(&mut layer, &[2, 2, 11], EPS, 3);
        assert!(report.worst() < TOL, "worst err {}", report.worst());
    }

    #[test]
    fn conv2d_real_gradients() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = Conv2d::new(2, 3, (3, 2), (2, 1), (1, 0), WeightMode::Real, &mut rng);
        let report = check_layer(&mut layer, &[2, 2, 7, 5], EPS, 5);
        assert!(report.worst() < TOL, "worst err {}", report.worst());
    }

    #[test]
    fn depthwise_conv2d_gradients() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut layer = DepthwiseConv2d::new(3, (3, 3), (1, 1), (1, 1), WeightMode::Real, &mut rng);
        let report = check_layer(&mut layer, &[2, 3, 5, 5], EPS, 7);
        assert!(report.worst() < TOL, "worst err {}", report.worst());
    }

    #[test]
    fn batchnorm_gradients() {
        let mut layer = BatchNorm::new(3);
        let report = check_layer(&mut layer, &[8, 3, 4], EPS, 9);
        assert!(report.worst() < TOL, "worst err {}", report.worst());
    }

    #[test]
    fn activation_gradients() {
        for kind in [crate::ActivationKind::Relu, crate::ActivationKind::HardTanh] {
            let mut layer = Activation::new(kind);
            let report = check_layer(&mut layer, &[4, 6], 1e-3, 10);
            // Kinks make isolated coordinates unreliable; the vast majority
            // must match. Use a slightly looser tolerance.
            assert!(
                report.worst() < 0.6,
                "{kind:?} worst err {}",
                report.worst()
            );
        }
    }

    #[test]
    fn pooling_gradients() {
        let mut p1 = Pool1d::new(PoolKind::Avg, 3, 2);
        let r1 = check_layer(&mut p1, &[2, 2, 9], EPS, 11);
        assert!(r1.worst() < TOL, "avg pool1d err {}", r1.worst());

        let mut p2 = Pool2d::new(PoolKind::Avg, (2, 2), (2, 2));
        let r2 = check_layer(&mut p2, &[2, 2, 4, 4], EPS, 12);
        assert!(r2.worst() < TOL, "avg pool2d err {}", r2.worst());

        let mut g = GlobalAvgPool2d::new();
        let r3 = check_layer(&mut g, &[2, 3, 4, 4], EPS, 13);
        assert!(r3.worst() < TOL, "gap err {}", r3.worst());
    }

    #[test]
    fn max_pool_gradients() {
        // Max pooling is piecewise linear; random inputs rarely sit on ties.
        let mut p = Pool1d::max(2);
        let r = check_layer(&mut p, &[2, 2, 8], 1e-3, 14);
        assert!(r.worst() < 0.1, "max pool err {}", r.worst());
    }

    #[test]
    fn flatten_gradients() {
        let mut f = Flatten::new();
        let r = check_layer(&mut f, &[3, 2, 4], EPS, 15);
        assert!(r.worst() < 1e-3, "flatten err {}", r.worst());
    }

    #[test]
    fn dropout_gradients() {
        // Stochastic masks cannot be finite-differenced, but keep = 1 is
        // the deterministic identity limit and must check exactly — this
        // pins the layer's gradient plumbing (mask bookkeeping, scratch
        // buffers) without the randomness.
        let mut d = crate::Dropout::new(1.0, 0);
        let r = check_layer(&mut d, &[4, 9], EPS, 16);
        assert!(r.worst() < 1e-3, "dropout err {}", r.worst());
    }

    #[test]
    fn sequential_gradients() {
        // The container must chain forward caches and backward gradients
        // correctly across a mixed real/binary stack.
        let mut rng = StdRng::seed_from_u64(16);
        let mut seq = crate::Sequential::new();
        seq.push(Dense::new(5, 7, WeightMode::Real, &mut rng));
        seq.push(Activation::new(crate::ActivationKind::HardTanh));
        seq.push(BatchNorm::new(7));
        seq.push(Dense::new(7, 3, WeightMode::Real, &mut rng));
        let r = check_layer(&mut seq, &[4, 5], EPS, 17);
        assert!(r.worst() < TOL, "sequential err {}", r.worst());
    }

    #[test]
    fn split_model_gradients() {
        // SplitModel chains a conv feature section into a dense
        // classifier; both sections' parameter gradients must survive the
        // boundary.
        let mut rng = StdRng::seed_from_u64(18);
        let mut features = crate::Sequential::new();
        features.push(Conv1d::new(2, 3, 3, 1, 0, WeightMode::Real, &mut rng));
        features.push(Activation::new(crate::ActivationKind::HardTanh));
        features.push(Flatten::new());
        let mut classifier = crate::Sequential::new();
        classifier.push(Dense::new(3 * 5, 2, WeightMode::Real, &mut rng));
        let mut model = crate::SplitModel::new(features, classifier);
        let r = check_layer(&mut model, &[2, 2, 7], EPS, 19);
        assert!(r.worst() < TOL, "split model err {}", r.worst());
    }

    /// `backward_root_with` may skip producing the input gradient (nothing
    /// consumes it at the root of a fit step) but must accumulate
    /// parameter gradients *bitwise* identical to the full backward pass —
    /// this is what lets the training loop use it blindly.
    #[test]
    fn backward_root_param_gradients_match_full_backward() {
        use rbnn_tensor::Scratch;

        let build = || {
            let mut rng = StdRng::seed_from_u64(20);
            let mut features = crate::Sequential::new();
            features.push(Conv1d::new(2, 4, 3, 1, 1, WeightMode::Real, &mut rng));
            features.push(BatchNorm::new(4));
            features.push(Activation::new(crate::ActivationKind::Relu));
            features.push(Flatten::new());
            let mut classifier = crate::Sequential::new();
            classifier.push(Dense::new(4 * 9, 6, WeightMode::Binary, &mut rng).without_bias());
            classifier.push(BatchNorm::new(6));
            classifier.push(Dense::new(6, 3, WeightMode::Real, &mut rng));
            crate::SplitModel::new(features, classifier)
        };
        let mut rng = StdRng::seed_from_u64(21);
        let x = rbnn_tensor::Tensor::randn([5, 2, 9], 1.0, &mut rng);
        let grad = rbnn_tensor::Tensor::randn([5, 3], 1.0, &mut rng);

        let mut full = build();
        let mut root = build();
        let mut scratch = Scratch::new();
        full.zero_grad();
        let _ = full.forward_with(&x, Phase::Train, &mut scratch);
        let _ = full.backward_with(&grad, &mut scratch);
        root.zero_grad();
        let _ = root.forward_with(&x, Phase::Train, &mut scratch);
        let _ = root.backward_with(&grad, &mut scratch);
        // Second pass through each path so caches are warm in both.
        full.zero_grad();
        let _ = full.forward_with(&x, Phase::Train, &mut scratch);
        let gx = full.backward_with(&grad, &mut scratch);
        assert_eq!(gx.dims(), &[5, 2, 9], "full pass returns input gradient");
        root.zero_grad();
        let _ = root.forward_with(&x, Phase::Train, &mut scratch);
        let _ = root.backward_root_with(&grad, &mut scratch);

        let full_params = full.params();
        let root_params = root.params();
        assert_eq!(full_params.len(), root_params.len());
        assert!(!full_params.is_empty());
        for (i, (a, b)) in full_params.iter().zip(&root_params).enumerate() {
            let ga: Vec<u32> = a.grad.as_slice().iter().map(|v| v.to_bits()).collect();
            let gb: Vec<u32> = b.grad.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(ga, gb, "param {i} gradient diverged under root backward");
        }
    }
}
