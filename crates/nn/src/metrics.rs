//! Classification metrics: accuracy, top-k accuracy, confusion matrices.

use rbnn_tensor::Tensor;

/// Fraction of samples whose argmax logit equals the label.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    top_k_accuracy(logits, labels, 1)
}

/// Fraction of samples whose label is among the `k` highest logits
/// (the paper reports Top-1 and Top-5 for ImageNet/MobileNet).
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size or `k == 0`.
pub fn top_k_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> f32 {
    assert!(k >= 1, "k must be at least 1");
    assert_eq!(logits.shape().ndim(), 2, "expected [batch, classes] logits");
    let (n, c) = (logits.dim(0), logits.dim(1));
    assert_eq!(labels.len(), n, "label count mismatch");
    if n == 0 {
        return 0.0;
    }
    let ls = logits.as_slice();
    let mut hits = 0usize;
    for (i, &y) in labels.iter().enumerate() {
        let row = &ls[i * c..(i + 1) * c];
        let target = row[y];
        // Rank = number of classes with a strictly larger logit.
        let rank = row.iter().filter(|&&v| v > target).count();
        if rank < k {
            hits += 1;
        }
    }
    hits as f32 / n as f32
}

/// A square confusion matrix accumulated over predictions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    pub fn new(classes: usize) -> Self {
        Self {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one `(true label, predicted label)` pair.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(
            truth < self.classes && predicted < self.classes,
            "class out of range"
        );
        self.counts[truth * self.classes + predicted] += 1;
    }

    /// Records a whole batch from logits.
    pub fn record_logits(&mut self, logits: &Tensor, labels: &[usize]) {
        let (n, c) = (logits.dim(0), logits.dim(1));
        assert_eq!(labels.len(), n);
        let ls = logits.as_slice();
        for (i, &y) in labels.iter().enumerate() {
            let row = &ls[i * c..(i + 1) * c];
            let mut best = 0;
            for j in 1..c {
                if row[j] > row[best] {
                    best = j;
                }
            }
            self.record(y, best);
        }
    }

    /// Count at `(truth, predicted)`.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.classes + predicted]
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (diagonal mass / total), 0 when empty.
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.classes).map(|i| self.count(i, i)).sum();
        diag as f32 / total as f32
    }
}

/// Mean and sample standard deviation of a slice (used to report the
/// cross-validated accuracies of Table III with error bars).
pub fn mean_std(values: &[f32]) -> (f32, f32) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f32>() / values.len() as f32;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var =
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / (values.len() - 1) as f32;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]);
        assert_eq!(accuracy(&logits, &[0, 1, 1]), 2.0 / 3.0);
    }

    #[test]
    fn top_k_is_monotone_in_k() {
        let logits = Tensor::from_vec(vec![3.0, 2.0, 1.0, 0.0, 0.0, 1.0, 2.0, 3.0], &[2, 4]);
        let labels = [2usize, 0];
        let a1 = top_k_accuracy(&logits, &labels, 1);
        let a2 = top_k_accuracy(&logits, &labels, 2);
        let a4 = top_k_accuracy(&logits, &labels, 4);
        assert!(a1 <= a2 && a2 <= a4);
        assert_eq!(a4, 1.0);
        assert_eq!(a1, 0.0);
        // label 2 in row 0 has rank 2 → counted at k=3; label 0 in row 1 has
        // rank 3 → only at k=4.
        assert_eq!(top_k_accuracy(&logits, &labels, 3), 0.5);
    }

    #[test]
    fn confusion_matrix_accumulates() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        assert_eq!(cm.total(), 3);
        assert_eq!(cm.count(0, 1), 1);
        assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn confusion_from_logits() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let mut cm = ConfusionMatrix::new(2);
        cm.record_logits(&logits, &[0, 0]);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
    }

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-6);
        assert!((s - 2.138).abs() < 0.01);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[3.0]), (3.0, 0.0));
    }
}
