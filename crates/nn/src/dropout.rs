//! Inverted dropout regularization.
//!
//! The paper's ECG model uses dropout with keep probability 0.95 in the
//! convolutional layers and 0.85 in the classifier (§III-B).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rbnn_tensor::{Scratch, Tensor};

use crate::{Layer, Phase};

/// Inverted dropout: each activation survives with probability `keep` and is
/// scaled by `1/keep` during training; evaluation is the identity.
#[derive(Debug)]
pub struct Dropout {
    keep: f32,
    rng: StdRng,
    mask: Tensor,
    mask_valid: bool,
}

impl Dropout {
    /// Creates a dropout layer with the given keep probability and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < keep ≤ 1`.
    pub fn new(keep: f32, seed: u64) -> Self {
        assert!(
            keep > 0.0 && keep <= 1.0,
            "keep probability must be in (0, 1], got {keep}"
        );
        Self {
            keep,
            rng: StdRng::seed_from_u64(seed),
            mask: Tensor::default(),
            mask_valid: false,
        }
    }

    /// The keep probability.
    pub fn keep(&self) -> f32 {
        self.keep
    }
}

impl Layer for Dropout {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn forward_with(&mut self, x: &Tensor, phase: Phase, scratch: &mut Scratch) -> Tensor {
        let mut y = scratch.tensor_for_overwrite(x.shape().clone());
        if !phase.is_train() || self.keep >= 1.0 {
            y.as_mut_slice().copy_from_slice(x.as_slice());
            return y;
        }
        let inv = 1.0 / self.keep;
        self.mask.resize_for_overwrite(x.shape().clone());
        for (m, (d, &v)) in self
            .mask
            .as_mut_slice()
            .iter_mut()
            .zip(y.as_mut_slice().iter_mut().zip(x.as_slice()))
        {
            *m = if self.rng.gen::<f32>() < self.keep {
                inv
            } else {
                0.0
            };
            *d = v * *m;
        }
        self.mask_valid = true;
        y
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        let mut gx = scratch.tensor_for_overwrite(grad_out.shape().clone());
        if self.mask_valid {
            self.mask_valid = false;
            for ((d, &g), &m) in gx
                .as_mut_slice()
                .iter_mut()
                .zip(grad_out.as_slice())
                .zip(self.mask.as_slice())
            {
                *d = g * m;
            }
        } else {
            // keep == 1.0 in train phase: identity.
            gx.as_mut_slice().copy_from_slice(grad_out.as_slice());
        }
        gx
    }

    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        in_shape.to_vec()
    }

    fn name(&self) -> String {
        format!("Dropout(keep={})", self.keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let y = d.forward(&x, Phase::Eval);
        assert_eq!(y, x);
    }

    #[test]
    fn train_preserves_expectation() {
        let mut d = Dropout::new(0.8, 42);
        let x = Tensor::ones([1, 20_000]);
        let y = d.forward(&x, Phase::Train);
        // E[y] = 1 under inverted dropout.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Survivors carry 1/keep.
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - 1.25).abs() < 1e-6));
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 7);
        let x = Tensor::ones([1, 100]);
        let y = d.forward(&x, Phase::Train);
        let g = d.backward(&Tensor::ones([1, 100]));
        // Gradient flows exactly where the activation survived.
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn keep_one_is_identity_both_ways() {
        let mut d = Dropout::new(1.0, 0);
        let x = Tensor::from_vec(vec![5.0, -3.0], &[1, 2]);
        assert_eq!(d.forward(&x, Phase::Train), x);
        let g = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        assert_eq!(d.backward(&g), g);
    }

    #[test]
    #[should_panic(expected = "keep probability")]
    fn zero_keep_rejected() {
        let _ = Dropout::new(0.0, 0);
    }
}
