//! Mini-batch training loop, evaluation helpers and training history.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use rbnn_telemetry::{Counter, LogHistogram};
use rbnn_tensor::{Scratch, Tensor};

use crate::{loss, metrics, Layer, LrSchedule, Optimizer, Phase};

/// Process-wide handles for the training-loop phase timings on the global
/// telemetry registry.  All `fit` runs in the process aggregate into the
/// same series; per-epoch phase totals land in the histograms, so one
/// histogram sample = one epoch's cumulative time in that phase.
struct TrainTelemetry {
    epochs: Arc<Counter>,
    batches: Arc<Counter>,
    forward_us: Arc<LogHistogram>,
    backward_us: Arc<LogHistogram>,
    optim_us: Arc<LogHistogram>,
}

fn train_telemetry() -> &'static TrainTelemetry {
    static CELL: OnceLock<TrainTelemetry> = OnceLock::new();
    CELL.get_or_init(|| {
        let reg = rbnn_telemetry::global();
        TrainTelemetry {
            epochs: reg.counter("rbnn_train_epochs_total", "", "Training epochs completed."),
            batches: reg.counter(
                "rbnn_train_batches_total",
                "",
                "Training mini-batch steps completed.",
            ),
            forward_us: reg.histogram(
                "rbnn_train_epoch_forward_us",
                "",
                "Per-epoch cumulative forward-pass time (microseconds).",
            ),
            backward_us: reg.histogram(
                "rbnn_train_epoch_backward_us",
                "",
                "Per-epoch cumulative backward-pass time (microseconds).",
            ),
            optim_us: reg.histogram(
                "rbnn_train_epoch_optim_us",
                "",
                "Per-epoch cumulative optimizer-step time (microseconds).",
            ),
        }
    })
}

/// Configuration of a training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// RNG seed for shuffling.
    pub seed: u64,
    /// If set, evaluation on the validation set happens every `n` epochs
    /// (always on the last epoch).
    pub eval_every: usize,
    /// Print one progress line per evaluation to stderr.
    pub verbose: bool,
    /// Optional learning-rate schedule applied at the start of each epoch
    /// (overrides the optimizer's configured rate).
    pub lr_schedule: Option<LrSchedule>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            seed: 0,
            eval_every: 1,
            verbose: false,
            lr_schedule: None,
        }
    }
}

/// Per-epoch record of a training run.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f32>,
    /// Training accuracy per epoch (over the batches as seen).
    pub train_acc: Vec<f32>,
    /// `(epoch, accuracy)` validation measurements.
    pub val_acc: Vec<(usize, f32)>,
    /// `(epoch, accuracy)` validation top-5 measurements (empty when the
    /// task has fewer than 6 classes).
    pub val_top5: Vec<(usize, f32)>,
}

impl History {
    /// The last validation accuracy, if any evaluation ran.
    pub fn final_val_acc(&self) -> Option<f32> {
        self.val_acc.last().map(|&(_, a)| a)
    }

    /// The best validation accuracy seen, if any.
    pub fn best_val_acc(&self) -> Option<f32> {
        self.val_acc
            .iter()
            .map(|&(_, a)| a)
            .max_by(|a, b| a.partial_cmp(b).expect("accuracy is never NaN"))
    }
}

/// A labelled batch-major dataset view: samples stacked on axis 0 plus one
/// integer label per sample.
#[derive(Debug, Clone)]
pub struct Labelled<'a> {
    /// Stacked samples `[N, …]`.
    pub x: &'a Tensor,
    /// One class index per sample.
    pub y: &'a [usize],
}

impl<'a> Labelled<'a> {
    /// Bundles samples and labels.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` differs from the leading dimension of `x`.
    pub fn new(x: &'a Tensor, y: &'a [usize]) -> Self {
        assert_eq!(x.dim(0), y.len(), "sample/label count mismatch");
        Self { x, y }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }
}

/// Gathers `indices` of the leading axis into a new batch tensor.
///
/// Allocation-free loops use [`Tensor::gather_rows_into`] with a reused
/// buffer instead; this remains as the simple one-shot form (and as the
/// pre-overhaul baseline `train_bench` measures against).
pub fn gather(x: &Tensor, indices: &[usize]) -> Tensor {
    let items: Vec<Tensor> = indices.iter().map(|&i| x.index_axis0(i)).collect();
    Tensor::stack(&items)
}

/// Runs the model over `data` in batches and returns the logits `[N, C]`.
///
/// Each batch's logits are written straight into one preallocated `[N, C]`
/// output; the batch buffer and every layer intermediate come from a single
/// scratch arena reused across batches.
pub fn predict_logits(model: &mut dyn Layer, x: &Tensor, batch_size: usize) -> Tensor {
    let mut scratch = Scratch::new();
    predict_logits_with(model, x, batch_size, &mut scratch)
}

/// [`predict_logits`] drawing all buffers from a caller-provided arena (the
/// form `fit` uses so evaluation shares the training loop's buffers).
pub fn predict_logits_with(
    model: &mut dyn Layer,
    x: &Tensor,
    batch_size: usize,
    scratch: &mut Scratch,
) -> Tensor {
    let n = x.dim(0);
    assert!(batch_size >= 1, "need a positive batch size");
    let mut xb = scratch.tensor_for_overwrite([0]);
    let mut idx: Vec<usize> = Vec::with_capacity(batch_size.min(n));
    let mut out: Option<Tensor> = None;
    let mut start = 0;
    while start < n {
        let end = (start + batch_size).min(n);
        idx.clear();
        idx.extend(start..end);
        x.gather_rows_into(&idx, &mut xb);
        let logits = model.forward_with(&xb, Phase::Eval, scratch);
        let classes = logits.dim(1);
        let dst = out.get_or_insert_with(|| scratch.tensor_for_overwrite([n, classes]));
        dst.as_mut_slice()[start * classes..end * classes].copy_from_slice(logits.as_slice());
        scratch.recycle(logits);
        start = end;
    }
    scratch.recycle(xb);
    out.unwrap_or_else(|| Tensor::zeros([0, 0]))
}

/// Evaluates top-1 accuracy of `model` on a labelled set.
pub fn evaluate(model: &mut dyn Layer, data: Labelled<'_>, batch_size: usize) -> f32 {
    let logits = predict_logits(model, data.x, batch_size);
    metrics::accuracy(&logits, data.y)
}

/// Evaluates top-k accuracy of `model` on a labelled set.
pub fn evaluate_top_k(
    model: &mut dyn Layer,
    data: Labelled<'_>,
    batch_size: usize,
    k: usize,
) -> f32 {
    let logits = predict_logits(model, data.x, batch_size);
    metrics::top_k_accuracy(&logits, data.y, k)
}

/// Trains `model` on `train` with softmax cross-entropy, optionally
/// evaluating on `val`, and returns the per-epoch [`History`].
///
/// The model sees shuffled mini-batches; gradients are zeroed before each
/// batch and the optimizer steps after each backward pass.
pub fn fit(
    model: &mut dyn Layer,
    train: Labelled<'_>,
    val: Option<Labelled<'_>>,
    opt: &mut dyn Optimizer,
    cfg: &TrainConfig,
) -> History {
    assert!(cfg.epochs >= 1, "need at least one epoch");
    assert!(cfg.batch_size >= 1, "need a positive batch size");
    let n = train.len();
    assert!(n > 0, "empty training set");

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut history = History::default();
    let track_top5 = val.as_ref().map(|v| v.x.dim(0) > 0).unwrap_or(false);

    // One arena and one batch buffer live across the whole run: after the
    // first batch, the layer pipeline performs no heap allocation for
    // tensor data (partial tail batches reuse the same buffer at a smaller
    // leading extent); only the O(batch·classes) loss buffers are
    // allocated per step.
    let mut scratch = Scratch::new();
    let mut xb = Tensor::default();
    let mut yb: Vec<usize> = Vec::with_capacity(cfg.batch_size);
    // Resolved once per run: the per-batch clock reads below disappear
    // entirely when telemetry is disabled.
    let telemetry = rbnn_telemetry::enabled().then(train_telemetry);

    for epoch in 0..cfg.epochs {
        if let Some(schedule) = &cfg.lr_schedule {
            opt.set_learning_rate(schedule.rate(epoch));
        }
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut epoch_hits = 0.0f32;
        let mut batches = 0usize;
        let mut forward_ns = 0u64;
        let mut backward_ns = 0u64;
        let mut optim_ns = 0u64;
        for chunk in order.chunks(cfg.batch_size) {
            train.x.gather_rows_into(chunk, &mut xb);
            yb.clear();
            yb.extend(chunk.iter().map(|&i| train.y[i]));
            model.zero_grad();
            let t0 = telemetry.map(|_| Instant::now());
            let logits = model.forward_with(&xb, Phase::Train, &mut scratch);
            if let Some(t0) = t0 {
                forward_ns += t0.elapsed().as_nanos() as u64;
            }
            let (loss_value, grad) = loss::softmax_cross_entropy(&logits, &yb);
            epoch_hits += metrics::accuracy(&logits, &yb) * yb.len() as f32;
            scratch.recycle(logits);
            // Root of the backward pass: the gradient w.r.t. the training
            // inputs is never consumed, so the first layer skips it.
            let t0 = telemetry.map(|_| Instant::now());
            let gx = model.backward_root_with(&grad, &mut scratch);
            if let Some(t0) = t0 {
                backward_ns += t0.elapsed().as_nanos() as u64;
            }
            scratch.recycle(gx);
            // `grad` was freshly allocated by the loss (O(batch·classes));
            // dropping it keeps the arena population stable — recycling it
            // would add one buffer per step until the pool cap forces a
            // perpetual evict/realloc cycle.
            drop(grad);
            let mut params = model.params_mut();
            let t0 = telemetry.map(|_| Instant::now());
            opt.step(&mut params);
            if let Some(t0) = t0 {
                optim_ns += t0.elapsed().as_nanos() as u64;
            }
            epoch_loss += loss_value;
            batches += 1;
        }
        if let Some(t) = telemetry {
            t.epochs.inc();
            t.batches.add(batches as u64);
            t.forward_us.record_value(forward_ns as f64 / 1e3);
            t.backward_us.record_value(backward_ns as f64 / 1e3);
            t.optim_us.record_value(optim_ns as f64 / 1e3);
        }
        history.train_loss.push(epoch_loss / batches.max(1) as f32);
        history.train_acc.push(epoch_hits / n as f32);

        let is_last = epoch + 1 == cfg.epochs;
        if let Some(v) = &val {
            if is_last || cfg.eval_every != 0 && epoch % cfg.eval_every.max(1) == 0 {
                let logits = predict_logits_with(model, v.x, cfg.batch_size, &mut scratch);
                let acc = metrics::accuracy(&logits, v.y);
                history.val_acc.push((epoch, acc));
                if track_top5 && logits.dim(1) > 5 {
                    history
                        .val_top5
                        .push((epoch, metrics::top_k_accuracy(&logits, v.y, 5)));
                }
                scratch.recycle(logits);
                if cfg.verbose {
                    eprintln!(
                        "epoch {:>4}: loss {:.4}  train acc {:.3}  val acc {:.3}",
                        epoch,
                        history.train_loss.last().unwrap(),
                        history.train_acc.last().unwrap(),
                        acc
                    );
                }
            }
        } else if cfg.verbose {
            eprintln!(
                "epoch {:>4}: loss {:.4}  train acc {:.3}",
                epoch,
                history.train_loss.last().unwrap(),
                history.train_acc.last().unwrap()
            );
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Adam, Dense, Sequential, WeightMode};
    use rand::Rng;

    /// Two-class linearly separable blobs.
    fn blobs(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Tensor::zeros([n, 2]);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            let cx = if label == 0 { -1.5 } else { 1.5 };
            x.as_mut_slice()[i * 2] = cx + rng.gen_range(-0.5..0.5);
            x.as_mut_slice()[i * 2 + 1] = rng.gen_range(-0.5..0.5);
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn fit_learns_separable_blobs() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 8, WeightMode::Real, &mut rng));
        net.push(Activation::relu());
        net.push(Dense::new(8, 2, WeightMode::Real, &mut rng));

        let (x, y) = blobs(128, 2);
        let (vx, vy) = blobs(64, 3);
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig {
            epochs: 20,
            batch_size: 16,
            ..Default::default()
        };
        let hist = fit(
            &mut net,
            Labelled::new(&x, &y),
            Some(Labelled::new(&vx, &vy)),
            &mut opt,
            &cfg,
        );
        assert!(
            hist.final_val_acc().unwrap() > 0.95,
            "val acc {:?}",
            hist.final_val_acc()
        );
        // Loss decreased.
        assert!(hist.train_loss.last().unwrap() < hist.train_loss.first().unwrap());
    }

    #[test]
    fn binary_dense_model_also_learns() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 16, WeightMode::Binary, &mut rng));
        net.push(crate::BatchNorm::new(16));
        net.push(Activation::sign_ste());
        net.push(Dense::new(16, 2, WeightMode::Binary, &mut rng));
        net.push(crate::BatchNorm::new(2));

        let (x, y) = blobs(128, 5);
        let mut opt = Adam::new(0.02);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 16,
            ..Default::default()
        };
        let hist = fit(
            &mut net,
            Labelled::new(&x, &y),
            Some(Labelled::new(&x, &y)),
            &mut opt,
            &cfg,
        );
        assert!(
            hist.best_val_acc().unwrap() > 0.9,
            "BNN failed to fit blobs: {:?}",
            hist.best_val_acc()
        );
    }

    #[test]
    fn gather_stacks_selected_rows() {
        let x = Tensor::from_fn([4, 2], |i| i as f32);
        let g = gather(&x, &[2, 0]);
        assert_eq!(g.dims(), &[2, 2]);
        assert_eq!(g.as_slice(), &[4.0, 5.0, 0.0, 1.0]);
    }

    #[test]
    fn predict_logits_matches_direct_forward() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = Sequential::new();
        net.push(Dense::new(3, 2, WeightMode::Real, &mut rng));
        let x = Tensor::randn([10, 3], 1.0, &mut rng);
        let direct = net.forward(&x, Phase::Eval);
        let batched = predict_logits(&mut net, &x, 3);
        assert!(direct.allclose(&batched, 1e-5));
    }

    #[test]
    fn lr_schedule_is_applied() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 2, WeightMode::Real, &mut rng));
        let (x, y) = blobs(16, 10);
        let mut opt = Adam::new(1.0);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 8,
            lr_schedule: Some(crate::LrSchedule::StepDecay {
                lr: 0.1,
                step: 1,
                gamma: 0.5,
            }),
            ..Default::default()
        };
        let _ = fit(&mut net, Labelled::new(&x, &y), None, &mut opt, &cfg);
        // After epochs 0, 1, 2 the last applied rate is 0.1 · 0.5² = 0.025.
        assert!((opt.learning_rate() - 0.025).abs() < 1e-6);
    }

    #[test]
    fn backward_root_skips_input_grad_but_matches_param_grads() {
        use rbnn_tensor::Scratch;
        let mut rng = StdRng::seed_from_u64(12);
        let build = |rng: &mut StdRng| {
            let mut net = Sequential::new();
            net.push(crate::Conv1d::new(2, 3, 3, 1, 1, WeightMode::Binary, rng));
            net.push(crate::BatchNorm::new(3));
            net.push(Activation::sign_ste());
            net.push(crate::Flatten::new());
            net.push(Dense::new(3 * 8, 2, WeightMode::Real, rng));
            net
        };
        let mut full = build(&mut rng);
        let mut rng2 = StdRng::seed_from_u64(12);
        let mut root = build(&mut rng2);
        let x = Tensor::randn([4, 2, 8], 1.0, &mut rng);
        let g = Tensor::randn([4, 2], 1.0, &mut rng);
        let mut scratch = Scratch::new();
        let _ = full.forward_with(&x, Phase::Train, &mut scratch);
        let gx_full = full.backward_with(&g, &mut scratch);
        let _ = root.forward_with(&x, Phase::Train, &mut scratch);
        let gx_root = root.backward_root_with(&g, &mut scratch);
        // The root pass skips the first conv's input gradient entirely…
        assert_eq!(gx_full.dims(), x.dims());
        assert_eq!(gx_root.numel(), 0, "root input grad must be skipped");
        // …while every parameter gradient matches the full pass bitwise.
        for (pf, pr) in full.params().iter().zip(root.params()) {
            assert_eq!(pf.grad.as_slice(), pr.grad.as_slice());
        }
    }

    #[test]
    fn fit_reports_phase_timings_on_the_global_registry() {
        let epochs_before = train_telemetry().epochs.get();
        let batches_before = train_telemetry().batches.get();
        let forward_before = train_telemetry().forward_us.count();

        let mut rng = StdRng::seed_from_u64(21);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 4, WeightMode::Real, &mut rng));
        let (x, y) = blobs(32, 22);
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 8,
            ..Default::default()
        };
        let _ = fit(&mut net, Labelled::new(&x, &y), None, &mut opt, &cfg);

        // Other tests in this binary run `fit` concurrently against the same
        // process-global series, so assert deltas as lower bounds.
        assert!(train_telemetry().epochs.get() >= epochs_before + 3);
        // 32 samples / batch 8 = 4 batches per epoch.
        assert!(train_telemetry().batches.get() >= batches_before + 12);
        assert!(train_telemetry().forward_us.count() >= forward_before + 3);
        // Phase time was actually measured, not just counted.
        assert!(train_telemetry().forward_us.sum() > 0.0);
        assert!(train_telemetry().backward_us.sum() > 0.0);
        assert!(train_telemetry().optim_us.sum() > 0.0);
    }

    #[test]
    #[should_panic(expected = "sample/label count mismatch")]
    fn labelled_rejects_mismatched_lengths() {
        let x = Tensor::zeros([3, 2]);
        let y = vec![0usize; 4];
        let _ = Labelled::new(&x, &y);
    }
}
