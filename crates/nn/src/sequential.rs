//! Sequential container and model summaries.

use std::fmt;

use rbnn_tensor::{Scratch, Tensor};

use crate::{Layer, Param, Phase};

/// A linear chain of layers, itself a [`Layer`].
///
/// ```
/// use rbnn_nn::{Activation, Dense, Layer, Phase, Sequential, WeightMode};
/// use rbnn_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push(Dense::new(8, 4, WeightMode::Real, &mut rng));
/// net.push(Activation::relu());
/// net.push(Dense::new(4, 2, WeightMode::Real, &mut rng));
/// let y = net.forward(&Tensor::zeros([3, 8]), Phase::Eval);
/// assert_eq!(y.dims(), &[3, 2]);
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer (builder-friendly: returns `&mut self`).
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends an already-boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to the contained layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the contained layers (model surgery).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Runs the backward chain; when `need_input_grad` is false the first
    /// layer is told its input gradient is unused (`backward_root_with`).
    fn backward_chain(
        &mut self,
        grad_out: &Tensor,
        scratch: &mut Scratch,
        need_input_grad: bool,
    ) -> Tensor {
        let count = self.layers.len();
        if count == 0 {
            return grad_out.clone();
        }
        let mut g: Option<Tensor> = None;
        for (pos, layer) in self.layers.iter_mut().rev().enumerate() {
            let is_first_layer = pos + 1 == count;
            let gin = g.as_ref().unwrap_or(grad_out);
            let next = if is_first_layer && !need_input_grad {
                layer.backward_root_with(gin, scratch)
            } else {
                layer.backward_with(gin, scratch)
            };
            if let Some(prev) = g.take() {
                scratch.recycle(prev);
            }
            g = Some(next);
        }
        g.expect("non-empty layer chain")
    }

    /// Builds a per-layer summary table (the shape of Tables I–II of the
    /// paper) for a given per-sample input shape.
    pub fn summary(&self, input_shape: &[usize]) -> ModelSummary {
        let mut rows = Vec::new();
        let mut shape = input_shape.to_vec();
        for layer in &self.layers {
            shape = layer.out_shape(&shape);
            rows.push(SummaryRow {
                name: layer.name(),
                out_shape: shape.clone(),
                params: layer.param_count(),
            });
        }
        ModelSummary {
            input_shape: input_shape.to_vec(),
            rows,
        }
    }
}

impl Layer for Sequential {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn forward_with(&mut self, x: &Tensor, phase: Phase, scratch: &mut Scratch) -> Tensor {
        // Chain layers, recycling each intermediate activation as soon as
        // the next layer has consumed it — the steady-state epoch then
        // cycles a fixed set of buffers instead of allocating per batch.
        let mut layers = self.layers.iter_mut();
        let Some(first) = layers.next() else {
            return x.clone();
        };
        let mut h = first.forward_with(x, phase, scratch);
        for layer in layers {
            let next = layer.forward_with(&h, phase, scratch);
            scratch.recycle(h);
            h = next;
        }
        h
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        self.backward_chain(grad_out, scratch, true)
    }

    fn backward_root_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        self.backward_chain(grad_out, scratch, false)
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        let mut shape = in_shape.to_vec();
        for layer in &self.layers {
            shape = layer.out_shape(&shape);
        }
        shape
    }

    fn name(&self) -> String {
        format!("Sequential[{}]", self.layers.len())
    }
}

/// One row of a [`ModelSummary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummaryRow {
    /// Layer display name.
    pub name: String,
    /// Per-sample output shape after this layer.
    pub out_shape: Vec<usize>,
    /// Scalar parameter count of this layer.
    pub params: usize,
}

/// A layer-by-layer description of a network: names, output shapes and
/// parameter counts — the information Tables I, II and IV of the paper are
/// built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSummary {
    /// Per-sample input shape.
    pub input_shape: Vec<usize>,
    /// Per-layer rows in forward order.
    pub rows: Vec<SummaryRow>,
}

impl ModelSummary {
    /// Total parameter count.
    pub fn total_params(&self) -> usize {
        self.rows.iter().map(|r| r.params).sum()
    }
}

impl fmt::Display for ModelSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<40} {:>18} {:>12}", "Layer", "Output shape", "Params")?;
        writeln!(f, "{}", "-".repeat(72))?;
        writeln!(
            f,
            "{:<40} {:>18} {:>12}",
            "Input",
            format!("{:?}", self.input_shape),
            ""
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<40} {:>18} {:>12}",
                row.name,
                format!("{:?}", row.out_shape),
                row.params
            )?;
        }
        writeln!(f, "{}", "-".repeat(72))?;
        writeln!(f, "Total params: {}", self.total_params())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Dense, WeightMode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(rng: &mut StdRng) -> Sequential {
        let mut net = Sequential::new();
        net.push(Dense::new(4, 3, WeightMode::Real, rng));
        net.push(Activation::relu());
        net.push(Dense::new(3, 2, WeightMode::Real, rng));
        net
    }

    #[test]
    fn forward_backward_chain() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn([5, 4], 1.0, &mut rng);
        let y = net.forward(&x, Phase::Train);
        assert_eq!(y.dims(), &[5, 2]);
        let gx = net.backward(&Tensor::ones([5, 2]));
        assert_eq!(gx.dims(), &[5, 4]);
    }

    #[test]
    fn param_collection_flattens() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = tiny_net(&mut rng);
        // Dense(4→3): w+b, Dense(3→2): w+b → 4 params.
        assert_eq!(net.params().len(), 4);
        assert_eq!(net.param_count(), 4 * 3 + 3 + 3 * 2 + 2);
    }

    #[test]
    fn zero_grad_clears_everything() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn([2, 4], 1.0, &mut rng);
        let _ = net.forward(&x, Phase::Train);
        let _ = net.backward(&Tensor::ones([2, 2]));
        assert!(net.params().iter().any(|p| p.grad.norm_sq() > 0.0));
        net.zero_grad();
        assert!(net.params().iter().all(|p| p.grad.norm_sq() == 0.0));
    }

    #[test]
    fn summary_table() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = tiny_net(&mut rng);
        let s = net.summary(&[4]);
        assert_eq!(s.rows.len(), 3);
        assert_eq!(s.rows[0].out_shape, vec![3]);
        assert_eq!(s.rows[2].out_shape, vec![2]);
        assert_eq!(s.total_params(), net.param_count());
        let text = s.to_string();
        assert!(text.contains("Dense(4→3)"));
        assert!(text.contains("Total params"));
    }
}
