//! Fully-connected (dense) layer, real or binarized.

use rand::Rng;

use rbnn_tensor::{Scratch, Tensor};

use crate::{init, Layer, Param, Phase, WeightMode};

/// A fully-connected layer `y = x·Wᵀ + b`.
///
/// In [`WeightMode::Binary`] the forward pass uses `sign(W)` and gradients
/// flow back through the straight-through estimator: the latent weight
/// gradient is masked where `|w| > 1` and the latent weights are clamped to
/// `[−1, 1]` after every optimizer step. This is the training-time
/// counterpart of the 2T2R-stored classifier weights of the paper.
///
/// ```
/// use rbnn_nn::{Dense, Layer, Phase, WeightMode};
/// use rbnn_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut fc = Dense::new(2520, 80, WeightMode::Binary, &mut rng);
/// let y = fc.forward(&Tensor::zeros([4, 2520]), Phase::Eval);
/// assert_eq!(y.dims(), &[4, 80]);
/// ```
#[derive(Debug)]
pub struct Dense {
    weight: Param,
    bias: Option<Param>,
    in_features: usize,
    out_features: usize,
    mode: WeightMode,
    // Persistent buffers, refreshed in place each batch (no allocation in
    // the steady state): the effective weight seen by the forward pass and
    // the input/weight caches the backward pass consumes.
    eff_w: Tensor,
    cached_input: Tensor,
    cached_eff_w: Tensor,
    cache_valid: bool,
}

impl Dense {
    /// Creates a dense layer with He-initialized weights and zero bias.
    pub fn new(
        in_features: usize,
        out_features: usize,
        mode: WeightMode,
        rng: &mut impl Rng,
    ) -> Self {
        let weight_value = init::he_normal(&[out_features, in_features], in_features, rng);
        let mut weight = Param::new(weight_value);
        if mode.is_binary() {
            weight = weight.with_clamp(-1.0, 1.0);
        }
        let bias = Some(Param::new(Tensor::zeros([out_features])).no_decay());
        Self {
            weight,
            bias,
            in_features,
            out_features,
            mode,
            eff_w: Tensor::default(),
            cached_input: Tensor::default(),
            cached_eff_w: Tensor::default(),
            cache_valid: false,
        }
    }

    /// Removes the bias term (builder style). Useful when the layer is
    /// followed by BatchNorm, which subsumes the bias.
    pub fn without_bias(mut self) -> Self {
        self.bias = None;
        self
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight mode (real or binary).
    pub fn mode(&self) -> WeightMode {
        self.mode
    }

    /// The weights seen by the forward pass: `sign(W)` in binary mode, `W`
    /// otherwise. This is what gets programmed into RRAM arrays.
    pub fn effective_weight(&self) -> Tensor {
        match self.mode {
            WeightMode::Real => self.weight.value.clone(),
            WeightMode::Binary => self.weight.value.signum_binary(),
        }
    }

    /// The bias vector, if present.
    pub fn bias_value(&self) -> Option<&Tensor> {
        self.bias.as_ref().map(|b| &b.value)
    }

    /// Shared backward body; `need_dx` false skips the input-gradient
    /// GEMM (root of the backward pass).
    fn backward_impl(&mut self, grad_out: &Tensor, scratch: &mut Scratch, need_dx: bool) -> Tensor {
        assert!(
            self.cache_valid,
            "Dense::backward called without forward(Phase::Train)"
        );
        self.cache_valid = false;

        // dW_eff[o, i] = Σ_n g[n, o] · x[n, i]
        let mut grad_w = scratch.tensor_for_overwrite(self.weight.value.shape().clone());
        grad_out.matmul_tn_into(&self.cached_input, &mut grad_w);
        if self.mode.is_binary() {
            self.weight.accumulate_ste_masked(&grad_w);
        } else {
            self.weight.grad += &grad_w;
        }
        scratch.recycle(grad_w);

        if let Some(b) = &mut self.bias {
            let n = grad_out.dim(0);
            let o = self.out_features;
            let gs = grad_out.as_slice();
            let gb = b.grad.as_mut_slice();
            for row in 0..n {
                for (j, g) in gb.iter_mut().enumerate() {
                    *g += gs[row * o + j];
                }
            }
        }

        // dx[n, i] = Σ_o g[n, o] · w[o, i]  (skipped entirely at the root
        // of the backward pass, where nothing consumes it)
        if !need_dx {
            return Tensor::default();
        }
        let mut dx = scratch.tensor_for_overwrite([grad_out.dim(0), self.in_features]);
        grad_out.matmul_into(&self.cached_eff_w, &mut dx);
        dx
    }
}

impl Layer for Dense {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn forward_with(&mut self, x: &Tensor, phase: Phase, scratch: &mut Scratch) -> Tensor {
        assert_eq!(x.shape().ndim(), 2, "Dense expects [batch, features]");
        assert_eq!(
            x.dim(1),
            self.in_features,
            "Dense: expected {} input features, got {}",
            self.in_features,
            x.dim(1)
        );
        let n = x.dim(0);
        // Refresh the effective-weight buffer in place: sign(W) in binary
        // mode (single pass into a persistent buffer — training caches the
        // buffer the backward pass will read, eval uses a separate one so a
        // mid-step eval cannot clobber the training cache).
        let eff_w: &Tensor = match self.mode {
            WeightMode::Real => &self.weight.value,
            WeightMode::Binary => {
                if phase.is_train() {
                    self.weight.value.signum_binary_into(&mut self.cached_eff_w);
                    &self.cached_eff_w
                } else {
                    self.weight.value.signum_binary_into(&mut self.eff_w);
                    &self.eff_w
                }
            }
        };
        // y[n, o] = Σ_i x[n, i] · w[o, i]  (+ b[o])
        let mut y = scratch.tensor_for_overwrite([n, self.out_features]);
        x.matmul_nt_into(eff_w, &mut y);
        if let Some(b) = &self.bias {
            let o = self.out_features;
            let ys = y.as_mut_slice();
            let bs = b.value.as_slice();
            for row in 0..n {
                for (j, &bv) in bs.iter().enumerate() {
                    ys[row * o + j] += bv;
                }
            }
        }
        if phase.is_train() {
            self.cached_input.copy_from(x);
            if !self.mode.is_binary() {
                self.cached_eff_w.copy_from(&self.weight.value);
            }
            self.cache_valid = true;
        }
        y
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        self.backward_impl(grad_out, scratch, true)
    }

    fn backward_root_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        self.backward_impl(grad_out, scratch, false)
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = vec![&self.weight];
        if let Some(b) = &self.bias {
            v.push(b);
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }

    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        assert_eq!(in_shape, [self.in_features], "Dense expects flat input");
        vec![self.out_features]
    }

    fn name(&self) -> String {
        let tag = if self.mode.is_binary() {
            "BinDense"
        } else {
            "Dense"
        };
        format!("{tag}({}→{})", self.in_features, self.out_features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut fc = Dense::new(3, 2, WeightMode::Real, &mut rng);
        // Overwrite with known weights.
        fc.weight.value = Tensor::from_vec(vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.0], &[2, 3]);
        fc.bias.as_mut().unwrap().value = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let y = fc.forward(&x, Phase::Eval);
        // row0: 1·1 + 2·0 + 3·(−1) + 0.5 = −1.5 ; row1: 1·2 + 2·1 + 3·0 − 0.5 = 3.5
        assert_eq!(y.as_slice(), &[-1.5, 3.5]);
    }

    #[test]
    fn binary_mode_uses_sign_of_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut fc = Dense::new(2, 1, WeightMode::Binary, &mut rng);
        fc.weight.value = Tensor::from_vec(vec![0.3, -0.7], &[1, 2]);
        let x = Tensor::from_vec(vec![2.0, 4.0], &[1, 2]);
        let y = fc.forward(&x, Phase::Eval);
        // sign weights: [+1, −1] → 2 − 4 = −2 (+ bias 0)
        assert_eq!(y.as_slice(), &[-2.0]);
    }

    #[test]
    fn ste_masks_saturated_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut fc = Dense::new(2, 1, WeightMode::Binary, &mut rng);
        // First latent weight saturated (>1), second inside the window.
        fc.weight.value = Tensor::from_vec(vec![1.5, 0.5], &[1, 2]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let _ = fc.forward(&x, Phase::Train);
        let _ = fc.backward(&Tensor::ones([1, 1]));
        let gw = fc.weight.grad.as_slice();
        assert_eq!(gw[0], 0.0, "saturated weight must get no gradient");
        assert_eq!(gw[1], 1.0);
    }

    #[test]
    fn backward_shapes_and_bias_grad() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut fc = Dense::new(4, 3, WeightMode::Real, &mut rng);
        let x = Tensor::randn([5, 4], 1.0, &mut rng);
        let _ = fc.forward(&x, Phase::Train);
        let gx = fc.backward(&Tensor::ones([5, 3]));
        assert_eq!(gx.dims(), &[5, 4]);
        // Bias grad is the column sum of ones: batch size.
        assert_eq!(fc.bias.as_ref().unwrap().grad.as_slice(), &[5.0, 5.0, 5.0]);
    }

    #[test]
    fn binary_param_is_clamped() {
        let mut rng = StdRng::seed_from_u64(2);
        let fc = Dense::new(2, 2, WeightMode::Binary, &mut rng);
        assert_eq!(fc.params()[0].clamp, Some((-1.0, 1.0)));
    }

    #[test]
    fn without_bias_removes_param() {
        let mut rng = StdRng::seed_from_u64(3);
        let fc = Dense::new(8, 4, WeightMode::Real, &mut rng).without_bias();
        assert_eq!(fc.params().len(), 1);
        assert_eq!(fc.param_count(), 32);
    }

    #[test]
    fn name_and_shape() {
        let mut rng = StdRng::seed_from_u64(4);
        let fc = Dense::new(2520, 80, WeightMode::Binary, &mut rng);
        assert_eq!(fc.name(), "BinDense(2520→80)");
        assert_eq!(fc.out_shape(&[2520]), vec![80]);
    }
}
