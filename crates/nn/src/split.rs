//! A model split into feature extractor and classifier.
//!
//! The paper's central algorithmic move is treating these two sections at
//! different precisions (§III-C: "binarizing solely the classifier part").
//! [`SplitModel`] makes the boundary explicit so deployment code can run the
//! feature extractor in float and hand the classifier to the bit-packed
//! engine in `rbnn-binary`.

use rbnn_tensor::{Scratch, Tensor};

use crate::{Layer, Param, Phase, Sequential};

/// A network composed of a convolutional `features` section followed by a
/// dense `classifier` section. Implements [`Layer`] by chaining the two.
#[derive(Debug, Default)]
pub struct SplitModel {
    /// Convolutional feature extractor (everything up to and including the
    /// flatten).
    pub features: Sequential,
    /// Dense classifier.
    pub classifier: Sequential,
}

impl SplitModel {
    /// Creates a model from its two sections.
    pub fn new(features: Sequential, classifier: Sequential) -> Self {
        Self {
            features,
            classifier,
        }
    }

    /// Runs only the feature extractor (used when the classifier executes on
    /// simulated RRAM hardware instead).
    pub fn forward_features(&mut self, x: &Tensor, phase: Phase) -> Tensor {
        self.features.forward(x, phase)
    }

    /// Total parameters in the feature section.
    pub fn feature_params(&self) -> usize {
        self.features.param_count()
    }

    /// Total parameters in the classifier section.
    pub fn classifier_params(&self) -> usize {
        self.classifier.param_count()
    }

    /// Layer-by-layer summary across both sections (Tables I–II style).
    pub fn summary(&self, input_shape: &[usize]) -> crate::ModelSummary {
        let mut s = self.features.summary(input_shape);
        let boundary = self.features.out_shape(input_shape);
        let tail = self.classifier.summary(&boundary);
        s.rows.extend(tail.rows);
        s
    }
}

impl Layer for SplitModel {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn forward_with(&mut self, x: &Tensor, phase: Phase, scratch: &mut Scratch) -> Tensor {
        let h = self.features.forward_with(x, phase, scratch);
        let y = self.classifier.forward_with(&h, phase, scratch);
        scratch.recycle(h);
        y
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        let g = self.classifier.backward_with(grad_out, scratch);
        let gx = self.features.backward_with(&g, scratch);
        scratch.recycle(g);
        gx
    }

    fn backward_root_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        let g = self.classifier.backward_with(grad_out, scratch);
        let gx = self.features.backward_root_with(&g, scratch);
        scratch.recycle(g);
        gx
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = self.features.params();
        v.extend(self.classifier.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.features.params_mut();
        v.extend(self.classifier.params_mut());
        v
    }

    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        self.classifier
            .out_shape(&self.features.out_shape(in_shape))
    }

    fn name(&self) -> String {
        format!(
            "SplitModel[features={}, classifier={}]",
            self.features.len(),
            self.classifier.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Dense, WeightMode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build() -> SplitModel {
        let mut rng = StdRng::seed_from_u64(0);
        let mut features = Sequential::new();
        features.push(Dense::new(6, 4, WeightMode::Real, &mut rng));
        features.push(Activation::relu());
        let mut classifier = Sequential::new();
        classifier.push(Dense::new(4, 2, WeightMode::Binary, &mut rng));
        SplitModel::new(features, classifier)
    }

    #[test]
    fn chains_sections() {
        let mut m = build();
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn([3, 6], 1.0, &mut rng);
        let y = m.forward(&x, Phase::Train);
        assert_eq!(y.dims(), &[3, 2]);
        let gx = m.backward(&Tensor::ones([3, 2]));
        assert_eq!(gx.dims(), &[3, 6]);
        assert_eq!(m.out_shape(&[6]), vec![2]);
    }

    #[test]
    fn forward_features_stops_at_boundary() {
        let mut m = build();
        let x = Tensor::zeros([2, 6]);
        let h = m.forward_features(&x, Phase::Eval);
        assert_eq!(h.dims(), &[2, 4]);
    }

    #[test]
    fn param_sections_add_up() {
        let m = build();
        assert_eq!(m.param_count(), m.feature_params() + m.classifier_params());
        // features: 6·4+4; classifier: 4·2+2.
        assert_eq!(m.feature_params(), 28);
        assert_eq!(m.classifier_params(), 10);
    }
}
