//! Learnable parameters.

use rbnn_tensor::Tensor;

/// A learnable tensor together with its gradient accumulator and
/// optimizer-relevant metadata.
///
/// `Param` is a passive data holder (fields are public by design): layers own
/// their `Param`s, the backward pass accumulates into [`grad`](Param::grad),
/// and optimizers read/update [`value`](Param::value).
///
/// For binarized layers the *latent* real-valued weights live here while the
/// forward pass sees their sign; [`clamp`](Param::clamp) keeps latent weights
/// in `[−1, 1]` after each optimizer step, as in Courbariaux et al.'s BNN
/// training scheme that the paper builds on.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Post-step clamp range for latent binarized weights.
    pub clamp: Option<(f32, f32)>,
    /// Whether weight decay applies (disabled for biases and BatchNorm).
    pub decay: bool,
}

impl Param {
    /// Accumulates `grad_eff` into [`grad`](Param::grad) through the
    /// straight-through estimator: positions where the latent weight has
    /// saturated (`|w| > 1`) receive no gradient (Courbariaux et al.).
    /// One fused pass shared by every binarized layer.
    ///
    /// # Panics
    ///
    /// Panics if `grad_eff`'s element count differs from the parameter's.
    pub fn accumulate_ste_masked(&mut self, grad_eff: &Tensor) {
        assert_eq!(
            grad_eff.numel(),
            self.value.numel(),
            "accumulate_ste_masked: gradient size mismatch"
        );
        for ((acc, &g), &w) in self
            .grad
            .as_mut_slice()
            .iter_mut()
            .zip(grad_eff.as_slice())
            .zip(self.value.as_slice())
        {
            if w.abs() <= 1.0 {
                *acc += g;
            }
        }
    }

    /// Wraps a value tensor as a trainable parameter with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Self {
            value,
            grad,
            clamp: None,
            decay: true,
        }
    }

    /// Builder-style: marks this parameter as exempt from weight decay.
    pub fn no_decay(mut self) -> Self {
        self.decay = false;
        self
    }

    /// Builder-style: clamps the value into `[lo, hi]` after optimizer steps
    /// (used for BNN latent weights with `(−1, 1)`).
    pub fn with_clamp(mut self, lo: f32, hi: f32) -> Self {
        self.clamp = Some((lo, hi));
        self
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Applies the clamp (if configured) to the current value.
    pub fn apply_clamp(&mut self) {
        if let Some((lo, hi)) = self.clamp {
            self.value.map_in_place(|x| x.clamp(lo, hi));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones([3, 2]));
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.numel(), 6);
        assert!(p.decay);
        assert!(p.clamp.is_none());
    }

    #[test]
    fn clamp_applies_bounds() {
        let mut p = Param::new(Tensor::from_vec(vec![-2.0, 0.5, 3.0], &[3])).with_clamp(-1.0, 1.0);
        p.apply_clamp();
        assert_eq!(p.value.as_slice(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Param::new(Tensor::ones([2]));
        p.grad = Tensor::ones([2]);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn no_decay_builder() {
        let p = Param::new(Tensor::ones([1])).no_decay();
        assert!(!p.decay);
    }
}
