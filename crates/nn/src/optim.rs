//! Optimizers: SGD with momentum and Adam.
//!
//! The paper trains the medical models with Adam (§III-A/B) and MobileNet
//! with SGD (§IV). After each step, latent BNN weights are clamped to
//! `[−1, 1]` via [`Param::apply_clamp`] as in Courbariaux et al.

use rbnn_tensor::Tensor;

use crate::Param;

/// A gradient-based parameter updater.
///
/// Optimizer state (momentum/Adam moments) is keyed by parameter position,
/// so the same ordered parameter list must be passed on every step — which
/// holds when iterating a fixed model's `params_mut()`.
pub trait Optimizer {
    /// Applies one update step to the given parameters using their
    /// accumulated gradients, then applies per-parameter clamps.
    fn step(&mut self, params: &mut [&mut Param]);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and optional L2
/// weight decay.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Builder-style momentum coefficient (0.9 is typical).
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Builder-style L2 weight decay, applied only to `Param`s with
    /// `decay == true`.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape().clone()))
                .collect();
        }
        for (i, p) in params.iter_mut().enumerate() {
            // Branchless effective decay keeps the update loop allocation-
            // free and auto-vectorizable (cloning the gradient every step
            // once put the allocator on the training hot path).
            let wd = if self.weight_decay > 0.0 && p.decay {
                self.weight_decay
            } else {
                0.0
            };
            let lr = self.lr;
            if self.momentum > 0.0 {
                let momentum = self.momentum;
                let vs = self.velocity[i].as_mut_slice();
                let gs = p.grad.as_slice();
                let ps = p.value.as_mut_slice();
                for j in 0..gs.len() {
                    let g = gs[j] + wd * ps[j];
                    vs[j] = momentum * vs[j] + g;
                    ps[j] -= lr * vs[j];
                }
            } else {
                let gs = p.grad.as_slice();
                let ps = p.value.as_mut_slice();
                for j in 0..gs.len() {
                    ps[j] -= lr * (gs[j] + wd * ps[j]);
                }
            }
            p.apply_clamp();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// The Adam optimizer (Kingma & Ba), as used for the paper's EEG and ECG
/// trainings.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the given learning rate and standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Builder-style L2 weight decay, applied only to `Param`s with
    /// `decay == true`.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape().clone()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape().clone()))
                .collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            // Branchless effective decay; all coefficients hoisted into
            // locals so the moment-update loop stays allocation-free and
            // auto-vectorizes (sqrt and division both lower to SIMD).
            let wd = if self.weight_decay > 0.0 && p.decay {
                self.weight_decay
            } else {
                0.0
            };
            let (b1, b2, lr, eps) = (self.beta1, self.beta2, self.lr, self.eps);
            let (ms, vs, gs, ps) = (
                self.m[i].as_mut_slice(),
                self.v[i].as_mut_slice(),
                p.grad.as_slice(),
                p.value.as_mut_slice(),
            );
            for j in 0..gs.len() {
                let g = gs[j] + wd * ps[j];
                ms[j] = b1 * ms[j] + (1.0 - b1) * g;
                vs[j] = b2 * vs[j] + (1.0 - b2) * g * g;
                let mhat = ms[j] / bc1;
                let vhat = vs[j] / bc2;
                ps[j] -= lr * mhat / (vhat.sqrt() + eps);
            }
            p.apply_clamp();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(w) = ‖w − target‖² with the given optimizer; returns the
    /// final squared distance.
    fn optimize(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let target = Tensor::from_vec(vec![3.0, -2.0, 0.5], &[3]);
        let mut p = Param::new(Tensor::zeros([3]));
        for _ in 0..steps {
            p.zero_grad();
            // ∇ = 2(w − target)
            let diff = &p.value - &target;
            p.grad = &diff * 2.0;
            opt.step(&mut [&mut p]);
        }
        (&p.value - &target).norm_sq()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!(optimize(&mut opt, 100) < 1e-6);
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.05).with_momentum(0.9);
        assert!(optimize(&mut opt, 200) < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        assert!(optimize(&mut opt, 300) < 1e-4);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut p = Param::new(Tensor::from_vec(vec![1.0], &[1]));
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        // Zero task gradient: only decay acts.
        opt.step(&mut [&mut p]);
        assert!(p.value.as_slice()[0] < 1.0);
    }

    #[test]
    fn no_decay_params_are_exempt() {
        let mut p = Param::new(Tensor::from_vec(vec![1.0], &[1])).no_decay();
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        opt.step(&mut [&mut p]);
        assert_eq!(p.value.as_slice()[0], 1.0);
    }

    #[test]
    fn clamp_applied_after_step() {
        let mut p = Param::new(Tensor::from_vec(vec![0.95], &[1])).with_clamp(-1.0, 1.0);
        p.grad = Tensor::from_vec(vec![-10.0], &[1]);
        let mut opt = Sgd::new(0.1);
        opt.step(&mut [&mut p]);
        // Unclamped would be 0.95 + 1.0 = 1.95.
        assert_eq!(p.value.as_slice()[0], 1.0);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }
}
