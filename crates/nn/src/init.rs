//! Weight initialization schemes.

use rand::Rng;
use rbnn_tensor::Tensor;

/// He (Kaiming) normal initialization: `N(0, √(2 / fan_in))`.
///
/// Appropriate for layers followed by ReLU; also a good default for the
/// sign-activated binarized layers (their effective gain is similar).
pub fn he_normal(shape: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    Tensor::randn(shape, std, rng)
}

/// Glorot (Xavier) uniform initialization:
/// `U(−√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
pub fn glorot_uniform(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Tensor::rand_uniform(shape, -limit, limit, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn he_normal_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = he_normal(&[100, 100], 100, &mut rng);
        let std = t.variance().sqrt();
        let expect = (2.0f32 / 100.0).sqrt();
        assert!(
            (std - expect).abs() < 0.02,
            "std {std} too far from expected {expect}"
        );
    }

    #[test]
    fn glorot_uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = glorot_uniform(&[50, 50], 50, 50, &mut rng);
        let limit = (6.0f32 / 100.0).sqrt();
        assert!(t.max() <= limit && t.min() >= -limit);
        // Not degenerate.
        assert!(t.variance() > 0.0);
    }
}
