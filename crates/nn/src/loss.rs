//! Loss functions.

use rbnn_tensor::Tensor;

/// Numerically stable softmax over the trailing axis of a `[N, C]` tensor.
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().ndim(), 2, "softmax expects [batch, classes]");
    let (n, c) = (logits.dim(0), logits.dim(1));
    let mut out = Tensor::zeros([n, c]);
    let ls = logits.as_slice();
    let os = out.as_mut_slice();
    for i in 0..n {
        let row = &ls[i * c..(i + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0f32;
        for (j, &v) in row.iter().enumerate() {
            let e = (v - m).exp();
            os[i * c + j] = e;
            z += e;
        }
        for j in 0..c {
            os[i * c + j] /= z;
        }
    }
    out
}

/// Mean softmax cross-entropy loss and its gradient with respect to the
/// logits.
///
/// Returns `(loss, grad)` where `grad[i, j] = (softmax(l)[i, j] − 1{j = yᵢ}) / N`
/// — ready to feed into `Layer::backward` of the last layer.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size or a label is out of
/// range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().ndim(), 2, "expected [batch, classes] logits");
    let (n, c) = (logits.dim(0), logits.dim(1));
    assert_eq!(
        labels.len(),
        n,
        "label count {} != batch size {n}",
        labels.len()
    );

    let probs = softmax(logits);
    let ps = probs.as_slice();
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    let gs = grad.as_mut_slice();
    let inv_n = 1.0 / n as f32;
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < c, "label {y} out of range for {c} classes");
        loss -= (ps[i * c + y].max(1e-12)).ln();
        gs[i * c + y] -= 1.0;
    }
    for g in gs.iter_mut() {
        *g *= inv_n;
    }
    (loss * inv_n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Tensor::randn([7, 5], 3.0, &mut rng);
        let p = softmax(&l);
        for i in 0..7 {
            let s: f32 = p.as_slice()[i * 5..(i + 1) * 5].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(p.min() >= 0.0);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let l = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]);
        let p = softmax(&l);
        assert!(p.as_slice().iter().all(|v| v.is_finite()));
        let l2 = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]);
        assert!(p.allclose(&softmax(&l2), 1e-5));
    }

    #[test]
    fn uniform_logits_give_ln_c_loss() {
        let l = Tensor::zeros([4, 3]);
        let (loss, _) = softmax_cross_entropy(&l, &[0, 1, 2, 0]);
        assert!((loss - 3.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_gives_near_zero_loss() {
        let mut l = Tensor::zeros([2, 2]);
        *l.at_mut(&[0, 0]) = 50.0;
        *l.at_mut(&[1, 1]) = 50.0;
        let (loss, grad) = softmax_cross_entropy(&l, &[0, 1]);
        assert!(loss < 1e-4);
        assert!(grad.norm_sq() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = Tensor::randn([3, 4], 1.0, &mut rng);
        let labels = [1usize, 3, 0];
        let (_, grad) = softmax_cross_entropy(&l, &labels);
        let eps = 1e-2f32;
        for idx in 0..l.numel() {
            let mut lp = l.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = l.clone();
            lm.as_mut_slice()[idx] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels);
            let (fm, _) = softmax_cross_entropy(&lm, &labels);
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = grad.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-3,
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let l = Tensor::zeros([1, 2]);
        let _ = softmax_cross_entropy(&l, &[5]);
    }
}
