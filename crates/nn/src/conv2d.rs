//! 2-D convolution layers: standard, pointwise and depthwise.
//!
//! The EEG network (Table I) uses asymmetric 2-D kernels (30×1 in time, 1×64
//! in space); MobileNet V1 (§IV) is built from depthwise 3×3 + pointwise 1×1
//! pairs. All three shapes are covered here.

use rand::Rng;

use rbnn_tensor::{
    im2col2d, im2col2d_backward, im2col2d_batch, im2col2d_batch_backward, Conv2dGeom, Scratch,
    Tensor,
};

use crate::{init, Layer, Param, Phase, WeightMode};

/// A 2-D convolution over `[batch, channels, height, width]` images.
///
/// Weight shape `[out_channels, in_channels · kh · kw]`, lowered to matrix
/// multiplication through `im2col`. Supports independent kernel/stride/
/// padding per axis, which Table I of the paper requires.
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    in_channels: usize,
    out_channels: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    mode: WeightMode,
    // Persistent training buffers, refreshed in place each batch (see
    // `Conv1d`).
    cached_cols: Tensor,
    cached_geom: Option<Conv2dGeom>,
    cached_eff_w: Tensor,
    eff_w: Tensor,
    cache_valid: bool,
}

impl Conv2d {
    /// Creates a convolution with He-initialized weights and zero bias.
    ///
    /// `kernel`, `stride` and `padding` are `(height, width)` pairs.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
        mode: WeightMode,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = in_channels * kernel.0 * kernel.1;
        let mut weight = Param::new(init::he_normal(&[out_channels, fan_in], fan_in, rng));
        if mode.is_binary() {
            weight = weight.with_clamp(-1.0, 1.0);
        }
        Self {
            weight,
            bias: Some(Param::new(Tensor::zeros([out_channels])).no_decay()),
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            mode,
            cached_cols: Tensor::default(),
            cached_geom: None,
            cached_eff_w: Tensor::default(),
            eff_w: Tensor::default(),
            cache_valid: false,
        }
    }

    /// Convenience constructor for a 1×1 ("pointwise") convolution, the
    /// channel-mixing half of a depthwise-separable block.
    pub fn pointwise(
        in_channels: usize,
        out_channels: usize,
        mode: WeightMode,
        rng: &mut impl Rng,
    ) -> Self {
        Self::new(in_channels, out_channels, (1, 1), (1, 1), (0, 0), mode, rng)
    }

    /// Removes the bias term (builder style); used before BatchNorm.
    pub fn without_bias(mut self) -> Self {
        self.bias = None;
        self
    }

    /// The weight mode (real or binary).
    pub fn mode(&self) -> WeightMode {
        self.mode
    }

    /// The weights as seen by the forward pass.
    pub fn effective_weight(&self) -> Tensor {
        match self.mode {
            WeightMode::Real => self.weight.value.clone(),
            WeightMode::Binary => self.weight.value.signum_binary(),
        }
    }

    fn geom(&self, h: usize, w: usize) -> Conv2dGeom {
        Conv2dGeom::new(
            self.in_channels,
            h,
            w,
            self.kernel,
            self.stride,
            self.padding,
        )
    }

    /// Shared backward body; `need_dx` false skips the input-gradient
    /// GEMM and im2col scatter (root of the backward pass).
    fn backward_impl(&mut self, grad_out: &Tensor, scratch: &mut Scratch, need_dx: bool) -> Tensor {
        assert!(
            self.cache_valid,
            "Conv2d::backward called without forward(Phase::Train)"
        );
        self.cache_valid = false;
        let geom = self.cached_geom.take().expect("geometry cache missing");
        let n = grad_out.dim(0);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let plane = oh * ow;

        // Regroup grad_out [n, Co, oh, ow] into [Co, n·plane].
        let mut g_all = scratch.tensor_for_overwrite([self.out_channels, n * plane]);
        {
            let gs = grad_out.as_slice();
            let gd = g_all.as_mut_slice();
            for i in 0..n {
                for c in 0..self.out_channels {
                    let src = &gs[(i * self.out_channels + c) * plane..][..plane];
                    gd[c * n * plane + i * plane..c * n * plane + (i + 1) * plane]
                        .copy_from_slice(src);
                }
            }
        }

        let mut grad_w = scratch.tensor_for_overwrite(self.weight.value.shape().clone());
        g_all.matmul_nt_into(&self.cached_cols, &mut grad_w);
        if self.mode.is_binary() {
            self.weight.accumulate_ste_masked(&grad_w);
        } else {
            self.weight.grad += &grad_w;
        }
        scratch.recycle(grad_w);

        if let Some(b) = &mut self.bias {
            let gs = g_all.as_slice();
            let gb = b.grad.as_mut_slice();
            for (c, gbc) in gb.iter_mut().enumerate() {
                *gbc += gs[c * n * plane..(c + 1) * n * plane].iter().sum::<f32>();
            }
        }

        // Input gradient (GEMM + scatter) skipped at the backward root.
        if !need_dx {
            scratch.recycle(g_all);
            return Tensor::default();
        }
        let rows = geom.patch_rows();
        let mut gcols_all = scratch.tensor_for_overwrite([rows, n * plane]);
        self.cached_eff_w.matmul_tn_into(&g_all, &mut gcols_all);
        scratch.recycle(g_all);
        let mut grad_x =
            scratch.tensor_for_overwrite([n, self.in_channels, geom.height, geom.width]);
        im2col2d_batch_backward(&gcols_all, &geom, &mut grad_x);
        scratch.recycle(gcols_all);
        grad_x
    }
}

impl Layer for Conv2d {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn forward_with(&mut self, x: &Tensor, phase: Phase, scratch: &mut Scratch) -> Tensor {
        assert_eq!(
            x.shape().ndim(),
            4,
            "Conv2d expects [batch, channels, h, w]"
        );
        assert_eq!(
            x.dim(1),
            self.in_channels,
            "Conv2d: expected {} channels, got {}",
            self.in_channels,
            x.dim(1)
        );
        let n = x.dim(0);
        let geom = self.geom(x.dim(2), x.dim(3));
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let plane = oh * ow;
        let rows = geom.patch_rows();
        let train = phase.is_train();

        // Refresh the effective weight in place (sign(W) in binary mode);
        // training writes the buffer the backward pass reads.
        let eff_w: &Tensor = {
            let dst = if train {
                &mut self.cached_eff_w
            } else {
                &mut self.eff_w
            };
            match self.mode {
                WeightMode::Real => dst.copy_from(&self.weight.value),
                WeightMode::Binary => self.weight.value.signum_binary_into(dst),
            }
            if train {
                &self.cached_eff_w
            } else {
                &self.eff_w
            }
        };

        // One batched patch matrix [rows, n·plane] → a single large matmul
        // per layer instead of n small ones; training keeps it for the
        // backward pass, eval recycles it immediately.
        let mut eval_cols = None;
        let cols: &Tensor = if train {
            im2col2d_batch(x, &geom, &mut self.cached_cols);
            &self.cached_cols
        } else {
            let mut cols = scratch.tensor_for_overwrite([rows, n * plane]);
            im2col2d_batch(x, &geom, &mut cols);
            eval_cols.insert(cols)
        };
        let mut y_all = scratch.tensor_for_overwrite([self.out_channels, n * plane]);
        eff_w.matmul_into(cols, &mut y_all);

        let mut out = scratch.tensor_for_overwrite([n, self.out_channels, oh, ow]);
        {
            let ys = y_all.as_slice();
            let os = out.as_mut_slice();
            let bias = self.bias.as_ref().map(|b| b.value.as_slice());
            for c in 0..self.out_channels {
                let bv = bias.map_or(0.0, |b| b[c]);
                for i in 0..n {
                    let src = &ys[c * n * plane + i * plane..][..plane];
                    let dst = &mut os[(i * self.out_channels + c) * plane..][..plane];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d = s + bv;
                    }
                }
            }
        }
        scratch.recycle(y_all);
        if let Some(cols) = eval_cols {
            scratch.recycle(cols);
        }
        if train {
            self.cached_geom = Some(geom);
            self.cache_valid = true;
        }
        out
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        self.backward_impl(grad_out, scratch, true)
    }

    fn backward_root_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        self.backward_impl(grad_out, scratch, false)
    }
    fn params(&self) -> Vec<&Param> {
        let mut v = vec![&self.weight];
        if let Some(b) = &self.bias {
            v.push(b);
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }

    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        assert_eq!(
            in_shape.len(),
            3,
            "Conv2d expects [channels, h, w] per sample"
        );
        assert_eq!(in_shape[0], self.in_channels);
        let geom = self.geom(in_shape[1], in_shape[2]);
        vec![self.out_channels, geom.out_h(), geom.out_w()]
    }

    fn name(&self) -> String {
        let tag = if self.mode.is_binary() {
            "BinConv2d"
        } else {
            "Conv2d"
        };
        format!(
            "{tag}({}→{}, k{}×{}, s{}×{}, p{}×{})",
            self.in_channels,
            self.out_channels,
            self.kernel.0,
            self.kernel.1,
            self.stride.0,
            self.stride.1,
            self.padding.0,
            self.padding.1
        )
    }
}

/// A depthwise 2-D convolution: each input channel is filtered independently
/// by its own `kh × kw` kernel (channel multiplier 1, as in MobileNet V1).
///
/// Weight shape `[channels, kh · kw]`.
#[derive(Debug)]
pub struct DepthwiseConv2d {
    weight: Param,
    bias: Option<Param>,
    channels: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    mode: WeightMode,
    cached_cols: Vec<Vec<Tensor>>,
    cached_geom: Option<Conv2dGeom>,
    cached_eff_w: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution with He-initialized weights.
    pub fn new(
        channels: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
        mode: WeightMode,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = kernel.0 * kernel.1;
        let mut weight = Param::new(init::he_normal(&[channels, fan_in], fan_in, rng));
        if mode.is_binary() {
            weight = weight.with_clamp(-1.0, 1.0);
        }
        Self {
            weight,
            bias: Some(Param::new(Tensor::zeros([channels])).no_decay()),
            channels,
            kernel,
            stride,
            padding,
            mode,
            cached_cols: Vec::new(),
            cached_geom: None,
            cached_eff_w: None,
        }
    }

    /// Removes the bias term (builder style); used before BatchNorm.
    pub fn without_bias(mut self) -> Self {
        self.bias = None;
        self
    }

    /// The weights as seen by the forward pass.
    pub fn effective_weight(&self) -> Tensor {
        match self.mode {
            WeightMode::Real => self.weight.value.clone(),
            WeightMode::Binary => self.weight.value.signum_binary(),
        }
    }

    fn geom(&self, h: usize, w: usize) -> Conv2dGeom {
        // Per-channel geometry: one channel at a time.
        Conv2dGeom::new(1, h, w, self.kernel, self.stride, self.padding)
    }
}

impl Layer for DepthwiseConv2d {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn forward_with(&mut self, x: &Tensor, phase: Phase, scratch: &mut Scratch) -> Tensor {
        assert_eq!(
            x.shape().ndim(),
            4,
            "DepthwiseConv2d expects [batch, channels, h, w]"
        );
        assert_eq!(x.dim(1), self.channels, "channel count mismatch");
        let n = x.dim(0);
        let (h, w) = (x.dim(2), x.dim(3));
        let geom = self.geom(h, w);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let plane_out = oh * ow;
        let ktaps = self.kernel.0 * self.kernel.1;
        let eff_w = self.effective_weight();

        let mut out = scratch.tensor([n, self.channels, oh, ow]);
        self.cached_cols.clear();
        let xs = x.as_slice();
        let plane_in = h * w;
        for i in 0..n {
            let mut sample_cols = Vec::with_capacity(self.channels);
            for c in 0..self.channels {
                let off = (i * self.channels + c) * plane_in;
                let chan = Tensor::from_vec(xs[off..off + plane_in].to_vec(), [1, h, w]);
                let cols = im2col2d(&chan, &geom); // [ktaps, oh·ow]
                let wrow = &eff_w.as_slice()[c * ktaps..(c + 1) * ktaps];
                let bval = self.bias.as_ref().map_or(0.0, |b| b.value.as_slice()[c]);
                let dst_off = (i * self.channels + c) * plane_out;
                let dst = &mut out.as_mut_slice()[dst_off..dst_off + plane_out];
                let cs = cols.as_slice();
                for (t, d) in dst.iter_mut().enumerate() {
                    let mut acc = bval;
                    for (k, &wv) in wrow.iter().enumerate() {
                        acc += wv * cs[k * plane_out + t];
                    }
                    *d = acc;
                }
                if phase.is_train() {
                    sample_cols.push(cols);
                }
            }
            if phase.is_train() {
                self.cached_cols.push(sample_cols);
            }
        }
        if phase.is_train() {
            self.cached_geom = Some(geom);
            self.cached_eff_w = Some(eff_w);
        }
        out
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        let geom = self
            .cached_geom
            .take()
            .expect("DepthwiseConv2d::backward called without forward(Phase::Train)");
        let eff_w = self
            .cached_eff_w
            .take()
            .expect("effective weight cache missing");
        let n = grad_out.dim(0);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let plane_out = oh * ow;
        let ktaps = self.kernel.0 * self.kernel.1;

        let mut grad_w = scratch.tensor(self.weight.value.shape().clone());
        let mut grad_x = scratch.tensor([n, self.channels, geom.height, geom.width]);
        let plane_in = geom.height * geom.width;
        let gs = grad_out.as_slice();
        for i in 0..n {
            for c in 0..self.channels {
                let cols = &self.cached_cols[i][c];
                let cs = cols.as_slice();
                let g = &gs[(i * self.channels + c) * plane_out..][..plane_out];
                // dW[c, k] += Σ_t g[t] · cols[k, t]
                let gw = &mut grad_w.as_mut_slice()[c * ktaps..(c + 1) * ktaps];
                for (k, gwk) in gw.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for (t, &gv) in g.iter().enumerate() {
                        acc += gv * cs[k * plane_out + t];
                    }
                    *gwk += acc;
                }
                // dcols[k, t] = w[c, k] · g[t]
                let wrow = &eff_w.as_slice()[c * ktaps..(c + 1) * ktaps];
                let mut gcols = Tensor::zeros([ktaps, plane_out]);
                {
                    let gc = gcols.as_mut_slice();
                    for (k, &wv) in wrow.iter().enumerate() {
                        for (t, &gv) in g.iter().enumerate() {
                            gc[k * plane_out + t] = wv * gv;
                        }
                    }
                }
                let gchan = im2col2d_backward(&gcols, &geom);
                let dst =
                    &mut grad_x.as_mut_slice()[(i * self.channels + c) * plane_in..][..plane_in];
                for (d, &s) in dst.iter_mut().zip(gchan.as_slice()) {
                    *d += s;
                }
                if let Some(b) = &mut self.bias {
                    b.grad.as_mut_slice()[c] += g.iter().sum::<f32>();
                }
            }
        }
        if self.mode.is_binary() {
            self.weight.accumulate_ste_masked(&grad_w);
        } else {
            self.weight.grad += &grad_w;
        }
        scratch.recycle(grad_w);
        self.cached_cols.clear();
        grad_x
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = vec![&self.weight];
        if let Some(b) = &self.bias {
            v.push(b);
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }

    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        assert_eq!(
            in_shape.len(),
            3,
            "DepthwiseConv2d expects [channels, h, w]"
        );
        assert_eq!(in_shape[0], self.channels);
        let geom = self.geom(in_shape[1], in_shape[2]);
        vec![self.channels, geom.out_h(), geom.out_w()]
    }

    fn name(&self) -> String {
        let tag = if self.mode.is_binary() {
            "BinDwConv2d"
        } else {
            "DwConv2d"
        };
        format!(
            "{tag}({}ch, k{}×{}, s{}×{})",
            self.channels, self.kernel.0, self.kernel.1, self.stride.0, self.stride.1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn eeg_table1_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        // Conv in time: 1→40 channels, kernel 30×1, padding 15×0.
        let c1 = Conv2d::new(1, 40, (30, 1), (1, 1), (15, 0), WeightMode::Real, &mut rng);
        assert_eq!(c1.out_shape(&[1, 960, 64]), vec![40, 961, 64]);
        // Conv in space: 40→40 channels, kernel 1×64.
        let c2 = Conv2d::new(40, 40, (1, 64), (1, 1), (0, 0), WeightMode::Real, &mut rng);
        assert_eq!(c2.out_shape(&[40, 961, 64]), vec![40, 961, 1]);
    }

    #[test]
    fn pointwise_is_channel_mixing_only() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut pw = Conv2d::pointwise(2, 1, WeightMode::Real, &mut rng);
        pw.weight.value = Tensor::from_vec(vec![2.0, -1.0], &[1, 2]);
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        );
        let y = pw.forward(&x, Phase::Eval);
        // y = 2·ch0 − 1·ch1 pixelwise
        assert_eq!(y.as_slice(), &[-8.0, -16.0, -24.0, -32.0]);
    }

    #[test]
    fn conv2d_backward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(2, 3, (3, 3), (2, 2), (1, 1), WeightMode::Real, &mut rng);
        let x = Tensor::randn([2, 2, 8, 8], 1.0, &mut rng);
        let y = conv.forward(&x, Phase::Train);
        assert_eq!(y.dims(), &[2, 3, 4, 4]);
        let gx = conv.backward(&Tensor::ones(y.shape().clone()));
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn depthwise_matches_manual_per_channel_filter() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut dw = DepthwiseConv2d::new(2, (1, 1), (1, 1), (0, 0), WeightMode::Real, &mut rng);
        dw.weight.value = Tensor::from_vec(vec![2.0, -3.0], &[2, 1]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 1, 2]);
        let y = dw.forward(&x, Phase::Eval);
        // ch0 scaled by 2, ch1 scaled by −3.
        assert_eq!(y.as_slice(), &[2.0, 4.0, -9.0, -12.0]);
    }

    #[test]
    fn depthwise_equals_grouped_conv2d() {
        // A depthwise conv must equal C independent 1-channel Conv2ds.
        let mut rng = StdRng::seed_from_u64(3);
        let mut dw = DepthwiseConv2d::new(3, (3, 3), (1, 1), (1, 1), WeightMode::Real, &mut rng);
        let x = Tensor::randn([2, 3, 6, 6], 1.0, &mut rng);
        let y = dw.forward(&x, Phase::Eval);
        for c in 0..3 {
            let mut single = Conv2d::new(1, 1, (3, 3), (1, 1), (1, 1), WeightMode::Real, &mut rng);
            let ktaps = 9;
            single.weight.value = Tensor::from_vec(
                dw.weight.value.as_slice()[c * ktaps..(c + 1) * ktaps].to_vec(),
                [1, ktaps],
            );
            single.bias.as_mut().unwrap().value =
                Tensor::from_vec(vec![dw.bias.as_ref().unwrap().value.as_slice()[c]], [1]);
            // Build the 1-channel input for channel c.
            let mut xc = Tensor::zeros([2, 1, 6, 6]);
            for i in 0..2 {
                let s = x.index_axis0(i);
                let plane = 36;
                let chan =
                    Tensor::from_vec(s.as_slice()[c * plane..(c + 1) * plane].to_vec(), [1, 6, 6]);
                xc.set_axis0(i, &chan);
            }
            let yc = single.forward(&xc, Phase::Eval);
            for i in 0..2 {
                let got = y.index_axis0(i);
                let expect = yc.index_axis0(i);
                let plane = 36;
                let got_c = &got.as_slice()[c * plane..(c + 1) * plane];
                assert!(
                    got_c
                        .iter()
                        .zip(expect.as_slice())
                        .all(|(a, b)| (a - b).abs() < 1e-4),
                    "channel {c} mismatch"
                );
            }
        }
    }

    #[test]
    fn depthwise_backward_accumulates() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut dw = DepthwiseConv2d::new(2, (3, 3), (1, 1), (1, 1), WeightMode::Real, &mut rng);
        let x = Tensor::randn([1, 2, 5, 5], 1.0, &mut rng);
        let y = dw.forward(&x, Phase::Train);
        let gx = dw.backward(&Tensor::ones(y.shape().clone()));
        assert_eq!(gx.dims(), x.dims());
        assert!(dw.weight.grad.norm_sq() > 0.0);
        // 25 output pixels of unit gradient per channel.
        assert_eq!(dw.bias.as_ref().unwrap().grad.as_slice(), &[25.0, 25.0]);
    }
}
