//! Pooling layers: max/average, 1-D and 2-D, plus global average pooling.

use rbnn_tensor::{Scratch, Tensor};

use crate::{Layer, Phase};

/// Pooling reduction kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Maximum over the window (backward routes to the argmax).
    Max,
    /// Mean over the window (backward spreads evenly).
    Avg,
}

/// 1-D pooling over `[batch, channels, len]` (Table II uses max pool 2×1).
#[derive(Debug)]
pub struct Pool1d {
    kind: PoolKind,
    kernel: usize,
    stride: usize,
    cached_argmax: Vec<usize>,
    cached_in_dims: Vec<usize>,
}

impl Pool1d {
    /// Creates a pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn new(kind: PoolKind, kernel: usize, stride: usize) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        Self {
            kind,
            kernel,
            stride,
            cached_argmax: Vec::new(),
            cached_in_dims: Vec::new(),
        }
    }

    /// Max pooling with `stride == kernel` (the paper's 2×1 max pools).
    pub fn max(kernel: usize) -> Self {
        Self::new(PoolKind::Max, kernel, kernel)
    }

    fn out_len(&self, len: usize) -> usize {
        assert!(len >= self.kernel, "input shorter than pooling window");
        (len - self.kernel) / self.stride + 1
    }
}

impl Layer for Pool1d {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn forward_with(&mut self, x: &Tensor, phase: Phase, scratch: &mut Scratch) -> Tensor {
        assert_eq!(x.shape().ndim(), 3, "Pool1d expects [batch, channels, len]");
        let (n, c, l) = (x.dim(0), x.dim(1), x.dim(2));
        let ol = self.out_len(l);
        let mut out = scratch.tensor_for_overwrite([n, c, ol]);
        let xs = x.as_slice();
        let os = out.as_mut_slice();
        if phase.is_train() {
            self.cached_argmax = vec![0; n * c * ol];
            self.cached_in_dims = x.dims().to_vec();
        }
        for nc in 0..n * c {
            let src = &xs[nc * l..(nc + 1) * l];
            for t in 0..ol {
                let start = t * self.stride;
                let window = &src[start..start + self.kernel];
                match self.kind {
                    PoolKind::Max => {
                        let (mut best_k, mut best_v) = (0, f32::NEG_INFINITY);
                        for (k, &v) in window.iter().enumerate() {
                            if v > best_v {
                                best_v = v;
                                best_k = k;
                            }
                        }
                        os[nc * ol + t] = best_v;
                        if phase.is_train() {
                            self.cached_argmax[nc * ol + t] = start + best_k;
                        }
                    }
                    PoolKind::Avg => {
                        os[nc * ol + t] = window.iter().sum::<f32>() / self.kernel as f32;
                    }
                }
            }
        }
        out
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        assert!(
            !self.cached_in_dims.is_empty(),
            "Pool1d::backward called without forward(Phase::Train)"
        );
        let dims = std::mem::take(&mut self.cached_in_dims);
        let (n, c, l) = (dims[0], dims[1], dims[2]);
        let ol = self.out_len(l);
        // Max routes to the argmax / Avg spreads: both accumulate, so the
        // gradient buffer must start zeroed.
        let mut grad_x = scratch.tensor([n, c, l]);
        let gs = grad_out.as_slice();
        let gx = grad_x.as_mut_slice();
        for nc in 0..n * c {
            for t in 0..ol {
                let g = gs[nc * ol + t];
                match self.kind {
                    PoolKind::Max => {
                        gx[nc * l + self.cached_argmax[nc * ol + t]] += g;
                    }
                    PoolKind::Avg => {
                        let start = t * self.stride;
                        let share = g / self.kernel as f32;
                        for k in 0..self.kernel {
                            gx[nc * l + start + k] += share;
                        }
                    }
                }
            }
        }
        self.cached_argmax.clear();
        grad_x
    }

    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        assert_eq!(
            in_shape.len(),
            2,
            "Pool1d expects [channels, len] per sample"
        );
        vec![in_shape[0], self.out_len(in_shape[1])]
    }

    fn name(&self) -> String {
        let tag = match self.kind {
            PoolKind::Max => "MaxPool1d",
            PoolKind::Avg => "AvgPool1d",
        };
        format!("{tag}(k{}, s{})", self.kernel, self.stride)
    }
}

/// 2-D pooling over `[batch, channels, h, w]` (Table I uses average pooling
/// 30×1 with stride 15).
#[derive(Debug)]
pub struct Pool2d {
    kind: PoolKind,
    kernel: (usize, usize),
    stride: (usize, usize),
    cached_argmax: Vec<usize>,
    cached_in_dims: Vec<usize>,
}

impl Pool2d {
    /// Creates a pooling layer with `(height, width)` kernel and stride.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn new(kind: PoolKind, kernel: (usize, usize), stride: (usize, usize)) -> Self {
        assert!(
            kernel.0 > 0 && kernel.1 > 0 && stride.0 > 0 && stride.1 > 0,
            "kernel and stride must be positive"
        );
        Self {
            kind,
            kernel,
            stride,
            cached_argmax: Vec::new(),
            cached_in_dims: Vec::new(),
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h >= self.kernel.0 && w >= self.kernel.1,
            "input smaller than window"
        );
        (
            (h - self.kernel.0) / self.stride.0 + 1,
            (w - self.kernel.1) / self.stride.1 + 1,
        )
    }
}

impl Layer for Pool2d {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn forward_with(&mut self, x: &Tensor, phase: Phase, scratch: &mut Scratch) -> Tensor {
        assert_eq!(
            x.shape().ndim(),
            4,
            "Pool2d expects [batch, channels, h, w]"
        );
        let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        let (oh, ow) = self.out_hw(h, w);
        let mut out = scratch.tensor_for_overwrite([n, c, oh, ow]);
        let xs = x.as_slice();
        let os = out.as_mut_slice();
        let plane_in = h * w;
        let plane_out = oh * ow;
        let window = (self.kernel.0 * self.kernel.1) as f32;
        if phase.is_train() {
            self.cached_argmax = vec![0; n * c * plane_out];
            self.cached_in_dims = x.dims().to_vec();
        }
        for nc in 0..n * c {
            let src = &xs[nc * plane_in..(nc + 1) * plane_in];
            for oy in 0..oh {
                for ox in 0..ow {
                    let (y0, x0) = (oy * self.stride.0, ox * self.stride.1);
                    match self.kind {
                        PoolKind::Max => {
                            let (mut best_idx, mut best_v) = (0, f32::NEG_INFINITY);
                            for ky in 0..self.kernel.0 {
                                for kx in 0..self.kernel.1 {
                                    let idx = (y0 + ky) * w + (x0 + kx);
                                    if src[idx] > best_v {
                                        best_v = src[idx];
                                        best_idx = idx;
                                    }
                                }
                            }
                            os[nc * plane_out + oy * ow + ox] = best_v;
                            if phase.is_train() {
                                self.cached_argmax[nc * plane_out + oy * ow + ox] = best_idx;
                            }
                        }
                        PoolKind::Avg => {
                            let mut acc = 0.0;
                            for ky in 0..self.kernel.0 {
                                for kx in 0..self.kernel.1 {
                                    acc += src[(y0 + ky) * w + (x0 + kx)];
                                }
                            }
                            os[nc * plane_out + oy * ow + ox] = acc / window;
                        }
                    }
                }
            }
        }
        out
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        assert!(
            !self.cached_in_dims.is_empty(),
            "Pool2d::backward called without forward(Phase::Train)"
        );
        let dims = std::mem::take(&mut self.cached_in_dims);
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let (oh, ow) = self.out_hw(h, w);
        let plane_in = h * w;
        let plane_out = oh * ow;
        let window = (self.kernel.0 * self.kernel.1) as f32;
        // Accumulating scatter: must start zeroed.
        let mut grad_x = scratch.tensor([n, c, h, w]);
        let gs = grad_out.as_slice();
        let gx = grad_x.as_mut_slice();
        for nc in 0..n * c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = gs[nc * plane_out + oy * ow + ox];
                    match self.kind {
                        PoolKind::Max => {
                            gx[nc * plane_in
                                + self.cached_argmax[nc * plane_out + oy * ow + ox]] += g;
                        }
                        PoolKind::Avg => {
                            let (y0, x0) = (oy * self.stride.0, ox * self.stride.1);
                            let share = g / window;
                            for ky in 0..self.kernel.0 {
                                for kx in 0..self.kernel.1 {
                                    gx[nc * plane_in + (y0 + ky) * w + (x0 + kx)] += share;
                                }
                            }
                        }
                    }
                }
            }
        }
        self.cached_argmax.clear();
        grad_x
    }

    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        assert_eq!(
            in_shape.len(),
            3,
            "Pool2d expects [channels, h, w] per sample"
        );
        let (oh, ow) = self.out_hw(in_shape[1], in_shape[2]);
        vec![in_shape[0], oh, ow]
    }

    fn name(&self) -> String {
        let tag = match self.kind {
            PoolKind::Max => "MaxPool2d",
            PoolKind::Avg => "AvgPool2d",
        };
        format!(
            "{tag}(k{}×{}, s{}×{})",
            self.kernel.0, self.kernel.1, self.stride.0, self.stride.1
        )
    }
}

/// Global average pooling `[batch, channels, h, w] → [batch, channels]`
/// (the head of MobileNet V1).
#[derive(Debug, Default)]
pub struct GlobalAvgPool2d {
    cached_in_dims: Vec<usize>,
}

impl GlobalAvgPool2d {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool2d {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn forward_with(&mut self, x: &Tensor, phase: Phase, scratch: &mut Scratch) -> Tensor {
        assert_eq!(
            x.shape().ndim(),
            4,
            "GlobalAvgPool2d expects [batch, channels, h, w]"
        );
        let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        let plane = h * w;
        let mut out = scratch.tensor_for_overwrite([n, c]);
        let xs = x.as_slice();
        let os = out.as_mut_slice();
        for nc in 0..n * c {
            os[nc] = xs[nc * plane..(nc + 1) * plane].iter().sum::<f32>() / plane as f32;
        }
        if phase.is_train() {
            self.cached_in_dims = x.dims().to_vec();
        }
        out
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        assert!(
            !self.cached_in_dims.is_empty(),
            "GlobalAvgPool2d::backward called without forward(Phase::Train)"
        );
        let dims = std::mem::take(&mut self.cached_in_dims);
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = h * w;
        let mut grad_x = scratch.tensor_for_overwrite([n, c, h, w]);
        let gs = grad_out.as_slice();
        let gx = grad_x.as_mut_slice();
        for nc in 0..n * c {
            let share = gs[nc] / plane as f32;
            for t in 0..plane {
                gx[nc * plane + t] = share;
            }
        }
        grad_x
    }

    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        assert_eq!(
            in_shape.len(),
            3,
            "GlobalAvgPool2d expects [channels, h, w]"
        );
        vec![in_shape[0]]
    }

    fn name(&self) -> String {
        "GlobalAvgPool".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool1d_forward_backward() {
        let mut p = Pool1d::max(2);
        let x = Tensor::from_vec(vec![1.0, 3.0, 2.0, 0.0], &[1, 1, 4]);
        let y = p.forward(&x, Phase::Train);
        assert_eq!(y.as_slice(), &[3.0, 2.0]);
        let gx = p.backward(&Tensor::from_vec(vec![10.0, 20.0], &[1, 1, 2]));
        assert_eq!(gx.as_slice(), &[0.0, 10.0, 20.0, 0.0]);
    }

    #[test]
    fn table2_pool_shapes() {
        // 738 → 369 → (conv 11) 359 → 179.
        let p = Pool1d::max(2);
        assert_eq!(p.out_shape(&[32, 738]), vec![32, 369]);
        assert_eq!(p.out_shape(&[32, 359]), vec![32, 179]);
    }

    #[test]
    fn avg_pool1d_spreads_gradient() {
        let mut p = Pool1d::new(PoolKind::Avg, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 4]);
        let y = p.forward(&x, Phase::Train);
        assert_eq!(y.as_slice(), &[2.0, 6.0]);
        let gx = p.backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 1, 2]));
        assert_eq!(gx.as_slice(), &[2.0, 2.0, 4.0, 4.0]);
    }

    #[test]
    fn table1_avg_pool_shape() {
        // Avg pool 30×1 stride 15×1: 961×1 → 63×1.
        let p = Pool2d::new(PoolKind::Avg, (30, 1), (15, 1));
        assert_eq!(p.out_shape(&[40, 961, 1]), vec![40, 63, 1]);
    }

    #[test]
    fn max_pool2d_forward_backward() {
        let mut p = Pool2d::new(PoolKind::Max, (2, 2), (2, 2));
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        );
        let y = p.forward(&x, Phase::Train);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
        let gx = p.backward(&Tensor::ones([1, 1, 2, 2]));
        assert_eq!(gx.sum(), 4.0);
        assert_eq!(gx.at(&[0, 0, 1, 1]), 1.0); // position of 6
    }

    #[test]
    fn global_avg_pool() {
        let mut p = GlobalAvgPool2d::new();
        let x = Tensor::from_fn([1, 2, 2, 2], |i| i as f32);
        let y = p.forward(&x, Phase::Train);
        assert_eq!(y.as_slice(), &[1.5, 5.5]);
        let gx = p.backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 2]));
        assert_eq!(gx.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(gx.at(&[0, 1, 1, 1]), 2.0);
        assert_eq!(p.out_shape(&[64, 7, 7]), vec![64]);
    }

    #[test]
    fn avg_pool_conserves_gradient_mass() {
        let mut p = Pool2d::new(PoolKind::Avg, (2, 2), (2, 2));
        let x = Tensor::from_fn([1, 1, 4, 4], |i| i as f32);
        let _ = p.forward(&x, Phase::Train);
        let g = Tensor::ones([1, 1, 2, 2]);
        let gx = p.backward(&g);
        // Non-overlapping windows: total gradient mass is conserved.
        assert!((gx.sum() - g.sum()).abs() < 1e-6);
    }
}
