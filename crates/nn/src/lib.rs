//! # rbnn-nn
//!
//! A from-scratch, training-capable neural-network framework sized for the
//! [rram-bnn](https://arxiv.org/abs/2006.11595) reproduction. It provides
//! every building block the paper's models need:
//!
//! * layers: [`Dense`], [`Conv1d`], [`Conv2d`], [`DepthwiseConv2d`],
//!   [`Pool1d`]/[`Pool2d`]/[`GlobalAvgPool2d`], [`BatchNorm`], [`Dropout`],
//!   [`Flatten`], [`Activation`] (ReLU / hardtanh / sign);
//! * binarization: every weighted layer accepts a [`WeightMode`]; in
//!   [`WeightMode::Binary`] it trains latent real weights with the
//!   straight-through estimator and presents `sign(w)` to the forward pass —
//!   the training-time counterpart of weights stored in differential 2T2R
//!   RRAM pairs;
//! * optimization: [`Sgd`] and [`Adam`] with post-step weight clamping;
//! * a mini-batch [`train::fit`] loop with history, plus
//!   [`metrics`] and softmax cross-entropy [`loss`];
//! * [`gradcheck`] — finite-difference validation used throughout the
//!   test-suite.
//!
//! ```
//! use rbnn_nn::{Activation, Adam, Dense, Sequential, WeightMode, train};
//! use rbnn_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = Sequential::new();
//! net.push(Dense::new(4, 8, WeightMode::Real, &mut rng));
//! net.push(Activation::relu());
//! net.push(Dense::new(8, 2, WeightMode::Real, &mut rng));
//!
//! let x = Tensor::randn([16, 4], 1.0, &mut rng);
//! let y = vec![0usize; 16];
//! let mut opt = Adam::new(0.01);
//! let cfg = train::TrainConfig { epochs: 2, ..Default::default() };
//! let history = train::fit(
//!     &mut net,
//!     train::Labelled::new(&x, &y),
//!     None,
//!     &mut opt,
//!     &cfg,
//! );
//! assert_eq!(history.train_loss.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod activation;
mod batchnorm;
mod conv1d;
mod conv2d;
mod dense;
mod dropout;
mod flatten;
pub mod gradcheck;
pub mod init;
mod layer;
pub mod loss;
pub mod metrics;
mod optim;
mod param;
mod pool;
mod schedule;
mod sequential;
mod split;
pub mod train;

pub use activation::{Activation, ActivationKind};
pub use batchnorm::BatchNorm;
pub use conv1d::Conv1d;
pub use conv2d::{Conv2d, DepthwiseConv2d};
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use layer::{Layer, Phase, WeightMode};
pub use optim::{Adam, Optimizer, Sgd};
pub use param::Param;
pub use pool::{GlobalAvgPool2d, Pool1d, Pool2d, PoolKind};
pub use schedule::LrSchedule;
pub use sequential::{ModelSummary, Sequential, SummaryRow};
pub use split::SplitModel;
// Re-exported so `Layer` implementors outside this crate can name the
// scratch arena the trait's hot-path methods take.
pub use rbnn_tensor::Scratch;
