//! Flatten layer: collapses per-sample dimensions to a feature vector.

use rbnn_tensor::{Scratch, Tensor};

use crate::{Layer, Phase};

/// Flattens `[N, d₁, d₂, …]` into `[N, d₁·d₂·…]` — the bridge between the
/// convolutional feature extractor and the dense classifier (the boundary at
/// which the paper's *classifier binarization* strategy switches precision).
#[derive(Debug, Default)]
pub struct Flatten {
    cached_dims: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn forward_with(&mut self, x: &Tensor, phase: Phase, scratch: &mut Scratch) -> Tensor {
        assert!(x.shape().ndim() >= 2, "Flatten expects a batched tensor");
        let n = x.dim(0);
        let features: usize = x.dims()[1..].iter().product();
        if phase.is_train() {
            self.cached_dims = x.dims().to_vec();
        }
        let mut y = scratch.tensor_for_overwrite([n, features]);
        y.as_mut_slice().copy_from_slice(x.as_slice());
        y
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        assert!(
            !self.cached_dims.is_empty(),
            "Flatten::backward called without forward(Phase::Train)"
        );
        let dims = std::mem::take(&mut self.cached_dims);
        let mut gx = scratch.tensor_for_overwrite(dims);
        gx.as_mut_slice().copy_from_slice(grad_out.as_slice());
        gx
    }

    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        vec![in_shape.iter().product()]
    }

    fn name(&self) -> String {
        "Flatten".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_flatten_is_2520() {
        // Paper Table I: 63×1×40 → 2520.
        let f = Flatten::new();
        assert_eq!(f.out_shape(&[40, 63, 1]), vec![2520]);
    }

    #[test]
    fn table2_flatten_is_5152() {
        // Paper Table II: 161×1×32 → 5152.
        let f = Flatten::new();
        assert_eq!(f.out_shape(&[32, 161]), vec![5152]);
    }

    #[test]
    fn roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::from_fn([2, 3, 4], |i| i as f32);
        let y = f.forward(&x, Phase::Train);
        assert_eq!(y.dims(), &[2, 12]);
        let gx = f.backward(&y);
        assert_eq!(gx.dims(), &[2, 3, 4]);
        assert_eq!(gx.as_slice(), x.as_slice());
    }
}
