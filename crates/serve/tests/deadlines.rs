//! Request-deadline semantics: a request whose deadline has passed by the
//! time a worker forms its batch is dropped *before* the engine sees it
//! and answered with [`ServeError::DeadlineExceeded`]; a request with
//! headroom is unaffected.

use std::time::Duration;

use rbnn_serve::{
    Backend, ModelRegistry, Priority, ServeConfig, ServeError, ServeTask, Server, SubmitOptions,
};

fn features(registry: &ModelRegistry, task: ServeTask) -> Vec<f32> {
    let n = registry
        .get(task)
        .expect("registered")
        .network
        .in_features();
    (0..n).map(|i| (i % 3) as f32 - 1.0).collect()
}

#[test]
fn expired_deadline_is_rejected_before_dispatch() {
    let registry = ModelRegistry::demo(7);
    let server = Server::start(
        &registry,
        &ServeConfig {
            workers: 1,
            backend: Backend::Software,
            ..Default::default()
        },
    );
    let handle = server.handle();
    let ecg = features(&registry, ServeTask::Ecg);

    // A zero deadline is already expired when the batch forms.
    let expired = handle.classify_with(
        ServeTask::Ecg,
        ecg.clone(),
        &SubmitOptions {
            deadline: Some(Duration::ZERO),
            ..Default::default()
        },
    );
    assert_eq!(expired, Err(ServeError::DeadlineExceeded));
    assert!(
        !ServeError::DeadlineExceeded.is_retryable(),
        "an expired deadline must not be retried — the answer is late either way"
    );

    // Generous headroom sails through, urgent or routine.
    for priority in [Priority::Routine, Priority::Urgent] {
        let opts = SubmitOptions {
            priority,
            deadline: Some(Duration::from_secs(30)),
        };
        handle
            .classify_with(ServeTask::Ecg, ecg.clone(), &opts)
            .expect("deadline with headroom serves normally");
    }

    let snap = server.shutdown();
    assert_eq!(snap.expired, 1, "expired counter tracks the drop: {snap}");
    assert_eq!(snap.completed, 2);
}

#[test]
fn urgent_constructor_sets_lane_and_deadline() {
    let opts = SubmitOptions::urgent(Some(Duration::from_millis(250)));
    assert_eq!(opts.priority, Priority::Urgent);
    assert_eq!(opts.deadline, Some(Duration::from_millis(250)));
    let routine = SubmitOptions::routine();
    assert_eq!(routine.priority, Priority::Routine);
    assert_eq!(routine.deadline, None);
}
