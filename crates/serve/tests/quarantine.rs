//! Crash-loop containment: a replica that faults on every respawn attempt
//! is quarantined after the policy cap — it stops consuming backoff
//! cycles, its task fails fast, and the rest of the pool is untouched.
//!
//! One test function on purpose: the injection hook is process-wide, so
//! concurrent test threads arming it would race each other.

use std::time::Duration;

use rbnn_serve::{
    Backend, ModelRegistry, ReplicaHealth, ServeConfig, ServeError, ServeTask, Server,
    SupervisorPolicy,
};

fn features(registry: &ModelRegistry, task: ServeTask) -> Vec<f32> {
    let n = registry
        .get(task)
        .expect("registered")
        .network
        .in_features();
    (0..n).map(|i| (i % 5) as f32 - 2.0).collect()
}

#[test]
fn crash_looping_replica_is_quarantined_not_retried_forever() {
    let registry = ModelRegistry::demo(7);
    let quarantine_after = 3u32;
    let config = ServeConfig {
        workers: 1,
        backend: Backend::Software,
        supervisor: SupervisorPolicy {
            // Near-zero backoff so the crash loop plays out quickly; the
            // cap is what this test is about.
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            quarantine_after,
        },
        ..Default::default()
    };
    let server = Server::start(&registry, &config);
    let handle = server.handle();
    let ecg = features(&registry, ServeTask::Ecg);

    handle
        .classify(ServeTask::Ecg, ecg.clone())
        .expect("healthy baseline");

    // Arm exactly `quarantine_after` panics: the injection counter is
    // process-global, so the crash loop must consume every armed panic
    // (initial fault + each respawned engine's first dispatch) before the
    // sibling-replica probe below dispatches. While any panics remain
    // armed, a respawned ECG replica can never serve successfully — each
    // respawn's first dispatch faults again: a genuine crash loop.
    rbnn_serve::fault::arm_engine_panics(u64::from(quarantine_after));
    let mut fault_replies = 0u32;
    for _ in 0..40 {
        match handle.classify(ServeTask::Ecg, ecg.clone()) {
            Err(ServeError::EngineFault) => fault_replies += 1,
            other => panic!("crash loop must surface EngineFault, got {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(fault_replies == 40);

    let fleet = handle.fleet_health();
    let ecg_replica = fleet
        .replicas
        .iter()
        .find(|r| r.task == ServeTask::Ecg)
        .expect("ecg replica reported");
    assert_eq!(
        ecg_replica.health,
        ReplicaHealth::Quarantined,
        "crash loop must quarantine, fleet: {fleet}"
    );
    assert!(
        ecg_replica.faults >= u64::from(quarantine_after),
        "at least {quarantine_after} faults recorded: {fleet}"
    );
    assert_eq!(fleet.quarantined, 1);

    // The sibling replicas never noticed.
    let eeg = features(&registry, ServeTask::Eeg);
    handle
        .classify(ServeTask::Eeg, eeg)
        .expect("sibling replica still healthy");

    // Quarantine is sticky: even with injections exhausted, the replica
    // is not retried.
    rbnn_serve::fault::arm_engine_panics(0);
    std::thread::sleep(Duration::from_millis(60));
    assert_eq!(
        handle.classify(ServeTask::Ecg, ecg),
        Err(ServeError::EngineFault),
        "quarantined replica must fail fast, not silently respawn"
    );

    drop(server);
}
