//! Regression test for the pool's panic-containment contract: an engine
//! replica that panics mid-batch fails its own task group with
//! [`ServeError::EngineFault`] and is retired — the worker thread, the
//! queue, and every other replica keep serving.
//!
//! One test function on purpose: the injection hook is process-wide, so
//! concurrent test threads arming it would race each other.

use rbnn_serve::{Backend, ModelRegistry, ServeConfig, ServeError, ServeTask, Server};

fn features(registry: &ModelRegistry, task: ServeTask) -> Vec<f32> {
    let n = registry
        .get(task)
        .expect("registered")
        .network
        .in_features();
    (0..n).map(|i| (i % 7) as f32 - 3.0).collect()
}

#[test]
fn engine_panic_degrades_one_replica_not_the_pool() {
    let registry = ModelRegistry::demo(7);
    let config = ServeConfig {
        workers: 1, // one replica per task: the post-fault state is deterministic
        backend: Backend::Software,
        ..Default::default()
    };
    let server = Server::start(&registry, &config);
    let handle = server.handle();

    // Healthy baseline on the task we are about to break.
    let ecg = features(&registry, ServeTask::Ecg);
    handle
        .classify(ServeTask::Ecg, ecg.clone())
        .expect("healthy replica serves");

    // The next engine dispatch panics inside the worker.
    rbnn_serve::fault::arm_engine_panics(1);
    let faulted = handle.classify(ServeTask::Ecg, ecg.clone());
    assert_eq!(
        faulted,
        Err(ServeError::EngineFault),
        "panicking batch must fail, not hang"
    );

    // The worker survived: the other replicas it holds still serve...
    let eeg = features(&registry, ServeTask::Eeg);
    for _ in 0..10 {
        handle
            .classify(ServeTask::Eeg, eeg.clone())
            .expect("sibling replica unaffected by the fault");
    }
    // ...and the retired replica's task fails fast instead of wedging.
    let after = handle.classify(ServeTask::Ecg, ecg);
    assert_eq!(after, Err(ServeError::EngineFault));

    // Shutdown still drains and joins cleanly.
    let snap = server.shutdown();
    assert!(
        snap.completed >= 11,
        "completed {} of 11+ healthy requests",
        snap.completed
    );
}
