//! Regression test for the pool's self-healing contract: an engine
//! replica that panics mid-batch fails its own task group with
//! [`ServeError::EngineFault`], is retired under supervision, and is
//! *respawned* by its worker once the backoff elapses — the worker
//! thread, the queue, and every other replica keep serving throughout.
//!
//! One test function on purpose: the injection hook is process-wide, so
//! concurrent test threads arming it would race each other.

use std::time::{Duration, Instant};

use rbnn_serve::{
    Backend, ModelRegistry, ReplicaHealth, ServeConfig, ServeError, ServeTask, Server,
    SupervisorPolicy,
};

fn features(registry: &ModelRegistry, task: ServeTask) -> Vec<f32> {
    let n = registry
        .get(task)
        .expect("registered")
        .network
        .in_features();
    (0..n).map(|i| (i % 7) as f32 - 3.0).collect()
}

#[test]
fn engine_panic_degrades_one_replica_then_respawns() {
    let registry = ModelRegistry::demo(7);
    // A long first backoff makes the down window observable without
    // sleeping inside the assertion race: the replica cannot respawn
    // while we probe the degraded state.
    let config = ServeConfig {
        workers: 1, // one replica per task: the post-fault state is deterministic
        backend: Backend::Software,
        supervisor: SupervisorPolicy {
            base_backoff: Duration::from_millis(400),
            ..Default::default()
        },
        ..Default::default()
    };
    let server = Server::start(&registry, &config);
    let handle = server.handle();

    // Healthy baseline on the task we are about to break.
    let ecg = features(&registry, ServeTask::Ecg);
    handle
        .classify(ServeTask::Ecg, ecg.clone())
        .expect("healthy replica serves");

    // The next engine dispatch panics inside the worker.
    rbnn_serve::fault::arm_engine_panics(1);
    let faulted_at = Instant::now();
    let faulted = handle.classify(ServeTask::Ecg, ecg.clone());
    assert_eq!(
        faulted,
        Err(ServeError::EngineFault),
        "panicking batch must fail, not hang"
    );

    // The worker survived: the other replicas it holds still serve...
    let eeg = features(&registry, ServeTask::Eeg);
    for _ in 0..10 {
        handle
            .classify(ServeTask::Eeg, eeg.clone())
            .expect("sibling replica unaffected by the fault");
    }
    // ...and while the backoff runs, the retired replica's task fails
    // fast instead of wedging (only if we are still inside the window —
    // a loaded CI box may already have passed it).
    if faulted_at.elapsed() < Duration::from_millis(300) {
        let during_backoff = handle.classify(ServeTask::Ecg, ecg.clone());
        assert_eq!(during_backoff, Err(ServeError::EngineFault));
        let fleet = handle.fleet_health();
        assert_eq!(fleet.down, 1, "fleet sees the retired replica: {fleet}");
        assert_eq!(fleet.faults, 1);
    }

    // After the backoff the worker rebuilds the replica from its spec and
    // the task serves again — the heart of the self-healing contract.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match handle.classify(ServeTask::Ecg, ecg.clone()) {
            Ok(_) => break,
            Err(ServeError::EngineFault) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("replica never respawned: {e}"),
        }
    }
    let fleet = handle.fleet_health();
    assert_eq!(fleet.respawns, 1, "exactly one respawn: {fleet}");
    assert_eq!(fleet.down, 0);
    assert_eq!(fleet.quarantined, 0);
    assert!(
        fleet
            .replicas
            .iter()
            .all(|r| r.health == ReplicaHealth::Healthy),
        "all replicas healthy again: {fleet}"
    );
    assert!(
        fleet.max_respawn_delay.is_some(),
        "respawn delay recorded: {fleet}"
    );

    // Shutdown still drains and joins cleanly.
    let snap = server.shutdown();
    assert!(
        snap.completed >= 12,
        "completed {} of 12+ healthy requests",
        snap.completed
    );
}
