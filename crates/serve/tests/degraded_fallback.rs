//! Degraded-mode fallback: a fabric-drift episode that pushes an RRAM
//! replica's marginal-cell fraction past the configured threshold swaps
//! the replica to bit-exact software XNOR of the same network. Service
//! never stops; the fleet report shows the die as degraded.
//!
//! One test function on purpose: the injection hook is process-wide, so
//! concurrent test threads arming it would race each other.

use rbnn_serve::{
    Backend, ChaosPlan, ModelRegistry, ReplicaHealth, ServeConfig, ServeTask, Server,
};

#[test]
fn drifted_rram_replica_degrades_to_software_and_keeps_serving() {
    let registry = ModelRegistry::demo(7);
    let config = ServeConfig {
        workers: 1,
        backend: Backend::Rram,
        ..Default::default()
    };
    let server = Server::start(&registry, &config);
    let handle = server.handle();
    let n = registry
        .get(ServeTask::Ecg)
        .expect("registered")
        .network
        .in_features();
    let ecg: Vec<f32> = (0..n).map(|i| (i % 7) as f32 - 3.0).collect();

    // Fresh fabric: healthy, bit-exact serving.
    handle
        .classify(ServeTask::Ecg, ecg.clone())
        .expect("fresh RRAM replica serves");
    assert_eq!(handle.fleet_health().degraded, 0);

    // One drift episode at the next dispatch: ~3e9 endurance cycles plus
    // a weight refresh leaves ≈6.5% of cells marginal — past the default
    // 5% degrade threshold.
    rbnn_serve::fault::arm_chaos(ChaosPlan {
        drift_at_dispatch: Some(0),
        ..Default::default()
    });
    let verdict = handle.classify(ServeTask::Ecg, ecg.clone());
    assert!(
        verdict.is_ok(),
        "the drifted dispatch itself still answers: {verdict:?}"
    );
    rbnn_serve::fault::disarm_chaos();

    // The replica fell back to software and keeps serving.
    let fleet = handle.fleet_health();
    assert_eq!(fleet.degraded, 1, "drift must degrade the replica: {fleet}");
    let ecg_replica = fleet
        .replicas
        .iter()
        .find(|r| r.task == ServeTask::Ecg)
        .expect("ecg replica reported");
    assert_eq!(ecg_replica.health, ReplicaHealth::Degraded);
    for _ in 0..5 {
        handle
            .classify(ServeTask::Ecg, ecg.clone())
            .expect("degraded replica serves on the software path");
    }

    // Degradation is per-replica: the EEG die is untouched.
    let eeg_n = registry
        .get(ServeTask::Eeg)
        .expect("registered")
        .network
        .in_features();
    handle
        .classify(
            ServeTask::Eeg,
            (0..eeg_n).map(|i| (i % 3) as f32 - 1.0).collect(),
        )
        .expect("sibling RRAM replica unaffected");
    assert_eq!(handle.fleet_health().degraded, 1);

    drop(server);
}
