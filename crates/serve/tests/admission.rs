//! Admission control under overload: with the default
//! [`AdmissionPolicy::Shed`], a full queue rejects the newest routine
//! arrival instead of blocking the producer, and an urgent arrival evicts
//! the newest queued routine request (the alarm-adjacent window jumps the
//! line; the displaced routine caller gets a retryable
//! [`ServeError::Overloaded`]).
//!
//! One test function on purpose: the worker is jammed through the
//! process-wide chaos hook (every dispatch stalls), so concurrent test
//! threads would race the armed plan.

use std::time::Duration;

use rbnn_serve::{
    Backend, ChaosPlan, ModelRegistry, Priority, ServeConfig, ServeError, ServeTask, Server,
    SubmitOptions,
};

fn features(registry: &ModelRegistry, task: ServeTask) -> Vec<f32> {
    let n = registry
        .get(task)
        .expect("registered")
        .network
        .in_features();
    (0..n).map(|i| (i % 3) as f32 - 1.0).collect()
}

#[test]
fn full_queue_sheds_routine_and_urgent_evicts_newest() {
    let registry = ModelRegistry::demo(7);
    let server = Server::start(
        &registry,
        &ServeConfig {
            workers: 1,
            backend: Backend::Software,
            queue_capacity: 2,
            batch: rbnn_serve::BatchPolicy {
                max_batch: 1, // one request per dispatch: the stall pins exactly one
                max_delay: Duration::ZERO,
            },
            ..Default::default()
        },
    );
    let handle = server.handle();
    let ecg = features(&registry, ServeTask::Ecg);

    // Jam the worker: every dispatch stalls 150..600 ms.
    rbnn_serve::fault::arm_chaos(ChaosPlan {
        stall_per_mille: 1000,
        max_stall: Duration::from_millis(600),
        ..Default::default()
    });

    // A: picked up by the worker and pinned in the stall. Give the worker
    // a moment to dequeue it so the queue is empty again.
    let pinned = handle.enqueue(ServeTask::Ecg, ecg.clone()).expect("A");
    std::thread::sleep(Duration::from_millis(60));

    // B, C fill the 2-slot queue while the worker is pinned.
    let b = handle.enqueue(ServeTask::Ecg, ecg.clone()).expect("B");
    let c = handle.enqueue(ServeTask::Ecg, ecg.clone()).expect("C");

    // D: routine arrival on a full queue is shed at the door.
    let shed = handle.classify(ServeTask::Ecg, ecg.clone());
    assert_eq!(shed, Err(ServeError::Overloaded), "reject-newest sheds D");
    assert!(
        ServeError::Overloaded.is_retryable(),
        "shed requests are safe to retry after backoff"
    );

    // E: urgent arrival evicts the newest queued routine request (C).
    let e = handle.classify_with(
        ServeTask::Ecg,
        ecg.clone(),
        &SubmitOptions {
            priority: Priority::Urgent,
            deadline: None,
        },
    );

    // C (newest routine) was evicted to make room for E.
    assert_eq!(
        c.wait(),
        Err(ServeError::Overloaded),
        "urgent arrival evicts the newest routine request"
    );

    // Once the stalls drain, A, B and E all complete.
    assert!(
        pinned.wait().is_ok(),
        "pinned request completes after stall"
    );
    assert!(b.wait().is_ok(), "B completes");
    assert!(e.is_ok(), "urgent E completes: {e:?}");

    rbnn_serve::fault::disarm_chaos();
    let snap = server.shutdown();
    assert!(snap.rejected >= 1, "shed counted: {snap}");
    assert_eq!(snap.evicted, 1, "eviction counted: {snap}");
}
