//! Hot model swap vs. cached execution plans: a model swapped at runtime
//! must invalidate every worker's compiled [`ExecPlan`] cache — a stale
//! plan replaying old weights would answer with the *previous* model's
//! logits bit-for-bit, which is exactly what these tests would catch,
//! since the default executor serves every request off the plan cache.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rbnn_rram::EngineConfig;
use rbnn_serve::{
    demo_network, Backend, ExecutorMode, ModelEntry, ModelRegistry, ServeConfig, ServeError,
    ServeTask, Server,
};

const DIMS: &[usize] = &[40, 24, 4];

fn probe(i: usize) -> Vec<f32> {
    (0..DIMS[0])
        .map(|j| ((i * 31 + j * 7) % 13) as f32 - 6.0)
        .collect()
}

fn registry_with(net: &rbnn_binary::BinaryNetwork) -> ModelRegistry {
    let mut registry = ModelRegistry::new();
    registry.insert(ServeTask::Ecg, net.clone(), EngineConfig::test_chip(9));
    registry
}

#[test]
fn swap_invalidates_cached_plans_and_never_serves_a_stale_or_blended_model() {
    let net_a = demo_network(DIMS, 0xA);
    let net_b = demo_network(DIMS, 0xB);
    // Precondition: the two models are distinguishable on every probe.
    for i in 0..8 {
        assert_ne!(
            net_a.logits(&probe(i)),
            net_b.logits(&probe(i)),
            "probe {i} cannot tell the models apart"
        );
    }

    let config = ServeConfig {
        workers: 2,
        backend: Backend::Software,
        executor: ExecutorMode::Graph,
        ..Default::default()
    };
    let server = Server::start(&registry_with(&net_a), &config);
    let handle = server.handle();

    // Warm every worker's plan cache on model A and pin the answers.
    for i in 0..8 {
        let p = handle.classify(ServeTask::Ecg, probe(i)).expect("serves");
        assert_eq!(p.logits, net_a.logits(&probe(i)), "warm-up must be model A");
    }

    // Concurrent classifies racing the swap: every answer must be exactly
    // model A or exactly model B — never a mix of stale plan and new
    // weights.
    let stop = Arc::new(AtomicBool::new(false));
    let racers: Vec<_> = (0..3)
        .map(|t| {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            let (net_a, net_b) = (net_a.clone(), net_b.clone());
            std::thread::spawn(move || {
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let x = probe(i % 8);
                    let p = handle.classify(ServeTask::Ecg, x.clone()).expect("serves");
                    let (a, b) = (net_a.logits(&x), net_b.logits(&x));
                    assert!(
                        p.logits == a || p.logits == b,
                        "blended answer during swap: got {:?}, A={a:?}, B={b:?}",
                        p.logits
                    );
                    i += 1;
                }
            })
        })
        .collect();

    let version = handle
        .swap_model(
            ServeTask::Ecg,
            ModelEntry {
                network: net_b.clone(),
                engine_config: EngineConfig::test_chip(9),
            },
        )
        .expect("width-stable swap succeeds");
    assert_eq!(version, 1);

    // Every request submitted after the swap returned is answered by model
    // B: workers adopt the new version (dropping their cached plan) before
    // evaluating the batch.
    for i in 0..8 {
        let p = handle.classify(ServeTask::Ecg, probe(i)).expect("serves");
        assert_eq!(
            p.logits,
            net_b.logits(&probe(i)),
            "post-swap answer still on the old model/plan (probe {i})"
        );
    }

    stop.store(true, Ordering::Relaxed);
    for racer in racers {
        racer.join().expect("racer panicked");
    }

    // Swapping again keeps versioning monotonic and re-invalidates.
    let version = handle
        .swap_model(
            ServeTask::Ecg,
            ModelEntry {
                network: net_a.clone(),
                engine_config: EngineConfig::test_chip(9),
            },
        )
        .expect("swap back");
    assert_eq!(version, 2);
    let p = handle.classify(ServeTask::Ecg, probe(0)).expect("serves");
    assert_eq!(p.logits, net_a.logits(&probe(0)));

    drop(server);
}

#[test]
fn swap_rejects_width_changes_and_unknown_tasks() {
    let net = demo_network(DIMS, 0xA);
    let server = Server::start(
        &registry_with(&net),
        &ServeConfig {
            workers: 1,
            backend: Backend::Software,
            ..Default::default()
        },
    );
    let handle = server.handle();

    // Width change: rejected, deployment untouched.
    let wider = demo_network(&[64, 8, 4], 0xC);
    let err = handle
        .swap_model(
            ServeTask::Ecg,
            ModelEntry {
                network: wider,
                engine_config: EngineConfig::test_chip(9),
            },
        )
        .expect_err("width change must be rejected");
    assert!(
        matches!(
            err,
            ServeError::FeatureWidth {
                expected: 40,
                got: 64
            }
        ),
        "unexpected error: {err:?}"
    );

    // Unregistered task: rejected.
    let err = handle
        .swap_model(
            ServeTask::Eeg,
            ModelEntry {
                network: net.clone(),
                engine_config: EngineConfig::test_chip(9),
            },
        )
        .expect_err("unknown task must be rejected");
    assert!(matches!(err, ServeError::UnknownTask(ServeTask::Eeg)));

    // The original model still serves, unaffected by the rejected swaps.
    let p = handle.classify(ServeTask::Ecg, probe(3)).expect("serves");
    assert_eq!(p.logits, net.logits(&probe(3)));
}

#[test]
fn graph_and_legacy_executors_answer_bitwise_identically() {
    let net = demo_network(&[65, 63, 127, 5], 0xD);
    let mut answers = Vec::new();
    for executor in [ExecutorMode::Graph, ExecutorMode::Legacy] {
        let server = Server::start(
            &registry_with(&net),
            &ServeConfig {
                workers: 1,
                backend: Backend::Software,
                executor,
                ..Default::default()
            },
        );
        let handle = server.handle();
        let mut logits = Vec::new();
        for i in 0..6 {
            let x: Vec<f32> = (0..65)
                .map(|j| ((i * 17 + j * 3) % 11) as f32 - 5.0)
                .collect();
            logits.push(handle.classify(ServeTask::Ecg, x).expect("serves").logits);
        }
        answers.push(logits);
        drop(server);
    }
    assert_eq!(
        answers[0], answers[1],
        "graph and legacy executors disagree"
    );
}
