//! The model registry: deployed classifiers keyed by serving task.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rbnn_binary::{BinaryDense, BinaryNetwork};
use rbnn_rram::EngineConfig;
use rbnn_tensor::BitMatrix;

/// The serving tasks of the paper's medical-monitoring scenario plus the
/// §IV vision workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServeTask {
    /// 12-lead ECG anomaly screening.
    Ecg,
    /// EEG motor-imagery decoding.
    Eeg,
    /// Image classification on frozen feature-extractor outputs.
    Image,
}

impl ServeTask {
    /// All tasks, in registry order.
    pub const ALL: [ServeTask; 3] = [ServeTask::Ecg, ServeTask::Eeg, ServeTask::Image];

    /// Human-readable label.
    pub fn name(self) -> &'static str {
        match self {
            ServeTask::Ecg => "ecg",
            ServeTask::Eeg => "eeg",
            ServeTask::Image => "image",
        }
    }
}

/// Which substrate a worker evaluates a model on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Bit-exact software XNOR/popcount (what the chip computes, minus
    /// device noise) — deterministic and fast.
    #[default]
    Software,
    /// Margin-gated RRAM simulation: tiled 2T2R arrays with PCSA sensing
    /// per read. Senses whose margin clears 6σ (essentially all, on fresh
    /// devices) short-circuit to a cached deterministic readout, so fresh
    /// RRAM serving is bit-exact with [`Software`](Backend::Software) and
    /// fast enough for real traffic; cells inside the marginal band stay
    /// Monte-Carlo, preserving the worn-device error statistics.
    Rram,
}

/// One deployable model: the exported network plus the array fabric it
/// should be programmed onto when served on the RRAM backend.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    /// The exported bit-packed classifier.
    pub network: BinaryNetwork,
    /// Array geometry/device statistics for RRAM replicas.
    pub engine_config: EngineConfig,
}

/// Deployed classifiers keyed by [`ServeTask`].
///
/// The registry itself is immutable once handed to a server: every worker
/// replicates engines from it at startup (replication is what lets
/// Monte-Carlo `&mut self` engines serve concurrent traffic). To replace a
/// deployed model on a *running* server, use
/// [`ServeHandle::swap_model`](crate::ServeHandle::swap_model) — a
/// versioned, width-stable hot swap that workers adopt before their next
/// batch.
#[derive(Debug, Clone, Default)]
pub struct ModelRegistry {
    entries: BTreeMap<ServeTask, ModelEntry>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the model served for `task`.
    pub fn insert(&mut self, task: ServeTask, network: BinaryNetwork, engine_config: EngineConfig) {
        self.entries.insert(
            task,
            ModelEntry {
                network,
                engine_config,
            },
        );
    }

    /// The entry for `task`, if registered.
    pub fn get(&self, task: ServeTask) -> Option<&ModelEntry> {
        self.entries.get(&task)
    }

    /// Registered tasks in order.
    pub fn tasks(&self) -> impl Iterator<Item = ServeTask> + '_ {
        self.entries.keys().copied()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Input feature width expected by `task`.
    pub fn in_features(&self, task: ServeTask) -> Option<usize> {
        self.entries.get(&task).map(|e| e.network.in_features())
    }

    /// A registry pre-loaded with paper-shaped random-weight classifiers
    /// for all three tasks (ECG 2520→80→2 per Table I; EEG 1344→100→2;
    /// image 1024→100→16), each paired with a test-chip-geometry
    /// [`EngineConfig`] so the same entries serve on
    /// [`Backend::Rram`] at paper scale out of the box.
    ///
    /// Random ±1 weights give the exact compute/memory footprint of the
    /// trained models, which is what serving benchmarks need; use
    /// [`insert`](Self::insert) with `rbnn_binary::export_classifier`
    /// output to serve genuinely trained classifiers (see
    /// `examples/serving.rs`).
    pub fn demo(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut registry = Self::new();
        let shapes: [(ServeTask, &[usize]); 3] = [
            (ServeTask::Ecg, &[2520, 80, 2]),
            (ServeTask::Eeg, &[1344, 100, 2]),
            (ServeTask::Image, &[1024, 100, 16]),
        ];
        for (i, (task, dims)) in shapes.into_iter().enumerate() {
            let layers = dims
                .windows(2)
                .map(|pair| random_layer(pair[1], pair[0], &mut rng))
                .collect();
            registry.insert(
                task,
                BinaryNetwork::new(layers),
                EngineConfig::test_chip(seed.wrapping_add(1 + i as u64)),
            );
        }
        registry
    }
}

/// A random ±1 network of the given layer widths (`dims[0]` inputs through
/// `dims.last()` classes) with mild affine coefficients — the exact
/// compute/memory footprint of a trained model of that shape, for serving
/// benchmarks and tests.
///
/// # Panics
///
/// Panics if fewer than two dims are given.
pub fn demo_network(dims: &[usize], seed: u64) -> BinaryNetwork {
    assert!(dims.len() >= 2, "need at least input and output widths");
    let mut rng = StdRng::seed_from_u64(seed);
    BinaryNetwork::new(
        dims.windows(2)
            .map(|p| random_layer(p[1], p[0], &mut rng))
            .collect(),
    )
}

/// A random ±1 layer with mild affine coefficients (demo weights).
fn random_layer(out: usize, inp: usize, rng: &mut StdRng) -> BinaryDense {
    let w: Vec<f32> = (0..out * inp)
        .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
        .collect();
    let scale: Vec<f32> = (0..out).map(|_| rng.gen_range(0.5..1.5)).collect();
    let shift: Vec<f32> = (0..out).map(|_| rng.gen_range(-2.0..2.0)).collect();
    BinaryDense::new(BitMatrix::from_signs(&w, out, inp), scale, shift)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_registry_covers_all_tasks() {
        let r = ModelRegistry::demo(1);
        assert_eq!(r.len(), 3);
        for task in ServeTask::ALL {
            let e = r.get(task).expect("registered");
            assert!(e.network.in_features() >= 1024);
            assert_eq!(r.in_features(task), Some(e.network.in_features()));
        }
        assert_eq!(r.get(ServeTask::Ecg).unwrap().network.out_features(), 2);
        assert_eq!(r.get(ServeTask::Image).unwrap().network.out_features(), 16);
    }

    #[test]
    fn demo_is_deterministic_per_seed() {
        let a = ModelRegistry::demo(7);
        let b = ModelRegistry::demo(7);
        for task in ServeTask::ALL {
            assert_eq!(a.get(task).unwrap().network, b.get(task).unwrap().network);
        }
    }

    #[test]
    fn insert_replaces() {
        let mut r = ModelRegistry::demo(2);
        let tiny = BinaryNetwork::new(vec![random_layer(2, 16, &mut StdRng::seed_from_u64(0))]);
        r.insert(ServeTask::Ecg, tiny.clone(), EngineConfig::test_chip(0));
        assert_eq!(r.in_features(ServeTask::Ecg), Some(16));
        assert_eq!(r.len(), 3);
    }
}
