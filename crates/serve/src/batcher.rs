//! Micro-batch formation under a deadline/size policy.
//!
//! Workers pull batches straight off the shared request queue through a
//! [`Batcher`]; there is no separate batching thread to hop through. The
//! policy is the classic serving trade-off:
//!
//! * take up to [`max_batch`](BatchPolicy::max_batch) requests immediately
//!   when the queue is deep (throughput mode);
//! * otherwise *linger* briefly for stragglers before dispatching a partial
//!   batch (latency mode).
//!
//! The linger is adaptive: an exponential moving average of recent batch
//! fill scales the wait, so an idle server converges to near-zero added
//! latency while a loaded one waits long enough to fill its batches.

use std::time::{Duration, Instant};

use crate::queue::BoundedQueue;

/// Batch formation policy.
#[derive(Debug, Clone)]
pub struct BatchPolicy {
    /// Largest batch dispatched to an engine.
    pub max_batch: usize,
    /// Longest time a partial batch may linger waiting for stragglers.
    pub max_delay: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_delay: Duration::from_micros(250),
        }
    }
}

/// Per-worker batch collector (owns the adaptive linger state).
#[derive(Debug)]
pub struct Batcher {
    policy: BatchPolicy,
    /// EWMA of batch fill ratio in `[0, 1]`.
    fill: f64,
}

impl Batcher {
    /// A batcher following `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `policy.max_batch == 0`.
    pub fn new(policy: BatchPolicy) -> Self {
        assert!(policy.max_batch > 0, "max_batch must be positive");
        Self { policy, fill: 0.5 }
    }

    /// The policy in effect.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Current adaptive linger (exposed for tests/telemetry).
    pub fn current_linger(&self) -> Duration {
        self.policy.max_delay.mul_f64(self.fill.clamp(0.0, 1.0))
    }

    /// Blocks for the next batch. Returns `None` when the queue is closed
    /// and fully drained.
    ///
    /// The linger runs in short sub-polls rather than one sleep to the
    /// full deadline: a straggler request arriving right after a sustained
    /// burst (fill EWMA ≈ 1) would otherwise wait the entire
    /// `fill × max_delay` even though nothing else is coming. When two
    /// consecutive sub-polls time out with the queue still empty, the
    /// batch dispatches early — an idle tail, not a forming batch.
    pub fn next_batch<T>(&mut self, queue: &BoundedQueue<T>) -> Option<Vec<T>> {
        self.next_batch_with(queue, |_| {})
    }

    /// [`next_batch`](Self::next_batch) with a dequeue observer: `on_pop`
    /// runs on each newly popped chunk *at the moment it leaves the
    /// queue*, before any further lingering. The serving layer uses it to
    /// timestamp requests at dequeue, separating genuine queue wait from
    /// the batcher's own linger in span traces (stamping after the full
    /// batch formed would fold the linger into queue wait).
    pub fn next_batch_with<T>(
        &mut self,
        queue: &BoundedQueue<T>,
        mut on_pop: impl FnMut(&mut [T]),
    ) -> Option<Vec<T>> {
        let mut batch = queue.pop_up_to(self.policy.max_batch)?;
        on_pop(&mut batch);
        Some(self.linger_and_record(queue, batch, on_pop))
    }

    /// [`next_batch_with`](Self::next_batch_with) whose *initial* wait is
    /// bounded by `initial_wait`: when nothing arrives inside the window
    /// the call returns an **empty** batch instead of blocking
    /// indefinitely. The worker loop uses this as its idle tick — it must
    /// come back around periodically to heartbeat the supervisor and
    /// respawn due replicas even when no traffic is flowing. An empty
    /// return skips the linger and leaves the fill EWMA untouched (an
    /// idle tick is not a formed batch and must not drag the adaptive
    /// linger toward zero).
    pub fn next_batch_within<T>(
        &mut self,
        queue: &BoundedQueue<T>,
        initial_wait: Duration,
        mut on_pop: impl FnMut(&mut [T]),
    ) -> Option<Vec<T>> {
        let deadline = Instant::now() + initial_wait;
        let mut batch = queue.pop_up_to_deadline(self.policy.max_batch, deadline)?;
        if batch.is_empty() {
            return Some(batch);
        }
        on_pop(&mut batch);
        Some(self.linger_and_record(queue, batch, on_pop))
    }

    /// Shared tail of the batch-formation paths: linger for stragglers on
    /// a partial batch, then fold the final fill ratio into the EWMA.
    fn linger_and_record<T>(
        &mut self,
        queue: &BoundedQueue<T>,
        mut batch: Vec<T>,
        mut on_pop: impl FnMut(&mut [T]),
    ) -> Vec<T> {
        if batch.len() < self.policy.max_batch {
            let linger = self.current_linger();
            if !linger.is_zero() {
                let deadline = Instant::now() + linger;
                let slice = linger / 8;
                let mut empty_polls = 0u32;
                while batch.len() < self.policy.max_batch && empty_polls < 2 {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let sub_deadline = (now + slice).min(deadline);
                    match queue
                        .pop_up_to_deadline(self.policy.max_batch - batch.len(), sub_deadline)
                    {
                        // Queue closed: dispatch what we have.
                        None => break,
                        // Sub-poll timed out with nothing queued.
                        Some(more) if more.is_empty() => empty_polls += 1,
                        Some(mut more) => {
                            on_pop(&mut more);
                            batch.extend(more);
                            empty_polls = 0;
                        }
                    }
                }
            }
        }
        let ratio = batch.len() as f64 / self.policy.max_batch as f64;
        self.fill = 0.8 * self.fill + 0.2 * ratio;
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn full_queue_dispatches_immediately() {
        let q = BoundedQueue::new(256);
        for i in 0..100 {
            q.push(i).unwrap();
        }
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 64,
            max_delay: Duration::from_secs(1),
        });
        let t0 = Instant::now();
        let batch = b.next_batch(&q).unwrap();
        assert_eq!(batch.len(), 64);
        assert!(
            t0.elapsed() < Duration::from_millis(100),
            "must not linger when full"
        );
        assert_eq!(b.next_batch(&q).unwrap().len(), 36);
    }

    #[test]
    fn linger_collects_stragglers() {
        let q = Arc::new(BoundedQueue::new(64));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || {
            thread::sleep(Duration::from_millis(5));
            for i in 1..4 {
                q2.push(i).unwrap();
            }
        });
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 8,
            max_delay: Duration::from_millis(200),
        });
        let batch = b.next_batch(&q).unwrap();
        producer.join().unwrap();
        assert!(
            batch.len() > 1,
            "linger should have caught stragglers, got {batch:?}"
        );
    }

    #[test]
    fn fill_ewma_shrinks_linger_when_idle() {
        let q = BoundedQueue::new(8);
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 64,
            max_delay: Duration::from_millis(10),
        });
        let initial = b.current_linger();
        for _ in 0..10 {
            q.push(1u32).unwrap();
            let _ = b.next_batch(&q).unwrap();
        }
        assert!(
            b.current_linger() < initial / 4,
            "singleton batches should shrink the linger: {:?} vs {initial:?}",
            b.current_linger()
        );
    }

    #[test]
    fn straggler_after_burst_dispatches_early() {
        // Regression: after sustained full batches the fill EWMA is ≈1, so
        // the final straggler of a burst used to linger the whole
        // `fill × max_delay` against an empty queue.
        let q = BoundedQueue::new(1024);
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 8,
            max_delay: Duration::from_millis(400),
        });
        // Saturate the fill EWMA with full batches.
        for _ in 0..10 {
            for i in 0..8 {
                q.push(i).unwrap();
            }
            assert_eq!(b.next_batch(&q).unwrap().len(), 8);
        }
        let linger = b.current_linger();
        assert!(
            linger > Duration::from_millis(300),
            "test premise: linger {linger:?} should be near max_delay"
        );
        // The straggler: one request, then silence.
        q.push(99).unwrap();
        let t0 = Instant::now();
        let batch = b.next_batch(&q).unwrap();
        let waited = t0.elapsed();
        assert_eq!(batch, vec![99]);
        // Two empty sub-polls of linger/8 each ≈ linger/4 ≪ full linger.
        assert!(
            waited < linger / 2,
            "straggler waited {waited:?} against an empty queue (linger {linger:?})"
        );
    }

    #[test]
    fn linger_survives_trickling_arrivals() {
        // Sub-polls that *do* find items must not trip the early-dispatch
        // counter: a trickle keeps the batch forming until deadline/full.
        let q = Arc::new(BoundedQueue::new(64));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || {
            for i in 1..5u32 {
                thread::sleep(Duration::from_millis(3));
                q2.push(i).unwrap();
            }
        });
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 64,
            max_delay: Duration::from_millis(300),
        });
        // Force a long linger despite the EWMA starting at 0.5.
        b.fill = 1.0;
        let batch = b.next_batch(&q).unwrap();
        producer.join().unwrap();
        assert!(
            batch.len() >= 3,
            "trickle should accumulate before dispatch, got {batch:?}"
        );
    }

    #[test]
    fn bounded_wait_ticks_empty_without_touching_fill() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        let mut b = Batcher::new(BatchPolicy::default());
        let linger_before = b.current_linger();
        let t0 = Instant::now();
        let batch = b
            .next_batch_within(&q, Duration::from_millis(20), |_| {})
            .unwrap();
        assert!(batch.is_empty(), "idle tick returns an empty batch");
        assert!(t0.elapsed() >= Duration::from_millis(15));
        assert_eq!(
            b.current_linger(),
            linger_before,
            "an idle tick must not move the fill EWMA"
        );
        // With items available it forms a batch like next_batch.
        q.push(7).unwrap();
        let batch = b
            .next_batch_within(&q, Duration::from_millis(20), |_| {})
            .unwrap();
        assert_eq!(batch, vec![7]);
        // A closed drained queue still terminates with None.
        q.close();
        assert_eq!(
            b.next_batch_within(&q, Duration::from_millis(5), |_| {}),
            None
        );
    }

    #[test]
    fn closed_queue_terminates() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.close();
        let mut b = Batcher::new(BatchPolicy::default());
        assert_eq!(b.next_batch(&q), Some(vec![1]));
        assert_eq!(b.next_batch(&q), None);
    }
}
