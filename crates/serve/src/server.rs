//! The serving runtime: request intake, worker pool, dispatch,
//! supervision.
//!
//! A [`Server`] owns a bounded request queue and a pool of worker threads.
//! Each worker holds its *own replica* of every registered model's engine —
//! replication rather than sharing because Monte-Carlo PCSA reads need
//! `&mut self` (each read draws device noise), so a shared engine would
//! serialize the whole pool behind one lock. Workers pull micro-batches
//! through a [`Batcher`](crate::Batcher), group them by task, run the
//! batched kernels, and answer each request through its one-shot channel.
//!
//! Resilience (see also [`crate::supervisor`]): admission is governed by
//! [`AdmissionPolicy`] (load-shed by default, with priority lanes);
//! requests may carry deadlines ([`SubmitOptions`]) and are answered with
//! [`ServeError::DeadlineExceeded`] instead of consuming engine time once
//! expired; a replica that panics mid-batch is retired, then respawned by
//! its owning worker after a supervisor-managed backoff (quarantined if it
//! crash-loops); an RRAM replica whose fabric degrades past the
//! marginal-cell threshold falls back to the bit-exact software path.

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::{Arc, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rbnn_binary::BinaryNetwork;
use rbnn_graph::{ExecPlan, PlanBuffers};
use rbnn_rram::{EngineConfig, NetworkEngine};
use rbnn_telemetry::{SpanRecord, SpanRing};
use rbnn_tensor::Tensor;

use crate::batcher::{BatchPolicy, Batcher};
use crate::fault::ChaosEvent;
use crate::queue::{BoundedQueue, Lane, PushError};
use crate::registry::{Backend, ModelEntry, ModelRegistry, ServeTask};
use crate::retry::RetryPolicy;
use crate::stats::{ServerStats, StatsSnapshot};
use crate::supervisor::{FleetHealth, Supervisor, SupervisorPolicy};

/// What happens to new work when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Reject-newest load shedding (the default): a full queue answers
    /// the push with [`ServeError::Overloaded`] immediately; an urgent
    /// push may instead evict the newest *routine* queued request (which
    /// is answered with `Overloaded` through its own reply channel). No
    /// producer ever blocks, so an overloaded fleet stays responsive and
    /// stale work is dropped before stale verdicts are served.
    #[default]
    Shed,
    /// Classic backpressure: a full queue blocks the producer until
    /// space frees. Right for closed-loop load generators and batch
    /// pipelines that *want* to be slowed to the pool's rate; wrong for
    /// realtime monitoring, where blocking turns overload into unbounded
    /// staleness.
    Block,
}

/// Which execution path workers evaluate batches on.
///
/// Both paths are bitwise-equal — the conformance oracle's fifth path and
/// the CI executor matrix byte-compare them — so the choice is purely a
/// performance/diagnostic knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorMode {
    /// Op-graph execution plans (the default): each `(model, batch)` pair
    /// compiles once into a static [`rbnn_graph::ExecPlan`] of fused
    /// packed-word kernels that workers replay with zero per-request
    /// planning or allocation.
    #[default]
    Graph,
    /// The layer-by-layer `Layer` path, retained permanently as the
    /// conformance reference: every stage materializes its intermediate.
    Legacy,
}

impl ExecutorMode {
    /// Stable label used by bench envelopes and logs.
    pub fn name(self) -> &'static str {
        match self {
            ExecutorMode::Graph => "graph",
            ExecutorMode::Legacy => "legacy",
        }
    }

    /// Applies the `RBNN_EXECUTOR` environment override (`graph` /
    /// `legacy`, the CI executor-matrix pin; any other value keeps
    /// `self`). Mirrors the `RBNN_KERNELS` convention of the kernel
    /// dispatch layer.
    pub fn resolved(self) -> Self {
        match std::env::var("RBNN_EXECUTOR").as_deref() {
            Ok("graph") => ExecutorMode::Graph,
            Ok("legacy") => ExecutorMode::Legacy,
            _ => self,
        }
    }

    /// The mode a default-configured server runs with right now (config
    /// default plus environment override) — what bench envelopes record.
    pub fn active_default() -> Self {
        ExecutorMode::default().resolved()
    }
}

/// Request priority, mapped onto the queue's two lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Normal traffic (the default).
    #[default]
    Routine,
    /// Alarm-adjacent / latency-critical work: drained before routine
    /// requests and, under [`AdmissionPolicy::Shed`] overload, may evict
    /// the newest routine request instead of being rejected.
    Urgent,
}

impl Priority {
    fn lane(self) -> Lane {
        match self {
            Priority::Routine => Lane::Routine,
            Priority::Urgent => Lane::Urgent,
        }
    }
}

/// Per-request submission options (priority lane and deadline budget).
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Which queue lane the request enters.
    pub priority: Priority,
    /// Optional end-to-end budget measured from submission: once it
    /// elapses, a worker answers [`ServeError::DeadlineExceeded`] at
    /// dispatch instead of spending engine time on a verdict nobody can
    /// use. `None` (default) never expires.
    pub deadline: Option<Duration>,
}

impl SubmitOptions {
    /// Routine priority, no deadline — the legacy submit behavior.
    pub fn routine() -> Self {
        Self::default()
    }

    /// Urgent priority with an optional deadline.
    pub fn urgent(deadline: Option<Duration>) -> Self {
        Self {
            priority: Priority::Urgent,
            deadline,
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (= engine replicas per model).
    pub workers: usize,
    /// Substrate the pool evaluates on.
    pub backend: Backend,
    /// Batch formation policy.
    pub batch: BatchPolicy,
    /// Request queue capacity (the backpressure/shedding bound).
    pub queue_capacity: usize,
    /// Base seed for per-replica RRAM device sampling.
    pub seed: u64,
    /// Per-worker tile parallelism for RRAM replicas: threads each
    /// worker's engine may fan row tiles across (`0` = auto, all available
    /// cores). Defaults to 1 — the pool already parallelizes across
    /// workers, so intra-engine threads only help when workers ≪ cores or
    /// wear makes individual dispatches slow. Ignored on the software
    /// backend.
    pub engine_threads: usize,
    /// What happens to new work when the queue is full.
    pub admission: AdmissionPolicy,
    /// Respawn/quarantine policy for faulted replicas.
    pub supervisor: SupervisorPolicy,
    /// Marginal-cell fraction above which an RRAM replica falls back to
    /// the bit-exact software XNOR path (degraded mode). Checked after
    /// each dispatch; `0.0` disables the fallback. The default (5%) sits
    /// far above any fresh fabric (≪ 1% marginal) but below the
    /// heavily-worn regime where Monte-Carlo senses dominate both the
    /// latency and the error budget.
    pub degrade_marginal_threshold: f64,
    /// Which execution path workers use (default: compiled op-graph
    /// plans). The `RBNN_EXECUTOR` environment variable overrides this at
    /// [`Server::start`] — see [`ExecutorMode::resolved`].
    pub executor: ExecutorMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            backend: Backend::Software,
            batch: BatchPolicy::default(),
            queue_capacity: 4096,
            seed: 0x5EED,
            engine_threads: 1,
            admission: AdmissionPolicy::Shed,
            supervisor: SupervisorPolicy::default(),
            degrade_marginal_threshold: 0.05,
            executor: ExecutorMode::Graph,
        }
    }
}

/// A served classification result.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Argmax class index.
    pub class: usize,
    /// Raw output logits.
    pub logits: Vec<f32>,
}

/// Why a request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No model is registered for the task.
    UnknownTask(ServeTask),
    /// The feature vector width does not match the registered model.
    FeatureWidth {
        /// Width the registered model expects.
        expected: usize,
        /// Width the request carried.
        got: usize,
    },
    /// The queue is full and the request was load-shed — either rejected
    /// at admission ([`AdmissionPolicy::Shed`], [`ServeHandle::try_classify`])
    /// or evicted from the queue by an urgent arrival.
    Overloaded,
    /// The server is shutting down.
    ShuttingDown,
    /// The engine replica evaluating this batch panicked. The replica is
    /// retired and respawned by the supervisor after a backoff (or
    /// quarantined if it crash-loops); the worker and every other replica
    /// keep serving, so retrying the request on the same handle is safe.
    EngineFault,
    /// The engine reported a transient, retryable error for this batch;
    /// the replica itself stays healthy. (In production this models I/O
    /// or scheduling hiccups; the chaos harness injects it directly.)
    Transient,
    /// The request's [`deadline`](SubmitOptions::deadline) expired before
    /// engine dispatch; it was dropped without consuming engine time.
    DeadlineExceeded,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTask(t) => write!(f, "no model registered for task {:?}", t),
            ServeError::FeatureWidth { expected, got } => {
                write!(
                    f,
                    "feature width mismatch: model expects {expected}, request has {got}"
                )
            }
            ServeError::Overloaded => write!(f, "request queue full (load shed)"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::EngineFault => {
                write!(f, "engine replica panicked while serving the batch")
            }
            ServeError::Transient => {
                write!(f, "engine reported a transient error for the batch")
            }
            ServeError::DeadlineExceeded => {
                write!(f, "request deadline expired before engine dispatch")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Sample storage of a request: owned rows from the plain submit paths, or
/// a shared window for zero-copy fan-in (a producer can keep one buffer
/// alive across many requests).
enum RequestRows {
    Owned(Vec<Vec<f32>>),
    Shared(Arc<Vec<Vec<f32>>>),
}

impl RequestRows {
    fn rows(&self) -> &[Vec<f32>] {
        match self {
            RequestRows::Owned(rows) => rows,
            RequestRows::Shared(rows) => rows,
        }
    }
}

/// One queued inference request: one or more samples for one task.
///
/// Multi-sample requests (client-side batching — e.g. a monitor shipping a
/// window of heartbeats) share a single queue slot, reply channel and
/// dispatch, so the whole per-request fixed cost amortizes over the
/// window.
struct Request {
    task: ServeTask,
    rows: RequestRows,
    submitted: Instant,
    /// Absolute expiry: a worker answers [`ServeError::DeadlineExceeded`]
    /// at dispatch instead of evaluating past this instant.
    deadline: Option<Instant>,
    /// When a worker popped this request off the queue — stamped by the
    /// batcher's dequeue observer (only while telemetry is enabled), it
    /// separates queue wait from batching linger in span traces.
    dequeued: Option<Instant>,
    reply: mpsc::Sender<Result<Vec<Prediction>, ServeError>>,
}

impl std::fmt::Debug for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request")
            .field("task", &self.task)
            .field("samples", &self.rows.rows().len())
            .finish()
    }
}

/// One task's currently-deployed model, versioned so workers can detect a
/// hot swap ([`ServeHandle::swap_model`]) and rebuild their replicas
/// lazily on the next batch they serve for that task.
#[derive(Debug)]
struct ModelSlot {
    version: u64,
    entry: Arc<ModelEntry>,
}

/// State shared between the handle(s) and the workers.
#[derive(Debug)]
struct Shared {
    queue: BoundedQueue<Request>,
    stats: ServerStats,
    /// Sampled request-lifecycle traces (1-in-N completions), for post-hoc
    /// tail decomposition into queue / batch-linger / service phases.
    spans: SpanRing,
    /// Feature widths are fixed at start: a hot swap must preserve the
    /// registered width (enforced by [`Shared::swap_model`]), so clients'
    /// cached widths ([`TaskClient`]) stay valid across swaps.
    widths: BTreeMap<ServeTask, usize>,
    /// Current model per task, bumped by [`Shared::swap_model`]. Workers
    /// compare versions before serving and adopt the new entry lazily.
    models: RwLock<BTreeMap<ServeTask, ModelSlot>>,
    supervisor: Supervisor,
    admission: AdmissionPolicy,
    /// See [`ServeConfig::degrade_marginal_threshold`].
    degrade_marginal_threshold: f64,
    /// Resolved executor mode ([`ServeConfig::executor`] after the
    /// `RBNN_EXECUTOR` override).
    executor: ExecutorMode,
}

impl Shared {
    /// The current model (and its version) deployed for `task`.
    fn model_of(&self, task: ServeTask) -> Option<(u64, Arc<ModelEntry>)> {
        let models = self.models.read().unwrap_or_else(PoisonError::into_inner);
        models
            .get(&task)
            .map(|slot| (slot.version, Arc::clone(&slot.entry)))
    }

    /// Replaces the deployed model for `task`, returning the new version.
    /// The replacement must keep the registered feature width — clients
    /// cache widths at bind time, so a width change would silently break
    /// them; deploy a width-changing model as a new server instead.
    fn swap_model(&self, task: ServeTask, entry: ModelEntry) -> Result<u64, ServeError> {
        let expected = *self
            .widths
            .get(&task)
            .ok_or(ServeError::UnknownTask(task))?;
        let got = entry.network.in_features();
        if got != expected {
            return Err(ServeError::FeatureWidth { expected, got });
        }
        let mut models = self.models.write().unwrap_or_else(PoisonError::into_inner);
        let slot = models.get_mut(&task).ok_or(ServeError::UnknownTask(task))?;
        slot.version += 1;
        slot.entry = Arc::new(entry);
        Ok(slot.version)
    }
    /// The one enqueue path every client API funnels through: validates
    /// each sample against the pre-resolved feature `width`, stamps the
    /// deadline, then pushes onto the request's priority lane. Under
    /// [`AdmissionPolicy::Block`] a full queue blocks the producer
    /// (backpressure); under [`AdmissionPolicy::Shed`] — or whenever
    /// `force_shed` is set ([`ServeHandle::try_classify`]) — a full queue
    /// answers [`ServeError::Overloaded`] instead, and an urgent push may
    /// evict the newest queued routine request (whose own reply channel
    /// receives `Overloaded`: every accepted enqueue still reaches a
    /// terminal verdict or typed error).
    fn submit(
        &self,
        task: ServeTask,
        width: usize,
        rows: RequestRows,
        opts: &SubmitOptions,
        force_shed: bool,
    ) -> Result<mpsc::Receiver<Result<Vec<Prediction>, ServeError>>, ServeError> {
        for row in rows.rows() {
            if row.len() != width {
                return Err(ServeError::FeatureWidth {
                    expected: width,
                    got: row.len(),
                });
            }
        }
        let (reply, rx) = mpsc::channel();
        let now = Instant::now();
        let request = Request {
            task,
            rows,
            submitted: now,
            deadline: opts.deadline.map(|d| now + d),
            dequeued: None,
            reply,
        };
        let lane = opts.priority.lane();
        let outcome = if force_shed || self.admission == AdmissionPolicy::Shed {
            self.queue.push_shed(request, lane)
        } else {
            self.queue.push_lane(request, lane).map(|()| None)
        };
        match outcome {
            Ok(evicted) => {
                if let Some(victim) = evicted {
                    self.stats.record_evicted();
                    // The evicted client may have given up already; a
                    // dropped receiver is not an error.
                    let _ = victim.reply.send(Err(ServeError::Overloaded));
                }
                self.stats.record_submitted();
                Ok(rx)
            }
            Err(PushError::Full) => {
                self.stats.record_rejected();
                Err(ServeError::Overloaded)
            }
            Err(PushError::Closed) => Err(ServeError::ShuttingDown),
        }
    }
}

/// Cloneable synchronous client of a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    fn submit(
        &self,
        task: ServeTask,
        rows: RequestRows,
        opts: &SubmitOptions,
        force_shed: bool,
    ) -> Result<mpsc::Receiver<Result<Vec<Prediction>, ServeError>>, ServeError> {
        // One registry lookup per request (a TaskClient resolves it once
        // instead), one length check per sample.
        let expected = *self
            .shared
            .widths
            .get(&task)
            .ok_or(ServeError::UnknownTask(task))?;
        self.shared.submit(task, expected, rows, opts, force_shed)
    }

    fn recv_one(
        rx: mpsc::Receiver<Result<Vec<Prediction>, ServeError>>,
    ) -> Result<Prediction, ServeError> {
        match rx.recv() {
            Ok(Ok(mut predictions)) => predictions.pop().ok_or(ServeError::ShuttingDown),
            Ok(Err(e)) => Err(e),
            Err(_) => Err(ServeError::ShuttingDown),
        }
    }

    /// Classifies one feature vector, blocking until the pool answers.
    /// A full queue sheds or blocks according to the server's
    /// [`AdmissionPolicy`].
    pub fn classify(&self, task: ServeTask, features: Vec<f32>) -> Result<Prediction, ServeError> {
        let rx = self.submit(
            task,
            RequestRows::Owned(vec![features]),
            &SubmitOptions::default(),
            false,
        )?;
        Self::recv_one(rx)
    }

    /// [`classify`](Self::classify) with explicit [`SubmitOptions`]
    /// (priority lane, deadline).
    pub fn classify_with(
        &self,
        task: ServeTask,
        features: Vec<f32>,
        opts: &SubmitOptions,
    ) -> Result<Prediction, ServeError> {
        let rx = self.submit(task, RequestRows::Owned(vec![features]), opts, false)?;
        Self::recv_one(rx)
    }

    /// Classifies a multi-sample request (client-side batch): all samples
    /// share one queue slot, one dispatch and one reply — the whole
    /// per-request fixed cost amortizes across the window.
    pub fn classify_window(
        &self,
        task: ServeTask,
        rows: Vec<Vec<f32>>,
    ) -> Result<Vec<Prediction>, ServeError> {
        let rx = self.submit(
            task,
            RequestRows::Owned(rows),
            &SubmitOptions::default(),
            false,
        )?;
        rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Enqueues a request and returns immediately with a [`Pending`]
    /// ticket — the pipelined client path: keeping a window of outstanding
    /// requests in flight is what lets the pool form deep batches (a
    /// strictly synchronous caller never queues more than one).
    pub fn enqueue(&self, task: ServeTask, features: Vec<f32>) -> Result<Pending, ServeError> {
        Ok(Pending {
            rx: self.submit(
                task,
                RequestRows::Owned(vec![features]),
                &SubmitOptions::default(),
                false,
            )?,
        })
    }

    /// [`enqueue`](Self::enqueue) for a multi-sample request.
    pub fn enqueue_window(
        &self,
        task: ServeTask,
        rows: Vec<Vec<f32>>,
    ) -> Result<PendingWindow, ServeError> {
        Ok(PendingWindow {
            rx: self.submit(
                task,
                RequestRows::Owned(rows),
                &SubmitOptions::default(),
                false,
            )?,
        })
    }

    /// Zero-copy variant of [`enqueue_window`](Self::enqueue_window): the
    /// window is shared, not moved, so a producer replaying one buffer (or
    /// fanning one window out to several tasks) pays one `Arc` bump per
    /// request instead of a deep copy.
    pub fn enqueue_shared(
        &self,
        task: ServeTask,
        rows: Arc<Vec<Vec<f32>>>,
    ) -> Result<PendingWindow, ServeError> {
        Ok(PendingWindow {
            rx: self.submit(
                task,
                RequestRows::Shared(rows),
                &SubmitOptions::default(),
                false,
            )?,
        })
    }

    /// Like [`classify`](Self::classify) but *always* load-sheds on a
    /// full queue, regardless of the server's admission policy.
    pub fn try_classify(
        &self,
        task: ServeTask,
        features: Vec<f32>,
    ) -> Result<Prediction, ServeError> {
        let rx = self.submit(
            task,
            RequestRows::Owned(vec![features]),
            &SubmitOptions::default(),
            true,
        )?;
        Self::recv_one(rx)
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Point-in-time fleet health: per-replica status (healthy / down /
    /// quarantined / degraded), fault and respawn counts, worker
    /// heartbeat ages.
    pub fn fleet_health(&self) -> FleetHealth {
        self.shared.supervisor.fleet_health()
    }

    /// Point-in-time server statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot(self.shared.queue.len())
    }

    /// Sampled request-lifecycle traces (1-in-16 completions), each
    /// decomposing one request into queue-wait / batch-linger / service
    /// phases. Empty while telemetry is disabled.
    pub fn span_samples(&self) -> Vec<SpanRecord> {
        self.shared.spans.samples()
    }

    /// Binds this handle to one task, validating the registration **once**:
    /// the returned [`TaskClient`] submits without any per-request registry
    /// lookup — the session-friendly enqueue path for long-lived producers
    /// (a continuous-monitoring session submits thousands of windows for
    /// the same model; re-resolving the task each time is pure overhead,
    /// and the pre-client alternative of re-`insert`ing models or passing
    /// the task per call assumed one-shot matrices).
    pub fn client(&self, task: ServeTask) -> Result<TaskClient, ServeError> {
        let width = *self
            .shared
            .widths
            .get(&task)
            .ok_or(ServeError::UnknownTask(task))?;
        Ok(TaskClient {
            shared: Arc::clone(&self.shared),
            task,
            width,
        })
    }

    /// Hot-swaps the model deployed for `task` without restarting the
    /// pool, returning the new model version. Workers notice the version
    /// bump on the next batch they serve for the task and rebuild their
    /// replica (engine and compiled execution plan) from the new entry
    /// before evaluating — a request is always answered by exactly one
    /// model, never a blend, and a cached [`ExecPlan`] compiled for the
    /// old model is invalidated atomically with the engine.
    ///
    /// The replacement must keep the registered feature width
    /// ([`ServeError::FeatureWidth`] otherwise): clients cache widths at
    /// bind time, so the swap contract is width-stable by design.
    pub fn swap_model(&self, task: ServeTask, entry: ModelEntry) -> Result<u64, ServeError> {
        self.shared.swap_model(task, entry)
    }
}

/// A [`ServeHandle`] pre-bound to one task (from [`ServeHandle::client`]).
///
/// The task's registration and feature width are resolved at construction,
/// so every submit skips the registry lookup — the natural client shape
/// for per-session producers like `rbnn-stream`, which submit an unbounded
/// sequence of windows against one model. Clone freely; clones share the
/// same server.
#[derive(Debug, Clone)]
pub struct TaskClient {
    shared: Arc<Shared>,
    task: ServeTask,
    width: usize,
}

impl TaskClient {
    /// The bound task.
    pub fn task(&self) -> ServeTask {
        self.task
    }

    /// Feature width the bound model expects.
    pub fn in_features(&self) -> usize {
        self.width
    }

    fn submit(
        &self,
        rows: RequestRows,
        opts: &SubmitOptions,
    ) -> Result<mpsc::Receiver<Result<Vec<Prediction>, ServeError>>, ServeError> {
        self.shared.submit(self.task, self.width, rows, opts, false)
    }

    /// Classifies one feature vector, blocking until the pool answers
    /// (see [`ServeHandle::classify`]).
    pub fn classify(&self, features: Vec<f32>) -> Result<Prediction, ServeError> {
        let rx = self.submit(
            RequestRows::Owned(vec![features]),
            &SubmitOptions::default(),
        )?;
        ServeHandle::recv_one(rx)
    }

    /// [`classify`](Self::classify) with automatic retry on transient
    /// failures: shed admissions, transient engine errors and engine
    /// faults are retried with jittered exponential backoff up to
    /// `policy.max_attempts` total attempts. Non-retryable errors
    /// (deadline expiry, shutdown, bad input) return immediately.
    pub fn classify_retry(
        &self,
        features: Vec<f32>,
        opts: &SubmitOptions,
        policy: &RetryPolicy,
    ) -> Result<Prediction, ServeError> {
        let salt = features.len() as u64;
        let mut attempt = 0u32;
        loop {
            let outcome = self
                .submit(RequestRows::Owned(vec![features.clone()]), opts)
                .and_then(ServeHandle::recv_one);
            match outcome {
                Err(e) if e.is_retryable() && policy.allows_retry(attempt) => {
                    std::thread::sleep(policy.backoff(attempt, salt));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Enqueues one sample and returns a [`Pending`] ticket (see
    /// [`ServeHandle::enqueue`]).
    pub fn enqueue(&self, features: Vec<f32>) -> Result<Pending, ServeError> {
        Ok(Pending {
            rx: self.submit(
                RequestRows::Owned(vec![features]),
                &SubmitOptions::default(),
            )?,
        })
    }

    /// Enqueues a multi-sample window request (see
    /// [`ServeHandle::enqueue_window`]).
    pub fn enqueue_window(&self, rows: Vec<Vec<f32>>) -> Result<PendingWindow, ServeError> {
        Ok(PendingWindow {
            rx: self.submit(RequestRows::Owned(rows), &SubmitOptions::default())?,
        })
    }

    /// [`enqueue_window`](Self::enqueue_window) with explicit
    /// [`SubmitOptions`] — the stream router's submission path (urgent
    /// lane for alarm-adjacent windows, per-window deadlines).
    pub fn enqueue_window_with(
        &self,
        rows: Vec<Vec<f32>>,
        opts: &SubmitOptions,
    ) -> Result<PendingWindow, ServeError> {
        Ok(PendingWindow {
            rx: self.submit(RequestRows::Owned(rows), opts)?,
        })
    }

    /// Zero-copy multi-sample enqueue: the window is shared, not moved
    /// (see [`ServeHandle::enqueue_shared`]).
    pub fn enqueue_shared(&self, rows: Arc<Vec<Vec<f32>>>) -> Result<PendingWindow, ServeError> {
        Ok(PendingWindow {
            rx: self.submit(RequestRows::Shared(rows), &SubmitOptions::default())?,
        })
    }

    /// [`enqueue_shared`](Self::enqueue_shared) with explicit
    /// [`SubmitOptions`].
    pub fn enqueue_shared_with(
        &self,
        rows: Arc<Vec<Vec<f32>>>,
        opts: &SubmitOptions,
    ) -> Result<PendingWindow, ServeError> {
        Ok(PendingWindow {
            rx: self.submit(RequestRows::Shared(rows), opts)?,
        })
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Point-in-time fleet health (see [`ServeHandle::fleet_health`]).
    pub fn fleet_health(&self) -> FleetHealth {
        self.shared.supervisor.fleet_health()
    }

    /// Point-in-time server statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot(self.shared.queue.len())
    }
}

/// A not-yet-answered single-sample request (from
/// [`ServeHandle::enqueue`]).
#[derive(Debug)]
pub struct Pending {
    rx: mpsc::Receiver<Result<Vec<Prediction>, ServeError>>,
}

impl Pending {
    /// Blocks until the pool answers.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        ServeHandle::recv_one(self.rx)
    }

    /// Returns the answer if it has already arrived.
    pub fn poll(&self) -> Option<Result<Prediction, ServeError>> {
        match self.rx.try_recv() {
            Ok(Ok(mut predictions)) => Some(predictions.pop().ok_or(ServeError::ShuttingDown)),
            Ok(Err(e)) => Some(Err(e)),
            Err(mpsc::TryRecvError::Empty) => None,
            // The worker dropped the reply channel unanswered: shutdown.
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

/// A not-yet-answered multi-sample request (from
/// [`ServeHandle::enqueue_window`]).
#[derive(Debug)]
pub struct PendingWindow {
    rx: mpsc::Receiver<Result<Vec<Prediction>, ServeError>>,
}

impl PendingWindow {
    /// Blocks until the pool answers with one prediction per sample.
    pub fn wait(self) -> Result<Vec<Prediction>, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Returns the answer if it has already arrived — the non-blocking
    /// probe that lets one producer thread multiplex many in-flight
    /// windows (e.g. a stream router draining whichever patient's verdict
    /// lands first).
    pub fn poll(&self) -> Option<Result<Vec<Prediction>, ServeError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            // The worker dropped the reply channel unanswered: shutdown.
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

/// One worker's engine replica for one task.
enum WorkerEngine {
    /// Bit-exact software XNOR/popcount evaluation.
    Software(BinaryNetwork),
    /// Monte-Carlo RRAM simulation (owned mutably per worker).
    Rram(NetworkEngine),
}

impl WorkerEngine {
    /// Batched logits over per-request feature slices, plus the PCSA
    /// senses consumed (zero in software).
    fn logits_batch_rows(&mut self, rows: &[&[f32]]) -> (Tensor, u64) {
        match self {
            WorkerEngine::Software(net) => (net.logits_batch_rows(rows), 0),
            WorkerEngine::Rram(engine) => {
                let before = engine.stats().senses;
                let logits = engine.logits_batch_rows(rows);
                (logits, engine.stats().senses - before)
            }
        }
    }

    /// Fast-forwards device wear and runs one weight-refresh cycle on the
    /// worn fabric (chaos drift injection): the refresh re-realizes every
    /// resistance from the worn distributions, which is what actually
    /// pushes cells into the marginal band. No-op on the software backend
    /// — there is no fabric to age.
    fn age(&mut self, cycles: u64) {
        if let WorkerEngine::Rram(engine) = self {
            engine.set_cycles(cycles);
            engine.refresh();
        }
    }

    /// Fraction of cells whose programmed window has collapsed into the
    /// marginal band, or `None` on the software backend.
    fn marginal_fraction(&self) -> Option<f64> {
        match self {
            WorkerEngine::Software(_) => None,
            WorkerEngine::Rram(engine) => {
                let cells = engine.cell_count();
                if cells == 0 {
                    return None;
                }
                Some(engine.marginal_cells() as f64 / cells as f64)
            }
        }
    }
}

/// Everything needed to (re)build one worker's engine replica for one
/// task. Retained for the lifetime of the worker so the supervisor can
/// respawn a retired replica: a rebuild from the spec reprograms a
/// *fresh* fabric (same network, same per-replica seed), which is
/// exactly the recovery model of swapping in a spare die.
struct ReplicaSpec {
    network: BinaryNetwork,
    backend: Backend,
    engine_config: EngineConfig,
    engine_threads: usize,
    /// Per-worker device-seed salt, retained so a hot-swapped model's
    /// engine seed is derived exactly as at [`Server::start`]:
    /// `entry_seed + salt` (wrapping).
    seed_salt: u64,
}

impl ReplicaSpec {
    /// Builds (or rebuilds) the engine this spec describes.
    fn build(&self) -> WorkerEngine {
        match self.backend {
            Backend::Software => WorkerEngine::Software(self.network.clone()),
            Backend::Rram => {
                let mut engine = NetworkEngine::program(&self.network, &self.engine_config);
                engine.set_parallelism(self.engine_threads);
                WorkerEngine::Rram(engine)
            }
        }
    }

    /// Re-targets this spec at a hot-swapped model entry, re-salting the
    /// device seed with the retained per-worker salt.
    fn retarget(&mut self, entry: &ModelEntry) {
        self.network = entry.network.clone();
        let mut engine_config = entry.engine_config.clone();
        engine_config.seed = engine_config.seed.wrapping_add(self.seed_salt);
        self.engine_config = engine_config;
    }
}

/// A compiled execution plan plus its replay buffers, cached per replica.
///
/// Compiled once per `(model, batch capacity)` pair and replayed for every
/// subsequent batch: the replay path performs no planning and no buffer
/// allocation (the arena and logits storage live here). Invalidated only
/// by a model swap ([`adopt_model`]) or a batch larger than
/// `plan.max_batch()` — respawns and degrade fallbacks reuse it, since the
/// network is unchanged.
struct PlanState {
    plan: ExecPlan,
    buffers: PlanBuffers,
    logits: Vec<f32>,
}

impl PlanState {
    /// Compiles a plan for `network` sized to serve batches up to
    /// `capacity` rows.
    fn compile(network: &BinaryNetwork, capacity: usize) -> Self {
        let plan = ExecPlan::compile(network, capacity);
        let buffers = plan.buffers();
        let logits = vec![0.0; capacity * plan.out_features()];
        PlanState {
            plan,
            buffers,
            logits,
        }
    }

    /// Replays the cached plan over one batch on `engine`, returning the
    /// logits tensor and the PCSA senses consumed (zero in software).
    fn replay(&mut self, engine: &mut WorkerEngine, rows: &[&[f32]]) -> (Tensor, u64) {
        let n = rows.len();
        let classes = self.plan.out_features();
        let out = &mut self.logits[..n * classes];
        let senses = match engine {
            WorkerEngine::Software(_) => {
                self.plan.replay_rows(rows, &mut self.buffers, out);
                0
            }
            WorkerEngine::Rram(e) => {
                let before = e.stats().senses;
                e.replay_plan(&self.plan, rows, &mut self.buffers, out);
                e.stats().senses - before
            }
        };
        (Tensor::from_vec(out.to_vec(), [n, classes]), senses)
    }
}

/// One worker's replica slot: the rebuild recipe plus the live engine
/// (`None` while the replica is down or quarantined).
struct Replica {
    spec: ReplicaSpec,
    engine: Option<WorkerEngine>,
    /// Version of the deployed model this replica was built from; compared
    /// against the shared [`ModelSlot`] before each batch so a hot swap is
    /// adopted before any request is evaluated against stale weights.
    version: u64,
    /// Cached execution plan for [`ExecutorMode::Graph`] dispatch, compiled
    /// lazily on first use and invalidated on model swap.
    plan: Option<PlanState>,
    /// Set by a respawn, cleared by the first successful batch — the
    /// signal to tell the supervisor the replica is stable again.
    fresh_respawn: bool,
}

/// A running serving runtime. Dropping the server shuts it down and joins
/// the pool.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the pool: replicates every registered model's engine per
    /// worker (RRAM replicas get distinct device seeds — independent
    /// fabricated chips, not clones of one die) and begins serving.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers == 0` or the registry is empty.
    pub fn start(registry: &ModelRegistry, config: &ServeConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        assert!(!registry.is_empty(), "cannot serve an empty registry");
        let widths: BTreeMap<ServeTask, usize> = registry
            .tasks()
            .map(|t| (t, registry.in_features(t).expect("registered")))
            .collect();
        let tasks: Vec<ServeTask> = registry.tasks().collect();
        let models: BTreeMap<ServeTask, ModelSlot> = registry
            .tasks()
            .map(|task| {
                let entry = registry.get(task).expect("registered").clone();
                (
                    task,
                    ModelSlot {
                        version: 0,
                        entry: Arc::new(entry),
                    },
                )
            })
            .collect();
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            stats: ServerStats::new(config.workers),
            spans: SpanRing::new(SPAN_RING_CAPACITY),
            widths,
            models: RwLock::new(models),
            supervisor: Supervisor::new(config.supervisor.clone(), config.workers, &tasks),
            admission: config.admission,
            degrade_marginal_threshold: config.degrade_marginal_threshold,
            executor: config.executor.resolved(),
        });

        let workers = (0..config.workers)
            .map(|worker_idx| {
                let shared = Arc::clone(&shared);
                let mut replicas: BTreeMap<ServeTask, Replica> = registry
                    .tasks()
                    .map(|task| {
                        let entry = registry.get(task).expect("registered");
                        let mut engine_config = entry.engine_config.clone();
                        // Distinct device seed per worker: replicas are
                        // independently fabricated chips, not clones of
                        // one die — and a respawn programs yet another
                        // fresh fabric from the same recipe.
                        let seed_salt = config.seed.wrapping_add(worker_idx as u64 * 0x9E37_79B9);
                        engine_config.seed = engine_config.seed.wrapping_add(seed_salt);
                        let spec = ReplicaSpec {
                            network: entry.network.clone(),
                            backend: config.backend,
                            engine_config,
                            engine_threads: config.engine_threads,
                            seed_salt,
                        };
                        let engine = Some(spec.build());
                        (
                            task,
                            Replica {
                                spec,
                                engine,
                                version: 0,
                                plan: None,
                                fresh_respawn: false,
                            },
                        )
                    })
                    .collect();
                let mut batcher = Batcher::new(config.batch.clone());
                std::thread::Builder::new()
                    .name(format!("rbnn-serve-{worker_idx}"))
                    .spawn(move || worker_loop(&shared, worker_idx, &mut replicas, &mut batcher))
                    .expect("spawn worker")
            })
            .collect();

        Self { shared, workers }
    }

    /// A new client handle.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Hot-swaps the model deployed for `task` (see
    /// [`ServeHandle::swap_model`]).
    pub fn swap_model(&self, task: ServeTask, entry: ModelEntry) -> Result<u64, ServeError> {
        self.shared.swap_model(task, entry)
    }

    /// Point-in-time server statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot(self.shared.queue.len())
    }

    /// Sampled request-lifecycle traces (see
    /// [`ServeHandle::span_samples`]).
    pub fn span_samples(&self) -> Vec<SpanRecord> {
        self.shared.spans.samples()
    }

    /// Point-in-time fleet health (see [`ServeHandle::fleet_health`]).
    pub fn fleet_health(&self) -> FleetHealth {
        self.shared.supervisor.fleet_health()
    }

    /// Stops intake, drains queued requests, and joins the pool.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Span-ring capacity: enough retained samples to characterize a tail
/// (at 1-in-16 sampling this covers the last ~8k completions) while the
/// ring itself stays a few KiB.
const SPAN_RING_CAPACITY: usize = 512;

/// One request lifecycle in every `SPAN_SAMPLE_EVERY` completions is
/// retained as a full [`SpanRecord`]. Sampling keys off the completion
/// ordinal, so the very first request is always captured (short tests and
/// demos see at least one trace).
const SPAN_SAMPLE_EVERY: u64 = 16;

/// How long an idle worker waits for traffic before coming back around to
/// heartbeat the supervisor and respawn due replicas. Short enough that a
/// respawn whose backoff has elapsed is picked up promptly, long enough to
/// stay invisible in CPU profiles of an idle pool.
const WORKER_TICK: Duration = Duration::from_millis(25);

/// One worker's serve loop: pull micro-batches until the queue closes,
/// ticking every [`WORKER_TICK`] even when idle so supervision (heartbeat,
/// backoff-elapsed respawns) keeps running without traffic.
///
/// This is a panic-freedom zone (see `analysis.toml`): a dying worker
/// silently shrinks the pool, so nothing in the loop body may unwind —
/// engine panics are contained inside [`serve_batch`].
fn worker_loop(
    shared: &Shared,
    worker_idx: usize,
    replicas: &mut BTreeMap<ServeTask, Replica>,
    batcher: &mut Batcher,
) {
    loop {
        shared.supervisor.heartbeat(worker_idx);
        respawn_due_replicas(shared, worker_idx, replicas);
        // Stamp each chunk as it leaves the queue (one clock read per
        // pop, not per request) so span traces can split queue wait from
        // the linger.
        let batch = batcher.next_batch_within(&shared.queue, WORKER_TICK, |chunk| {
            if rbnn_telemetry::enabled() {
                let now = Instant::now();
                for request in chunk.iter_mut() {
                    request.dequeued = Some(now);
                }
            }
        });
        let Some(batch) = batch else { break };
        if batch.is_empty() {
            continue;
        }
        serve_batch(shared, worker_idx, replicas, batch);
    }
}

/// Rebuilds every replica of this worker whose respawn backoff has
/// elapsed. Only the owning worker thread touches its engines, so
/// recovery needs no cross-thread engine handoff: the supervisor decides
/// *when*, the worker performs the rebuild.
fn respawn_due_replicas(
    shared: &Shared,
    worker_idx: usize,
    replicas: &mut BTreeMap<ServeTask, Replica>,
) {
    for (task, replica) in replicas.iter_mut() {
        if replica.engine.is_none() && shared.supervisor.respawn_due(worker_idx, *task) {
            try_respawn(shared, worker_idx, *task, replica);
        }
    }
}

/// One respawn attempt: rebuild the engine from the retained spec. A
/// rebuild that itself panics (e.g. chaos armed during programming)
/// counts as another fault and pushes the backoff further out.
fn try_respawn(shared: &Shared, worker_idx: usize, task: ServeTask, replica: &mut Replica) {
    let rebuilt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| replica.spec.build()));
    match rebuilt {
        Ok(engine) => {
            replica.engine = Some(engine);
            replica.fresh_respawn = true;
            shared.supervisor.respawned(worker_idx, task);
        }
        Err(_) => {
            shared.supervisor.record_fault(worker_idx, task);
        }
    }
}

/// Runs one micro-batch: group by task, drop expired requests, evaluate
/// batched, answer each survivor with one prediction per sample.
///
/// A panicking engine replica degrades only its own task group: the
/// unwind is caught, every request in the group is answered with
/// [`ServeError::EngineFault`], and the replica is retired from this
/// worker (its interior state may be inconsistent mid-unwind) — the
/// supervisor schedules its respawn. The worker thread itself — and every
/// other replica it holds — keeps serving.
fn serve_batch(
    shared: &Shared,
    worker_idx: usize,
    replicas: &mut BTreeMap<ServeTask, Replica>,
    batch: Vec<Request>,
) {
    let mut by_task: BTreeMap<ServeTask, Vec<Request>> = BTreeMap::new();
    let now = Instant::now();
    for request in batch {
        // Deadline check happens *before* the engine sees the request: an
        // expired answer is useless to the caller, so spending senses on
        // it would only add latency to everything queued behind it.
        if request.deadline.is_some_and(|d| now >= d) {
            shared.stats.record_expired();
            let _ = request.reply.send(Err(ServeError::DeadlineExceeded));
            continue;
        }
        by_task.entry(request.task).or_default().push(request);
    }
    let mut senses_total = 0u64;
    let mut samples_total = 0usize;
    for (task, requests) in by_task {
        // Submit validated the task, so a miss here means the slot map is
        // inconsistent — fail the group, keep the worker.
        let Some(replica) = replicas.get_mut(&task) else {
            fail_group(requests, ServeError::EngineFault);
            continue;
        };
        // A hot-swapped model is adopted *before* the respawn check and
        // the evaluation: no request is ever answered by a stale model or
        // a stale execution plan.
        adopt_model(shared, worker_idx, task, replica);
        // A retired replica whose backoff has elapsed respawns lazily on
        // first demand, so a fault under sustained traffic recovers
        // without waiting for an idle tick.
        if replica.engine.is_none() && shared.supervisor.respawn_due(worker_idx, task) {
            try_respawn(shared, worker_idx, task, replica);
        }
        let Some(engine) = replica.engine.as_mut() else {
            // Still down or quarantined: the group fails fast with a
            // retryable error and the client's backoff takes it to
            // another worker (or a later attempt).
            fail_group(requests, ServeError::EngineFault);
            continue;
        };
        // Disjoint field borrows: the closure needs the engine, the plan
        // cache and the network recipe at once.
        let plan = &mut replica.plan;
        let network = &replica.spec.network;
        let rows: Vec<&[f32]> = requests
            .iter()
            .flat_map(|r| r.rows.rows().iter().map(Vec::as_slice))
            .collect();
        samples_total += rows.len();
        // Dispatch stamp: the batch is formed and this task group is
        // handed to the engine. Everything before is queue wait (+linger),
        // everything after is service.
        let dispatched = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match crate::fault::next_event() {
                Some(ChaosEvent::Panic) => crate::fault::injected_panic(),
                Some(ChaosEvent::Stall(pause)) => std::thread::sleep(pause),
                Some(ChaosEvent::Transient) => return Err(()),
                Some(ChaosEvent::Drift { cycles }) => engine.age(cycles),
                None => {}
            }
            Ok(dispatch_rows(engine, network, plan, shared.executor, &rows))
        }));
        let (logits, senses) = match outcome {
            Ok(Ok(result)) => result,
            Ok(Err(())) => {
                // Transient engine error: the replica stays up, the group
                // is answered with a retryable error.
                shared.stats.record_transient();
                fail_group(requests, ServeError::Transient);
                continue;
            }
            Err(_) => {
                replica.engine = None;
                shared.supervisor.record_fault(worker_idx, task);
                fail_group(requests, ServeError::EngineFault);
                continue;
            }
        };
        if replica.fresh_respawn {
            replica.fresh_respawn = false;
            shared.supervisor.mark_stable(worker_idx, task);
        }
        maybe_degrade(shared, worker_idx, task, replica);
        senses_total += senses;
        let classes = logits.dim(1);
        let mut offset = 0usize;
        for request in requests {
            let predictions: Vec<Prediction> = (offset..offset + request.rows.rows().len())
                .map(|i| {
                    let row = &logits.as_slice()[i * classes..(i + 1) * classes];
                    Prediction {
                        class: rbnn_tensor::argmax(row),
                        logits: row.to_vec(),
                    }
                })
                .collect();
            offset += request.rows.rows().len();
            let latency = request.submitted.elapsed();
            let queue_wait = dispatched.duration_since(request.submitted);
            let service = latency.saturating_sub(queue_wait);
            // A client that gave up is not an error; drop the response.
            let _ = request.reply.send(Ok(predictions));
            let ordinal = shared
                .stats
                .record_completed_split(latency, queue_wait, service);
            if ordinal % SPAN_SAMPLE_EVERY == 1 && rbnn_telemetry::enabled() {
                if let Some(dequeued) = request.dequeued {
                    shared.spans.push(SpanRecord {
                        queue_wait: dequeued.duration_since(request.submitted),
                        batch_wait: dispatched.duration_since(dequeued),
                        service,
                        samples: request.rows.rows().len(),
                    });
                }
            }
        }
    }
    shared
        .stats
        .record_batch(worker_idx, samples_total, senses_total);
}

/// Smallest batch capacity an execution plan is compiled for: batches grow
/// to the next power of two above this floor, so a ramp-up from
/// single-sample traffic to full micro-batches recompiles the plan only
/// O(log batch) times (and a plan compiled for the configured batch cap is
/// never recompiled again).
const MIN_PLAN_BATCH: usize = 16;

/// Evaluates one task group on the configured executor. Under
/// [`ExecutorMode::Graph`] the replica's cached [`PlanState`] is replayed
/// — compiled here on first use (or when the batch outgrows its capacity),
/// then reused with zero per-request planning or allocation. Under
/// [`ExecutorMode::Legacy`] the layer-by-layer reference path runs
/// directly. Both paths are bitwise-equal (locked by the conformance
/// oracle's plan path and the CI executor matrix).
fn dispatch_rows(
    engine: &mut WorkerEngine,
    network: &BinaryNetwork,
    plan: &mut Option<PlanState>,
    executor: ExecutorMode,
    rows: &[&[f32]],
) -> (Tensor, u64) {
    let n = rows.len();
    if executor == ExecutorMode::Graph {
        if plan.as_ref().map_or(true, |p| p.plan.max_batch() < n) {
            *plan = Some(PlanState::compile(
                network,
                n.next_power_of_two().max(MIN_PLAN_BATCH),
            ));
        }
        if let Some(state) = plan.as_mut() {
            return state.replay(engine, rows);
        }
    }
    engine.logits_batch_rows(rows)
}

/// Adopts a hot-swapped model ([`ServeHandle::swap_model`]): when the
/// shared slot's version differs from the replica's, the spec is
/// re-targeted (re-salted device seed), the cached execution plan is
/// dropped, and a live engine is rebuilt in place. A rebuild that panics
/// retires the replica through the normal supervision path; a replica that
/// was already down keeps its updated spec and rebuilds through the usual
/// respawn flow.
fn adopt_model(shared: &Shared, worker_idx: usize, task: ServeTask, replica: &mut Replica) {
    let Some((version, entry)) = shared.model_of(task) else {
        return;
    };
    if version == replica.version {
        return;
    }
    replica.spec.retarget(&entry);
    replica.plan = None;
    replica.version = version;
    if replica.engine.is_none() {
        return;
    }
    let rebuilt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| replica.spec.build()));
    match rebuilt {
        Ok(engine) => replica.engine = Some(engine),
        Err(_) => {
            replica.engine = None;
            shared.supervisor.record_fault(worker_idx, task);
        }
    }
}

/// Answers every request of a failed task group with `error`. A client
/// that already gave up (dropped receiver) is not an error.
fn fail_group(requests: Vec<Request>, error: ServeError) {
    for request in requests {
        let _ = request.reply.send(Err(error.clone()));
    }
}

/// Degraded-mode fallback: when an RRAM replica's marginal-cell fraction
/// crosses the configured threshold, swap the replica to bit-exact
/// software XNOR evaluation of the *same* network. Inference keeps
/// flowing at software speed while the fleet report shows the die as
/// degraded — mirroring the paper's deployment story, where the
/// digital path is the always-available fallback for a worn fabric.
fn maybe_degrade(shared: &Shared, worker_idx: usize, task: ServeTask, replica: &mut Replica) {
    if shared.degrade_marginal_threshold <= 0.0 {
        return;
    }
    let Some(engine) = replica.engine.as_ref() else {
        return;
    };
    if let Some(fraction) = engine.marginal_fraction() {
        if fraction > shared.degrade_marginal_threshold {
            replica.engine = Some(WorkerEngine::Software(replica.spec.network.clone()));
            shared.supervisor.record_degraded(worker_idx, task);
        }
    }
}

/// Largest number of requests [`classify_matrix`] keeps in flight. Deep
/// enough to let the pool form full batches, comfortably below the default
/// queue capacity so a lone caller never trips its own backpressure.
const CLASSIFY_MATRIX_WINDOW: usize = 256;

/// Convenience: classify a whole feature matrix through a handle from one
/// caller thread, returning predicted classes in row order (used by
/// benches/examples to drive load without writing client boilerplate).
///
/// Requests are *pipelined*: up to `CLASSIFY_MATRIX_WINDOW` (256) rows are
/// enqueued before the oldest response is awaited, so the pool sees a deep
/// queue and can form real batches. (An earlier revision submitted rows
/// strictly synchronously — one request in flight — which could never
/// exercise batching and made every number measured through it a
/// single-sample number.) On the software backend and on fresh RRAM
/// devices predictions are identical either way; with worn (marginal)
/// RRAM cells the different batch grouping consumes each array's
/// Monte-Carlo stream in a different order, so results are statistically
/// — not bit-for-bit — equivalent, like every other batched-vs-sequential
/// path in the engine. On the first error the remaining in-flight
/// requests are abandoned (their replies are dropped harmlessly).
pub fn classify_matrix(
    handle: &ServeHandle,
    task: ServeTask,
    features: &Tensor,
) -> Result<Vec<usize>, ServeError> {
    let n = features.dim(0);
    let f = features.dim(1);
    let xs = features.as_slice();
    let mut in_flight = std::collections::VecDeque::with_capacity(CLASSIFY_MATRIX_WINDOW);
    let mut classes = Vec::with_capacity(n);
    for i in 0..n {
        if in_flight.len() >= CLASSIFY_MATRIX_WINDOW {
            let oldest: Pending = in_flight.pop_front().expect("non-empty window");
            classes.push(oldest.wait()?.class);
        }
        in_flight.push_back(handle.enqueue(task, xs[i * f..(i + 1) * f].to_vec())?);
    }
    for pending in in_flight {
        classes.push(pending.wait()?.class);
    }
    Ok(classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Duration;

    fn demo_server(workers: usize, backend: Backend) -> (Server, ModelRegistry) {
        let registry = ModelRegistry::demo(42);
        let config = ServeConfig {
            workers,
            backend,
            ..Default::default()
        };
        let server = Server::start(&registry, &config);
        (server, registry)
    }

    fn random_features(n: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn software_pool_matches_direct_network() {
        let (server, registry) = demo_server(3, Backend::Software);
        let handle = server.handle();
        let mut rng = StdRng::seed_from_u64(1);
        for task in ServeTask::ALL {
            let net = &registry.get(task).unwrap().network;
            for _ in 0..20 {
                let x = random_features(net.in_features(), &mut rng);
                let served = handle.classify(task, x.clone()).expect("served");
                assert_eq!(served.class, net.classify(&x), "{task:?}");
                assert_eq!(served.logits, net.logits(&x), "{task:?}");
            }
        }
        let snap = server.shutdown();
        assert_eq!(snap.completed, 60);
        assert_eq!(snap.rejected, 0);
        assert!(snap.p99 > Duration::ZERO);
    }

    #[test]
    fn rram_pool_serves_and_counts_senses() {
        let registry = ModelRegistry::demo(43);
        let config = ServeConfig {
            workers: 2,
            backend: Backend::Rram,
            ..Default::default()
        };
        let server = Server::start(&registry, &config);
        let handle = server.handle();
        let mut rng = StdRng::seed_from_u64(2);
        let net = &registry.get(ServeTask::Ecg).unwrap().network;
        for _ in 0..6 {
            let x = random_features(net.in_features(), &mut rng);
            // Fresh devices: the RRAM read is exact, so classes agree with
            // software.
            let served = handle.classify(ServeTask::Ecg, x.clone()).expect("served");
            assert_eq!(served.class, net.classify(&x));
        }
        let snap = server.shutdown();
        assert_eq!(snap.completed, 6);
        let senses: u64 = snap.engines.iter().map(|e| e.senses).sum();
        assert!(senses > 0, "RRAM backend must consume PCSA senses");
    }

    #[test]
    fn rejects_bad_requests_without_queuing() {
        let (server, _) = demo_server(1, Backend::Software);
        let handle = server.handle();
        assert_eq!(
            handle.classify(ServeTask::Ecg, vec![0.0; 3]),
            Err(ServeError::FeatureWidth {
                expected: 2520,
                got: 3
            })
        );
        let snap = server.shutdown();
        assert_eq!(snap.submitted, 0);
    }

    #[test]
    fn concurrent_clients_all_get_answers() {
        let (server, registry) = demo_server(4, Backend::Software);
        let net = registry.get(ServeTask::Eeg).unwrap().network.clone();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let handle = server.handle();
                let net = net.clone();
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(100 + t);
                    for _ in 0..50 {
                        let x = random_features(net.in_features(), &mut rng);
                        let p = handle.classify(ServeTask::Eeg, x.clone()).expect("served");
                        assert_eq!(p.class, net.classify(&x));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
        let snap = server.shutdown();
        assert_eq!(snap.completed, 400);
        assert!(snap.mean_batch >= 1.0);
        let spread: Vec<u64> = snap.engines.iter().map(|e| e.samples).collect();
        assert_eq!(spread.iter().sum::<u64>(), 400);
    }

    #[test]
    fn window_requests_match_single_sample_requests() {
        let (server, registry) = demo_server(2, Backend::Software);
        let handle = server.handle();
        let net = &registry.get(ServeTask::Ecg).unwrap().network;
        let mut rng = StdRng::seed_from_u64(9);
        let rows: Vec<Vec<f32>> = (0..13)
            .map(|_| random_features(net.in_features(), &mut rng))
            .collect();
        let windowed = handle
            .classify_window(ServeTask::Ecg, rows.clone())
            .expect("served window");
        assert_eq!(windowed.len(), rows.len());
        for (row, served) in rows.iter().zip(&windowed) {
            assert_eq!(served.class, net.classify(row));
            assert_eq!(served.logits, net.logits(row));
        }
        // An empty window is answered with an empty prediction list.
        let empty = handle
            .classify_window(ServeTask::Ecg, Vec::new())
            .expect("served");
        assert!(empty.is_empty());
        let snap = server.shutdown();
        // Two requests, thirteen samples.
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.engines.iter().map(|e| e.samples).sum::<u64>(), 13);
    }

    #[test]
    fn span_samples_decompose_latency() {
        let (server, registry) = demo_server(2, Backend::Software);
        let handle = server.handle();
        let net = &registry.get(ServeTask::Ecg).unwrap().network;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let x = random_features(net.in_features(), &mut rng);
            handle.classify(ServeTask::Ecg, x).expect("served");
        }
        let spans = handle.span_samples();
        assert!(
            !spans.is_empty(),
            "40 completions at 1-in-16 sampling must retain spans"
        );
        let snap = server.shutdown();
        assert_eq!(snap.completed, 40);
        for span in &spans {
            assert_eq!(span.samples, 1);
            // The three phases sum to the end-to-end latency, which must
            // sit inside the observed latency range.
            assert!(span.total() > Duration::ZERO);
            assert!(span.service > Duration::ZERO, "engine time can't be zero");
        }
        // The split histograms saw every completion: components' p50s are
        // populated and bounded by the end-to-end p50-like scale.
        assert!(snap.service_p50 > Duration::ZERO);
        assert!(snap.queue_p50 + snap.service_p50 >= snap.p50 / 2);
    }

    #[test]
    fn classify_after_shutdown_errors() {
        let (server, _) = demo_server(1, Backend::Software);
        let handle = server.handle();
        let _ = server.shutdown();
        assert_eq!(
            handle.classify(ServeTask::Ecg, vec![0.0; 2520]),
            Err(ServeError::ShuttingDown)
        );
    }

    #[test]
    fn classify_matrix_round_trips() {
        let (server, registry) = demo_server(2, Backend::Software);
        let handle = server.handle();
        let net = &registry.get(ServeTask::Image).unwrap().network;
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10;
        let f = net.in_features();
        let xs: Vec<f32> = (0..n * f).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let features = Tensor::from_vec(xs, [n, f]);
        let served = classify_matrix(&handle, ServeTask::Image, &features).expect("served");
        assert_eq!(served, net.classify_batch(&features));
    }

    #[test]
    fn classify_matrix_pipelines_into_real_batches() {
        // Regression: classify_matrix used to hold one request in flight,
        // so the pool could never merge its traffic into batches and every
        // number measured through it was a single-sample number.
        let registry = ModelRegistry::demo(44);
        let config = ServeConfig {
            workers: 1,
            backend: Backend::Software,
            ..Default::default()
        };
        let server = Server::start(&registry, &config);
        let handle = server.handle();
        let net = &registry.get(ServeTask::Ecg).unwrap().network;
        let mut rng = StdRng::seed_from_u64(5);
        let n = 400;
        let f = net.in_features();
        let xs: Vec<f32> = (0..n * f).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let features = Tensor::from_vec(xs, [n, f]);
        let served = classify_matrix(&handle, ServeTask::Ecg, &features).expect("served");
        assert_eq!(served, net.classify_batch(&features), "order must hold");
        let snap = server.shutdown();
        assert_eq!(snap.completed, n as u64);
        assert!(
            snap.mean_batch > 1.5,
            "pipelined submission must form multi-request batches, mean {:.2}",
            snap.mean_batch
        );
    }

    #[test]
    fn rram_pool_serves_fresh_devices_bit_exactly_and_fast() {
        // The margin-gated acceptance path: RRAM serving on fresh devices
        // must agree with the software network on every sample (all senses
        // deterministic) while clearing far more than the ~42 samples/s
        // the ungated Monte-Carlo path managed.
        let registry = ModelRegistry::demo(45);
        let config = ServeConfig {
            workers: 2,
            backend: Backend::Rram,
            ..Default::default()
        };
        let server = Server::start(&registry, &config);
        let handle = server.handle();
        let net = &registry.get(ServeTask::Ecg).unwrap().network;
        let mut rng = StdRng::seed_from_u64(6);
        let n = 300;
        let f = net.in_features();
        let xs: Vec<f32> = (0..n * f).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let features = Tensor::from_vec(xs, [n, f]);
        let t0 = std::time::Instant::now();
        let served = classify_matrix(&handle, ServeTask::Ecg, &features).expect("served");
        let rate = n as f64 / t0.elapsed().as_secs_f64();
        assert_eq!(served, net.classify_batch(&features), "fresh ⇒ bit-exact");
        assert!(
            rate > 300.0,
            "RRAM serving should be orders beyond 42 samples/s, got {rate:.0}"
        );
        let snap = server.shutdown();
        let senses: u64 = snap.engines.iter().map(|e| e.senses).sum();
        assert!(senses > 0, "gated senses must still be counted");
    }
}
