//! A bounded MPMC request queue with blocking backpressure, priority
//! lanes, and an optional load-shedding admission path.
//!
//! `std::sync::mpsc` is single-consumer and its `SyncSender` cannot express
//! "try, then tell the caller the queue is full" alongside batch draining
//! with a deadline, so the serving runtime uses its own small primitive:
//! a `Mutex` over two `VecDeque` lanes with two condition variables (one
//! for producers waiting on capacity, one for consumers waiting on items)
//! — the classic bounded-buffer construction, extended with a two-lane
//! priority order.
//!
//! Lanes share one capacity budget. Consumers drain the urgent lane
//! first; within a lane order is FIFO. The shedding push
//! ([`BoundedQueue::push_shed`]) never blocks: a full queue rejects the
//! newest routine work — either the incoming item itself or, when the
//! incoming item is urgent, the newest queued routine item, which is
//! handed back to the caller so it can be answered with a typed
//! overload error instead of silently vanishing.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity (only from the non-blocking pushes).
    Full,
    /// The queue has been closed for shutdown.
    Closed,
}

/// Which priority lane an item enters.
///
/// Urgent items are drained before routine ones and, on the shedding
/// path, may evict the newest routine item when the queue is full —
/// the serving layer maps alarm-adjacent stream windows onto
/// [`Lane::Urgent`] so they preempt routine monitoring traffic under
/// overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lane {
    /// Alarm-adjacent / latency-critical work; drained first.
    Urgent,
    /// Normal traffic (the default).
    #[default]
    Routine,
}

struct Inner<T> {
    urgent: VecDeque<T>,
    routine: VecDeque<T>,
    closed: bool,
}

impl<T> Inner<T> {
    fn len(&self) -> usize {
        self.urgent.len() + self.routine.len()
    }
}

/// The bounded queue. All methods are `&self`; share it through an `Arc`.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    space: Condvar,
    ready: Condvar,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// Acquires the queue lock, recovering from poisoning.
    ///
    /// A panicking holder (e.g. an engine worker dying mid-drain) poisons
    /// the mutex, but every critical section in this module upholds the
    /// queue invariants (`len <= capacity`, `closed` is monotone) on every
    /// exit path — including unwinds — so the recovered state is always
    /// consistent and the queue keeps serving the surviving threads.
    fn lock_inner(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Creates a queue holding at most `capacity` items across both lanes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            inner: Mutex::new(Inner {
                urgent: VecDeque::new(),
                routine: VecDeque::new(),
                closed: false,
            }),
            capacity,
            space: Condvar::new(),
            ready: Condvar::new(),
        }
    }

    /// Current number of queued items across both lanes (the queue-depth
    /// gauge).
    pub fn len(&self) -> usize {
        self.lock_inner().len()
    }

    /// True if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues on the routine lane, blocking while the queue is full —
    /// the backpressure path: a caller faster than the engine pool is
    /// slowed to its rate.
    pub fn push(&self, item: T) -> Result<(), PushError> {
        self.push_lane(item, Lane::Routine)
    }

    /// Enqueues on `lane`, blocking while the queue is full.
    ///
    /// A concurrent [`close`](Self::close) wakes every blocked producer
    /// and this returns [`PushError::Closed`] promptly: the wait loop
    /// re-checks `closed` before `items.len()` on every wakeup, and
    /// `close` notifies the space condvar while holding the lock.
    pub fn push_lane(&self, item: T, lane: Lane) -> Result<(), PushError> {
        let mut inner = self.lock_inner();
        loop {
            if inner.closed {
                return Err(PushError::Closed);
            }
            if inner.len() < self.capacity {
                match lane {
                    Lane::Urgent => inner.urgent.push_back(item),
                    Lane::Routine => inner.routine.push_back(item),
                }
                self.ready.notify_one();
                return Ok(());
            }
            inner = self
                .space
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Enqueues on the routine lane without blocking; a full queue is
    /// reported to the caller instead.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        match self.push_shed(item, Lane::Routine) {
            Ok(None) => Ok(()),
            // Routine pushes never evict, so `Ok(Some(_))` is unreachable;
            // treat it as accepted-with-eviction defensively.
            Ok(Some(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Load-shedding enqueue: never blocks. On success returns
    /// `Ok(None)`, or `Ok(Some(evicted))` when an urgent push displaced
    /// the newest routine item to make room — the caller owns answering
    /// the evicted item with a typed overload error.
    ///
    /// A full queue rejects the newest work: a routine push into a full
    /// queue gets [`PushError::Full`]; an urgent push evicts the newest
    /// routine item if one exists and is only rejected when the queue is
    /// entirely urgent.
    pub fn push_shed(&self, item: T, lane: Lane) -> Result<Option<T>, PushError> {
        let mut inner = self.lock_inner();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.len() < self.capacity {
            match lane {
                Lane::Urgent => inner.urgent.push_back(item),
                Lane::Routine => inner.routine.push_back(item),
            }
            self.ready.notify_one();
            return Ok(None);
        }
        if lane == Lane::Urgent {
            if let Some(evicted) = inner.routine.pop_back() {
                inner.urgent.push_back(item);
                self.ready.notify_one();
                return Ok(Some(evicted));
            }
        }
        Err(PushError::Full)
    }

    /// Blocks until at least one item is available (or the queue closes),
    /// then drains up to `max` items, urgent lane first. Returns `None`
    /// only after close with an empty queue — the consumer's termination
    /// signal.
    pub fn pop_up_to(&self, max: usize) -> Option<Vec<T>> {
        let mut inner = self.lock_inner();
        loop {
            if inner.len() != 0 {
                return Some(self.drain_locked(&mut inner, max));
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`pop_up_to`](Self::pop_up_to) but gives up at `deadline`,
    /// returning an empty batch on timeout.
    pub fn pop_up_to_deadline(&self, max: usize, deadline: Instant) -> Option<Vec<T>> {
        let mut inner = self.lock_inner();
        loop {
            if inner.len() != 0 {
                return Some(self.drain_locked(&mut inner, max));
            }
            if inner.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(Vec::new());
            }
            let (guard, timeout) = self
                .ready
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if timeout.timed_out() && inner.len() == 0 {
                return Some(Vec::new());
            }
        }
    }

    fn drain_locked(&self, inner: &mut Inner<T>, max: usize) -> Vec<T> {
        let take = inner.len().min(max.max(1));
        let from_urgent = inner.urgent.len().min(take);
        let mut batch: Vec<T> = inner.urgent.drain(..from_urgent).collect();
        let from_routine = take - from_urgent;
        batch.extend(inner.routine.drain(..from_routine));
        // Capacity freed: release every producer blocked on space.
        self.space.notify_all();
        batch
    }

    /// Closes the queue: pending items remain poppable, new pushes fail,
    /// blocked producers and consumers wake.
    pub fn close(&self) {
        let mut inner = self.lock_inner();
        inner.closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_batch_drain() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.pop_up_to(3).unwrap(), vec![0, 1, 2]);
        assert_eq!(q.pop_up_to(10).unwrap(), vec![3, 4]);
    }

    #[test]
    fn urgent_lane_preempts_routine_fifo() {
        let q = BoundedQueue::new(8);
        q.push_lane(0, Lane::Routine).unwrap();
        q.push_lane(1, Lane::Routine).unwrap();
        q.push_lane(10, Lane::Urgent).unwrap();
        q.push_lane(11, Lane::Urgent).unwrap();
        // Urgent drains first, FIFO within each lane.
        assert_eq!(q.pop_up_to(3).unwrap(), vec![10, 11, 0]);
        assert_eq!(q.pop_up_to(3).unwrap(), vec![1]);
    }

    #[test]
    fn try_push_reports_full() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        let _ = q.pop_up_to(1);
        q.try_push(3).unwrap();
    }

    #[test]
    fn shed_rejects_newest_routine_and_urgent_evicts() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push_shed(1, Lane::Routine), Ok(None));
        assert_eq!(q.push_shed(2, Lane::Routine), Ok(None));
        // Routine into a full queue: the incoming (newest) item is shed.
        assert_eq!(q.push_shed(3, Lane::Routine), Err(PushError::Full));
        // Urgent into a full queue: the newest *routine* item is evicted
        // and handed back.
        assert_eq!(q.push_shed(10, Lane::Urgent), Ok(Some(2)));
        // Queue now holds [urgent: 10, routine: 1]; urgent into a full
        // all-urgent... still one routine item to evict.
        assert_eq!(q.push_shed(11, Lane::Urgent), Ok(Some(1)));
        // Entirely urgent: nothing left to evict.
        assert_eq!(q.push_shed(12, Lane::Urgent), Err(PushError::Full));
        assert_eq!(q.pop_up_to(4).unwrap(), vec![10, 11]);
    }

    #[test]
    fn push_blocks_until_space_then_succeeds() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || q2.push(1).unwrap());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1, "producer must be blocked, not queued");
        assert_eq!(q.pop_up_to(1).unwrap(), vec![0]);
        producer.join().unwrap();
        assert_eq!(q.pop_up_to(1).unwrap(), vec![1]);
    }

    #[test]
    fn close_wakes_consumer_with_none() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = thread::spawn(move || q2.pop_up_to(4));
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
        assert_eq!(q.push(9), Err(PushError::Closed));
    }

    /// Regression test for the enqueue/shutdown race: a producer blocked
    /// on a full queue must observe a concurrent `close()` and return
    /// `Closed` promptly — never hang on the space condvar waiting for
    /// capacity that will never be freed (after close, consumers may
    /// drain remaining items but no notify path is owed to producers
    /// beyond the close itself).
    #[test]
    fn close_wakes_blocked_producer_with_closed() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || q2.push_lane(1, Lane::Urgent));
        // Let the producer reach the condvar wait with the queue full.
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1, "producer must be blocked, not queued");
        q.close();
        // The producer must come back with Closed on its own — bound the
        // wait so a regression fails the test instead of wedging it.
        let (tx, rx) = std::sync::mpsc::channel();
        thread::spawn(move || {
            let _ = tx.send(producer.join());
        });
        let joined = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("blocked producer must wake promptly on close, not hang");
        assert_eq!(joined.unwrap(), Err(PushError::Closed));
        // The item enqueued before close is still poppable.
        assert_eq!(q.pop_up_to(4), Some(vec![0]));
        assert_eq!(q.pop_up_to(4), None);
    }

    #[test]
    fn poisoned_lock_recovers_on_every_path() {
        let q = Arc::new(BoundedQueue::new(4));
        q.push(1).unwrap();
        // Poison the mutex: a panic while the guard is held.
        let q2 = Arc::clone(&q);
        let poisoner = thread::spawn(move || {
            let _guard = q2.inner.lock().unwrap();
            panic!("poison the queue lock");
        });
        assert!(poisoner.join().is_err());
        // Every public path must recover the poisoned lock and keep the
        // queue serving with its state intact.
        assert_eq!(q.len(), 1);
        q.push(2).unwrap();
        q.try_push(3).unwrap();
        assert_eq!(q.push_shed(4, Lane::Urgent), Ok(None));
        assert_eq!(q.pop_up_to(8).unwrap(), vec![4, 1, 2, 3]);
        let deadline = Instant::now() + Duration::from_millis(5);
        assert_eq!(q.pop_up_to_deadline(4, deadline), Some(Vec::new()));
        q.close();
        assert_eq!(q.push(9), Err(PushError::Closed));
    }

    #[test]
    fn deadline_pop_returns_empty_on_timeout() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        let t0 = Instant::now();
        let got = q.pop_up_to_deadline(4, Instant::now() + Duration::from_millis(30));
        assert_eq!(got, Some(Vec::new()));
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }
}
