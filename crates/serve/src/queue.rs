//! A bounded MPMC request queue with blocking backpressure.
//!
//! `std::sync::mpsc` is single-consumer and its `SyncSender` cannot express
//! "try, then tell the caller the queue is full" alongside batch draining
//! with a deadline, so the serving runtime uses its own small primitive:
//! a `Mutex<VecDeque>` with two condition variables (one for producers
//! waiting on capacity, one for consumers waiting on items) — the classic
//! bounded-buffer construction.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity (only from [`BoundedQueue::try_push`]).
    Full,
    /// The queue has been closed for shutdown.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue. All methods are `&self`; share it through an `Arc`.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    space: Condvar,
    ready: Condvar,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// Acquires the queue lock, recovering from poisoning.
    ///
    /// A panicking holder (e.g. an engine worker dying mid-drain) poisons
    /// the mutex, but every critical section in this module upholds the
    /// queue invariants (`len <= capacity`, `closed` is monotone) on every
    /// exit path — including unwinds — so the recovered state is always
    /// consistent and the queue keeps serving the surviving threads.
    fn lock_inner(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity,
            space: Condvar::new(),
            ready: Condvar::new(),
        }
    }

    /// Current number of queued items (the queue-depth gauge).
    pub fn len(&self) -> usize {
        self.lock_inner().items.len()
    }

    /// True if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues, blocking while the queue is full — the backpressure path:
    /// a caller faster than the engine pool is slowed to its rate.
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.lock_inner();
        loop {
            if inner.closed {
                return Err(PushError::Closed);
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                self.ready.notify_one();
                return Ok(());
            }
            inner = self
                .space
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Enqueues without blocking; a full queue is reported to the caller
    /// instead (load-shedding path).
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.lock_inner();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until at least one item is available (or the queue closes),
    /// then drains up to `max` items. Returns `None` only after close with
    /// an empty queue — the consumer's termination signal.
    pub fn pop_up_to(&self, max: usize) -> Option<Vec<T>> {
        let mut inner = self.lock_inner();
        loop {
            if !inner.items.is_empty() {
                return Some(self.drain_locked(&mut inner, max));
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`pop_up_to`](Self::pop_up_to) but gives up at `deadline`,
    /// returning an empty batch on timeout.
    pub fn pop_up_to_deadline(&self, max: usize, deadline: Instant) -> Option<Vec<T>> {
        let mut inner = self.lock_inner();
        loop {
            if !inner.items.is_empty() {
                return Some(self.drain_locked(&mut inner, max));
            }
            if inner.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(Vec::new());
            }
            let (guard, timeout) = self
                .ready
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if timeout.timed_out() && inner.items.is_empty() {
                return Some(Vec::new());
            }
        }
    }

    fn drain_locked(&self, inner: &mut Inner<T>, max: usize) -> Vec<T> {
        let take = inner.items.len().min(max.max(1));
        let batch: Vec<T> = inner.items.drain(..take).collect();
        // Capacity freed: release every producer blocked on space.
        self.space.notify_all();
        batch
    }

    /// Closes the queue: pending items remain poppable, new pushes fail,
    /// blocked producers and consumers wake.
    pub fn close(&self) {
        let mut inner = self.lock_inner();
        inner.closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_batch_drain() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.pop_up_to(3).unwrap(), vec![0, 1, 2]);
        assert_eq!(q.pop_up_to(10).unwrap(), vec![3, 4]);
    }

    #[test]
    fn try_push_reports_full() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        let _ = q.pop_up_to(1);
        q.try_push(3).unwrap();
    }

    #[test]
    fn push_blocks_until_space_then_succeeds() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || q2.push(1).unwrap());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1, "producer must be blocked, not queued");
        assert_eq!(q.pop_up_to(1).unwrap(), vec![0]);
        producer.join().unwrap();
        assert_eq!(q.pop_up_to(1).unwrap(), vec![1]);
    }

    #[test]
    fn close_wakes_consumer_with_none() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = thread::spawn(move || q2.pop_up_to(4));
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
        assert_eq!(q.push(9), Err(PushError::Closed));
    }

    #[test]
    fn poisoned_lock_recovers_on_every_path() {
        let q = Arc::new(BoundedQueue::new(4));
        q.push(1).unwrap();
        // Poison the mutex: a panic while the guard is held.
        let q2 = Arc::clone(&q);
        let poisoner = thread::spawn(move || {
            let _guard = q2.inner.lock().unwrap();
            panic!("poison the queue lock");
        });
        assert!(poisoner.join().is_err());
        // Every public path must recover the poisoned lock and keep the
        // queue serving with its state intact.
        assert_eq!(q.len(), 1);
        q.push(2).unwrap();
        q.try_push(3).unwrap();
        assert_eq!(q.pop_up_to(8).unwrap(), vec![1, 2, 3]);
        let deadline = Instant::now() + Duration::from_millis(5);
        assert_eq!(q.pop_up_to_deadline(4, deadline), Some(Vec::new()));
        q.close();
        assert_eq!(q.push(9), Err(PushError::Closed));
    }

    #[test]
    fn deadline_pop_returns_empty_on_timeout() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        let t0 = Instant::now();
        let got = q.pop_up_to_deadline(4, Instant::now() + Duration::from_millis(30));
        assert_eq!(got, Some(Vec::new()));
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }
}
