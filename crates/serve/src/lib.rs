//! # rbnn-serve
//!
//! A batched, multi-engine inference serving runtime for deployed RRAM-BNN
//! classifiers — the system layer that turns the reproduction's
//! single-sample inference paths into the high-throughput, always-on
//! service the paper's medical-monitoring scenario (and the massively
//! parallel Fig 5 substrate) implies.
//!
//! Request lifecycle:
//!
//! 1. a client calls [`ServeHandle::classify`] with a task and feature
//!    vector; the request is validated against the [`ModelRegistry`] and
//!    enqueued on a bounded MPMC queue ([`queue::BoundedQueue`]) — a full
//!    queue *blocks* the caller (backpressure) or, via
//!    [`ServeHandle::try_classify`], sheds the request;
//! 2. a worker pulls a micro-batch through the adaptive [`Batcher`]
//!    (dispatch immediately when the queue is deep, linger briefly for
//!    stragglers when it is not);
//! 3. the worker groups the batch by task and runs the *batched* kernels —
//!    [`rbnn_binary::BinaryNetwork::logits_batch`] on the software backend,
//!    [`rbnn_rram::NetworkEngine::logits_batch`] on the margin-gated RRAM
//!    backend (deterministic senses short-circuit, marginal cells stay
//!    Monte-Carlo) — on its own engine replica (replicas, not shared
//!    engines: PCSA reads need `&mut self`);
//! 4. each request's one-shot channel delivers a [`Prediction`], and
//!    [`ServerStats`] records end-to-end latency into a log-scaled
//!    histogram (p50/p95/p99), throughput, batch fill and per-replica
//!    array counters.
//!
//! The runtime is *self-healing*: a replica that panics is retired,
//! answered with a retryable [`ServeError::EngineFault`], and respawned
//! by its worker under the [`Supervisor`]'s exponential backoff (crash
//! loops quarantine after a cap). Admission is governed by
//! [`AdmissionPolicy`] — the default *sheds* the newest routine request
//! when the queue is full instead of blocking, and [`Priority::Urgent`]
//! submissions may evict the newest routine entry. Requests carry
//! optional deadlines ([`SubmitOptions`]); expired requests are dropped
//! before dispatch with [`ServeError::DeadlineExceeded`]. Worn RRAM
//! replicas whose marginal-cell fraction crosses
//! [`ServeConfig::degrade_marginal_threshold`] fall back to bit-exact
//! software XNOR of the same network ([`ReplicaHealth::Degraded`]).
//! [`ServeHandle::fleet_health`] reports the whole picture.
//!
//! ```
//! use rbnn_serve::{ModelRegistry, ServeConfig, ServeTask, Server};
//!
//! let registry = ModelRegistry::demo(7);
//! let server = Server::start(&registry, &ServeConfig::default());
//! let handle = server.handle();
//! let prediction = handle
//!     .classify(ServeTask::Ecg, vec![0.5; 2520])
//!     .expect("pool answers");
//! assert!(prediction.class < 2);
//! println!("{}", server.shutdown());
//! ```
//!
//! Long-lived producers (continuous-monitoring sessions, load generators)
//! should bind a [`TaskClient`] once via [`ServeHandle::client`]: the
//! task's registration and feature width are validated at bind time, so
//! each of the session's thousands of submits skips the per-request
//! registry lookup. The `rbnn-stream` router is built on this path.
//!
//! See `crates/bench/src/bin/serve_bench.rs` for the load generator,
//! `examples/serving.rs` for an end-to-end trained-model walkthrough, and
//! `crates/stream` for the continuous-monitoring ingestion layer on top.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batcher;
#[doc(hidden)]
pub mod fault;
pub mod queue;
mod registry;
mod retry;
mod server;
mod stats;
mod supervisor;

pub use batcher::{BatchPolicy, Batcher};
pub use fault::ChaosPlan;
pub use registry::{demo_network, Backend, ModelEntry, ModelRegistry, ServeTask};
pub use retry::RetryPolicy;
pub use server::{
    classify_matrix, AdmissionPolicy, ExecutorMode, Pending, PendingWindow, Prediction, Priority,
    ServeConfig, ServeError, ServeHandle, Server, SubmitOptions, TaskClient,
};
pub use stats::{EngineSnapshot, ServerStats, StatsSnapshot};
pub use supervisor::{FleetHealth, ReplicaHealth, ReplicaReport, Supervisor, SupervisorPolicy};
