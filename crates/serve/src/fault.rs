//! Test-and-bench engine-fault injection: the chaos hook.
//!
//! The resilience contracts of the worker pool — a panicking replica
//! degrades one batch and is respawned by the supervisor, a stalled
//! replica slows one batch, a transient error fails one batch without
//! retiring anyone — are only worth having if a harness can exercise
//! them. This module is the hook: arming it makes engine dispatches
//! (process-wide, across all workers) misbehave inside the dispatch that
//! [`serve_batch`](crate::Server) guards, exactly where a real engine
//! defect would surface.
//!
//! Two arming modes:
//!
//! - [`arm_engine_panics`] — the legacy counter: the next N dispatches
//!   panic. Kept for targeted regression tests that need "exactly one
//!   fault, right now".
//! - [`arm_chaos`] — a seeded [`ChaosPlan`]: every dispatch draws a
//!   pseudo-random event (panic, bounded stall, transient error, or a
//!   one-shot fabric-drift episode) from a splitmix64 stream keyed on
//!   the plan seed and a process-wide dispatch ordinal. Deterministic
//!   for a given seed and dispatch interleaving; statistically
//!   deterministic (event rates) regardless of interleaving.
//!
//! Hidden from docs; not part of the public serving API. Production code
//! never arms it, so the steady-state cost is two relaxed loads per batch.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

static ARMED: AtomicU64 = AtomicU64::new(0);

/// Arms the next `n` engine dispatches to panic (process-wide).
///
/// Passing `0` disarms. Each injected panic consumes one charge, so
/// concurrent workers never over-fire.
pub fn arm_engine_panics(n: u64) {
    // Relaxed: a test-harness toggle; the spawned workers observe it via
    // the same atomic, and exactness comes from the fetch_update below.
    ARMED.store(n, Ordering::Relaxed);
}

/// A seeded fault-injection schedule for sustained chaos runs.
///
/// Rates are per-mille of engine dispatches and mutually exclusive per
/// dispatch: each dispatch draws one uniform value and falls into at
/// most one event bucket, so `panic_per_mille + stall_per_mille +
/// transient_per_mille` must stay ≤ 1000.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Seed of the splitmix64 event stream.
    pub seed: u64,
    /// Per-mille of dispatches that panic inside the engine.
    pub panic_per_mille: u16,
    /// Per-mille of dispatches stalled by a bounded sleep (slow replica).
    pub stall_per_mille: u16,
    /// Upper bound of an injected stall; actual stalls are drawn in
    /// `[max_stall/4, max_stall]`.
    pub max_stall: Duration,
    /// Per-mille of dispatches that fail with a transient error (the
    /// replica itself stays healthy).
    pub transient_per_mille: u16,
    /// One-shot fabric-drift episode: at this dispatch ordinal (counted
    /// from arming), the dispatching RRAM replica is aged by
    /// [`drift_cycles`](Self::drift_cycles) SET/RESET cycles before
    /// evaluating. Software replicas ignore drift.
    pub drift_at_dispatch: Option<u64>,
    /// Endurance cycles applied by the drift episode. The default (3×10⁹)
    /// puts the test-chip fabric at ≈6.5% marginal cells after the
    /// post-drift weight refresh — past the serving layer's default 5%
    /// degrade threshold, so a drifted replica visibly falls back to
    /// software evaluation.
    pub drift_cycles: u64,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        Self {
            seed: 0xC4A0_5EED,
            panic_per_mille: 0,
            stall_per_mille: 0,
            max_stall: Duration::from_millis(2),
            transient_per_mille: 0,
            drift_at_dispatch: None,
            drift_cycles: 3_000_000_000,
        }
    }
}

/// One drawn injection event, executed by the worker's guarded dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChaosEvent {
    /// Panic inside the engine dispatch (contained by `catch_unwind`).
    Panic,
    /// Sleep this long before evaluating (slow replica).
    Stall(Duration),
    /// Fail the batch with [`ServeError::Transient`](crate::ServeError)
    /// without retiring the replica.
    Transient,
    /// Age the dispatching RRAM fabric (marginal-cell fraction grows).
    Drift { cycles: u64 },
}

static PLAN_ARMED: AtomicBool = AtomicBool::new(false);
static DISPATCHES: AtomicU64 = AtomicU64::new(0);
static PLAN: Mutex<Option<ChaosPlan>> = Mutex::new(None);

fn lock_plan() -> std::sync::MutexGuard<'static, Option<ChaosPlan>> {
    PLAN.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms a [`ChaosPlan`] (process-wide) and resets the dispatch ordinal.
pub fn arm_chaos(plan: ChaosPlan) {
    debug_assert!(
        plan.panic_per_mille as u32 + plan.stall_per_mille as u32 + plan.transient_per_mille as u32
            <= 1000,
        "chaos event rates must sum to <= 1000 per mille"
    );
    let mut slot = lock_plan();
    // Relaxed: the ordinal reset is published by the Release store below.
    DISPATCHES.store(0, Ordering::Relaxed);
    *slot = Some(plan);
    // Release pairs with the Acquire in `next_event`: a worker that sees
    // the flag set also sees the plan and the reset ordinal.
    PLAN_ARMED.store(true, Ordering::Release);
}

/// Disarms any armed [`ChaosPlan`] (the legacy panic counter is separate;
/// clear it with `arm_engine_panics(0)`).
pub fn disarm_chaos() {
    // Release: mirrors `arm_chaos`; pairs with the Acquire in `next_event`.
    PLAN_ARMED.store(false, Ordering::Release);
    *lock_plan() = None;
}

/// Total engine dispatches counted since the last [`arm_chaos`].
pub fn dispatches_since_armed() -> u64 {
    // Relaxed: an advisory progress counter read by harnesses after the
    // fact; exactness against in-flight dispatches is not required.
    DISPATCHES.load(Ordering::Relaxed)
}

/// splitmix64 finalizer over (seed, ordinal) — a stateless, seekable
/// pseudo-random stream: event k is a pure function of the plan seed and
/// the dispatch ordinal.
fn mix(seed: u64, ordinal: u64) -> u64 {
    let mut z = seed ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws the injection event for one engine dispatch, or `None` when the
/// dispatch should proceed untouched. Called from inside the worker's
/// `catch_unwind` guard.
pub(crate) fn next_event() -> Option<ChaosEvent> {
    // Legacy counter first: Relaxed fast-path read (a stale zero only
    // delays the injection by one dispatch), exact decrement below.
    if ARMED.load(Ordering::Relaxed) != 0
        && ARMED
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1)) // Relaxed: the decrement races only with itself.
            .is_ok()
    {
        return Some(ChaosEvent::Panic);
    }
    // Acquire pairs with the Release in `arm_chaos`.
    if !PLAN_ARMED.load(Ordering::Acquire) {
        return None;
    }
    // Relaxed: the ordinal only needs to be unique per dispatch; the
    // armed-flag Acquire above already ordered it against the reset.
    let ordinal = DISPATCHES.fetch_add(1, Ordering::Relaxed);
    let guard = lock_plan();
    let plan = guard.as_ref()?;
    if plan.drift_at_dispatch == Some(ordinal) {
        return Some(ChaosEvent::Drift {
            cycles: plan.drift_cycles,
        });
    }
    let draw = mix(plan.seed, ordinal);
    let bucket = (draw % 1000) as u16;
    if bucket < plan.panic_per_mille {
        return Some(ChaosEvent::Panic);
    }
    if bucket < plan.panic_per_mille + plan.stall_per_mille {
        // Stall in [max/4, max], quantized to quarters of the bound.
        let quarters = 1 + ((draw >> 32) % 4) as u32;
        return Some(ChaosEvent::Stall(plan.max_stall / 4 * quarters));
    }
    if bucket < plan.panic_per_mille + plan.stall_per_mille + plan.transient_per_mille {
        return Some(ChaosEvent::Transient);
    }
    None
}

/// Fires the injected panic. Lives here so the `panic!` token stays out
/// of the lint-enforced panic-freedom zones that call into this module.
pub(crate) fn injected_panic() -> ! {
    panic!("injected engine fault");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_stream_is_seed_deterministic_and_rate_accurate() {
        let plan = ChaosPlan {
            seed: 42,
            panic_per_mille: 10,
            stall_per_mille: 20,
            transient_per_mille: 30,
            ..Default::default()
        };
        let draw = |ordinal| {
            let d = mix(plan.seed, ordinal);
            (d % 1000) as u16
        };
        // Same seed + ordinal → same event, always.
        assert_eq!(draw(7), draw(7));
        // Rates land near the per-mille targets over a long stream.
        let n = 100_000u64;
        let mut panics = 0;
        let mut stalls = 0;
        let mut transients = 0;
        for i in 0..n {
            let b = draw(i);
            if b < 10 {
                panics += 1;
            } else if b < 30 {
                stalls += 1;
            } else if b < 60 {
                transients += 1;
            }
        }
        let near =
            |got: u64, want: u64| (got as f64 - want as f64).abs() < (want as f64) * 0.25 + 10.0;
        assert!(near(panics, n * 10 / 1000), "panics {panics}");
        assert!(near(stalls, n * 20 / 1000), "stalls {stalls}");
        assert!(near(transients, n * 30 / 1000), "transients {transients}");
    }

    #[test]
    fn stall_durations_stay_bounded() {
        let max = Duration::from_millis(2);
        for draw in [0u64, u64::MAX, 0x1234_5678_9ABC_DEF0] {
            let quarters = 1 + ((draw >> 32) % 4) as u32;
            let stall = max / 4 * quarters;
            assert!(stall >= max / 4 && stall <= max);
        }
    }
}
