//! Test-only engine-fault injection.
//!
//! The panic-containment contract of the worker pool — an engine replica
//! that panics degrades one batch, never the pool — is only worth having
//! if a test can exercise it. This module is the hook: arming it makes the
//! next N engine dispatches (process-wide, across all workers) panic
//! inside the dispatch that [`serve_batch`](crate::Server) guards, exactly
//! where a real engine defect would unwind.
//!
//! Hidden from docs; not part of the public serving API. Production code
//! never arms it, so the steady-state cost is one relaxed load per batch.

use std::sync::atomic::{AtomicU64, Ordering};

static ARMED: AtomicU64 = AtomicU64::new(0);

/// Arms the next `n` engine dispatches to panic (process-wide).
///
/// Passing `0` disarms. Each injected panic consumes one charge, so
/// concurrent workers never over-fire.
pub fn arm_engine_panics(n: u64) {
    // Relaxed: a test-harness toggle; the spawned workers observe it via
    // the same atomic, and exactness comes from the fetch_update below.
    ARMED.store(n, Ordering::Relaxed);
}

/// Consumes one armed charge and panics, or returns quietly when disarmed.
pub(crate) fn maybe_inject() {
    // Relaxed: fast-path read of the same standalone counter; a stale zero
    // only delays injection by one batch, which the tests tolerate.
    if ARMED.load(Ordering::Relaxed) == 0 {
        return;
    }
    // Relaxed: the decrement races only with itself; `checked_sub` makes
    // the charge count exact without ordering any other memory.
    if ARMED
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1)) // Relaxed: see above.
        .is_ok()
    {
        panic!("injected engine fault");
    }
}
