//! Retry budgets with jittered exponential backoff.
//!
//! Transient serving failures — a shed request, a replica that faulted
//! mid-batch, an injected transient error — are worth one or two more
//! attempts before surfacing a typed error to the caller. The policy
//! here is deliberately small: exponential backoff from a base delay,
//! capped, with deterministic seeded jitter so a fleet of clients that
//! all failed on the same faulted batch does not resubmit in lockstep
//! (the classic retry-storm / thundering-herd failure mode).

use std::time::Duration;

use crate::ServeError;

/// Retry budget for one logical request.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts including the first; `1` disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
    /// Fraction of the backoff randomized away, in `[0, 1]`: the actual
    /// delay is uniform in `[(1 - jitter) * b, b]`.
    pub jitter: f64,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            jitter: 0.5,
            seed: 0x8E77_4ED1,
        }
    }
}

impl RetryPolicy {
    /// True when a failed attempt number `attempt` (0-based: the first
    /// attempt is 0) has budget left for another try.
    pub fn allows_retry(&self, attempt: u32) -> bool {
        attempt + 1 < self.max_attempts
    }

    /// Backoff before retrying after 0-based attempt `attempt`, jittered
    /// by a splitmix64 draw over `(seed, salt, attempt)`. Callers pass a
    /// per-request `salt` (e.g. a window index or request ordinal) so
    /// concurrent requests desynchronize.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let exp = attempt.min(20);
        let raw = self
            .base_backoff
            .saturating_mul(1u32 << exp.min(20))
            .min(self.max_backoff);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 || raw.is_zero() {
            return raw;
        }
        let mut z = self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((attempt as u64) << 48);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Uniform in [0, 1): 53 mantissa bits.
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        raw.mul_f64(1.0 - jitter * unit)
    }
}

impl ServeError {
    /// True for failures where an immediate-ish retry can plausibly
    /// succeed: the request was shed under overload, or the replica that
    /// would have served it faulted (another replica, or the respawned
    /// one, can take the resubmission). Deadline expiry, validation
    /// errors, and shutdown are terminal.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServeError::Overloaded | ServeError::EngineFault | ServeError::Transient
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..Default::default()
        };
        assert_eq!(p.backoff(0, 0), Duration::from_millis(1));
        assert_eq!(p.backoff(1, 0), Duration::from_millis(2));
        assert_eq!(p.backoff(4, 0), Duration::from_millis(16));
        assert_eq!(p.backoff(10, 0), p.max_backoff);
        assert_eq!(p.backoff(u32::MAX, 0), p.max_backoff);
    }

    #[test]
    fn jitter_stays_within_band_and_varies_by_salt() {
        let p = RetryPolicy::default(); // jitter 0.5
        let full = Duration::from_millis(4);
        let lo = full.mul_f64(0.5);
        let mut distinct = std::collections::BTreeSet::new();
        for salt in 0..32u64 {
            let b = p.backoff(2, salt);
            assert!(b >= lo && b <= full, "{b:?} outside [{lo:?}, {full:?}]");
            distinct.insert(b.as_nanos());
        }
        assert!(distinct.len() > 16, "jitter must desynchronize salts");
        // Deterministic per (seed, salt, attempt).
        assert_eq!(p.backoff(2, 7), p.backoff(2, 7));
    }

    #[test]
    fn attempt_budget_counts_total_attempts() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..Default::default()
        };
        assert!(p.allows_retry(0));
        assert!(p.allows_retry(1));
        assert!(!p.allows_retry(2));
        let one_shot = RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        };
        assert!(!one_shot.allows_retry(0));
    }

    #[test]
    fn retryability_matches_error_semantics() {
        assert!(ServeError::Overloaded.is_retryable());
        assert!(ServeError::EngineFault.is_retryable());
        assert!(ServeError::Transient.is_retryable());
        assert!(!ServeError::ShuttingDown.is_retryable());
        assert!(!ServeError::DeadlineExceeded.is_retryable());
        assert!(!ServeError::UnknownTask(crate::ServeTask::Ecg).is_retryable());
    }
}
