//! Server telemetry: throughput, latency percentiles, queue depth and
//! per-engine array counters.
//!
//! Latencies are recorded into fixed log-scaled histograms
//! ([`rbnn_telemetry::LogHistogram`], 5% resolution steps from 1 µs to
//! ~17 min), so recording is lock-free and percentile queries never scan
//! unbounded sample vectors — the usual high-throughput-server compromise
//! (HdrHistogram in miniature). End-to-end latency is tracked alongside
//! its two components — **queue wait** (submission → dispatch, including
//! the batcher linger) and **service time** (dispatch → completion) — so a
//! p99 spike can be attributed to batching policy or to the engine.
//!
//! Every series a `ServerStats` collects is simultaneously registered on
//! the process-wide [`rbnn_telemetry::global`] registry under a unique
//! `server="<n>"` label, so Prometheus/JSON exposition sees each server
//! instance without any extra bookkeeping on the hot path: the handles
//! recorded here *are* the registry's.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use rbnn_telemetry::{Counter, Gauge, LogHistogram};

/// Shape of the dispatched-batch-size histogram: 48 buckets of 25% cover
/// batch sizes 1 to ~3.6e4, far beyond any sane `max_batch`.
const BATCH_SIZE_BUCKETS: usize = 48;
const BATCH_SIZE_GROWTH: f64 = 1.25;

/// Monotonic id distinguishing server instances on the global registry
/// (tests and benches start many servers per process; each needs its own
/// label so exact-count assertions hold per instance).
static SERVER_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Per-worker engine counters (registry handles, labeled
/// `server="<n>",worker="<m>"`).
#[derive(Debug)]
pub struct EngineCounters {
    /// Batches dispatched to this engine replica.
    pub batches: Arc<Counter>,
    /// Samples inferred by this replica.
    pub samples: Arc<Counter>,
    /// PCSA sense operations performed by this replica (RRAM backend; zero
    /// on the software backend).
    pub senses: Arc<Counter>,
}

/// Point-in-time view of one engine replica's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// Batches dispatched.
    pub batches: u64,
    /// Samples inferred.
    pub samples: u64,
    /// PCSA senses performed.
    pub senses: u64,
}

/// Shared server statistics collector. All methods are `&self` and
/// lock-free; share through `Arc`.
#[derive(Debug)]
pub struct ServerStats {
    started: Instant,
    /// When the first request completed — the throughput baseline. A
    /// server may sit idle (or warm up) long after the collector is built;
    /// measuring rate from construction would understate steady state.
    first_completed: OnceLock<Instant>,
    /// Offset of the most recent completion from `started`, in
    /// nanoseconds — the trailing edge of the throughput window, so idle
    /// time *after* traffic stops does not smear the rate either.
    last_completed_nanos: AtomicU64,
    submitted: Arc<Counter>,
    completed: Arc<Counter>,
    rejected: Arc<Counter>,
    evicted: Arc<Counter>,
    expired: Arc<Counter>,
    transient: Arc<Counter>,
    latency: Arc<LogHistogram>,
    queue_wait: Arc<LogHistogram>,
    service: Arc<LogHistogram>,
    batch_sizes: Arc<LogHistogram>,
    queue_depth: Arc<Gauge>,
    engines: Vec<EngineCounters>,
}

impl ServerStats {
    /// A collector for `workers` engine replicas, registered on the global
    /// telemetry registry under a fresh `server="<n>"` label.
    pub fn new(workers: usize) -> Self {
        // Relaxed: a unique-id counter — each caller just needs a distinct
        // label; no other memory is ordered against it.
        let seq = SERVER_SEQ.fetch_add(1, Ordering::Relaxed);
        let label = format!("server=\"{seq}\"");
        let reg = rbnn_telemetry::global();
        Self {
            started: Instant::now(),
            first_completed: OnceLock::new(),
            last_completed_nanos: AtomicU64::new(0),
            submitted: reg.counter(
                "rbnn_serve_submitted_total",
                &label,
                "Requests accepted into the queue.",
            ),
            completed: reg.counter(
                "rbnn_serve_completed_total",
                &label,
                "Requests completed (responses delivered).",
            ),
            rejected: reg.counter(
                "rbnn_serve_rejected_total",
                &label,
                "Requests refused for backpressure.",
            ),
            evicted: reg.counter(
                "rbnn_serve_evicted_total",
                &label,
                "Queued routine requests evicted by urgent arrivals under overload.",
            ),
            expired: reg.counter(
                "rbnn_serve_expired_total",
                &label,
                "Requests whose deadline expired before engine dispatch.",
            ),
            transient: reg.counter(
                "rbnn_serve_transient_total",
                &label,
                "Requests failed by a transient (retryable, non-fatal) engine error.",
            ),
            latency: reg.histogram(
                "rbnn_serve_latency_us",
                &label,
                "End-to-end request latency (µs).",
            ),
            queue_wait: reg.histogram(
                "rbnn_serve_queue_wait_us",
                &label,
                "Submission-to-dispatch wait (µs), batcher linger included.",
            ),
            service: reg.histogram(
                "rbnn_serve_service_us",
                &label,
                "Dispatch-to-completion service time (µs).",
            ),
            batch_sizes: reg.histogram_with(
                "rbnn_serve_batch_size",
                &label,
                "Dispatched batch sizes (samples per batch).",
                || LogHistogram::new(BATCH_SIZE_BUCKETS, BATCH_SIZE_GROWTH),
            ),
            queue_depth: reg.gauge(
                "rbnn_serve_queue_depth",
                &label,
                "Requests waiting in the queue at last snapshot.",
            ),
            engines: (0..workers)
                .map(|w| {
                    let wl = format!("{label},worker=\"{w}\"");
                    EngineCounters {
                        batches: reg.counter(
                            "rbnn_serve_worker_batches_total",
                            &wl,
                            "Batches dispatched to this engine replica.",
                        ),
                        samples: reg.counter(
                            "rbnn_serve_worker_samples_total",
                            &wl,
                            "Samples inferred by this engine replica.",
                        ),
                        senses: reg.counter(
                            "rbnn_serve_worker_senses_total",
                            &wl,
                            "PCSA senses performed by this engine replica.",
                        ),
                    }
                })
                .collect(),
        }
    }

    /// Records an accepted request.
    pub fn record_submitted(&self) {
        self.submitted.inc();
    }

    /// Records a request refused for backpressure.
    pub fn record_rejected(&self) {
        self.rejected.inc();
    }

    /// Records a queued routine request evicted by an urgent arrival.
    pub fn record_evicted(&self) {
        self.evicted.inc();
    }

    /// Records a request dropped at dispatch because its deadline had
    /// already expired.
    pub fn record_expired(&self) {
        self.expired.inc();
    }

    /// Records a request failed by a transient engine error.
    pub fn record_transient(&self) {
        self.transient.inc();
    }

    /// Records one completed request with its end-to-end latency.
    pub fn record_completed(&self, latency: Duration) {
        self.complete(latency);
    }

    /// Records one completed request with its end-to-end latency *and* its
    /// phase decomposition (`queue_wait` = submission → dispatch including
    /// the batcher linger, `service` = dispatch → completion). Returns the
    /// completion ordinal (1-based), which the server uses for 1-in-N span
    /// sampling.
    pub fn record_completed_split(
        &self,
        latency: Duration,
        queue_wait: Duration,
        service: Duration,
    ) -> u64 {
        self.queue_wait.record(queue_wait);
        self.service.record(service);
        self.complete(latency)
    }

    fn complete(&self, latency: Duration) -> u64 {
        self.first_completed.get_or_init(Instant::now);
        // Relaxed: a monotone high-water mark read by snapshots; statistics
        // tolerate a slightly stale value and nothing else piggybacks on it.
        self.last_completed_nanos
            .fetch_max(self.started.elapsed().as_nanos() as u64, Ordering::Relaxed); // Relaxed: see above.
        self.latency.record(latency);
        self.completed.add(1)
    }

    /// Records one dispatched batch of `samples` requests on `worker`.
    pub fn record_batch(&self, worker: usize, samples: usize, senses: u64) {
        self.batch_sizes.record_value(samples as f64);
        if let Some(e) = self.engines.get(worker) {
            e.batches.inc();
            e.samples.add(samples as u64);
            e.senses.add(senses);
        }
    }

    /// Latency at `q ∈ [0, 1]` from the histogram, reported as the
    /// geometric midpoint of the containing bucket's bounds (the unbiased
    /// estimate for log-scaled buckets).
    pub fn latency_quantile(&self, q: f64) -> Duration {
        self.latency.duration_quantile(q)
    }

    /// Latencies at several quantiles in one histogram pass (see
    /// [`LogHistogram::duration_quantiles`]).
    pub fn latency_quantiles(&self, qs: &[f64]) -> Vec<Duration> {
        self.latency.duration_quantiles(qs)
    }

    /// A consistent-enough point-in-time summary.
    pub fn snapshot(&self, queue_depth: usize) -> StatsSnapshot {
        self.queue_depth.set(queue_depth as f64);
        let completed = self.completed.get();
        let batches = self.batch_sizes.count();
        let elapsed = self.started.elapsed();
        // Rate window: first completion → last completion, not collector
        // construction → snapshot — idle time before traffic arrives or
        // after it stops would otherwise understate the steady-state rate.
        // The first completed request marks the baseline (it is the event
        // *at* time zero), so the rate counts the `completed − 1` requests
        // that finished inside the window.
        let window = self
            .first_completed
            .get()
            .map(|first| {
                let first_nanos = first.duration_since(self.started).as_nanos() as u64;
                // Relaxed: snapshots are advisory summaries; pairing with the
                // relaxed fetch_max above is the whole protocol.
                let last_nanos = self.last_completed_nanos.load(Ordering::Relaxed);
                Duration::from_nanos(last_nanos.saturating_sub(first_nanos))
            })
            .unwrap_or(Duration::ZERO);
        let quantiles = self.latency.duration_quantiles(&[0.50, 0.95, 0.99]);
        let queue_q = self.queue_wait.duration_quantiles(&[0.50, 0.99]);
        let service_q = self.service.duration_quantiles(&[0.50, 0.99]);
        StatsSnapshot {
            submitted: self.submitted.get(),
            completed,
            rejected: self.rejected.get(),
            evicted: self.evicted.get(),
            expired: self.expired.get(),
            transient: self.transient.get(),
            queue_depth,
            elapsed,
            window,
            throughput: if completed > 1 && window.as_secs_f64() > 0.0 {
                (completed - 1) as f64 / window.as_secs_f64()
            } else {
                0.0
            },
            mean_batch: if batches > 0 {
                self.batch_sizes.sum() / batches as f64
            } else {
                0.0
            },
            p50: quantiles[0],
            p95: quantiles[1],
            p99: quantiles[2],
            queue_p50: queue_q[0],
            queue_p99: queue_q[1],
            service_p50: service_q[0],
            service_p99: service_q[1],
            engines: self
                .engines
                .iter()
                .map(|e| EngineSnapshot {
                    batches: e.batches.get(),
                    samples: e.samples.get(),
                    senses: e.senses.get(),
                })
                .collect(),
        }
    }
}

/// Point-in-time server statistics.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests completed (responses delivered).
    pub completed: u64,
    /// Requests refused for backpressure.
    pub rejected: u64,
    /// Queued routine requests evicted by urgent arrivals under overload.
    pub evicted: u64,
    /// Requests whose deadline expired before engine dispatch.
    pub expired: u64,
    /// Requests failed by a transient (retryable) engine error.
    pub transient: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Time since the collector was created.
    pub elapsed: Duration,
    /// Time from the first to the most recent completed request (zero
    /// until two requests complete) — the throughput measurement window.
    pub window: Duration,
    /// Completed requests per second across the first→last completion
    /// window (steady-state rate, unaffected by idle time before traffic
    /// arrives or after it stops).
    pub throughput: f64,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
    /// Median end-to-end latency.
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Median submission-to-dispatch wait (queue + batcher linger).
    pub queue_p50: Duration,
    /// 99th-percentile submission-to-dispatch wait.
    pub queue_p99: Duration,
    /// Median dispatch-to-completion service time.
    pub service_p50: Duration,
    /// 99th-percentile dispatch-to-completion service time.
    pub service_p99: Duration,
    /// Per engine-replica counters.
    pub engines: Vec<EngineSnapshot>,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:.0} req/s | {}/{} completed ({} rejected, {} evicted, {} expired, {} transient) \
             | queue {} | mean batch {:.1}",
            self.throughput,
            self.completed,
            self.submitted,
            self.rejected,
            self.evicted,
            self.expired,
            self.transient,
            self.queue_depth,
            self.mean_batch
        )?;
        writeln!(
            f,
            "latency p50 {:?}  p95 {:?}  p99 {:?}",
            self.p50, self.p95, self.p99
        )?;
        writeln!(
            f,
            "queue-wait p50 {:?}  p99 {:?} | service p50 {:?}  p99 {:?}",
            self.queue_p50, self.queue_p99, self.service_p50, self.service_p99
        )?;
        for (i, e) in self.engines.iter().enumerate() {
            writeln!(
                f,
                "engine {i}: {} batches, {} samples, {} senses",
                e.batches, e.samples, e.senses
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_recorded_latencies() {
        let stats = ServerStats::new(1);
        // 90 fast requests at ~100µs and 10 slow ones at ~10ms.
        for _ in 0..90 {
            stats.record_completed(Duration::from_micros(100));
        }
        for _ in 0..10 {
            stats.record_completed(Duration::from_millis(10));
        }
        let p50 = stats.latency_quantile(0.5);
        let p99 = stats.latency_quantile(0.99);
        assert!(
            p50 >= Duration::from_micros(90) && p50 <= Duration::from_micros(120),
            "{p50:?}"
        );
        assert!(p99 >= Duration::from_millis(9), "{p99:?}");
        assert!(p99 <= Duration::from_millis(12), "{p99:?}");
    }

    #[test]
    fn snapshot_aggregates_counters() {
        let stats = ServerStats::new(2);
        stats.record_submitted();
        stats.record_submitted();
        stats.record_rejected();
        stats.record_batch(0, 2, 64);
        stats.record_completed(Duration::from_micros(50));
        stats.record_completed(Duration::from_micros(50));
        let snap = stats.snapshot(3);
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.engines.len(), 2);
        assert_eq!(snap.engines[0].samples, 2);
        assert_eq!(snap.engines[0].senses, 64);
        assert_eq!(snap.engines[1].batches, 0);
        assert!((snap.mean_batch - 2.0).abs() < 1e-9);
        assert!(!format!("{snap}").is_empty());
    }

    #[test]
    fn empty_histogram_is_zero() {
        let stats = ServerStats::new(0);
        assert_eq!(stats.latency_quantile(0.99), Duration::ZERO);
    }

    #[test]
    fn split_components_feed_their_own_histograms() {
        let stats = ServerStats::new(1);
        // Queue-dominated requests: 9ms wait, 1ms service.
        for _ in 0..50 {
            let ordinal = stats.record_completed_split(
                Duration::from_millis(10),
                Duration::from_millis(9),
                Duration::from_millis(1),
            );
            assert!(ordinal >= 1);
        }
        let snap = stats.snapshot(0);
        assert_eq!(snap.completed, 50);
        // Each component's percentile tracks its own distribution, and the
        // split preserves the ordering queue ≫ service.
        let q = snap.queue_p50.as_secs_f64() * 1e3;
        let s = snap.service_p50.as_secs_f64() * 1e3;
        assert!((8.5..=9.5).contains(&q), "queue p50 {q}ms");
        assert!((0.9..=1.1).contains(&s), "service p50 {s}ms");
        // End-to-end p50 still reflects the full latency.
        let e2e = snap.p50.as_secs_f64() * 1e3;
        assert!((9.5..=10.5).contains(&e2e), "e2e p50 {e2e}ms");
    }

    #[test]
    fn completion_ordinal_counts_all_completions() {
        // record_completed and record_completed_split share one ordinal
        // sequence — the server's 1-in-N span sampler depends on it.
        let stats = ServerStats::new(1);
        stats.record_completed(Duration::from_micros(10));
        let ordinal = stats.record_completed_split(
            Duration::from_micros(10),
            Duration::from_micros(5),
            Duration::from_micros(5),
        );
        assert_eq!(ordinal, 2);
    }

    #[test]
    fn quantile_is_bucket_midpoint_not_upper_bound() {
        // Regression: quantiles used to report the bucket *upper* bound,
        // overstating every percentile by up to one bucket width (~5%).
        // With a single recorded latency, every quantile must land at the
        // geometric midpoint of its bucket — which brackets the true value
        // within ±2.5%, whereas the upper bound sits strictly above it.
        let stats = ServerStats::new(1);
        let lat = Duration::from_micros(1000);
        stats.record_completed(lat);
        for q in [0.5, 0.95, 0.99] {
            let got = stats.latency_quantile(q).as_secs_f64() * 1e6;
            let ratio = got / 1000.0;
            assert!(
                (0.976..=1.025).contains(&ratio),
                "q={q}: {got:.1}µs should be within one half-bucket of 1000µs"
            );
        }
        // The midpoint must sit strictly below the old upper-bound report.
        let hist = LogHistogram::latency();
        let i = hist.bucket_of(1000.0);
        assert!(hist.bucket_mid(i) < hist.bucket_bound(i));
    }

    #[test]
    fn quantile_midpoint_semantics_are_pinned_exactly() {
        // Contract pin for the PR 2 bias fix: a quantile landing in bucket
        // `i = ceil(ln(µs)/ln(1.05))` is reported as the *geometric
        // midpoint* `1.05^(i − 0.5)` µs — computed here independently of
        // the implementation, across magnitudes from µs to seconds. Any
        // silent return to upper-bound (or linear-midpoint) reporting
        // shifts every value by ≥ 2.4% and fails the exact comparison.
        // (This pin survived the histogram's move into rbnn-telemetry:
        // the shared LogHistogram must keep serving these exact values.)
        for &us in &[3u64, 47, 1000, 12_345, 800_000, 5_000_000] {
            let stats = ServerStats::new(1);
            stats.record_completed(Duration::from_micros(us));
            let bucket = ((us as f64).ln() / 1.05f64.ln()).ceil();
            let expected_us = 1.05f64.powf(bucket - 0.5);
            let got = stats.latency_quantile(0.5);
            assert_eq!(
                got,
                Duration::from_secs_f64(expected_us / 1e6),
                "{us}µs: got {got:?}, expected geometric midpoint {expected_us:.3}µs"
            );
            // The midpoint brackets the true latency within one
            // half-bucket (±2.5%)…
            let ratio = got.as_secs_f64() * 1e6 / us as f64;
            assert!(
                (0.975..=1.026).contains(&ratio),
                "{us}µs: midpoint off by {ratio}"
            );
            // …and sits strictly below the bucket's upper bound and
            // strictly above its lower bound (i.e. it is a midpoint, not
            // either edge).
            let upper = 1.05f64.powf(bucket);
            let lower = 1.05f64.powf(bucket - 1.0);
            let got_us = got.as_secs_f64() * 1e6;
            assert!(got_us < upper && got_us > lower, "{us}µs: {got_us}");
        }
    }

    #[test]
    fn multi_quantile_pass_matches_individual_queries() {
        let stats = ServerStats::new(1);
        for us in [10u64, 20, 50, 100, 400, 1000, 5000, 20_000] {
            for _ in 0..7 {
                stats.record_completed(Duration::from_micros(us));
            }
        }
        let qs = [0.1, 0.5, 0.9, 0.95, 0.99, 1.0];
        let batch = stats.latency_quantiles(&qs);
        for (q, got) in qs.iter().zip(&batch) {
            assert_eq!(*got, stats.latency_quantile(*q), "q={q}");
        }
    }

    #[test]
    fn stats_surface_on_the_global_telemetry_registry() {
        // Every ServerStats registers its series under a unique server
        // label, so the process-wide exposition sees this instance's exact
        // counts without double bookkeeping.
        let stats = ServerStats::new(1);
        stats.record_submitted();
        stats.record_completed(Duration::from_micros(80));
        let text = rbnn_telemetry::global().snapshot().render_prometheus();
        // Find this instance's series among however many servers the test
        // process has started: one submitted line with value exactly 1 is
        // not unique, so locate by handle identity instead — bump by a
        // recognizable amount and re-render.
        stats.submitted.add(1_000_000);
        let text2 = rbnn_telemetry::global().snapshot().render_prometheus();
        assert!(text.contains("rbnn_serve_submitted_total{server="));
        assert!(text2.contains(" 1000001"), "instance series must update");
        assert!(text2.contains("rbnn_serve_latency_us_bucket{server="));
    }

    #[test]
    fn throughput_baseline_is_first_completion_not_construction() {
        // Regression: a collector built long before traffic arrives must
        // not smear the idle period into the rate.
        let stats = ServerStats::new(1);
        std::thread::sleep(Duration::from_millis(60));
        stats.record_completed(Duration::from_micros(100));
        let t0 = std::time::Instant::now();
        while t0.elapsed() < Duration::from_millis(20) {
            std::hint::spin_loop();
        }
        for _ in 0..9 {
            stats.record_completed(Duration::from_micros(100));
        }
        let snap = stats.snapshot(0);
        assert_eq!(snap.completed, 10);
        assert!(snap.window < snap.elapsed, "window must exclude idle time");
        // 9 completions in ~20ms → ≥200/s; the old construction-based rate
        // would have been ≤ 10 / 80ms = 125/s.
        assert!(
            snap.throughput > 200.0,
            "throughput {} should ignore the pre-traffic idle period",
            snap.throughput
        );
        // The window is first→last completion, so idle time *after*
        // traffic stops must not dilute the rate either.
        std::thread::sleep(Duration::from_millis(40));
        let later = stats.snapshot(0);
        assert_eq!(later.window, snap.window, "window must freeze with traffic");
        assert!(
            (later.throughput - snap.throughput).abs() < 1e-9,
            "trailing idle diluted the rate: {} → {}",
            snap.throughput,
            later.throughput
        );
    }

    #[test]
    fn throughput_is_zero_before_two_completions() {
        let stats = ServerStats::new(1);
        assert_eq!(stats.snapshot(0).throughput, 0.0);
        stats.record_completed(Duration::from_micros(5));
        assert_eq!(stats.snapshot(0).throughput, 0.0);
    }
}
