//! Server telemetry: throughput, latency percentiles, queue depth and
//! per-engine array counters.
//!
//! Latencies are recorded into a fixed log-scaled histogram (5% resolution
//! steps from 1 µs to ~17 min), so recording is lock-free and percentile
//! queries never scan unbounded sample vectors — the usual
//! high-throughput-server compromise (HdrHistogram in miniature).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Number of histogram buckets; bucket `i` covers latencies up to
/// `1µs · GROWTH^i`.
const BUCKETS: usize = 420;
/// Per-bucket growth factor (≈5% resolution).
const GROWTH: f64 = 1.05;

fn bucket_of(latency: Duration) -> usize {
    let micros = latency.as_secs_f64() * 1e6;
    if micros <= 1.0 {
        return 0;
    }
    (micros.ln() / GROWTH.ln()).ceil().min((BUCKETS - 1) as f64) as usize
}

/// Geometric midpoint of bucket `i`'s bounds — the unbiased point estimate
/// for a log-scaled bucket. Reporting the upper bound instead (as an
/// earlier revision did) overstates every percentile by up to one bucket
/// width (~5%).
fn bucket_mid_micros(i: usize) -> f64 {
    GROWTH.powf(i as f64 - 0.5)
}

/// Per-worker engine counters.
#[derive(Debug, Default)]
pub struct EngineCounters {
    /// Batches dispatched to this engine replica.
    pub batches: AtomicU64,
    /// Samples inferred by this replica.
    pub samples: AtomicU64,
    /// PCSA sense operations performed by this replica (RRAM backend; zero
    /// on the software backend).
    pub senses: AtomicU64,
}

/// Point-in-time view of one engine replica's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// Batches dispatched.
    pub batches: u64,
    /// Samples inferred.
    pub samples: u64,
    /// PCSA senses performed.
    pub senses: u64,
}

/// Shared server statistics collector. All methods are `&self` and
/// lock-free; share through `Arc`.
#[derive(Debug)]
pub struct ServerStats {
    started: Instant,
    /// When the first request completed — the throughput baseline. A
    /// server may sit idle (or warm up) long after the collector is built;
    /// measuring rate from construction would understate steady state.
    first_completed: OnceLock<Instant>,
    /// Offset of the most recent completion from `started`, in
    /// nanoseconds — the trailing edge of the throughput window, so idle
    /// time *after* traffic stops does not smear the rate either.
    last_completed_nanos: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    batch_count: AtomicU64,
    batch_samples: AtomicU64,
    histogram: Vec<AtomicU64>,
    engines: Vec<EngineCounters>,
}

impl ServerStats {
    /// A collector for `workers` engine replicas.
    pub fn new(workers: usize) -> Self {
        Self {
            started: Instant::now(),
            first_completed: OnceLock::new(),
            last_completed_nanos: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            batch_count: AtomicU64::new(0),
            batch_samples: AtomicU64::new(0),
            histogram: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            engines: (0..workers).map(|_| EngineCounters::default()).collect(),
        }
    }

    /// Records an accepted request.
    pub fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request refused for backpressure.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed request with its end-to-end latency.
    pub fn record_completed(&self, latency: Duration) {
        self.first_completed.get_or_init(Instant::now);
        self.last_completed_nanos
            .fetch_max(self.started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.histogram[bucket_of(latency)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one dispatched batch of `samples` requests on `worker`.
    pub fn record_batch(&self, worker: usize, samples: usize, senses: u64) {
        self.batch_count.fetch_add(1, Ordering::Relaxed);
        self.batch_samples
            .fetch_add(samples as u64, Ordering::Relaxed);
        if let Some(e) = self.engines.get(worker) {
            e.batches.fetch_add(1, Ordering::Relaxed);
            e.samples.fetch_add(samples as u64, Ordering::Relaxed);
            e.senses.fetch_add(senses, Ordering::Relaxed);
        }
    }

    /// Latency at `q ∈ [0, 1]` from the histogram, reported as the
    /// geometric midpoint of the containing bucket's bounds (the unbiased
    /// estimate for log-scaled buckets).
    pub fn latency_quantile(&self, q: f64) -> Duration {
        self.latency_quantiles(&[q])[0]
    }

    /// Latencies at several quantiles in **one** histogram pass: the
    /// per-bucket atomics are loaded once and every requested quantile is
    /// resolved against the same cumulative walk, instead of rescanning
    /// the full histogram per quantile.
    pub fn latency_quantiles(&self, qs: &[f64]) -> Vec<Duration> {
        let counts: Vec<u64> = self
            .histogram
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return vec![Duration::ZERO; qs.len()];
        }
        let targets: Vec<u64> = qs
            .iter()
            .map(|q| ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64)
            .collect();
        let last = Duration::from_secs_f64(bucket_mid_micros(BUCKETS - 1) / 1e6);
        let mut out = vec![last; qs.len()];
        let mut resolved = vec![false; qs.len()];
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            let mut all_done = true;
            for (j, &target) in targets.iter().enumerate() {
                if !resolved[j] {
                    if seen >= target {
                        out[j] = Duration::from_secs_f64(bucket_mid_micros(i) / 1e6);
                        resolved[j] = true;
                    } else {
                        all_done = false;
                    }
                }
            }
            if all_done {
                break;
            }
        }
        out
    }

    /// A consistent-enough point-in-time summary.
    pub fn snapshot(&self, queue_depth: usize) -> StatsSnapshot {
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batch_count.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed();
        // Rate window: first completion → last completion, not collector
        // construction → snapshot — idle time before traffic arrives or
        // after it stops would otherwise understate the steady-state rate.
        // The first completed request marks the baseline (it is the event
        // *at* time zero), so the rate counts the `completed − 1` requests
        // that finished inside the window.
        let window = self
            .first_completed
            .get()
            .map(|first| {
                let first_nanos = first.duration_since(self.started).as_nanos() as u64;
                let last_nanos = self.last_completed_nanos.load(Ordering::Relaxed);
                Duration::from_nanos(last_nanos.saturating_sub(first_nanos))
            })
            .unwrap_or(Duration::ZERO);
        let quantiles = self.latency_quantiles(&[0.50, 0.95, 0.99]);
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            queue_depth,
            elapsed,
            window,
            throughput: if completed > 1 && window.as_secs_f64() > 0.0 {
                (completed - 1) as f64 / window.as_secs_f64()
            } else {
                0.0
            },
            mean_batch: if batches > 0 {
                self.batch_samples.load(Ordering::Relaxed) as f64 / batches as f64
            } else {
                0.0
            },
            p50: quantiles[0],
            p95: quantiles[1],
            p99: quantiles[2],
            engines: self
                .engines
                .iter()
                .map(|e| EngineSnapshot {
                    batches: e.batches.load(Ordering::Relaxed),
                    samples: e.samples.load(Ordering::Relaxed),
                    senses: e.senses.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// Point-in-time server statistics.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests completed (responses delivered).
    pub completed: u64,
    /// Requests refused for backpressure.
    pub rejected: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Time since the collector was created.
    pub elapsed: Duration,
    /// Time from the first to the most recent completed request (zero
    /// until two requests complete) — the throughput measurement window.
    pub window: Duration,
    /// Completed requests per second across the first→last completion
    /// window (steady-state rate, unaffected by idle time before traffic
    /// arrives or after it stops).
    pub throughput: f64,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
    /// Median end-to-end latency.
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Per engine-replica counters.
    pub engines: Vec<EngineSnapshot>,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:.0} req/s | {}/{} completed ({} rejected) | queue {} | mean batch {:.1}",
            self.throughput,
            self.completed,
            self.submitted,
            self.rejected,
            self.queue_depth,
            self.mean_batch
        )?;
        writeln!(
            f,
            "latency p50 {:?}  p95 {:?}  p99 {:?}",
            self.p50, self.p95, self.p99
        )?;
        for (i, e) in self.engines.iter().enumerate() {
            writeln!(
                f,
                "engine {i}: {} batches, {} samples, {} senses",
                e.batches, e.samples, e.senses
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_recorded_latencies() {
        let stats = ServerStats::new(1);
        // 90 fast requests at ~100µs and 10 slow ones at ~10ms.
        for _ in 0..90 {
            stats.record_completed(Duration::from_micros(100));
        }
        for _ in 0..10 {
            stats.record_completed(Duration::from_millis(10));
        }
        let p50 = stats.latency_quantile(0.5);
        let p99 = stats.latency_quantile(0.99);
        assert!(
            p50 >= Duration::from_micros(90) && p50 <= Duration::from_micros(120),
            "{p50:?}"
        );
        assert!(p99 >= Duration::from_millis(9), "{p99:?}");
        assert!(p99 <= Duration::from_millis(12), "{p99:?}");
    }

    #[test]
    fn snapshot_aggregates_counters() {
        let stats = ServerStats::new(2);
        stats.record_submitted();
        stats.record_submitted();
        stats.record_rejected();
        stats.record_batch(0, 2, 64);
        stats.record_completed(Duration::from_micros(50));
        stats.record_completed(Duration::from_micros(50));
        let snap = stats.snapshot(3);
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.engines.len(), 2);
        assert_eq!(snap.engines[0].samples, 2);
        assert_eq!(snap.engines[0].senses, 64);
        assert_eq!(snap.engines[1].batches, 0);
        assert!((snap.mean_batch - 2.0).abs() < 1e-9);
        assert!(!format!("{snap}").is_empty());
    }

    #[test]
    fn empty_histogram_is_zero() {
        let stats = ServerStats::new(0);
        assert_eq!(stats.latency_quantile(0.99), Duration::ZERO);
    }

    #[test]
    fn quantile_is_bucket_midpoint_not_upper_bound() {
        // Regression: quantiles used to report the bucket *upper* bound,
        // overstating every percentile by up to one bucket width (~5%).
        // With a single recorded latency, every quantile must land at the
        // geometric midpoint of its bucket — which brackets the true value
        // within ±2.5%, whereas the upper bound sits strictly above it.
        let stats = ServerStats::new(1);
        let lat = Duration::from_micros(1000);
        stats.record_completed(lat);
        for q in [0.5, 0.95, 0.99] {
            let got = stats.latency_quantile(q).as_secs_f64() * 1e6;
            let ratio = got / 1000.0;
            assert!(
                (0.976..=1.025).contains(&ratio),
                "q={q}: {got:.1}µs should be within one half-bucket of 1000µs"
            );
        }
        // The midpoint must sit strictly below the old upper-bound report.
        let i = bucket_of(lat);
        assert!(bucket_mid_micros(i) < GROWTH.powi(i as i32));
    }

    #[test]
    fn quantile_midpoint_semantics_are_pinned_exactly() {
        // Contract pin for the PR 2 bias fix: a quantile landing in bucket
        // `i = ceil(ln(µs)/ln(1.05))` is reported as the *geometric
        // midpoint* `1.05^(i − 0.5)` µs — computed here independently of
        // the implementation, across magnitudes from µs to seconds. Any
        // silent return to upper-bound (or linear-midpoint) reporting
        // shifts every value by ≥ 2.4% and fails the exact comparison.
        for &us in &[3u64, 47, 1000, 12_345, 800_000, 5_000_000] {
            let stats = ServerStats::new(1);
            stats.record_completed(Duration::from_micros(us));
            let bucket = ((us as f64).ln() / 1.05f64.ln()).ceil();
            let expected_us = 1.05f64.powf(bucket - 0.5);
            let got = stats.latency_quantile(0.5);
            assert_eq!(
                got,
                Duration::from_secs_f64(expected_us / 1e6),
                "{us}µs: got {got:?}, expected geometric midpoint {expected_us:.3}µs"
            );
            // The midpoint brackets the true latency within one
            // half-bucket (±2.5%)…
            let ratio = got.as_secs_f64() * 1e6 / us as f64;
            assert!(
                (0.975..=1.026).contains(&ratio),
                "{us}µs: midpoint off by {ratio}"
            );
            // …and sits strictly below the bucket's upper bound and
            // strictly above its lower bound (i.e. it is a midpoint, not
            // either edge).
            let upper = 1.05f64.powf(bucket);
            let lower = 1.05f64.powf(bucket - 1.0);
            let got_us = got.as_secs_f64() * 1e6;
            assert!(got_us < upper && got_us > lower, "{us}µs: {got_us}");
        }
    }

    #[test]
    fn multi_quantile_pass_matches_individual_queries() {
        let stats = ServerStats::new(1);
        for us in [10u64, 20, 50, 100, 400, 1000, 5000, 20_000] {
            for _ in 0..7 {
                stats.record_completed(Duration::from_micros(us));
            }
        }
        let qs = [0.1, 0.5, 0.9, 0.95, 0.99, 1.0];
        let batch = stats.latency_quantiles(&qs);
        for (q, got) in qs.iter().zip(&batch) {
            assert_eq!(*got, stats.latency_quantile(*q), "q={q}");
        }
    }

    #[test]
    fn throughput_baseline_is_first_completion_not_construction() {
        // Regression: a collector built long before traffic arrives must
        // not smear the idle period into the rate.
        let stats = ServerStats::new(1);
        std::thread::sleep(Duration::from_millis(60));
        stats.record_completed(Duration::from_micros(100));
        let t0 = std::time::Instant::now();
        while t0.elapsed() < Duration::from_millis(20) {
            std::hint::spin_loop();
        }
        for _ in 0..9 {
            stats.record_completed(Duration::from_micros(100));
        }
        let snap = stats.snapshot(0);
        assert_eq!(snap.completed, 10);
        assert!(snap.window < snap.elapsed, "window must exclude idle time");
        // 9 completions in ~20ms → ≥200/s; the old construction-based rate
        // would have been ≤ 10 / 80ms = 125/s.
        assert!(
            snap.throughput > 200.0,
            "throughput {} should ignore the pre-traffic idle period",
            snap.throughput
        );
        // The window is first→last completion, so idle time *after*
        // traffic stops must not dilute the rate either.
        std::thread::sleep(Duration::from_millis(40));
        let later = stats.snapshot(0);
        assert_eq!(later.window, snap.window, "window must freeze with traffic");
        assert!(
            (later.throughput - snap.throughput).abs() < 1e-9,
            "trailing idle diluted the rate: {} → {}",
            snap.throughput,
            later.throughput
        );
    }

    #[test]
    fn throughput_is_zero_before_two_completions() {
        let stats = ServerStats::new(1);
        assert_eq!(stats.snapshot(0).throughput, 0.0);
        stats.record_completed(Duration::from_micros(5));
        assert_eq!(stats.snapshot(0).throughput, 0.0);
    }
}
