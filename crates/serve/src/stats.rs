//! Server telemetry: throughput, latency percentiles, queue depth and
//! per-engine array counters.
//!
//! Latencies are recorded into a fixed log-scaled histogram (5% resolution
//! steps from 1 µs to ~17 min), so recording is lock-free and percentile
//! queries never scan unbounded sample vectors — the usual
//! high-throughput-server compromise (HdrHistogram in miniature).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of histogram buckets; bucket `i` covers latencies up to
/// `1µs · GROWTH^i`.
const BUCKETS: usize = 420;
/// Per-bucket growth factor (≈5% resolution).
const GROWTH: f64 = 1.05;

fn bucket_of(latency: Duration) -> usize {
    let micros = latency.as_secs_f64() * 1e6;
    if micros <= 1.0 {
        return 0;
    }
    (micros.ln() / GROWTH.ln()).ceil().min((BUCKETS - 1) as f64) as usize
}

fn bucket_upper_micros(i: usize) -> f64 {
    GROWTH.powi(i as i32)
}

/// Per-worker engine counters.
#[derive(Debug, Default)]
pub struct EngineCounters {
    /// Batches dispatched to this engine replica.
    pub batches: AtomicU64,
    /// Samples inferred by this replica.
    pub samples: AtomicU64,
    /// PCSA sense operations performed by this replica (RRAM backend; zero
    /// on the software backend).
    pub senses: AtomicU64,
}

/// Point-in-time view of one engine replica's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// Batches dispatched.
    pub batches: u64,
    /// Samples inferred.
    pub samples: u64,
    /// PCSA senses performed.
    pub senses: u64,
}

/// Shared server statistics collector. All methods are `&self` and
/// lock-free; share through `Arc`.
#[derive(Debug)]
pub struct ServerStats {
    started: Instant,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    batch_count: AtomicU64,
    batch_samples: AtomicU64,
    histogram: Vec<AtomicU64>,
    engines: Vec<EngineCounters>,
}

impl ServerStats {
    /// A collector for `workers` engine replicas.
    pub fn new(workers: usize) -> Self {
        Self {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            batch_count: AtomicU64::new(0),
            batch_samples: AtomicU64::new(0),
            histogram: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            engines: (0..workers).map(|_| EngineCounters::default()).collect(),
        }
    }

    /// Records an accepted request.
    pub fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request refused for backpressure.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed request with its end-to-end latency.
    pub fn record_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.histogram[bucket_of(latency)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one dispatched batch of `samples` requests on `worker`.
    pub fn record_batch(&self, worker: usize, samples: usize, senses: u64) {
        self.batch_count.fetch_add(1, Ordering::Relaxed);
        self.batch_samples
            .fetch_add(samples as u64, Ordering::Relaxed);
        if let Some(e) = self.engines.get(worker) {
            e.batches.fetch_add(1, Ordering::Relaxed);
            e.samples.fetch_add(samples as u64, Ordering::Relaxed);
            e.senses.fetch_add(senses, Ordering::Relaxed);
        }
    }

    /// Latency at `q ∈ [0, 1]` from the histogram (upper bucket bound).
    pub fn latency_quantile(&self, q: f64) -> Duration {
        let total: u64 = self
            .histogram
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.histogram.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Duration::from_secs_f64(bucket_upper_micros(i) / 1e6);
            }
        }
        Duration::from_secs_f64(bucket_upper_micros(BUCKETS - 1) / 1e6)
    }

    /// A consistent-enough point-in-time summary.
    pub fn snapshot(&self, queue_depth: usize) -> StatsSnapshot {
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batch_count.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed();
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            queue_depth,
            elapsed,
            throughput: if elapsed.as_secs_f64() > 0.0 {
                completed as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
            mean_batch: if batches > 0 {
                self.batch_samples.load(Ordering::Relaxed) as f64 / batches as f64
            } else {
                0.0
            },
            p50: self.latency_quantile(0.50),
            p95: self.latency_quantile(0.95),
            p99: self.latency_quantile(0.99),
            engines: self
                .engines
                .iter()
                .map(|e| EngineSnapshot {
                    batches: e.batches.load(Ordering::Relaxed),
                    samples: e.samples.load(Ordering::Relaxed),
                    senses: e.senses.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// Point-in-time server statistics.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests completed (responses delivered).
    pub completed: u64,
    /// Requests refused for backpressure.
    pub rejected: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Time since the collector was created.
    pub elapsed: Duration,
    /// Completed requests per second since startup.
    pub throughput: f64,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
    /// Median end-to-end latency.
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Per engine-replica counters.
    pub engines: Vec<EngineSnapshot>,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:.0} req/s | {}/{} completed ({} rejected) | queue {} | mean batch {:.1}",
            self.throughput,
            self.completed,
            self.submitted,
            self.rejected,
            self.queue_depth,
            self.mean_batch
        )?;
        writeln!(
            f,
            "latency p50 {:?}  p95 {:?}  p99 {:?}",
            self.p50, self.p95, self.p99
        )?;
        for (i, e) in self.engines.iter().enumerate() {
            writeln!(
                f,
                "engine {i}: {} batches, {} samples, {} senses",
                e.batches, e.samples, e.senses
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_recorded_latencies() {
        let stats = ServerStats::new(1);
        // 90 fast requests at ~100µs and 10 slow ones at ~10ms.
        for _ in 0..90 {
            stats.record_completed(Duration::from_micros(100));
        }
        for _ in 0..10 {
            stats.record_completed(Duration::from_millis(10));
        }
        let p50 = stats.latency_quantile(0.5);
        let p99 = stats.latency_quantile(0.99);
        assert!(
            p50 >= Duration::from_micros(90) && p50 <= Duration::from_micros(120),
            "{p50:?}"
        );
        assert!(p99 >= Duration::from_millis(9), "{p99:?}");
        assert!(p99 <= Duration::from_millis(12), "{p99:?}");
    }

    #[test]
    fn snapshot_aggregates_counters() {
        let stats = ServerStats::new(2);
        stats.record_submitted();
        stats.record_submitted();
        stats.record_rejected();
        stats.record_batch(0, 2, 64);
        stats.record_completed(Duration::from_micros(50));
        stats.record_completed(Duration::from_micros(50));
        let snap = stats.snapshot(3);
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.engines.len(), 2);
        assert_eq!(snap.engines[0].samples, 2);
        assert_eq!(snap.engines[0].senses, 64);
        assert_eq!(snap.engines[1].batches, 0);
        assert!((snap.mean_batch - 2.0).abs() < 1e-9);
        assert!(!format!("{snap}").is_empty());
    }

    #[test]
    fn empty_histogram_is_zero() {
        let stats = ServerStats::new(0);
        assert_eq!(stats.latency_quantile(0.99), Duration::ZERO);
    }
}
