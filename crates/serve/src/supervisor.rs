//! Replica supervision: fault accounting, respawn backoff, quarantine,
//! and fleet-health reporting.
//!
//! Before this module, a replica that panicked mid-batch was retired
//! forever (PR 7's containment contract): the pool survived, but each
//! fault permanently shrank it. The supervisor closes the loop — it is
//! the bookkeeping half of a crash-loop restart policy:
//!
//! - every engine fault is recorded against its `(worker, task)` replica
//!   cell, which enters **Down** with an exponential backoff window
//!   (base × 2^consecutive-faults, capped);
//! - the owning worker polls [`Supervisor::respawn_due`] on its dispatch
//!   and idle-tick paths and rebuilds the engine from its retained spec
//!   once the window elapses (**lazy, in-worker respawn** — engines are
//!   not `Send`-shared, so only the owning thread can rebuild one);
//! - a replica that keeps faulting without an intervening successful
//!   batch ([`Supervisor::mark_stable`]) is **Quarantined** after a
//!   configurable cap and never respawned — the crash-loop breaker;
//! - a replica whose RRAM fabric degrades past the marginal-cell
//!   threshold is marked **Degraded** when the worker swaps it to the
//!   software XNOR path — still serving, flagged for operators;
//! - workers heartbeat once per batch/idle tick, so a wedged worker is
//!   visible as a stale heartbeat in [`FleetHealth`].
//!
//! All state lives behind short per-cell mutexes (poison-recovering, no
//! nested acquisition); aggregate health is published to the global
//! telemetry registry as gauges recomputed after every transition.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use rbnn_telemetry::{Counter, Gauge};

use crate::registry::ServeTask;

/// Respawn/quarantine policy for faulted replicas.
#[derive(Debug, Clone)]
pub struct SupervisorPolicy {
    /// Backoff before the first respawn attempt; doubles per consecutive
    /// fault.
    pub base_backoff: Duration,
    /// Upper bound on any respawn backoff.
    pub max_backoff: Duration,
    /// Consecutive faults (without an intervening stable batch) at which
    /// a replica is quarantined instead of respawned. `1` quarantines on
    /// the first fault; `u32::MAX` effectively disables quarantine.
    pub quarantine_after: u32,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        Self {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            quarantine_after: 8,
        }
    }
}

/// Health of one `(worker, task)` engine replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// Serving on its configured backend.
    Healthy,
    /// Faulted; awaiting its backoff window before respawn.
    Down,
    /// Crash-looped past the quarantine cap; never respawned.
    Quarantined,
    /// Serving, but fell back from RRAM to the software XNOR path after
    /// its fabric's marginal-cell fraction crossed the degrade threshold.
    Degraded,
}

#[derive(Debug)]
struct CellState {
    health: ReplicaHealth,
    /// Total faults ever recorded.
    faults: u64,
    /// Total successful respawns.
    respawns: u64,
    /// Consecutive faults since the last stable (successful) batch —
    /// the crash-loop detector input.
    streak: u32,
    /// End of the current backoff window while Down.
    backoff_until: Option<Instant>,
    /// When the current outage began (first fault of the streak).
    down_since: Option<Instant>,
    /// fault → successful-respawn delay of the most recent recovery.
    last_respawn_delay: Option<Duration>,
    /// Worst fault → successful-respawn delay seen.
    max_respawn_delay: Option<Duration>,
}

impl CellState {
    fn new() -> Self {
        Self {
            health: ReplicaHealth::Healthy,
            faults: 0,
            respawns: 0,
            streak: 0,
            backoff_until: None,
            down_since: None,
            last_respawn_delay: None,
            max_respawn_delay: None,
        }
    }
}

/// Point-in-time status of one replica, as reported in [`FleetHealth`]
/// (via `ServeHandle::fleet_health`).
#[derive(Debug, Clone)]
pub struct ReplicaReport {
    /// Owning worker index.
    pub worker: usize,
    /// Task this replica serves.
    pub task: ServeTask,
    /// Current health.
    pub health: ReplicaHealth,
    /// Total faults recorded against this replica.
    pub faults: u64,
    /// Total successful respawns.
    pub respawns: u64,
    /// fault → respawn delay of the most recent recovery.
    pub last_respawn_delay: Option<Duration>,
    /// Worst fault → respawn delay seen.
    pub max_respawn_delay: Option<Duration>,
}

/// Aggregate fleet health snapshot.
#[derive(Debug, Clone)]
pub struct FleetHealth {
    /// Worker thread count.
    pub workers: usize,
    /// Per-replica statuses, ordered by (worker, task).
    pub replicas: Vec<ReplicaReport>,
    /// Age of each worker's most recent heartbeat.
    pub heartbeat_ages: Vec<Duration>,
    /// Replicas currently serving on their configured backend.
    pub healthy: usize,
    /// Replicas awaiting respawn.
    pub down: usize,
    /// Replicas quarantined by the crash-loop breaker.
    pub quarantined: usize,
    /// Replicas serving on the degraded software fallback.
    pub degraded: usize,
    /// Total faults across the fleet.
    pub faults: u64,
    /// Total successful respawns across the fleet.
    pub respawns: u64,
    /// Worst fault → respawn delay across the fleet.
    pub max_respawn_delay: Option<Duration>,
}

impl std::fmt::Display for FleetHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fleet: {} workers, {} healthy / {} down / {} quarantined / {} degraded replicas, \
             {} faults, {} respawns",
            self.workers,
            self.healthy,
            self.down,
            self.quarantined,
            self.degraded,
            self.faults,
            self.respawns
        )?;
        if let Some(d) = self.max_respawn_delay {
            write!(f, ", worst respawn {:.1} ms", d.as_secs_f64() * 1e3)?;
        }
        Ok(())
    }
}

/// The fleet supervisor. Shared by workers and the control plane via the
/// server's `Shared` state; all methods are `&self`.
#[derive(Debug)]
pub struct Supervisor {
    policy: SupervisorPolicy,
    /// One cell per worker per task, fixed at startup.
    cells: Vec<BTreeMap<ServeTask, Mutex<CellState>>>,
    /// Per-worker heartbeat: nanoseconds since `started`, relaxed.
    heartbeats: Vec<AtomicU64>,
    started: Instant,
    faults_total: Arc<Counter>,
    respawns_total: Arc<Counter>,
    healthy_gauge: Arc<Gauge>,
    quarantined_gauge: Arc<Gauge>,
    degraded_gauge: Arc<Gauge>,
}

impl Supervisor {
    /// Builds the supervisor for `workers` workers each holding one
    /// replica per task in `tasks`; all replicas start Healthy.
    pub(crate) fn new(policy: SupervisorPolicy, workers: usize, tasks: &[ServeTask]) -> Self {
        let reg = rbnn_telemetry::global();
        let cells = (0..workers)
            .map(|_| {
                tasks
                    .iter()
                    .map(|&t| (t, Mutex::new(CellState::new())))
                    .collect()
            })
            .collect();
        let sup = Self {
            policy,
            cells,
            heartbeats: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            started: Instant::now(),
            faults_total: reg.counter(
                "rbnn_serve_replica_faults_total",
                "",
                "Engine replica faults (panics) contained by the pool.",
            ),
            respawns_total: reg.counter(
                "rbnn_serve_replica_respawns_total",
                "",
                "Faulted replicas successfully respawned by the supervisor.",
            ),
            healthy_gauge: reg.gauge(
                "rbnn_serve_replicas_healthy",
                "",
                "Replicas currently serving on their configured backend.",
            ),
            quarantined_gauge: reg.gauge(
                "rbnn_serve_replicas_quarantined",
                "",
                "Replicas quarantined by the crash-loop breaker.",
            ),
            degraded_gauge: reg.gauge(
                "rbnn_serve_replicas_degraded",
                "",
                "Replicas serving on the degraded software fallback.",
            ),
        };
        sup.publish_gauges();
        sup
    }

    /// Short-critical-section lock of one replica cell, poison-recovering
    /// (every critical section here leaves the cell consistent).
    fn lock_cell<'a>(
        &'a self,
        worker: usize,
        task: ServeTask,
    ) -> Option<MutexGuard<'a, CellState>> {
        let cell = self.cells.get(worker)?.get(&task)?;
        Some(cell.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Records a worker liveness tick (once per batch / idle tick).
    pub(crate) fn heartbeat(&self, worker: usize) {
        if let Some(hb) = self.heartbeats.get(worker) {
            // Relaxed: a monotone freshness stamp; readers tolerate
            // staleness of one tick.
            hb.store(self.started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Records an engine fault (panic) or failed respawn attempt against
    /// a replica; returns its new health (`Down` with a fresh backoff
    /// window, or `Quarantined` once the crash-loop cap is hit).
    pub(crate) fn record_fault(&self, worker: usize, task: ServeTask) -> ReplicaHealth {
        let now = Instant::now();
        let health = {
            let Some(mut cell) = self.lock_cell(worker, task) else {
                return ReplicaHealth::Quarantined;
            };
            cell.faults += 1;
            cell.streak = cell.streak.saturating_add(1);
            if cell.down_since.is_none() {
                cell.down_since = Some(now);
            }
            if cell.streak >= self.policy.quarantine_after {
                cell.health = ReplicaHealth::Quarantined;
                cell.backoff_until = None;
            } else {
                let exp = cell.streak.saturating_sub(1).min(20);
                let backoff = self
                    .policy
                    .base_backoff
                    .saturating_mul(1u32 << exp)
                    .min(self.policy.max_backoff);
                cell.health = ReplicaHealth::Down;
                cell.backoff_until = Some(now + backoff);
            }
            cell.health
        };
        self.faults_total.inc();
        self.publish_gauges();
        health
    }

    /// True when a Down replica's backoff window has elapsed and the
    /// owning worker should attempt a respawn. Quarantined replicas are
    /// never due.
    pub(crate) fn respawn_due(&self, worker: usize, task: ServeTask) -> bool {
        let Some(cell) = self.lock_cell(worker, task) else {
            return false;
        };
        cell.health == ReplicaHealth::Down && cell.backoff_until.is_none_or(|t| Instant::now() >= t)
    }

    /// Records a successful engine rebuild: the replica is Healthy again
    /// and its fault → respawn delay is captured for the chaos gate.
    pub(crate) fn respawned(&self, worker: usize, task: ServeTask) {
        {
            let Some(mut cell) = self.lock_cell(worker, task) else {
                return;
            };
            let delay = cell.down_since.take().map(|t| t.elapsed());
            cell.last_respawn_delay = delay;
            cell.max_respawn_delay = match (cell.max_respawn_delay, delay) {
                (Some(m), Some(d)) => Some(m.max(d)),
                (m, d) => m.or(d),
            };
            cell.respawns += 1;
            cell.health = ReplicaHealth::Healthy;
            cell.backoff_until = None;
        }
        self.respawns_total.inc();
        self.publish_gauges();
    }

    /// Resets a replica's crash-loop streak after its first successful
    /// batch post-respawn — faults separated by stable service never
    /// accumulate into quarantine.
    pub(crate) fn mark_stable(&self, worker: usize, task: ServeTask) {
        if let Some(mut cell) = self.lock_cell(worker, task) {
            cell.streak = 0;
        }
    }

    /// Records the RRAM → software degraded-mode fallback for a replica.
    pub(crate) fn record_degraded(&self, worker: usize, task: ServeTask) {
        {
            let Some(mut cell) = self.lock_cell(worker, task) else {
                return;
            };
            cell.health = ReplicaHealth::Degraded;
        }
        self.publish_gauges();
    }

    /// Recomputes the fleet gauges from a sequential scan of the cells
    /// (one short lock at a time — never nested).
    fn publish_gauges(&self) {
        let mut healthy = 0u64;
        let mut quarantined = 0u64;
        let mut degraded = 0u64;
        for worker in &self.cells {
            for cell in worker.values() {
                let state = cell.lock().unwrap_or_else(PoisonError::into_inner);
                match state.health {
                    ReplicaHealth::Healthy => healthy += 1,
                    ReplicaHealth::Quarantined => quarantined += 1,
                    ReplicaHealth::Degraded => degraded += 1,
                    ReplicaHealth::Down => {}
                }
            }
        }
        self.healthy_gauge.set(healthy as f64);
        self.quarantined_gauge.set(quarantined as f64);
        self.degraded_gauge.set(degraded as f64);
    }

    /// Snapshots every replica and worker heartbeat.
    pub(crate) fn fleet_health(&self) -> FleetHealth {
        let mut replicas = Vec::new();
        let mut healthy = 0;
        let mut down = 0;
        let mut quarantined = 0;
        let mut degraded = 0;
        let mut faults = 0;
        let mut respawns = 0;
        let mut max_delay: Option<Duration> = None;
        for (worker, tasks) in self.cells.iter().enumerate() {
            for (&task, cell) in tasks {
                let state = cell.lock().unwrap_or_else(PoisonError::into_inner);
                match state.health {
                    ReplicaHealth::Healthy => healthy += 1,
                    ReplicaHealth::Down => down += 1,
                    ReplicaHealth::Quarantined => quarantined += 1,
                    ReplicaHealth::Degraded => degraded += 1,
                }
                faults += state.faults;
                respawns += state.respawns;
                max_delay = match (max_delay, state.max_respawn_delay) {
                    (Some(m), Some(d)) => Some(m.max(d)),
                    (m, d) => m.or(d),
                };
                replicas.push(ReplicaReport {
                    worker,
                    task,
                    health: state.health,
                    faults: state.faults,
                    respawns: state.respawns,
                    last_respawn_delay: state.last_respawn_delay,
                    max_respawn_delay: state.max_respawn_delay,
                });
            }
        }
        let now = self.started.elapsed().as_nanos() as u64;
        let heartbeat_ages = self
            .heartbeats
            .iter()
            // Relaxed: heartbeat ages are an advisory health readout; a
            // stale read shows up as a slightly older age, nothing more.
            .map(|hb| Duration::from_nanos(now.saturating_sub(hb.load(Ordering::Relaxed))))
            .collect();
        FleetHealth {
            workers: self.cells.len(),
            replicas,
            heartbeat_ages,
            healthy,
            down,
            quarantined,
            degraded,
            faults,
            respawns,
            max_respawn_delay: max_delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn supervisor(policy: SupervisorPolicy) -> Supervisor {
        Supervisor::new(policy, 2, &[ServeTask::Ecg, ServeTask::Eeg])
    }

    #[test]
    fn fault_enters_down_with_exponential_backoff_then_respawns() {
        let sup = supervisor(SupervisorPolicy {
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(100),
            quarantine_after: 8,
        });
        assert_eq!(sup.record_fault(0, ServeTask::Ecg), ReplicaHealth::Down);
        // Inside the backoff window: not due yet.
        assert!(!sup.respawn_due(0, ServeTask::Ecg));
        std::thread::sleep(Duration::from_millis(25));
        assert!(sup.respawn_due(0, ServeTask::Ecg));
        sup.respawned(0, ServeTask::Ecg);
        let health = sup.fleet_health();
        assert_eq!(health.healthy, 4);
        assert_eq!(health.faults, 1);
        assert_eq!(health.respawns, 1);
        let delay = health.max_respawn_delay.expect("recovery recorded");
        assert!(delay >= Duration::from_millis(20));
    }

    #[test]
    fn crash_loop_quarantines_after_cap_and_stable_service_resets_streak() {
        let sup = supervisor(SupervisorPolicy {
            base_backoff: Duration::from_micros(1),
            max_backoff: Duration::from_micros(1),
            quarantine_after: 3,
        });
        // Two faults broken up by stable service: streak resets, no
        // quarantine.
        for _ in 0..2 {
            assert_eq!(sup.record_fault(0, ServeTask::Ecg), ReplicaHealth::Down);
            std::thread::sleep(Duration::from_millis(1));
            assert!(sup.respawn_due(0, ServeTask::Ecg));
            sup.respawned(0, ServeTask::Ecg);
            sup.mark_stable(0, ServeTask::Ecg);
        }
        // Three consecutive faults with no stable batch: quarantined.
        assert_eq!(sup.record_fault(0, ServeTask::Ecg), ReplicaHealth::Down);
        sup.respawned(0, ServeTask::Ecg);
        assert_eq!(sup.record_fault(0, ServeTask::Ecg), ReplicaHealth::Down);
        sup.respawned(0, ServeTask::Ecg);
        assert_eq!(
            sup.record_fault(0, ServeTask::Ecg),
            ReplicaHealth::Quarantined
        );
        assert!(
            !sup.respawn_due(0, ServeTask::Ecg),
            "quarantine is terminal"
        );
        let health = sup.fleet_health();
        assert_eq!(health.quarantined, 1);
        assert_eq!(health.healthy, 3);
    }

    #[test]
    fn degraded_replica_counts_and_heartbeats_age() {
        let sup = supervisor(SupervisorPolicy::default());
        sup.heartbeat(0);
        sup.record_degraded(1, ServeTask::Eeg);
        let health = sup.fleet_health();
        assert_eq!(health.degraded, 1);
        assert_eq!(health.healthy, 3);
        assert_eq!(health.heartbeat_ages.len(), 2);
        // Worker 0 ticked just now; worker 1 never did (age = since start).
        assert!(health.heartbeat_ages[0] < Duration::from_secs(1));
        assert!(health.heartbeat_ages[1] >= health.heartbeat_ages[0]);
    }
}
