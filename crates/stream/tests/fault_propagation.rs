//! Satellite regression: an engine fault inside the serve pool surfaces
//! in the stream layer as a *typed* failure verdict — never a lost
//! window, never a panic across the crate boundary. With the retry
//! budget disabled (one attempt), the first faulted request's windows
//! must appear as [`WindowOutcome::Failed`]`(EngineFault)` in the verdict
//! stream while the pool recovers and classifies the rest.
//!
//! One test function on purpose: the injection hook is process-wide, so
//! concurrent test threads arming it would race each other.

use std::time::{Duration, Instant};

use rbnn_data::stream::{EcgStream, EcgStreamConfig};
use rbnn_rram::EngineConfig;
use rbnn_serve::{
    demo_network, Backend, ModelRegistry, RetryPolicy, ServeConfig, ServeError, ServeTask, Server,
};
use rbnn_stream::{
    Normalization, RouterConfig, SegmenterConfig, Session, SessionConfig, StreamRouter, TailPolicy,
    WindowLayout,
};

const CHANNELS: usize = 12;
const WINDOW: usize = 25;

#[test]
fn engine_fault_reaches_verdict_stream_as_typed_error() {
    let net = demo_network(&[CHANNELS * WINDOW, 16, 2], 0xFA17);
    let mut registry = ModelRegistry::new();
    registry.insert(ServeTask::Ecg, net, EngineConfig::test_chip(5));
    let server = Server::start(
        &registry,
        &ServeConfig {
            workers: 1, // one replica: the faulted request is deterministic
            backend: Backend::Software,
            ..Default::default()
        },
    );
    let client = server.handle().client(ServeTask::Ecg).expect("bound");

    let cfg = RouterConfig {
        chunk_frames: 64,
        windows_per_patient: 12,
        // One attempt: the first failure is terminal, so the typed error
        // must show up in the verdict stream instead of being retried
        // away.
        retry: RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        },
        ..RouterConfig::default()
    };
    let mut router = StreamRouter::new(client, cfg);
    let source = EcgStream::new(EcgStreamConfig {
        samples_per_segment: 90,
        seed: 11,
        ..EcgStreamConfig::default()
    });
    let session = Session::new(SessionConfig {
        segmenter: SegmenterConfig {
            channels: CHANNELS,
            window: WINDOW,
            stride: WINDOW,
            tail: TailPolicy::Drop,
        },
        layout: WindowLayout::ChannelMajor,
        normalization: Normalization::PerWindow,
    });
    router.add_patient(0, Box::new(source), session);

    // The next engine dispatch panics; the 10 ms default backoff means
    // the replica respawns while the run is still going.
    rbnn_serve::fault::arm_engine_panics(1);
    let report = router.run().expect("run survives the fault").remove(0);

    // Zero lost requests: every submitted window has a terminal verdict.
    assert!(report.windows >= 12, "target reached: {}", report.windows);
    assert_eq!(report.windows, report.verdicts.len() as u64);

    // The fault arrived as a typed error, not as silence.
    let failed: Vec<_> = report
        .verdicts
        .iter()
        .filter(|v| !v.is_classified())
        .collect();
    assert!(
        !failed.is_empty(),
        "the faulted request's windows must carry failure verdicts"
    );
    for v in &failed {
        assert_eq!(
            v.error(),
            Some(&ServeError::EngineFault),
            "typed EngineFault expected, got {:?}",
            v.outcome
        );
        assert_eq!(v.retries, 0, "max_attempts=1 never retries");
    }
    assert_eq!(report.failed_windows, failed.len() as u64);
    assert_eq!(report.retries, 0);

    // A synthetic source streams faster than the respawn backoff, so some
    // (possibly all) windows fail while the replica is down. The pool
    // still heals: direct classification succeeds once the supervisor
    // respawns the replica.
    let probe: Vec<f32> = (0..CHANNELS * WINDOW)
        .map(|i| (i % 5) as f32 - 2.0)
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match server.handle().classify(ServeTask::Ecg, probe.clone()) {
            Ok(_) => break,
            Err(ServeError::EngineFault) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("replica must respawn and serve again, got {e:?}"),
        }
    }
    let fleet = server.handle().fleet_health();
    assert!(
        fleet.respawns >= 1,
        "supervisor respawned the replica: {fleet}"
    );

    server.shutdown();
}
