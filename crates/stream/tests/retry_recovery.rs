//! Retry absorbs transient faults: with the default retry budget, a
//! single injected engine panic never reaches the verdict stream — the
//! faulted windows are resubmitted after backoff and classify on the
//! respawned replica. Zero failed windows, retry counters visible.
//!
//! One test function on purpose: the injection hook is process-wide, so
//! concurrent test threads arming it would race each other.

use std::time::Duration;

use rbnn_data::stream::{EcgStream, EcgStreamConfig};
use rbnn_rram::EngineConfig;
use rbnn_serve::{
    demo_network, Backend, ModelRegistry, ServeConfig, ServeTask, Server, SupervisorPolicy,
};
use rbnn_stream::{
    Normalization, RouterConfig, SegmenterConfig, Session, SessionConfig, StreamRouter, TailPolicy,
    WindowLayout,
};

const CHANNELS: usize = 12;
const WINDOW: usize = 25;

#[test]
fn retry_budget_absorbs_engine_fault_without_losing_windows() {
    let net = demo_network(&[CHANNELS * WINDOW, 16, 2], 0x9E7);
    let mut registry = ModelRegistry::new();
    registry.insert(ServeTask::Ecg, net, EngineConfig::test_chip(5));
    let server = Server::start(
        &registry,
        &ServeConfig {
            workers: 1,
            backend: Backend::Software,
            supervisor: SupervisorPolicy {
                // Respawn almost immediately so the retried windows land
                // on a healthy replica within the retry backoff budget.
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(4),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let client = server.handle().client(ServeTask::Ecg).expect("bound");

    let mut router = StreamRouter::new(
        client,
        RouterConfig {
            chunk_frames: 64,
            windows_per_patient: 12,
            ..RouterConfig::default() // default retry budget: 3 attempts
        },
    );
    let source = EcgStream::new(EcgStreamConfig {
        samples_per_segment: 90,
        seed: 23,
        ..EcgStreamConfig::default()
    });
    let session = Session::new(SessionConfig {
        segmenter: SegmenterConfig {
            channels: CHANNELS,
            window: WINDOW,
            stride: WINDOW,
            tail: TailPolicy::Drop,
        },
        layout: WindowLayout::ChannelMajor,
        normalization: Normalization::PerWindow,
    });
    router.add_patient(0, Box::new(source), session);

    rbnn_serve::fault::arm_engine_panics(1);
    let report = router.run().expect("run survives the fault").remove(0);

    assert!(report.windows >= 12, "target reached: {}", report.windows);
    assert_eq!(report.windows, report.verdicts.len() as u64);
    assert_eq!(
        report.failed_windows, 0,
        "retry budget must absorb the single fault"
    );
    assert!(
        report.retries >= 1,
        "the fault must have cost at least one retry"
    );
    assert!(report.verdicts.iter().all(|v| v.is_classified()));
    assert!(
        report.verdicts.iter().any(|v| v.retries > 0),
        "a retried window records its attempt count"
    );

    server.shutdown();
}
