//! Segmentation edge cases pinned against one-shot offline segmentation
//! of the same signal, bitwise through the serve path.
//!
//! For each geometry the same seeded signal is consumed twice: streamed in
//! deliberately awkward chunks (prime sizes, so windows and gaps straddle
//! chunk boundaries) and offline in one buffered pass. Both window sets
//! are then classified through a running `rbnn-serve` pool on the
//! software backend, and every logit must agree to the bit
//! (`f32::to_bits`) — the same equality the conformance oracle holds the
//! batch paths to.

use std::sync::Arc;

use rbnn_data::stream::{collect_frames, EcgStream, EcgStreamConfig, SignalSource};
use rbnn_rram::EngineConfig;
use rbnn_serve::{demo_network, Backend, ModelRegistry, ServeConfig, ServeTask, Server};
use rbnn_stream::{
    Normalization, SegmenterConfig, Session, SessionConfig, TailPolicy, WindowLayout,
};

const CHANNELS: usize = 12;

fn session(window: usize, stride: usize, tail: TailPolicy) -> Session {
    Session::new(SessionConfig {
        segmenter: SegmenterConfig {
            channels: CHANNELS,
            window,
            stride,
            tail,
        },
        layout: WindowLayout::ChannelMajor,
        normalization: Normalization::PerWindow,
    })
}

fn source(seed: u64) -> EcgStream {
    EcgStream::new(EcgStreamConfig {
        samples_per_segment: 97, // prime: segment joins never align with windows
        seed,
        ..EcgStreamConfig::default()
    })
}

/// Streams `total_frames` through a session in awkward chunk sizes,
/// then finishes; returns the feature windows.
fn stream_windows(
    seed: u64,
    total_frames: usize,
    mut session: Session,
) -> Vec<rbnn_stream::Window> {
    let mut src = source(seed);
    let mut out = Vec::new();
    let mut remaining = total_frames;
    let chunk_sizes = [1usize, 13, 7, 61, 29, 101];
    let mut i = 0;
    let mut buf = Vec::new();
    while remaining > 0 {
        let want = chunk_sizes[i % chunk_sizes.len()].min(remaining);
        i += 1;
        buf.clear();
        let got = src.next_chunk(want, &mut buf);
        assert_eq!(got, want);
        out.extend(session.push_chunk(&buf));
        remaining -= got;
    }
    out.extend(session.finish());
    out
}

/// Offline oracle: the whole signal in one buffer, one segmentation pass.
fn offline_windows(
    seed: u64,
    total_frames: usize,
    mut session: Session,
) -> Vec<rbnn_stream::Window> {
    let mut src = source(seed);
    let frames = collect_frames(&mut src, total_frames);
    let mut out = session.push_chunk(&frames);
    out.extend(session.finish());
    out
}

/// Classifies windows through the serving pipeline and returns each
/// window's logits as raw bits.
fn serve_logit_bits(server: &Server, windows: &[rbnn_stream::Window]) -> Vec<Vec<u32>> {
    let client = server.handle().client(ServeTask::Ecg).expect("bound");
    let rows: Arc<Vec<Vec<f32>>> = Arc::new(windows.iter().map(|w| w.features.clone()).collect());
    if rows.is_empty() {
        return Vec::new();
    }
    let predictions = client
        .enqueue_shared(rows)
        .expect("queued")
        .wait()
        .expect("served");
    predictions
        .into_iter()
        .map(|p| p.logits.iter().map(|l| l.to_bits()).collect())
        .collect()
}

fn check_geometry(window: usize, stride: usize, tail: TailPolicy, total_frames: usize) {
    let net = demo_network(&[CHANNELS * window, 24, 2], model_seed(window, stride));
    let mut registry = ModelRegistry::new();
    registry.insert(ServeTask::Ecg, net.clone(), EngineConfig::test_chip(3));
    let server = Server::start(
        &registry,
        &ServeConfig {
            workers: 2,
            backend: Backend::Software,
            ..Default::default()
        },
    );

    let seed = 0x5EED ^ (window as u64) << 8 ^ stride as u64;
    let streamed = stream_windows(seed, total_frames, session(window, stride, tail));
    let offline = offline_windows(seed, total_frames, session(window, stride, tail));

    // The window sequences themselves must match exactly …
    assert_eq!(streamed.len(), offline.len(), "w={window} s={stride}");
    for (a, b) in streamed.iter().zip(&offline) {
        assert_eq!(a.meta, b.meta);
        let ab: Vec<u32> = a.features.iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = b.features.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb, "w={window} s={stride} window {}", a.meta.index);
    }

    // … and so must the logits the serve path produces for them, both
    // against each other and against the direct network.
    let streamed_bits = serve_logit_bits(&server, &streamed);
    let offline_bits = serve_logit_bits(&server, &offline);
    assert_eq!(streamed_bits, offline_bits, "w={window} s={stride}");
    for (w, bits) in streamed.iter().zip(&streamed_bits) {
        let direct: Vec<u32> = net
            .logits(&w.features)
            .iter()
            .map(|l| l.to_bits())
            .collect();
        assert_eq!(*bits, direct, "w={window} s={stride}");
    }
    server.shutdown();
}

/// Seed mixer so each geometry gets a distinct model.
fn model_seed(window: usize, stride: usize) -> u64 {
    (window as u64) << 16 | stride as u64
}

#[test]
fn window_equals_stride_through_serve_path() {
    // Exact tiling; 407 frames leave a 407 − 5·80 = 7-frame tail (dropped).
    check_geometry(80, 80, TailPolicy::Drop, 407);
}

#[test]
fn overlapping_windows_through_serve_path() {
    // 50% overlap; every window shares frames with its neighbours.
    check_geometry(64, 32, TailPolicy::Drop, 403);
}

#[test]
fn gapped_stride_through_serve_path() {
    // stride > window: classify 48 frames, skip 52 — duty-cycled
    // monitoring. Gap debt must survive chunk boundaries.
    check_geometry(48, 100, TailPolicy::Drop, 521);
}

#[test]
fn padded_tail_through_serve_path() {
    // 390 frames = 4×90 windows + a 30-frame tail, zero-padded to a full
    // window and classified.
    let streamed = stream_windows(1, 390, session(90, 90, TailPolicy::Pad));
    let dropped = stream_windows(1, 390, session(90, 90, TailPolicy::Drop));
    assert_eq!(streamed.len(), dropped.len() + 1, "pad emits the tail");
    check_geometry(90, 90, TailPolicy::Pad, 390);
}
