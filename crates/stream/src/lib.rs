//! # rbnn-stream
//!
//! Continuous-monitoring streaming ingestion on top of the
//! [`rbnn-serve`](rbnn_serve) runtime — the always-on layer the paper's
//! wearable-medical-device scenario actually implies. ECG/EEG from a
//! monitored patient arrives as an *unbounded signal*, not as the pre-cut
//! windows every batch path consumes; this crate turns that signal into
//! classified, alarm-bearing verdict streams:
//!
//! 1. a [`SignalSource`](rbnn_data::stream::SignalSource) yields
//!    channel-interleaved frames in chunks of arbitrary size (seeded
//!    synthetic ECG/EEG generators live in [`rbnn_data::stream`]);
//! 2. a per-patient [`Session`] cuts the stream into sliding windows
//!    ([`Segmenter`]: configurable window/stride, gaps allowed, correct
//!    tail handling across chunk boundaries) and featurizes each window
//!    exactly like the training pipeline ([`Normalization`],
//!    [`WindowLayout`]);
//! 3. a multi-tenant [`StreamRouter`] fans N concurrent patient sessions
//!    into the serve queue through the zero-copy shared-window API
//!    (one [`rbnn_serve::TaskClient`] bound per task, one `Arc`'d request
//!    per chunk) and returns timestamped per-patient [`Verdict`] streams;
//! 4. a debounced K-of-M [`AlarmState`] machine turns raw verdicts into
//!    the clinically shaped output, and every [`PatientReport`] accounts
//!    windows/s, real-time factor and µJ/window against the RRAM energy
//!    model ([`rbnn_rram::energy`]).
//!
//! The router is loss-free under faults: every submitted window reaches a
//! terminal [`Verdict`] — [`WindowOutcome::Classified`] or a typed
//! [`WindowOutcome::Failed`] once the [`RouterConfig::retry`] budget runs
//! out. Retryable failures (shed admission, engine faults, transient
//! errors) back off with jitter and resubmit; windows of an alarm-active
//! patient ride the urgent queue lane; [`RouterConfig::deadline`] bounds
//! each window's freshness. `chaos_bench` (in `rbnn-bench`) drives this
//! whole stack through seeded fault injection and gates zero lost
//! requests at 64 patients.
//!
//! The segmentation layer guarantees **chunk-size invariance**: the
//! window sequence is a pure function of the frame sequence, so streamed
//! classification is bitwise-equal to one-shot offline segmentation of
//! the same signal through the same serve path (gated by `stream_bench
//! --strict` in CI).
//!
//! ```
//! use rbnn_data::stream::{EcgStream, EcgStreamConfig};
//! use rbnn_rram::EngineConfig;
//! use rbnn_serve::{demo_network, ModelRegistry, ServeConfig, ServeTask, Server};
//! use rbnn_stream::{
//!     Normalization, RouterConfig, SegmenterConfig, Session, SessionConfig, StreamRouter,
//!     TailPolicy, WindowLayout,
//! };
//!
//! // A deployed ECG model consuming 12-lead windows of 30 frames.
//! let net = demo_network(&[12 * 30, 16, 2], 7);
//! let mut registry = ModelRegistry::new();
//! registry.insert(ServeTask::Ecg, net, EngineConfig::test_chip(1));
//! let server = Server::start(&registry, &ServeConfig::default());
//!
//! // One monitored patient: synthetic 360 Hz ECG, 30-frame windows.
//! let session = Session::new(SessionConfig {
//!     segmenter: SegmenterConfig { channels: 12, window: 30, stride: 30, tail: TailPolicy::Drop },
//!     layout: WindowLayout::ChannelMajor,
//!     normalization: Normalization::PerWindow,
//! });
//! let source = EcgStream::new(EcgStreamConfig { samples_per_segment: 90, seed: 1, ..Default::default() });
//!
//! let client = server.handle().client(ServeTask::Ecg).unwrap();
//! let mut router = StreamRouter::new(client, RouterConfig {
//!     windows_per_patient: 4,
//!     ..Default::default()
//! });
//! router.add_patient(0, Box::new(source), session);
//! let reports = router.run().unwrap();
//! assert!(reports[0].windows >= 4);
//! assert_eq!(reports[0].verdicts[0].window, 0);
//! server.shutdown();
//! ```
//!
//! `stream_bench` (in `rbnn-bench`) drives ≥ 64 concurrent synthetic
//! patients through this pipeline, gates sustained real-time throughput
//! and p99 window-to-verdict latency, and pins streamed logits
//! bitwise-equal to offline batch classification; see
//! `examples/continuous_monitoring.rs` for a guided tour.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod router;
mod segment;
mod session;

pub use router::{PatientReport, RouterConfig, StreamRouter, Verdict, WindowOutcome};
pub use segment::{Segmenter, SegmenterConfig, TailPolicy, WindowMeta};
pub use session::{
    AlarmConfig, AlarmEvent, AlarmState, Normalization, Session, SessionConfig, Window,
    WindowLayout,
};
