//! Multi-tenant fan-in: N patient sessions → one serve queue → per-patient
//! verdict streams.
//!
//! A [`StreamRouter`] owns the full per-patient chain — [`SignalSource`] →
//! [`Session`] → serve queue → [`Verdict`] → [`AlarmState`] — for many
//! patients at once, multiplexed from one driver thread. Windows are
//! submitted through the zero-copy shared-window API
//! ([`rbnn_serve::TaskClient::enqueue_shared`]): all windows completed by
//! one chunk share a single `Arc`'d request, one queue slot and one
//! dispatch, so the per-request fixed cost amortizes and the worker pool
//! sees deep, batchable traffic even though each patient alone produces
//! only a few windows per second. Replies are drained non-blockingly
//! (`PendingWindow::poll`) so a slow patient never stalls the others;
//! bounded per-patient in-flight windows keep one patient from flooding
//! the shared queue.
//!
//! Accounting is per session: every verdict is timestamped in signal time
//! and carries its wall-clock window-to-verdict latency, and each
//! [`PatientReport`] closes with windows/s, the real-time factor
//! (achieved frame rate ÷ the source's sampling rate) and µJ/window from
//! the RRAM energy model (`rbnn_rram::energy`).
//!
//! The router is *loss-free under faults*: every submitted window reaches
//! a terminal [`Verdict`] — either [`WindowOutcome::Classified`] or a
//! typed [`WindowOutcome::Failed`]. Retryable failures (shed admission,
//! engine faults, transient errors) are retried with jittered exponential
//! backoff up to the [`RouterConfig::retry`] budget before a failure
//! verdict is issued. Windows submitted while a patient's alarm is active
//! ride the urgent queue lane ([`rbnn_serve::Priority::Urgent`]) so an
//! overloaded pool sheds routine traffic first, and every submission
//! carries the optional [`RouterConfig::deadline`] freshness budget.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rbnn_data::stream::SignalSource;
use rbnn_serve::{
    PendingWindow, Prediction, Priority, RetryPolicy, ServeError, SubmitOptions, TaskClient,
};
use rbnn_telemetry::{Counter, Gauge};

use crate::segment::WindowMeta;
use crate::session::{AlarmConfig, AlarmEvent, AlarmState, Session};

/// Router configuration (per run, shared by all patients).
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Frames pulled from each source per poll. Smaller chunks lower
    /// window-to-verdict latency; larger ones amortize per-chunk cost.
    pub chunk_frames: usize,
    /// Most uncollected window requests per patient; bounds how much of
    /// the shared serve queue one patient can occupy.
    pub max_in_flight: usize,
    /// Stop pulling a patient's source once this many windows have been
    /// submitted (the run length; sources are typically unbounded).
    pub windows_per_patient: u64,
    /// Alarm debounce policy applied to every patient's verdict stream.
    pub alarm: AlarmConfig,
    /// Per-window inference energy in nanojoules, from
    /// [`rbnn_rram::energy::estimate_network`] on the deployed model
    /// (`.rram_nj`); reported per patient as µJ/window. Zero leaves the
    /// energy columns unreported.
    pub energy_nj_per_window: f64,
    /// Freshness budget attached to every submitted window: a window the
    /// pool cannot dispatch inside this budget is dropped server-side
    /// with [`ServeError::DeadlineExceeded`] instead of wasting engine
    /// time on a stale answer. `None` disables deadlines.
    pub deadline: Option<Duration>,
    /// Backoff/budget policy for retrying retryable failures (shed
    /// admission, engine faults, transient errors) before a window is
    /// given a [`WindowOutcome::Failed`] verdict.
    pub retry: RetryPolicy,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            chunk_frames: 256,
            max_in_flight: 4,
            windows_per_patient: 64,
            alarm: AlarmConfig::default(),
            energy_nj_per_window: 0.0,
            deadline: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// Terminal outcome of one submitted window: the classification, or the
/// typed error left after the retry budget ran out. Every submitted
/// window gets exactly one — the router never silently drops work.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowOutcome {
    /// The pool answered.
    Classified {
        /// Predicted class.
        class: usize,
        /// Raw logits (bitwise-equal to offline batch classification of
        /// the same window on the software backend).
        logits: Vec<f32>,
    },
    /// The window could not be classified inside the retry budget; the
    /// error is the *last* failure observed.
    Failed(ServeError),
}

/// One terminal window verdict in one patient's stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Per-patient window index (0-based; gapless and in stream order on
    /// fault-free runs — a retried window may land out of order).
    pub window: u64,
    /// Absolute frame index of the window's first frame.
    pub start_frame: u64,
    /// Signal-time timestamp of the window's *end* in seconds — when a
    /// real-time monitor could first have produced this verdict.
    pub signal_time_s: f64,
    /// Classification or typed failure.
    pub outcome: WindowOutcome,
    /// Wall-clock window-to-verdict latency, measured from the *first*
    /// submission attempt (retries and their backoffs are included).
    pub latency: Duration,
    /// Submission attempts beyond the first that this window consumed.
    pub retries: u32,
    /// Alarm state after this verdict was absorbed.
    pub alarm_active: bool,
    /// Alarm transition this verdict caused, if any.
    pub alarm_event: Option<AlarmEvent>,
}

impl Verdict {
    /// Predicted class, when classified.
    pub fn class(&self) -> Option<usize> {
        match &self.outcome {
            WindowOutcome::Classified { class, .. } => Some(*class),
            WindowOutcome::Failed(_) => None,
        }
    }

    /// Raw logits, when classified.
    pub fn logits(&self) -> Option<&[f32]> {
        match &self.outcome {
            WindowOutcome::Classified { logits, .. } => Some(logits),
            WindowOutcome::Failed(_) => None,
        }
    }

    /// Whether the pool answered this window.
    pub fn is_classified(&self) -> bool {
        matches!(self.outcome, WindowOutcome::Classified { .. })
    }

    /// The terminal error, when the window failed.
    pub fn error(&self) -> Option<&ServeError> {
        match &self.outcome {
            WindowOutcome::Classified { .. } => None,
            WindowOutcome::Failed(e) => Some(e),
        }
    }
}

/// End-of-run summary of one patient's session.
#[derive(Debug, Clone)]
pub struct PatientReport {
    /// Caller-chosen patient id.
    pub id: usize,
    /// Every classified window, in stream order.
    pub verdicts: Vec<Verdict>,
    /// Frames consumed from the source.
    pub frames: u64,
    /// Windows classified.
    pub windows: u64,
    /// Alarm raise events over the run.
    pub alarms_raised: u64,
    /// Windows whose retry budget ran out ([`WindowOutcome::Failed`]
    /// verdicts). Zero on a healthy pool.
    pub failed_windows: u64,
    /// Re-submission attempts consumed across all windows.
    pub retries: u64,
    /// Wall-clock duration of the whole run (shared by all patients —
    /// they ran concurrently).
    pub elapsed: Duration,
    /// Classified windows per wall-clock second.
    pub windows_per_s: f64,
    /// Achieved frame rate ÷ the source's sampling rate: ≥ 1 means this
    /// patient's stream was sustained at (better than) real time.
    pub realtime_factor: f64,
    /// Model-estimated inference energy per window, in microjoules
    /// (0 when the router was not given an energy figure).
    pub energy_uj_per_window: f64,
    /// Median window-to-verdict latency.
    pub p50_latency: Duration,
    /// 99th-percentile window-to-verdict latency.
    pub p99_latency: Duration,
}

/// A window request in flight: the ticket plus everything needed to turn
/// its reply into verdicts — or to resubmit it after a retryable failure
/// (the shared rows are retained; a retry is one more `Arc` bump).
struct InFlight {
    pending: PendingWindow,
    rows: Arc<Vec<Vec<f32>>>,
    metas: Vec<WindowMeta>,
    /// First submission attempt (latency baseline across retries).
    first_submitted: Instant,
    /// Zero-based attempt ordinal of this submission.
    attempt: u32,
}

/// A failed request waiting out its backoff before resubmission.
struct RetryEntry {
    rows: Arc<Vec<Vec<f32>>>,
    metas: Vec<WindowMeta>,
    first_submitted: Instant,
    /// Attempt ordinal the resubmission will carry.
    attempt: u32,
    /// Earliest instant the resubmission may happen.
    not_before: Instant,
}

/// Live per-patient telemetry handles (labeled `patient="<id>"` on the
/// global registry). Registered only while telemetry is enabled; a
/// disabled run carries `None` and pays nothing.
struct PatientTelemetry {
    /// Achieved frame rate ÷ sample rate, updated as replies land — the
    /// live counterpart of [`PatientReport::realtime_factor`], so a fleet
    /// supervisor can see a patient falling behind *during* the run
    /// instead of at shutdown.
    realtime: Arc<Gauge>,
    /// 1.0 while this patient's alarm is active, else 0.0.
    alarm_active: Arc<Gauge>,
    /// Windows classified so far.
    windows: Arc<Counter>,
    /// Alarm raise events so far.
    alarms: Arc<Counter>,
    /// Windows whose retry budget ran out.
    failed: Arc<Counter>,
    /// Re-submission attempts so far.
    retries: Arc<Counter>,
}

impl PatientTelemetry {
    fn register(id: usize) -> Self {
        let reg = rbnn_telemetry::global();
        let label = format!("patient=\"{id}\"");
        Self {
            realtime: reg.gauge(
                "rbnn_stream_realtime_factor",
                &label,
                "Achieved frame rate over the source sample rate (>=1 is real time).",
            ),
            alarm_active: reg.gauge(
                "rbnn_stream_alarm_active",
                &label,
                "1 while the patient's debounced alarm is raised.",
            ),
            windows: reg.counter(
                "rbnn_stream_windows_total",
                &label,
                "Windows classified for this patient.",
            ),
            alarms: reg.counter(
                "rbnn_stream_alarms_total",
                &label,
                "Alarm raise events for this patient.",
            ),
            failed: reg.counter(
                "rbnn_stream_failed_windows_total",
                &label,
                "Windows that exhausted the retry budget and got a failure verdict.",
            ),
            retries: reg.counter(
                "rbnn_stream_retries_total",
                &label,
                "Window re-submission attempts after retryable failures.",
            ),
        }
    }
}

/// One monitored patient inside the router.
struct PatientSlot {
    id: usize,
    source: Box<dyn SignalSource + Send>,
    session: Session,
    alarm: AlarmState,
    in_flight: VecDeque<InFlight>,
    retry_queue: VecDeque<RetryEntry>,
    verdicts: Vec<Verdict>,
    latencies: Vec<Duration>,
    chunk: Vec<f32>,
    frames: u64,
    submitted_windows: u64,
    alarms_raised: u64,
    failed_windows: u64,
    retries: u64,
    /// A finite source returned 0 frames (synthetic ones never do).
    exhausted: bool,
    telemetry: Option<PatientTelemetry>,
}

/// Fans N concurrent patient sessions into one serve queue and collects
/// their verdict streams (see the module docs).
pub struct StreamRouter {
    client: TaskClient,
    cfg: RouterConfig,
    patients: Vec<PatientSlot>,
}

impl std::fmt::Debug for StreamRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamRouter")
            .field("task", &self.client.task())
            .field("patients", &self.patients.len())
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl StreamRouter {
    /// A router submitting through `client` (bind it once with
    /// [`rbnn_serve::ServeHandle::client`]).
    ///
    /// # Panics
    ///
    /// Panics on a zero `chunk_frames`, `max_in_flight` or
    /// `windows_per_patient`.
    pub fn new(client: TaskClient, cfg: RouterConfig) -> Self {
        assert!(cfg.chunk_frames > 0, "chunk_frames must be positive");
        assert!(cfg.max_in_flight > 0, "max_in_flight must be positive");
        assert!(
            cfg.windows_per_patient > 0,
            "windows_per_patient must be positive"
        );
        Self {
            client,
            cfg,
            patients: Vec::new(),
        }
    }

    /// Registers one patient: a signal source plus its session state.
    ///
    /// # Panics
    ///
    /// Panics if the source's channel count does not match the session's,
    /// or the session's window feature width does not match the model the
    /// client is bound to.
    pub fn add_patient(
        &mut self,
        id: usize,
        source: Box<dyn SignalSource + Send>,
        session: Session,
    ) {
        assert_eq!(
            source.channels(),
            session.channels(),
            "source/session channel mismatch"
        );
        assert_eq!(
            session.features_per_window(),
            self.client.in_features(),
            "session window features must match the served model width"
        );
        self.patients.push(PatientSlot {
            id,
            source,
            session,
            alarm: AlarmState::new(self.cfg.alarm.clone()),
            in_flight: VecDeque::new(),
            retry_queue: VecDeque::new(),
            verdicts: Vec::new(),
            latencies: Vec::new(),
            chunk: Vec::new(),
            frames: 0,
            submitted_windows: 0,
            alarms_raised: 0,
            failed_windows: 0,
            retries: 0,
            exhausted: false,
            telemetry: rbnn_telemetry::enabled().then(|| PatientTelemetry::register(id)),
        })
    }

    /// Registered patients.
    pub fn patient_count(&self) -> usize {
        self.patients.len()
    }

    /// Runs every stream to its window target and returns one report per
    /// patient (same order as registration). Patients are multiplexed:
    /// each loop iteration drains whichever replies have landed, resubmits
    /// retries whose backoff has elapsed, then tops up each patient that
    /// has in-flight budget left. Every submitted window terminates in a
    /// [`Verdict`] — classified, or typed-failed after the retry budget.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ShuttingDown`] if the server goes away
    /// mid-run (the one failure retrying cannot outlast). All other
    /// failures become [`WindowOutcome::Failed`] verdicts instead of
    /// aborting the run.
    pub fn run(&mut self) -> Result<Vec<PatientReport>, ServeError> {
        assert!(!self.patients.is_empty(), "no patients registered");
        let t0 = Instant::now();
        loop {
            let mut progress = false;
            let mut all_done = true;
            for p in &mut self.patients {
                progress |= drain_ready(p, &self.cfg, t0)?;
                progress |= submit_due_retries(p, &self.client, &self.cfg)?;
                let want_more = !p.exhausted && p.submitted_windows < self.cfg.windows_per_patient;
                if want_more && p.in_flight.len() < self.cfg.max_in_flight {
                    progress |= pull_and_submit(p, &self.client, &self.cfg)?;
                }
                let still_wants =
                    !p.exhausted && p.submitted_windows < self.cfg.windows_per_patient;
                if still_wants || !p.in_flight.is_empty() || !p.retry_queue.is_empty() {
                    all_done = false;
                }
            }
            if all_done {
                break;
            }
            if !progress {
                idle_wait(&mut self.patients, &self.cfg, t0)?;
            }
        }
        let elapsed = t0.elapsed();
        Ok(self
            .patients
            .iter_mut()
            .map(|p| finish_report(p, elapsed, &self.cfg))
            .collect())
    }
}

/// Nothing landed and nothing was submittable this pass: block on the
/// oldest outstanding reply, or — when the only remaining work is retry
/// entries waiting out their backoff — sleep until the earliest one is
/// due, instead of spinning.
fn idle_wait(
    patients: &mut [PatientSlot],
    cfg: &RouterConfig,
    run_started: Instant,
) -> Result<(), ServeError> {
    if let Some(p) = patients.iter_mut().find(|p| !p.in_flight.is_empty()) {
        if let Some(inflight) = p.in_flight.pop_front() {
            let result = inflight.pending.wait();
            return settle_reply(
                p,
                inflight.rows,
                inflight.metas,
                inflight.first_submitted,
                inflight.attempt,
                result,
                cfg,
                run_started,
            );
        }
    }
    let earliest = patients
        .iter()
        .flat_map(|p| p.retry_queue.iter().map(|r| r.not_before))
        .min();
    if let Some(due) = earliest {
        let now = Instant::now();
        if due > now {
            std::thread::sleep((due - now).min(Duration::from_millis(5)));
        }
    }
    Ok(())
}

/// Polls a patient's in-flight queue front-to-back, settling every reply
/// that has already landed (classified, requeued for retry, or typed-
/// failed). Returns whether anything was settled.
fn drain_ready(
    p: &mut PatientSlot,
    cfg: &RouterConfig,
    run_started: Instant,
) -> Result<bool, ServeError> {
    let mut any = false;
    loop {
        let Some(front) = p.in_flight.front() else {
            break;
        };
        let Some(result) = front.pending.poll() else {
            break;
        };
        let Some(inflight) = p.in_flight.pop_front() else {
            break;
        };
        settle_reply(
            p,
            inflight.rows,
            inflight.metas,
            inflight.first_submitted,
            inflight.attempt,
            result,
            cfg,
            run_started,
        )?;
        any = true;
    }
    Ok(any)
}

/// Routes one landed reply to its terminal state: predictions become
/// classified verdicts; a retryable failure with budget left is scheduled
/// for resubmission after backoff; anything else becomes failure
/// verdicts. [`ServeError::ShuttingDown`] aborts the run — the server is
/// gone, so no retry can ever land.
#[allow(clippy::too_many_arguments)]
fn settle_reply(
    p: &mut PatientSlot,
    rows: Arc<Vec<Vec<f32>>>,
    metas: Vec<WindowMeta>,
    first_submitted: Instant,
    attempt: u32,
    result: Result<Vec<Prediction>, ServeError>,
    cfg: &RouterConfig,
    run_started: Instant,
) -> Result<(), ServeError> {
    match result {
        Ok(predictions) => {
            absorb_reply(p, metas, first_submitted, attempt, predictions, run_started);
            Ok(())
        }
        Err(ServeError::ShuttingDown) => Err(ServeError::ShuttingDown),
        Err(e) if e.is_retryable() && cfg.retry.allows_retry(attempt) => {
            schedule_retry(p, rows, metas, first_submitted, attempt, cfg);
            Ok(())
        }
        Err(e) => {
            absorb_failure(p, metas, first_submitted, attempt, e);
            Ok(())
        }
    }
}

/// Queues a failed request for resubmission once its jittered backoff has
/// elapsed (salted by patient id so a fleet hitting one fault does not
/// retry in lockstep).
fn schedule_retry(
    p: &mut PatientSlot,
    rows: Arc<Vec<Vec<f32>>>,
    metas: Vec<WindowMeta>,
    first_submitted: Instant,
    attempt: u32,
    cfg: &RouterConfig,
) {
    p.retries += 1;
    if let Some(t) = &p.telemetry {
        t.retries.inc();
    }
    let not_before = Instant::now() + cfg.retry.backoff(attempt, p.id as u64);
    p.retry_queue.push_back(RetryEntry {
        rows,
        metas,
        first_submitted,
        attempt: attempt + 1,
        not_before,
    });
}

/// Resubmits every retry entry whose backoff has elapsed, in-flight
/// budget permitting. Returns whether anything was resubmitted.
fn submit_due_retries(
    p: &mut PatientSlot,
    client: &TaskClient,
    cfg: &RouterConfig,
) -> Result<bool, ServeError> {
    let mut any = false;
    let now = Instant::now();
    while p.in_flight.len() < cfg.max_in_flight
        && p.retry_queue.front().is_some_and(|r| r.not_before <= now)
    {
        let Some(entry) = p.retry_queue.pop_front() else {
            break;
        };
        submit_request(
            p,
            client,
            cfg,
            entry.rows,
            entry.metas,
            entry.first_submitted,
            entry.attempt,
        )?;
        any = true;
    }
    Ok(any)
}

/// Submits one shared-window request on the lane the patient's alarm
/// state selects; a synchronous shed/failure goes straight back through
/// the retry/failure path.
fn submit_request(
    p: &mut PatientSlot,
    client: &TaskClient,
    cfg: &RouterConfig,
    rows: Arc<Vec<Vec<f32>>>,
    metas: Vec<WindowMeta>,
    first_submitted: Instant,
    attempt: u32,
) -> Result<(), ServeError> {
    // Alarm-adjacent windows ride the urgent lane: while this patient's
    // alarm is raised, its follow-up windows preempt routine traffic on
    // an overloaded queue instead of being shed alongside it.
    let opts = SubmitOptions {
        priority: if p.alarm.active() {
            Priority::Urgent
        } else {
            Priority::Routine
        },
        deadline: cfg.deadline,
    };
    match client.enqueue_shared_with(Arc::clone(&rows), &opts) {
        Ok(pending) => {
            p.in_flight.push_back(InFlight {
                pending,
                rows,
                metas,
                first_submitted,
                attempt,
            });
            Ok(())
        }
        Err(ServeError::ShuttingDown) => Err(ServeError::ShuttingDown),
        Err(e) if e.is_retryable() && cfg.retry.allows_retry(attempt) => {
            schedule_retry(p, rows, metas, first_submitted, attempt, cfg);
            Ok(())
        }
        Err(e) => {
            absorb_failure(p, metas, first_submitted, attempt, e);
            Ok(())
        }
    }
}

/// Pulls one chunk from the source, segments it, and submits any completed
/// windows as one shared zero-copy request. Returns whether any frames
/// were consumed or windows submitted.
fn pull_and_submit(
    p: &mut PatientSlot,
    client: &TaskClient,
    cfg: &RouterConfig,
) -> Result<bool, ServeError> {
    p.chunk.clear();
    let got = p.source.next_chunk(cfg.chunk_frames, &mut p.chunk);
    p.frames += got as u64;
    let windows = if got > 0 {
        p.session.push_chunk(&p.chunk[..got * p.session.channels()])
    } else {
        // Only an empty chunk signals end of stream (the `SignalSource`
        // contract delivers "up to" max_frames — a short read just means
        // the source's internal block ran out): flush the tail per
        // policy and stop pulling this patient.
        p.exhausted = true;
        p.session.finish()
    };
    if windows.is_empty() {
        return Ok(got > 0);
    }
    let mut metas = Vec::with_capacity(windows.len());
    let mut rows = Vec::with_capacity(windows.len());
    for w in windows {
        metas.push(w.meta);
        rows.push(w.features);
    }
    p.submitted_windows += metas.len() as u64;
    submit_request(p, client, cfg, Arc::new(rows), metas, Instant::now(), 0)?;
    Ok(true)
}

/// Turns one request's predictions into verdicts: latency stamp, alarm
/// update, signal-time timestamp.
fn absorb_reply(
    p: &mut PatientSlot,
    metas: Vec<WindowMeta>,
    first_submitted: Instant,
    attempt: u32,
    predictions: Vec<Prediction>,
    run_started: Instant,
) {
    debug_assert_eq!(metas.len(), predictions.len());
    let latency = first_submitted.elapsed();
    let window_frames = p.session.features_per_window() / p.session.channels();
    let rate = p.source.sample_rate() as f64;
    let absorbed = metas.len() as u64;
    for (meta, prediction) in metas.into_iter().zip(predictions) {
        let alarm_event = p.alarm.update(prediction.class);
        if alarm_event == Some(AlarmEvent::Raised) {
            p.alarms_raised += 1;
            if let Some(t) = &p.telemetry {
                t.alarms.inc();
            }
        }
        p.latencies.push(latency);
        p.verdicts.push(Verdict {
            window: meta.index,
            start_frame: meta.start_frame,
            signal_time_s: (meta.start_frame + window_frames as u64) as f64 / rate,
            outcome: WindowOutcome::Classified {
                class: prediction.class,
                logits: prediction.logits,
            },
            latency,
            retries: attempt,
            alarm_active: p.alarm.active(),
            alarm_event,
        });
    }
    // Live gauges: a supervisor scraping mid-run sees each patient's
    // current realtime factor and alarm state instead of waiting for the
    // shutdown-only report.
    if let Some(t) = &p.telemetry {
        t.windows.add(absorbed);
        t.alarm_active.set(if p.alarm.active() { 1.0 } else { 0.0 });
        let secs = run_started.elapsed().as_secs_f64().max(1e-9);
        t.realtime.set((p.frames as f64 / secs) / rate);
    }
}

/// Issues the terminal failure verdicts for a request whose retry budget
/// ran out (or whose error was never retryable). The alarm state machine
/// is *not* advanced — a failed window carries no class, and inventing
/// one would corrupt the debounce counters the alarm rests on.
fn absorb_failure(
    p: &mut PatientSlot,
    metas: Vec<WindowMeta>,
    first_submitted: Instant,
    attempt: u32,
    error: ServeError,
) {
    let latency = first_submitted.elapsed();
    let window_frames = p.session.features_per_window() / p.session.channels();
    let rate = p.source.sample_rate() as f64;
    let failed = metas.len() as u64;
    p.failed_windows += failed;
    for meta in metas {
        p.latencies.push(latency);
        p.verdicts.push(Verdict {
            window: meta.index,
            start_frame: meta.start_frame,
            signal_time_s: (meta.start_frame + window_frames as u64) as f64 / rate,
            outcome: WindowOutcome::Failed(error.clone()),
            latency,
            retries: attempt,
            alarm_active: p.alarm.active(),
            alarm_event: None,
        });
    }
    if let Some(t) = &p.telemetry {
        t.failed.add(failed);
    }
}

/// Closes one patient's books into a report.
fn finish_report(p: &mut PatientSlot, elapsed: Duration, cfg: &RouterConfig) -> PatientReport {
    debug_assert!(p.in_flight.is_empty());
    debug_assert!(p.retry_queue.is_empty());
    let windows = p.verdicts.len() as u64;
    let secs = elapsed.as_secs_f64().max(1e-9);
    p.latencies.sort_unstable();
    let quantile = |q: f64| -> Duration {
        if p.latencies.is_empty() {
            Duration::ZERO
        } else {
            let i = ((p.latencies.len() as f64 * q).ceil() as usize).max(1) - 1;
            p.latencies[i.min(p.latencies.len() - 1)]
        }
    };
    PatientReport {
        id: p.id,
        verdicts: std::mem::take(&mut p.verdicts),
        frames: p.frames,
        windows,
        alarms_raised: p.alarms_raised,
        failed_windows: p.failed_windows,
        retries: p.retries,
        elapsed,
        windows_per_s: windows as f64 / secs,
        realtime_factor: (p.frames as f64 / secs) / p.source.sample_rate() as f64,
        energy_uj_per_window: cfg.energy_nj_per_window / 1e3,
        p50_latency: quantile(0.50),
        p99_latency: quantile(0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{SegmenterConfig, TailPolicy};
    use crate::session::{Normalization, SessionConfig, WindowLayout};
    use rbnn_data::stream::{EcgStream, EcgStreamConfig};
    use rbnn_rram::EngineConfig;
    use rbnn_serve::{demo_network, Backend, ModelRegistry, ServeConfig, ServeTask, Server};

    const WINDOW: usize = 25;
    const FEATURES: usize = 12 * WINDOW;

    fn ecg_source(seed: u64) -> EcgStream {
        EcgStream::new(EcgStreamConfig {
            samples_per_segment: 90,
            seed,
            ..EcgStreamConfig::default()
        })
    }

    fn session(stride: usize) -> Session {
        Session::new(SessionConfig {
            segmenter: SegmenterConfig {
                channels: 12,
                window: WINDOW,
                stride,
                tail: TailPolicy::Drop,
            },
            layout: WindowLayout::ChannelMajor,
            normalization: Normalization::PerWindow,
        })
    }

    fn server() -> (Server, rbnn_binary::BinaryNetwork) {
        let net = demo_network(&[FEATURES, 16, 2], 0x57AE);
        let mut registry = ModelRegistry::new();
        registry.insert(ServeTask::Ecg, net.clone(), EngineConfig::test_chip(1));
        let config = ServeConfig {
            workers: 2,
            backend: Backend::Software,
            ..Default::default()
        };
        (Server::start(&registry, &config), net)
    }

    #[test]
    fn verdicts_match_direct_network_and_offline_segmentation() {
        let (server, net) = server();
        let client = server.handle().client(ServeTask::Ecg).expect("bound");
        let cfg = RouterConfig {
            chunk_frames: 17, // awkward: windows straddle many chunks
            windows_per_patient: 8,
            ..RouterConfig::default()
        };
        let mut router = StreamRouter::new(client, cfg);
        for id in 0..3 {
            router.add_patient(id, Box::new(ecg_source(40 + id as u64)), session(WINDOW));
        }
        let reports = router.run().expect("run");
        assert_eq!(reports.len(), 3);
        for report in &reports {
            assert!(report.windows >= 8, "target reached");
            // Offline oracle: same seed, all frames in one chunk, one
            // Session pass — logits must agree bitwise through the serve
            // path.
            let patient = report.id;
            let mut offline_src = ecg_source(40 + patient as u64);
            let frames =
                rbnn_data::stream::collect_frames(&mut offline_src, report.frames as usize);
            let mut offline_session = session(WINDOW);
            let offline = offline_session.push_chunk(&frames);
            assert!(offline.len() >= report.verdicts.len());
            for (v, w) in report.verdicts.iter().zip(&offline) {
                assert_eq!(v.window, w.meta.index);
                assert_eq!(v.start_frame, w.meta.start_frame);
                let expect = net.logits(&w.features);
                let logits = v.logits().expect("fault-free run classifies everything");
                let got_bits: Vec<u32> = logits.iter().map(|x| x.to_bits()).collect();
                let expect_bits: Vec<u32> = expect.iter().map(|x| x.to_bits()).collect();
                assert_eq!(
                    got_bits, expect_bits,
                    "patient {patient} window {}",
                    v.window
                );
                assert_eq!(v.class(), Some(net.classify(&w.features)));
                assert_eq!(v.retries, 0, "fault-free run never retries");
            }
            assert_eq!(report.failed_windows, 0);
            assert_eq!(report.retries, 0);
            // Verdict stream is ordered and gapless.
            for (i, v) in report.verdicts.iter().enumerate() {
                assert_eq!(v.window, i as u64);
            }
            assert!(report.windows_per_s > 0.0);
            assert!(report.realtime_factor > 0.0);
        }
        server.shutdown();
    }

    #[test]
    fn alarm_fields_replay_the_state_machine() {
        let (server, _net) = server();
        let client = server.handle().client(ServeTask::Ecg).expect("bound");
        let cfg = RouterConfig {
            chunk_frames: 100,
            windows_per_patient: 12,
            alarm: AlarmConfig {
                k: 2,
                m: 4,
                positive_class: 1,
            },
            ..RouterConfig::default()
        };
        let mut router = StreamRouter::new(client, cfg);
        router.add_patient(7, Box::new(ecg_source(99)), session(WINDOW));
        let report = router.run().expect("run").remove(0);
        let mut replay = AlarmState::new(AlarmConfig {
            k: 2,
            m: 4,
            positive_class: 1,
        });
        let mut raises = 0u64;
        for v in &report.verdicts {
            let event = replay.update(v.class().expect("fault-free run"));
            if event == Some(AlarmEvent::Raised) {
                raises += 1;
            }
            assert_eq!(v.alarm_event, event);
            assert_eq!(v.alarm_active, replay.active());
        }
        assert_eq!(report.alarms_raised, raises);
        server.shutdown();
    }

    #[test]
    fn live_gauges_surface_on_the_global_registry() {
        let (server, _net) = server();
        let client = server.handle().client(ServeTask::Ecg).expect("bound");
        let cfg = RouterConfig {
            chunk_frames: 100,
            windows_per_patient: 6,
            ..RouterConfig::default()
        };
        let mut router = StreamRouter::new(client, cfg);
        // A patient id no other test uses, so the series are this test's.
        let id = 424_242;
        router.add_patient(id, Box::new(ecg_source(7)), session(WINDOW));
        let report = router.run().expect("run").remove(0);
        let reg = rbnn_telemetry::global();
        let label = format!("patient=\"{id}\"");
        let windows = reg.counter("rbnn_stream_windows_total", &label, "");
        assert_eq!(windows.get(), report.windows);
        let realtime = reg.gauge("rbnn_stream_realtime_factor", &label, "");
        assert!(realtime.get() > 0.0, "live realtime factor must be set");
        let alarm = reg.gauge("rbnn_stream_alarm_active", &label, "");
        let last_active = report.verdicts.last().expect("verdicts").alarm_active;
        assert_eq!(alarm.get() == 1.0, last_active);
        server.shutdown();
    }

    #[test]
    fn rejects_mismatched_patient() {
        let (server, _net) = server();
        let client = server.handle().client(ServeTask::Ecg).expect("bound");
        let mut router = StreamRouter::new(client, RouterConfig::default());
        let bad = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // One frame too wide: 12·(WINDOW+1) features ≠ the model's
            // 12·WINDOW inputs.
            let wide = Session::new(SessionConfig {
                segmenter: SegmenterConfig {
                    channels: 12,
                    window: WINDOW + 1,
                    stride: WINDOW + 1,
                    tail: TailPolicy::Drop,
                },
                layout: WindowLayout::ChannelMajor,
                normalization: Normalization::PerWindow,
            });
            router.add_patient(0, Box::new(ecg_source(1)), wide);
        }));
        assert!(
            bad.is_err(),
            "wrong window width must be rejected at registration"
        );
        server.shutdown();
    }
}
