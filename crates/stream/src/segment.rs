//! Sliding-window segmentation of an unbounded frame stream.
//!
//! A [`Segmenter`] receives channel-interleaved frames in chunks of
//! arbitrary size and emits fixed-size windows at a fixed stride. The
//! invariant everything downstream relies on: **the emitted window
//! sequence is a pure function of the frame sequence** — independent of
//! how the caller chunks it. A window straddling two (or ten) chunk
//! boundaries comes out bitwise identical to the same window cut from the
//! fully buffered signal, which is what lets the tests pin streamed
//! serving against one-shot offline segmentation.
//!
//! Strides larger than the window are supported (duty-cycled monitoring:
//! classify one window, skip the gap); the skip debt is carried across
//! chunk boundaries like everything else.

/// What to do with a final partial window when a *finite* stream ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailPolicy {
    /// Discard the unfilled tail (default: a partial window never reaches
    /// the classifier, matching the offline dataset cut).
    Drop,
    /// Zero-pad the tail to a full window and emit it (monitors that must
    /// classify the final seconds of a detached recording).
    Pad,
}

/// Segmentation geometry.
#[derive(Debug, Clone)]
pub struct SegmenterConfig {
    /// Channels per frame.
    pub channels: usize,
    /// Window length in frames.
    pub window: usize,
    /// Hop between consecutive window starts, in frames. `stride ==
    /// window` tiles the signal exactly; `stride < window` overlaps;
    /// `stride > window` leaves gaps.
    pub stride: usize,
    /// Tail handling at end of stream (see [`Segmenter::flush`]).
    pub tail: TailPolicy,
}

/// Identity of one emitted window within its stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowMeta {
    /// 0-based emission index.
    pub index: u64,
    /// Absolute frame index of the window's first frame.
    pub start_frame: u64,
}

/// Streaming sliding-window cutter (see the module docs).
#[derive(Debug)]
pub struct Segmenter {
    cfg: SegmenterConfig,
    /// Channel-interleaved frames not yet consumed.
    buf: Vec<f32>,
    /// Absolute frame index of `buf[0]`.
    buf_start: u64,
    /// Frames still to discard before buffering resumes (stride > window).
    skip: usize,
    emitted: u64,
    flushed: bool,
}

impl Segmenter {
    /// A segmenter with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `channels`, `window` or `stride` is zero.
    pub fn new(cfg: SegmenterConfig) -> Self {
        assert!(cfg.channels > 0, "channels must be positive");
        assert!(cfg.window > 0, "window must be positive");
        assert!(cfg.stride > 0, "stride must be positive");
        Self {
            cfg,
            buf: Vec::new(),
            buf_start: 0,
            skip: 0,
            emitted: 0,
            flushed: false,
        }
    }

    /// The geometry in effect.
    pub fn config(&self) -> &SegmenterConfig {
        &self.cfg
    }

    /// Windows emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Frames currently buffered (waiting for a full window).
    pub fn buffered_frames(&self) -> usize {
        self.buf.len() / self.cfg.channels
    }

    /// Feeds `frames` (channel-interleaved; length must be a multiple of
    /// `channels`) and invokes `emit` once per completed window with the
    /// window's interleaved `window × channels` samples.
    ///
    /// # Panics
    ///
    /// Panics if the slice length is not a whole number of frames, or if
    /// the segmenter was already [`flush`](Self::flush)ed.
    pub fn push(&mut self, frames: &[f32], emit: &mut impl FnMut(WindowMeta, &[f32])) {
        assert!(!self.flushed, "push after flush");
        let c = self.cfg.channels;
        assert_eq!(frames.len() % c, 0, "partial frame in chunk");
        let mut incoming = frames;
        // Pay off skip debt (stride > window gaps) before buffering.
        if self.skip > 0 {
            let n_frames = incoming.len() / c;
            let skipped = self.skip.min(n_frames);
            incoming = &incoming[skipped * c..];
            self.skip -= skipped;
            self.buf_start += skipped as u64;
            if incoming.is_empty() {
                return;
            }
        }
        self.buf.extend_from_slice(incoming);
        let window_len = self.cfg.window * c;
        while self.buf.len() >= window_len {
            emit(
                WindowMeta {
                    index: self.emitted,
                    start_frame: self.buf_start,
                },
                &self.buf[..window_len],
            );
            self.emitted += 1;
            let buffered = self.buf.len() / c;
            let advance = self.cfg.stride.min(buffered);
            self.buf.drain(..advance * c);
            self.buf_start += advance as u64;
            self.skip = self.cfg.stride - advance;
        }
    }

    /// Ends the stream: applies the [`TailPolicy`] to any buffered partial
    /// window. With [`TailPolicy::Pad`] the tail is zero-padded to a full
    /// window and emitted; with [`TailPolicy::Drop`] it is discarded.
    /// Idempotent; [`push`](Self::push) panics afterwards.
    pub fn flush(&mut self, emit: &mut impl FnMut(WindowMeta, &[f32])) {
        if self.flushed {
            return;
        }
        self.flushed = true;
        if self.buf.is_empty() || self.cfg.tail == TailPolicy::Drop {
            self.buf.clear();
            return;
        }
        let window_len = self.cfg.window * self.cfg.channels;
        debug_assert!(self.buf.len() < window_len, "full window left unemitted");
        self.buf.resize(window_len, 0.0);
        emit(
            WindowMeta {
                index: self.emitted,
                start_frame: self.buf_start,
            },
            &self.buf,
        );
        self.emitted += 1;
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Frames whose single channel value equals the frame index — windows
    /// then read as index ranges, making slip-ups visible.
    fn ramp(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32).collect()
    }

    fn collect(
        cfg: SegmenterConfig,
        chunks: &[&[f32]],
        flush: bool,
    ) -> Vec<(WindowMeta, Vec<f32>)> {
        let mut seg = Segmenter::new(cfg);
        let mut out = Vec::new();
        let mut emit = |m: WindowMeta, w: &[f32]| out.push((m, w.to_vec()));
        for chunk in chunks {
            seg.push(chunk, &mut emit);
        }
        if flush {
            seg.flush(&mut emit);
        }
        out
    }

    fn cfg(window: usize, stride: usize, tail: TailPolicy) -> SegmenterConfig {
        SegmenterConfig {
            channels: 1,
            window,
            stride,
            tail,
        }
    }

    #[test]
    fn window_equals_stride_tiles_exactly() {
        let sig = ramp(10);
        let wins = collect(cfg(3, 3, TailPolicy::Drop), &[&sig], true);
        assert_eq!(wins.len(), 3);
        for (i, (m, w)) in wins.iter().enumerate() {
            assert_eq!(m.index, i as u64);
            assert_eq!(m.start_frame, 3 * i as u64);
            assert_eq!(w, &ramp(10)[3 * i..3 * i + 3]);
        }
    }

    #[test]
    fn overlapping_stride_repeats_frames() {
        let sig = ramp(7);
        let wins = collect(cfg(4, 2, TailPolicy::Drop), &[&sig], true);
        assert_eq!(wins.len(), 2);
        assert_eq!(wins[0].1, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(wins[1].1, vec![2.0, 3.0, 4.0, 5.0]);
        assert_eq!(wins[1].0.start_frame, 2);
    }

    #[test]
    fn stride_beyond_window_skips_gap_frames() {
        let sig = ramp(20);
        let wins = collect(cfg(3, 7, TailPolicy::Drop), &[&sig], true);
        // Starts at 0, 7, 14.
        assert_eq!(wins.len(), 3);
        assert_eq!(wins[0].1, vec![0.0, 1.0, 2.0]);
        assert_eq!(wins[1].1, vec![7.0, 8.0, 9.0]);
        assert_eq!(wins[2].1, vec![14.0, 15.0, 16.0]);
        assert_eq!(wins[2].0.start_frame, 14);
    }

    #[test]
    fn chunking_is_invariant_including_gap_debt() {
        let sig = ramp(53);
        for (window, stride) in [(5, 5), (8, 3), (3, 11), (4, 4)] {
            let whole = collect(cfg(window, stride, TailPolicy::Drop), &[&sig], true);
            // Single-frame chunks: every window and every gap straddles
            // chunk boundaries.
            let frames: Vec<&[f32]> = sig.chunks(1).collect();
            let dribble = collect(cfg(window, stride, TailPolicy::Drop), &frames, true);
            assert_eq!(whole, dribble, "w={window} s={stride}");
            // Awkward mixed chunks.
            let mixed: Vec<&[f32]> = vec![&sig[..13], &sig[13..13], &sig[13..30], &sig[30..]];
            let mixed = collect(cfg(window, stride, TailPolicy::Drop), &mixed, true);
            assert_eq!(whole, mixed, "w={window} s={stride}");
        }
    }

    #[test]
    fn tail_drop_vs_pad() {
        let sig = ramp(10);
        let dropped = collect(cfg(4, 4, TailPolicy::Drop), &[&sig], true);
        assert_eq!(dropped.len(), 2);
        let padded = collect(cfg(4, 4, TailPolicy::Pad), &[&sig], true);
        assert_eq!(padded.len(), 3);
        assert_eq!(padded[2].1, vec![8.0, 9.0, 0.0, 0.0]);
        assert_eq!(padded[2].0.start_frame, 8);
        // An exactly-tiled signal has no tail to pad.
        let exact = collect(cfg(5, 5, TailPolicy::Pad), &[&ramp(10)], true);
        assert_eq!(exact.len(), 2);
    }

    #[test]
    fn flush_is_idempotent_and_push_after_flush_panics() {
        let mut seg = Segmenter::new(cfg(4, 4, TailPolicy::Pad));
        let mut n = 0usize;
        seg.push(&ramp(6), &mut |_, _| n += 1);
        seg.flush(&mut |_, _| n += 1);
        seg.flush(&mut |_, _| n += 1);
        assert_eq!(n, 2); // one full window + one padded tail
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            seg.push(&ramp(1), &mut |_, _| {});
        }));
        assert!(r.is_err());
    }

    #[test]
    fn multichannel_windows_stay_interleaved() {
        // 2 channels: frame i carries [i, -i].
        let sig: Vec<f32> = (0..8).flat_map(|i| [i as f32, -(i as f32)]).collect();
        let wins = collect(
            SegmenterConfig {
                channels: 2,
                window: 3,
                stride: 2,
                tail: TailPolicy::Drop,
            },
            &[&sig],
            true,
        );
        assert_eq!(wins.len(), 3);
        assert_eq!(wins[1].1, vec![2.0, -2.0, 3.0, -3.0, 4.0, -4.0]);
    }

    #[test]
    #[should_panic(expected = "partial frame")]
    fn rejects_partial_frames() {
        let mut seg = Segmenter::new(SegmenterConfig {
            channels: 3,
            window: 2,
            stride: 2,
            tail: TailPolicy::Drop,
        });
        seg.push(&[1.0, 2.0], &mut |_, _| {});
    }
}
