//! Per-patient session state: segmentation + featurization + alarms.
//!
//! A [`Session`] turns one patient's raw chunked signal into the exact
//! feature vectors the deployed classifier was trained on: sliding-window
//! segmentation (via [`Segmenter`](crate::Segmenter)), per-window
//! normalization matching the training featurization, and layout
//! flattening ([`WindowLayout`]) into the classifier's input order.
//! The debounced [`AlarmState`] machine then turns the resulting verdict
//! stream into the clinically shaped output: an alarm that raises on K of
//! the last M positive windows and clears when the evidence fades, so a
//! single noisy window neither triggers nor silences it.

use std::collections::VecDeque;

use crate::segment::{Segmenter, SegmenterConfig, WindowMeta};

/// How each window is normalized before classification.
///
/// The training pipeline z-scores per channel with *dataset-level*
/// statistics ([`rbnn_data::Dataset::normalize_per_channel`] returns
/// them); a deployed session replays those frozen statistics with
/// [`Normalization::PerChannel`] so streamed windows match the training
/// featurization exactly. [`Normalization::PerWindow`] is the online
/// fallback when no training statistics are available (each window
/// z-scored against itself), and [`Normalization::None`] passes raw
/// samples through.
#[derive(Debug, Clone)]
pub enum Normalization {
    /// Raw samples.
    None,
    /// `(x − mean[c]) / std[c]` with frozen per-channel training
    /// statistics.
    PerChannel {
        /// Per-channel means (training-set statistics).
        mean: Vec<f32>,
        /// Per-channel standard deviations (training-set statistics).
        std: Vec<f32>,
    },
    /// Z-score each channel against this window's own statistics.
    PerWindow,
}

/// Flattening order of an emitted `[window × channels]` block into the
/// classifier's input vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowLayout {
    /// `[channels, window]` — channel-major, the ECG dataset layout
    /// (leads × time).
    ChannelMajor,
    /// `[window, channels]` — time-major, the EEG dataset layout
    /// (time × space image rows).
    TimeMajor,
}

/// Session configuration: geometry plus featurization.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Segmentation geometry.
    pub segmenter: SegmenterConfig,
    /// Flattening order.
    pub layout: WindowLayout,
    /// Per-window normalization.
    pub normalization: Normalization,
}

/// One classifier-ready window.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Which window of the stream this is.
    pub meta: WindowMeta,
    /// Flattened, normalized features (`window × channels` long).
    pub features: Vec<f32>,
}

/// [`Normalization`] with the frozen per-channel statistics resolved to
/// `(mean, 1/std)` once at session construction, so the per-window hot
/// path neither clones nor divides.
#[derive(Debug)]
enum ResolvedNorm {
    None,
    Frozen { mean: Vec<f32>, inv_std: Vec<f32> },
    PerWindow,
}

/// Per-patient segmentation + featurization state.
#[derive(Debug)]
pub struct Session {
    seg: Segmenter,
    layout: WindowLayout,
    norm: ResolvedNorm,
}

impl Session {
    /// A session with the given geometry and featurization.
    ///
    /// # Panics
    ///
    /// Panics on a zero geometry (see [`Segmenter::new`]) or when
    /// [`Normalization::PerChannel`] statistics do not match the channel
    /// count.
    pub fn new(cfg: SessionConfig) -> Self {
        let norm = match cfg.normalization {
            Normalization::None => ResolvedNorm::None,
            Normalization::PerChannel { mean, std } => {
                assert_eq!(mean.len(), cfg.segmenter.channels, "mean per channel");
                assert_eq!(std.len(), cfg.segmenter.channels, "std per channel");
                assert!(std.iter().all(|s| *s > 0.0), "stds must be positive");
                ResolvedNorm::Frozen {
                    mean,
                    inv_std: std.iter().map(|s| 1.0 / s).collect(),
                }
            }
            Normalization::PerWindow => ResolvedNorm::PerWindow,
        };
        Self {
            seg: Segmenter::new(cfg.segmenter),
            layout: cfg.layout,
            norm,
        }
    }

    /// Feature width of every emitted window (`window × channels`).
    pub fn features_per_window(&self) -> usize {
        self.seg.config().window * self.seg.config().channels
    }

    /// Channels per frame.
    pub fn channels(&self) -> usize {
        self.seg.config().channels
    }

    /// Windows emitted so far.
    pub fn windows_emitted(&self) -> u64 {
        self.seg.emitted()
    }

    /// Feeds one chunk of channel-interleaved frames; returns the
    /// classifier-ready windows it completed (possibly none while the
    /// buffer fills, several for a large chunk).
    pub fn push_chunk(&mut self, frames: &[f32]) -> Vec<Window> {
        let mut out = Vec::new();
        let (layout, norm) = (self.layout, &self.norm);
        let cfg = self.seg.config().clone();
        self.seg.push(frames, &mut |meta, interleaved| {
            out.push(Window {
                meta,
                features: featurize(interleaved, &cfg, layout, norm),
            });
        });
        out
    }

    /// Ends the stream, applying the configured
    /// [`TailPolicy`](crate::TailPolicy) to any buffered partial window.
    pub fn finish(&mut self) -> Vec<Window> {
        let mut out = Vec::new();
        let (layout, norm) = (self.layout, &self.norm);
        let cfg = self.seg.config().clone();
        self.seg.flush(&mut |meta, interleaved| {
            out.push(Window {
                meta,
                features: featurize(interleaved, &cfg, layout, norm),
            });
        });
        out
    }
}

/// Normalizes and flattens one interleaved window.
fn featurize(
    interleaved: &[f32],
    cfg: &SegmenterConfig,
    layout: WindowLayout,
    norm: &ResolvedNorm,
) -> Vec<f32> {
    let (c, w) = (cfg.channels, cfg.window);
    debug_assert_eq!(interleaved.len(), c * w);
    // Per-window statistics are only computed when the policy needs them;
    // frozen training stats are borrowed as resolved at construction.
    let window_stats: Option<(Vec<f32>, Vec<f32>)> = match norm {
        ResolvedNorm::PerWindow => {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for frame in interleaved.chunks_exact(c) {
                for (ch, &v) in frame.iter().enumerate() {
                    mean[ch] += v;
                }
            }
            for m in &mut mean {
                *m /= w as f32;
            }
            for frame in interleaved.chunks_exact(c) {
                for (ch, &v) in frame.iter().enumerate() {
                    let d = v - mean[ch];
                    var[ch] += d * d;
                }
            }
            let inv: Vec<f32> = var
                .iter()
                .map(|v| 1.0 / (v / w as f32).sqrt().max(1e-8))
                .collect();
            Some((mean, inv))
        }
        _ => None,
    };
    let stats: Option<(&[f32], &[f32])> = match norm {
        ResolvedNorm::None => None,
        ResolvedNorm::Frozen { mean, inv_std } => Some((mean, inv_std)),
        ResolvedNorm::PerWindow => window_stats
            .as_ref()
            .map(|(mean, inv)| (mean.as_slice(), inv.as_slice())),
    };
    let value = |t: usize, ch: usize| -> f32 {
        let v = interleaved[t * c + ch];
        match stats {
            None => v,
            Some((mean, inv)) => (v - mean[ch]) * inv[ch],
        }
    };
    let mut out = Vec::with_capacity(c * w);
    match layout {
        WindowLayout::ChannelMajor => {
            for ch in 0..c {
                for t in 0..w {
                    out.push(value(t, ch));
                }
            }
        }
        WindowLayout::TimeMajor => {
            for t in 0..w {
                for ch in 0..c {
                    out.push(value(t, ch));
                }
            }
        }
    }
    out
}

/// Debounce policy for the alarm state machine.
#[derive(Debug, Clone)]
pub struct AlarmConfig {
    /// Positive windows required among the last [`m`](Self::m) to raise.
    pub k: usize,
    /// History length in windows.
    pub m: usize,
    /// The class index that counts as positive (e.g.
    /// [`rbnn_data::ecg::INVERTED`]).
    pub positive_class: usize,
}

impl Default for AlarmConfig {
    fn default() -> Self {
        Self {
            k: 3,
            m: 5,
            positive_class: 1,
        }
    }
}

/// A change of alarm state produced by one verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlarmEvent {
    /// K-of-M evidence reached: the alarm turned on.
    Raised,
    /// Evidence fell below K-of-M: the alarm turned off.
    Cleared,
}

/// Debounced K-of-M alarm: raises when at least `k` of the last `m`
/// windows were positive, clears when the count drops below `k` again.
/// Single spurious windows (a motion artifact, one marginal-sense flip on
/// worn RRAM) therefore neither trigger nor silence it.
#[derive(Debug)]
pub struct AlarmState {
    cfg: AlarmConfig,
    recent: VecDeque<bool>,
    active: bool,
}

impl AlarmState {
    /// A quiet alarm with the given debounce policy.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k ≤ m`.
    pub fn new(cfg: AlarmConfig) -> Self {
        assert!(cfg.k > 0 && cfg.k <= cfg.m, "need 0 < k <= m");
        Self {
            recent: VecDeque::with_capacity(cfg.m),
            cfg,
            active: false,
        }
    }

    /// Whether the alarm is currently raised.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Feeds one verdict; returns the transition it caused, if any.
    pub fn update(&mut self, class: usize) -> Option<AlarmEvent> {
        if self.recent.len() == self.cfg.m {
            self.recent.pop_front();
        }
        self.recent.push_back(class == self.cfg.positive_class);
        let positives = self.recent.iter().filter(|p| **p).count();
        match (self.active, positives >= self.cfg.k) {
            (false, true) => {
                self.active = true;
                Some(AlarmEvent::Raised)
            }
            (true, false) => {
                self.active = false;
                Some(AlarmEvent::Cleared)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::TailPolicy;

    fn session(
        channels: usize,
        window: usize,
        stride: usize,
        layout: WindowLayout,
        norm: Normalization,
    ) -> Session {
        Session::new(SessionConfig {
            segmenter: SegmenterConfig {
                channels,
                window,
                stride,
                tail: TailPolicy::Drop,
            },
            layout,
            normalization: norm,
        })
    }

    #[test]
    fn channel_major_layout_matches_ecg_dataset_order() {
        // 2 channels, frames [i, 10+i]: channel-major output lists channel
        // 0's timeline then channel 1's.
        let frames: Vec<f32> = (0..4).flat_map(|i| [i as f32, 10.0 + i as f32]).collect();
        let mut s = session(2, 4, 4, WindowLayout::ChannelMajor, Normalization::None);
        let wins = s.push_chunk(&frames);
        assert_eq!(wins.len(), 1);
        assert_eq!(
            wins[0].features,
            vec![0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0]
        );
    }

    #[test]
    fn time_major_layout_matches_eeg_dataset_order() {
        let frames: Vec<f32> = (0..4).flat_map(|i| [i as f32, 10.0 + i as f32]).collect();
        let mut s = session(2, 4, 4, WindowLayout::TimeMajor, Normalization::None);
        let wins = s.push_chunk(&frames);
        assert_eq!(
            wins[0].features,
            vec![0.0, 10.0, 1.0, 11.0, 2.0, 12.0, 3.0, 13.0]
        );
    }

    #[test]
    fn per_channel_normalization_replays_training_stats() {
        let frames = vec![3.0f32, -2.0, 5.0, 0.0]; // 2 frames × 2 channels
        let mut s = session(
            2,
            2,
            2,
            WindowLayout::TimeMajor,
            Normalization::PerChannel {
                mean: vec![1.0, -1.0],
                std: vec![2.0, 0.5],
            },
        );
        let wins = s.push_chunk(&frames);
        assert_eq!(wins[0].features, vec![1.0, -2.0, 2.0, 2.0]);
    }

    #[test]
    fn per_window_normalization_zero_means_each_channel() {
        let frames: Vec<f32> = (0..6).flat_map(|i| [i as f32, 100.0]).collect();
        let mut s = session(
            2,
            6,
            6,
            WindowLayout::ChannelMajor,
            Normalization::PerWindow,
        );
        let wins = s.push_chunk(&frames);
        let f = &wins[0].features;
        let mean0: f32 = f[..6].iter().sum::<f32>() / 6.0;
        assert!(mean0.abs() < 1e-6);
        // Constant channel: zero variance clamps to the epsilon floor
        // instead of dividing by zero.
        assert!(f[6..].iter().all(|v| v.is_finite() && v.abs() < 1e-4));
    }

    #[test]
    fn alarm_debounces_and_clears() {
        let mut a = AlarmState::new(AlarmConfig {
            k: 2,
            m: 3,
            positive_class: 1,
        });
        assert_eq!(a.update(1), None); // 1 of 3
        assert!(!a.active());
        assert_eq!(a.update(0), None);
        assert_eq!(a.update(1), Some(AlarmEvent::Raised)); // 2 of last 3
        assert!(a.active());
        assert_eq!(a.update(1), None); // still raised
        assert_eq!(a.update(0), None); // 2 of last 3 — holds
        assert_eq!(a.update(0), Some(AlarmEvent::Cleared)); // 1 of last 3
        assert!(!a.active());
    }

    #[test]
    fn single_spike_never_raises() {
        let mut a = AlarmState::new(AlarmConfig::default()); // 3 of 5
        for _ in 0..10 {
            assert_eq!(a.update(1), None);
            for _ in 0..6 {
                assert_eq!(a.update(0), None);
            }
        }
    }
}
