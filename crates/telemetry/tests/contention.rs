//! Contention tests for the lock-free recording primitives: the
//! [`FloatCounter`] CAS loop must lose no updates under racing writers and
//! must terminate on non-finite inputs; the [`SpanRing`] must never block
//! (writers and readers colliding drop samples, bounded by slot count).

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use rbnn_telemetry::{FloatCounter, SpanRecord, SpanRing};

#[test]
fn float_counter_racing_adds_lose_nothing() {
    const THREADS: usize = 8;
    const ITERS: usize = 10_000;
    let counter = Arc::new(FloatCounter::new());
    thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = Arc::clone(&counter);
            scope.spawn(move || {
                for _ in 0..ITERS {
                    // 1.0 is exactly representable, so any interleaving
                    // that loses no update sums to exactly THREADS*ITERS.
                    counter.add(1.0);
                }
            });
        }
    });
    assert_eq!(counter.get(), (THREADS * ITERS) as f64);
}

#[test]
fn float_counter_terminates_on_non_finite_values() {
    let counter = FloatCounter::new();
    counter.add(f64::INFINITY);
    assert_eq!(counter.get(), f64::INFINITY);
    // inf + (-inf) = NaN; every later add must still terminate (NaN has a
    // stable bit pattern through the CAS) rather than spin forever.
    counter.add(f64::NEG_INFINITY);
    assert!(counter.get().is_nan());
    counter.add(1.0);
    assert!(counter.get().is_nan());

    let nan_first = FloatCounter::new();
    nan_first.add(f64::NAN);
    nan_first.add(2.5);
    assert!(nan_first.get().is_nan());
}

fn span(i: usize) -> SpanRecord {
    SpanRecord {
        queue_wait: Duration::from_micros(i as u64),
        batch_wait: Duration::from_micros(1),
        service: Duration::from_micros(2),
        samples: 1,
    }
}

#[test]
fn span_ring_racing_writers_and_readers_never_block() {
    const CAPACITY: usize = 32;
    const WRITERS: usize = 4;
    const PUSHES: usize = 5_000;
    let ring = Arc::new(SpanRing::new(CAPACITY));
    thread::scope(|scope| {
        for w in 0..WRITERS {
            let ring = Arc::clone(&ring);
            scope.spawn(move || {
                for i in 0..PUSHES {
                    ring.push(span(w * PUSHES + i));
                }
            });
        }
        // A reader racing the writers: try_lock on both sides means this
        // can only ever see fewer samples, never deadlock the recorders.
        let ring = Arc::clone(&ring);
        scope.spawn(move || {
            for _ in 0..200 {
                assert!(ring.samples().len() <= CAPACITY);
            }
        });
    });
    // Loss is bounded by contention, not unbounded: the ring still holds
    // at most capacity samples, all of them ones that were pushed.
    let retained = ring.samples();
    assert!(retained.len() <= CAPACITY);
    assert!(retained.iter().all(|s| s.samples == 1));
}

#[test]
fn span_ring_uncontended_pushes_retain_every_slot() {
    const CAPACITY: usize = 16;
    let ring = SpanRing::new(CAPACITY);
    for i in 0..CAPACITY {
        ring.push(span(i));
    }
    // Sequential (uncontended) try_locks always succeed: one full lap
    // fills every slot, so nothing is lost.
    assert_eq!(ring.samples().len(), CAPACITY);
    assert_eq!(
        ring.worst().expect("non-empty ring").queue_wait.as_micros(),
        (CAPACITY - 1) as u128
    );
}
