//! Exposition: rendering a registry snapshot as Prometheus text or JSON,
//! and the periodic flight recorder.
//!
//! The crate is dependency-free, so JSON is emitted by hand here; the
//! schema is intentionally flat (arrays of samples) so downstream tooling
//! does not need to know metric names in advance.

use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One counter or gauge sample in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct NumberSample {
    /// Metric family name.
    pub name: String,
    /// Rendered label pairs (empty for unlabeled).
    pub labels: String,
    /// Family help text.
    pub help: String,
    /// Sample value.
    pub value: f64,
}

/// One histogram sample in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSample {
    /// Metric family name.
    pub name: String,
    /// Rendered label pairs (empty for unlabeled).
    pub labels: String,
    /// Family help text.
    pub help: String,
    /// Per-bucket growth factor (bucket `i` upper bound = `growth^i`).
    pub growth: f64,
    /// Per-bucket observation counts.
    pub counts: Vec<u64>,
    /// Sum of all observed values (histogram units).
    pub sum: f64,
}

impl HistogramSample {
    /// Total observations across all buckets.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Point-in-time copy of every metric series in a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Integer and float counter samples, sorted by (name, labels).
    pub counters: Vec<NumberSample>,
    /// Gauge samples, sorted by (name, labels).
    pub gauges: Vec<NumberSample>,
    /// Histogram samples, sorted by (name, labels).
    pub histograms: Vec<HistogramSample>,
}

fn series(name: &str, labels: &str) -> String {
    if labels.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{labels}}}")
    }
}

/// Merges extra label pairs onto an existing rendered label set.
fn with_label(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        extra.to_string()
    } else {
        format!("{labels},{extra}")
    }
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        // Rust's f64 Display is shortest-round-trip: integers print bare
        // ("42"), fractions keep full precision.
        format!("{v}")
    }
}

impl TelemetrySnapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Histograms are rendered with **cumulative** `_bucket{le=...}` series
    /// (only non-empty buckets plus the mandatory `+Inf`), `le` bounds
    /// being the log-bucket upper bounds `growth^i` in the histogram's
    /// native unit, followed by `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = "";
        let number = |out: &mut String, kind: &str, s: &NumberSample, last: &mut &str| {
            if s.name != *last {
                let _ = writeln!(out, "# HELP {} {}", s.name, s.help);
                let _ = writeln!(out, "# TYPE {} {kind}", s.name);
            }
            let _ = writeln!(out, "{} {}", series(&s.name, &s.labels), fmt_value(s.value));
        };
        for s in &self.counters {
            number(&mut out, "counter", s, &mut last_family);
            last_family = &s.name;
        }
        last_family = "";
        for s in &self.gauges {
            number(&mut out, "gauge", s, &mut last_family);
            last_family = &s.name;
        }
        last_family = "";
        for h in &self.histograms {
            if h.name != last_family {
                let _ = writeln!(out, "# HELP {} {}", h.name, h.help);
                let _ = writeln!(out, "# TYPE {} histogram", h.name);
                last_family = &h.name;
            }
            let mut cumulative = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                let le = fmt_value(h.growth.powf(i as f64));
                let _ = writeln!(
                    out,
                    "{}_bucket{{{}}} {cumulative}",
                    h.name,
                    with_label(&h.labels, &format!("le=\"{le}\""))
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{{{}}} {cumulative}",
                h.name,
                with_label(&h.labels, "le=\"+Inf\"")
            );
            let _ = writeln!(
                out,
                "{} {}",
                series(&format!("{}_sum", h.name), &h.labels),
                fmt_value(h.sum)
            );
            let _ = writeln!(
                out,
                "{} {cumulative}",
                series(&format!("{}_count", h.name), &h.labels)
            );
        }
        out
    }

    /// Renders the snapshot as a compact JSON document.
    ///
    /// Schema: `{"counters": [{"name", "labels", "value"}, ...],
    /// "gauges": [...], "histograms": [{"name", "labels", "growth",
    /// "count", "sum", "buckets": [[index, count], ...]}, ...]}` —
    /// histogram buckets are sparse (non-empty only) index/count pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":[");
        let mut first = true;
        for s in &self.counters {
            json_number_sample(&mut out, s, &mut first);
        }
        out.push_str("],\"gauges\":[");
        first = true;
        for s in &self.gauges {
            json_number_sample(&mut out, s, &mut first);
        }
        out.push_str("],\"histograms\":[");
        first = true;
        for h in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            json_string(&mut out, &h.name);
            out.push_str(",\"labels\":");
            json_string(&mut out, &h.labels);
            let _ = write!(
                out,
                ",\"growth\":{},\"count\":{},\"sum\":{},\"buckets\":[",
                json_number(h.growth),
                h.count(),
                json_number(h.sum)
            );
            let mut first_bucket = true;
            for (i, &c) in h.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first_bucket {
                    out.push(',');
                }
                first_bucket = false;
                let _ = write!(out, "[{i},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string() // JSON has no NaN/Inf
    }
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_number_sample(out: &mut String, s: &NumberSample, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("{\"name\":");
    json_string(out, &s.name);
    out.push_str(",\"labels\":");
    json_string(out, &s.labels);
    let _ = write!(out, ",\"value\":{}}}", json_number(s.value));
}

/// Periodic snapshot streamer for long-running sessions: a background
/// thread renders a snapshot every `interval` as one JSON line and writes
/// it to the supplied writer (newline-delimited JSON).
pub struct FlightRecorder {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl FlightRecorder {
    /// Starts recording: every `interval`, `snap()` is rendered to JSON
    /// and appended (one line each) to `writer`. A final snapshot is
    /// written on [`stop`](Self::stop)/drop, so even a recorder stopped
    /// before its first tick captures the end state.
    pub fn start<W, F>(interval: Duration, mut writer: W, snap: F) -> Self
    where
        W: Write + Send + 'static,
        F: Fn() -> TelemetrySnapshot + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("rbnn-flight-recorder".into())
            .spawn(move || {
                // Poll the stop flag at a fine grain so shutdown is prompt
                // even with long intervals.
                let tick = interval
                    .min(Duration::from_millis(20))
                    .max(Duration::from_millis(1));
                let mut elapsed = Duration::ZERO;
                loop {
                    // Relaxed: the flag is the only shared state; the final
                    // snapshot is ordered by the join in `shutdown`, not by
                    // this load.
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    std::thread::sleep(tick);
                    elapsed += tick;
                    if elapsed >= interval {
                        elapsed = Duration::ZERO;
                        let line = snap().to_json();
                        let _ = writeln!(writer, "{line}");
                    }
                }
                let line = snap().to_json();
                let _ = writeln!(writer, "{line}");
                let _ = writer.flush();
            })
            .expect("spawn flight recorder");
        Self {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the recorder, writing one final snapshot line and flushing.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        // Relaxed: the recorder thread polls this flag; `join` below is the
        // synchronization point for everything it wrote.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use std::sync::Mutex;

    fn sample_snapshot() -> TelemetrySnapshot {
        let reg = MetricsRegistry::new();
        reg.counter("rbnn_requests_total", "server=\"0\"", "Requests accepted.")
            .add(42);
        reg.gauge("rbnn_queue_depth", "", "Requests waiting in the queue.")
            .set(3.0);
        let h = reg.histogram_with("rbnn_latency_us", "", "End-to-end latency (µs).", || {
            crate::metrics::LogHistogram::new(8, 2.0)
        });
        h.record_value(1.0); // bucket 0 (le 1)
        h.record_value(3.0); // bucket 2 (le 4)
        h.record_value(3.5); // bucket 2
        reg.snapshot()
    }

    #[test]
    fn prometheus_text_is_pinned() {
        let text = sample_snapshot().render_prometheus();
        let expected = "\
# HELP rbnn_requests_total Requests accepted.
# TYPE rbnn_requests_total counter
rbnn_requests_total{server=\"0\"} 42
# HELP rbnn_queue_depth Requests waiting in the queue.
# TYPE rbnn_queue_depth gauge
rbnn_queue_depth 3
# HELP rbnn_latency_us End-to-end latency (µs).
# TYPE rbnn_latency_us histogram
rbnn_latency_us_bucket{le=\"1\"} 1
rbnn_latency_us_bucket{le=\"4\"} 3
rbnn_latency_us_bucket{le=\"+Inf\"} 3
rbnn_latency_us_sum 7.5
rbnn_latency_us_count 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn json_snapshot_is_pinned() {
        let json = sample_snapshot().to_json();
        let expected = concat!(
            "{\"counters\":[",
            "{\"name\":\"rbnn_requests_total\",\"labels\":\"server=\\\"0\\\"\",\"value\":42}",
            "],\"gauges\":[",
            "{\"name\":\"rbnn_queue_depth\",\"labels\":\"\",\"value\":3}",
            "],\"histograms\":[",
            "{\"name\":\"rbnn_latency_us\",\"labels\":\"\",\"growth\":2,",
            "\"count\":3,\"sum\":7.5,\"buckets\":[[0,1],[2,2]]}",
            "]}"
        );
        assert_eq!(json, expected);
    }

    #[test]
    fn special_float_values_render() {
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_value(f64::NAN), "NaN");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(fmt_value(0.25), "0.25");
    }

    /// A `Write` sink the test can inspect after the recorder stops.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("buf lock").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn flight_recorder_streams_snapshots() {
        let buf = SharedBuf::default();
        let sink = buf.clone();
        let recorder = FlightRecorder::start(Duration::from_millis(5), sink, || {
            let reg = MetricsRegistry::new();
            reg.counter("rbnn_ticks_total", "", "Ticks.").inc();
            reg.snapshot()
        });
        std::thread::sleep(Duration::from_millis(40));
        recorder.stop();
        let bytes = buf.0.lock().expect("buf lock").clone();
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        // Several periodic lines plus the final flush line.
        assert!(lines.len() >= 2, "expected >=2 lines, got {}", lines.len());
        for line in lines {
            assert!(line.starts_with("{\"counters\":["), "line: {line}");
            assert!(line.contains("rbnn_ticks_total"));
        }
    }

    #[test]
    fn flight_recorder_drop_writes_final_snapshot() {
        let buf = SharedBuf::default();
        let sink = buf.clone();
        {
            let _recorder = FlightRecorder::start(Duration::from_secs(3600), sink, || {
                TelemetrySnapshot::default()
            });
            // Dropped immediately: interval never elapses.
        }
        let bytes = buf.0.lock().expect("buf lock").clone();
        let text = String::from_utf8(bytes).expect("utf8");
        assert_eq!(text.lines().count(), 1);
    }
}
