//! Unified observability layer for the RBNN workspace.
//!
//! Everything the serving stack, the streaming router, the RRAM engine
//! model and the trainer report about themselves flows through this crate:
//!
//! - [`metrics`] — the lock-free primitives: [`Counter`], [`FloatCounter`],
//!   [`Gauge`], and [`LogHistogram`] (the 5%-resolution log-scaled
//!   histogram generalized out of the serving stats). Handles are
//!   registered once and recorded on the hot path without locks or
//!   allocation.
//! - [`registry`] — [`MetricsRegistry`]: named + labeled series with
//!   get-or-create registration; [`global()`] is the process-wide instance
//!   every subsystem instruments into.
//! - [`trace`] — request-lifecycle span sampling: [`SpanRecord`]
//!   decomposes one request into queue-wait / batch-linger / service
//!   phases, retained in a fixed [`SpanRing`] for post-hoc tail analysis.
//! - [`export`] — [`TelemetrySnapshot`] with a Prometheus-text renderer
//!   and a JSON dump, plus the periodic [`FlightRecorder`].
//!
//! # Enabling and disabling
//!
//! Instrumentation sites guard their work with [`enabled()`] (a single
//! relaxed atomic load, branch-predictable because it never changes
//! mid-run in practice). Telemetry defaults to **on**; benches gate the
//! enabled-vs-disabled overhead. Core serving statistics
//! (`rbnn_serve::StatsSnapshot`) are *not* gated — they are part of the
//! serving contract — only the auxiliary reporting (span sampling, stream
//! gauges, RRAM/energy counters, training phase timers) honors the flag.
//!
//! # Example
//!
//! ```
//! use rbnn_telemetry as tel;
//!
//! let hits = tel::global().counter(
//!     "rbnn_doc_example_hits_total",
//!     "",
//!     "Times the doc example ran.",
//! );
//! hits.inc();
//! let text = tel::global().snapshot().render_prometheus();
//! assert!(text.contains("rbnn_doc_example_hits_total"));
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod registry;
pub mod trace;

pub use export::{FlightRecorder, HistogramSample, NumberSample, TelemetrySnapshot};
pub use metrics::{Counter, FloatCounter, Gauge, LogHistogram};
pub use registry::{MetricKey, MetricsRegistry};
pub use trace::{SpanRecord, SpanRing};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether auxiliary instrumentation is active (default: `true`).
///
/// One relaxed load — cheap enough for any hot path; instrumentation
/// sites check it *before* doing label formatting or clock reads, so a
/// disabled build pays only this branch.
#[inline]
pub fn enabled() -> bool {
    // Relaxed: a standalone on/off flag — instrumentation sites tolerate
    // observing a flip late by a few events, and nothing else is ordered
    // against the load.
    ENABLED.load(Ordering::Relaxed)
}

/// Turns auxiliary instrumentation on or off process-wide.
///
/// Flipping the flag mid-run is safe (recording through live handles is
/// always sound); already-registered series simply stop/resume updating.
pub fn set_enabled(on: bool) {
    // Relaxed: pairs with the load in `enabled`; eventual visibility is the
    // contract (series "stop/resume updating"), not synchronization.
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide registry every subsystem instruments into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        let a = global().counter("rbnn_lib_test_total", "", "test");
        let b = global().counter("rbnn_lib_test_total", "", "test");
        let before = a.get();
        b.inc();
        assert_eq!(a.get(), before + 1);
    }

    #[test]
    fn enable_toggle_roundtrips() {
        // Confined to this test: restore the default before returning so
        // parallel tests never observe a disabled registry.
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }
}
